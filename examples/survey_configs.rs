//! Survey: run the quick test suite against a selection of simulated
//! configurations and print the merged acceptance table plus the
//! configuration-specific deviations (a miniature of §7.3's survey and of the
//! `exp_survey` experiment binary).
//!
//! Run with: `cargo run --release --example survey_configs`

use sibylfs::prelude::*;

fn main() {
    let suite = generate_suite(SuiteOptions::quick());
    println!("suite: {} scripts\n", suite.len());

    let selection = [
        "linux/ext4",
        "linux/btrfs",
        "linux/hfsplus-trusty",
        "linux/sshfs-tmpfs",
        "linux/posixovl-vfat",
        "linux/openzfs-trusty",
        "mac/hfsplus",
        "mac/openzfs",
        "freebsd/ufs",
    ];

    let mut summaries = Vec::new();
    for name in selection {
        let profile = configs::by_name(name).expect("registered configuration");
        let traces = execute_suite(&profile, &suite, ExecOptions::default());
        let spec = SpecConfig::standard(profile.platform);
        let (checked, stats) = check_traces_parallel(&spec, &traces, CheckOptions::default(), 4);
        eprintln!(
            "checked {:28} {:>5}/{:<5} accepted in {:.2}s",
            name, stats.accepted, stats.traces, stats.elapsed_secs
        );
        summaries.push(summarize_run(name, profile.platform.name(), &checked));
    }

    let merged = merge_runs(summaries);
    println!("{}", render_merged_markdown(&merged));
}
