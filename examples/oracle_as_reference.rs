//! Using the specification as a *reference implementation* (§8 "Differential
//! testing" notes that SibylFS can be determinised and even mounted as a FUSE
//! file system).
//!
//! This example determinises the model: it runs a script purely inside the
//! specification by, at every call, processing the call and picking the
//! model's canonical completion. The resulting trace is — by construction —
//! accepted by the oracle, and can be diffed against a real implementation's
//! trace to see exactly where the implementation made a different (but
//! possibly still allowed) choice.
//!
//! Run with: `cargo run --example oracle_as_reference`

use sibylfs::prelude::*;
use sibylfs_core::os::trans::{default_completion, expand_calls, os_trans};
use sibylfs_core::os::OsState;
use sibylfs_core::types::INITIAL_PID;

/// Execute a script against the determinised model, producing a trace.
fn run_on_model(spec: &SpecConfig, script: &Script) -> Trace {
    let mut st = OsState::initial_with_process(spec, INITIAL_PID);
    let mut trace = Trace::new(script.name.clone(), script.group.clone());
    for step in &script.steps {
        if let sibylfs::script::ScriptStep::Call { pid, cmd } = step {
            let called = os_trans(spec, &st, &OsLabel::Call(*pid, cmd.clone()))
                .into_iter()
                .next()
                .expect("call accepted");
            // Process the call and take the canonical completion of the last
            // (success, if any) branch.
            let branches = expand_calls(spec, &called);
            let branch = branches.into_iter().next_back().expect("at least one branch");
            let (value, next) = default_completion(&branch, *pid).expect("completion");
            trace.push_call_return(*pid, cmd.clone(), value);
            st = next;
        }
    }
    trace
}

fn main() {
    let mut script = Script::new("reference___mkdir_write_read", "reference");
    script
        .call(OsCommand::Mkdir("docs".into(), FileMode::new(0o755)))
        .call(OsCommand::Open(
            "docs/notes.txt".into(),
            OpenFlags::O_CREAT | OpenFlags::O_RDWR,
            Some(FileMode::new(0o644)),
        ))
        .call(OsCommand::Write(Fd(0), b"the model as reference".to_vec()))
        .call(OsCommand::Stat("docs/notes.txt".into()))
        .call(OsCommand::Unlink("docs/notes.txt".into()))
        .call(OsCommand::Rmdir("docs".into()));

    let spec = SpecConfig::standard(Flavor::Posix);
    let model_trace = run_on_model(&spec, &script);
    println!("=== trace produced by the determinised model ===\n{}", render_trace(&model_trace));

    // The model's own trace is accepted by the oracle.
    let checked = check_trace(&spec, &model_trace, CheckOptions::default());
    println!("model trace accepted by the oracle: {}", checked.accepted);

    // Differential comparison against a real (simulated) implementation.
    let profile = configs::by_name("linux/ext4").expect("registered configuration");
    let impl_trace = execute_script(&profile, &script, ExecOptions::default());
    println!("\n=== trace produced by {} ===\n{}", profile.name, render_trace(&impl_trace));
    let impl_checked = check_trace(&SpecConfig::standard(Flavor::Linux), &impl_trace, CheckOptions::default());
    println!("implementation trace accepted by the oracle: {}", impl_checked.accepted);

    // Where do the two traces differ? (Different choices can both be allowed:
    // e.g. the model's canonical fd number need not match the
    // implementation's.)
    let differing = model_trace
        .labels()
        .zip(impl_trace.labels())
        .filter(|(a, b)| a != b)
        .count();
    println!("\nlabels that differ between model and implementation: {differing}");
}
