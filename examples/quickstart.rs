//! Quickstart: the paper's running example (Figs. 2–4) end to end.
//!
//! Builds the `rename` test script, executes it against two simulated file
//! systems (a well-behaved ext4 and SSHFS over tmpfs), checks both traces
//! against the Linux flavour of the model, and prints the checked traces —
//! including the SSHFS deviation diagnostic from Fig. 4.
//!
//! Run with: `cargo run --example quickstart`

use sibylfs::prelude::*;

fn main() {
    // Fig. 2: the test script.
    let mut script = Script::new("rename___rename_emptydir___nonemptydir", "rename");
    script
        .call(OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777)))
        .call(OsCommand::Mkdir("nonemptydir".into(), FileMode::new(0o777)))
        .call(OsCommand::Open(
            "nonemptydir/f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(FileMode::new(0o666)),
        ))
        .call(OsCommand::Rename("emptydir".into(), "nonemptydir".into()));
    println!("=== test script ===\n{}", render_script(&script));

    let spec = SpecConfig::standard(Flavor::Linux);

    for config in ["linux/ext4", "linux/sshfs-tmpfs"] {
        let profile = configs::by_name(config).expect("registered configuration");
        // Fig. 3: execute the script and record the trace.
        let trace = execute_script(&profile, &script, ExecOptions::default());
        println!("=== trace recorded on {config} ===\n{}", render_trace(&trace));

        // Fig. 4: check the trace against the model.
        let checked = check_trace(&spec, &trace, CheckOptions::default());
        println!("=== checked trace ({config}) ===\n{}", render_checked_trace(&checked));
        if checked.accepted {
            println!("{config}: trace ACCEPTED by the Linux model\n");
        } else {
            println!(
                "{config}: trace NOT accepted — {} deviation(s), e.g. {} returned {} where only {} are allowed\n",
                checked.deviations.len(),
                checked.deviations[0].function,
                checked.deviations[0].observed,
                checked.deviations[0].allowed.join(", "),
            );
        }
    }
}
