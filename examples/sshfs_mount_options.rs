//! The system-administrator scenario of §7.3.4: before deploying a shared
//! SSHFS mount, compare the behaviour of its mount-option variants and decide
//! whether any of them is acceptable.
//!
//! The example runs two targeted probes against each SSHFS configuration:
//!
//! 1. a *permission-enforcement* probe — can another user create files inside
//!    a 0700 directory owned by someone else?
//! 2. a *umask* probe — are the permission bits of newly created files what
//!    the process's umask says they should be, and who owns them?
//!
//! Run with: `cargo run --example sshfs_mount_options`

use sibylfs::prelude::*;
use sibylfs_core::types::{Gid, Pid, Uid};

/// Probe 1: a second (unprivileged) user tries to create a file inside
/// another user's private directory. On a correctly configured mount this
/// must fail with EACCES.
fn permission_probe() -> Script {
    let mut s = Script::new("sshfs___permission_probe", "permissions");
    s.call(OsCommand::Mkdir("alice".into(), FileMode::new(0o700)))
        .call(OsCommand::Chown("alice".into(), Uid(1001), Gid(1001)))
        .create_process(Pid(2), Uid(2002), Gid(2002))
        .call_as(
            Pid(2),
            OsCommand::Open(
                "alice/secret".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o644)),
            ),
        )
        .destroy_process(Pid(2));
    s
}

/// Probe 2: create a file with a permissive mode under a 0o002 umask and
/// stat it: the reported mode and ownership reveal forced-umask and
/// root-ownership mount behaviour.
fn umask_probe() -> Script {
    let mut s = Script::new("sshfs___umask_probe", "umask");
    s.create_process(Pid(2), Uid(1001), Gid(1001))
        .call_as(Pid(2), OsCommand::Umask(FileMode::new(0o002)))
        .call_as(
            Pid(2),
            OsCommand::Open(
                "report.txt".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o666)),
            ),
        )
        .call_as(Pid(2), OsCommand::Stat("report.txt".into()))
        .destroy_process(Pid(2));
    s
}

fn main() {
    let candidates = [
        ("linux/sshfs-allow-other", "allow_other only"),
        ("linux/sshfs-allow-other-default-permissions", "allow_other + default_permissions"),
        ("linux/sshfs-umask0000", "umask=0000 mount option"),
        ("linux/sshfs-tmpfs", "default mount options"),
        ("linux/tmpfs", "reference: local tmpfs"),
    ];
    let spec = SpecConfig::standard(Flavor::Linux);

    println!("| configuration | mount options | permission probe | umask probe | verdict |");
    println!("|---|---|---|---|---|");
    for (name, options) in candidates {
        let profile = configs::by_name(name).expect("registered configuration");

        // Probe 1: does the mount enforce permissions?
        let t1 = execute_script(&profile, &permission_probe(), ExecOptions::default());
        let perm_enforced = t1.labels().any(|l| {
            matches!(l, OsLabel::Return(Pid(2), ErrorOrValue::Error(Errno::EACCES)))
        });

        // Probe 2: check the trace against the model and look at what stat
        // reported for the created file.
        let t2 = execute_script(&profile, &umask_probe(), ExecOptions::default());
        let checked = check_trace(&spec, &t2, CheckOptions::default());
        let stat_line = t2
            .labels()
            .filter_map(|l| match l {
                OsLabel::Return(_, ErrorOrValue::Value(RetValue::Stat(s))) => Some(format!(
                    "mode {} owner uid {}",
                    s.mode, s.uid.0
                )),
                _ => None,
            })
            .last()
            .unwrap_or_else(|| "n/a".to_string());

        let verdict = if !perm_enforced {
            "reject: users can violate permissions"
        } else if !checked.accepted {
            "caution: deviates from the Linux model (root-owned or masked creations)"
        } else {
            "acceptable for a shared deployment"
        };
        println!(
            "| {name} | {options} | {} | {stat_line} | {verdict} |",
            if perm_enforced { "enforced" } else { "NOT enforced" },
        );
    }
    println!(
        "\nConclusion (matching §7.3.4): allow_other alone is dangerous; adding \
         default_permissions restores enforcement but creations are still owned by the mount \
         owner, so none of the SSHFS variants is suitable for a shared multi-user deployment."
    );
}
