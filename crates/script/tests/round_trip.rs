//! Round-trip property tests for the script/trace text formats:
//! `parse(render(x)) == x`, over both proptest-generated values and the
//! generated corpus (every quick-suite script plus the traces it produces).
//!
//! These pin the on-disk format before real-host traces start landing in it:
//! the host backend renders its traces in a forked worker and the parent
//! parses them back, so any format asymmetry would corrupt host runs.

use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use proptest::strategy::Union;

use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue, Stat};
use sibylfs_core::path::ParsedPath;
use sibylfs_core::errno::Errno;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{DirHandleId, Fd, FileKind, Gid, Pid, Uid};
use sibylfs_script::{
    parse_script, parse_trace, render_script, render_trace, Script, ScriptStep, Trace,
};

// --- strategies -----------------------------------------------------------

/// Path-ish strings: printable ASCII plus the characters the escaping code
/// must handle (quotes, backslashes, control characters, non-ASCII).
fn path_strategy() -> BoxedStrategy<String> {
    let chars: Vec<char> = {
        let mut v: Vec<char> = ('a'..='e').collect();
        v.extend(['/', '.', '_', '-', ' ', '"', '\\', '\n', '\t', 'é', 'λ']);
        v
    };
    prop_vec(0..chars.len(), 0..12)
        .prop_map(move |idxs| idxs.into_iter().map(|i| chars[i]).collect())
        .boxed()
}

fn mode_strategy() -> BoxedStrategy<FileMode> {
    (0u32..0o10000).prop_map(FileMode::new).boxed()
}

fn flags_strategy() -> BoxedStrategy<OpenFlags> {
    (0usize..OpenFlags::NAMED.len(), 0usize..OpenFlags::NAMED.len(), 0usize..3)
        .prop_map(|(a, b, access)| {
            let access = [OpenFlags::O_RDONLY, OpenFlags::O_WRONLY, OpenFlags::O_RDWR][access];
            access.with(OpenFlags::NAMED[a].1).with(OpenFlags::NAMED[b].1)
        })
        .boxed()
}

/// Data written by `write`/`pwrite`. The text format renders data through
/// `String::from_utf8_lossy`, so the format (deliberately, following the
/// paper's ASCII scripts) only round-trips UTF-8 payloads; the generator
/// stays within that contract.
fn data_strategy() -> BoxedStrategy<Vec<u8>> {
    path_strategy().prop_map(String::into_bytes).boxed()
}

fn fd_strategy() -> BoxedStrategy<Fd> {
    (0i32..100).prop_map(Fd).boxed()
}

fn dh_strategy() -> BoxedStrategy<DirHandleId> {
    (0i32..100).prop_map(DirHandleId).boxed()
}

fn whence_strategy() -> BoxedStrategy<SeekWhence> {
    prop_oneof![
        Just(SeekWhence::Set),
        Just(SeekWhence::Cur),
        Just(SeekWhence::End),
    ]
    .boxed()
}

fn command_strategy() -> BoxedStrategy<OsCommand> {
    let p = path_strategy();
    let m = mode_strategy();
    let f = fd_strategy();
    let d = dh_strategy();
    Union::new(vec![
        p.clone().prop_map(|a| OsCommand::Chdir(a.into())).boxed(),
        (p.clone(), m.clone()).prop_map(|(a, b)| OsCommand::Chmod(a.into(), b)).boxed(),
        (p.clone(), 0u32..5000, 0u32..5000)
            .prop_map(|(a, u, g)| OsCommand::Chown(a.into(), Uid(u), Gid(g)))
            .boxed(),
        f.clone().prop_map(OsCommand::Close).boxed(),
        d.clone().prop_map(OsCommand::Closedir).boxed(),
        (p.clone(), p.clone()).prop_map(|(a, b)| OsCommand::Link(a.into(), b.into())).boxed(),
        (f.clone(), -1000i64..1000, whence_strategy())
            .prop_map(|(fd, off, w)| OsCommand::Lseek(fd, off, w))
            .boxed(),
        p.clone().prop_map(|a| OsCommand::Lstat(a.into())).boxed(),
        (p.clone(), m.clone()).prop_map(|(a, b)| OsCommand::Mkdir(a.into(), b)).boxed(),
        (p.clone(), flags_strategy(), m.clone(), 0usize..2)
            .prop_map(|(a, fl, mo, has)| {
                OsCommand::Open(a.into(), fl, if has == 1 { Some(mo) } else { None })
            })
            .boxed(),
        p.clone().prop_map(|a| OsCommand::Opendir(a.into())).boxed(),
        (f.clone(), 0usize..4096, -10i64..10_000)
            .prop_map(|(fd, n, off)| OsCommand::Pread(fd, n, off))
            .boxed(),
        (f.clone(), data_strategy(), -10i64..10_000)
            .prop_map(|(fd, data, off)| OsCommand::Pwrite(fd, data, off))
            .boxed(),
        (f.clone(), 0usize..4096).prop_map(|(fd, n)| OsCommand::Read(fd, n)).boxed(),
        d.clone().prop_map(OsCommand::Readdir).boxed(),
        p.clone().prop_map(|a| OsCommand::Readlink(a.into())).boxed(),
        (p.clone(), p.clone()).prop_map(|(a, b)| OsCommand::Rename(a.into(), b.into())).boxed(),
        d.prop_map(OsCommand::Rewinddir).boxed(),
        p.clone().prop_map(|a| OsCommand::Rmdir(a.into())).boxed(),
        p.clone().prop_map(|a| OsCommand::Stat(a.into())).boxed(),
        (p.clone(), p.clone()).prop_map(|(a, b)| OsCommand::Symlink(a.into(), b.into())).boxed(),
        (p.clone(), -10i64..1_000_000).prop_map(|(a, n)| OsCommand::Truncate(a.into(), n)).boxed(),
        m.prop_map(OsCommand::Umask).boxed(),
        p.prop_map(|a| OsCommand::Unlink(a.into())).boxed(),
        (f, data_strategy()).prop_map(|(fd, data)| OsCommand::Write(fd, data)).boxed(),
        (0u32..5000, 0u32..5000)
            .prop_map(|(u, g)| OsCommand::AddUserToGroup(Uid(u), Gid(g)))
            .boxed(),
    ])
    .boxed()
}

fn ret_strategy() -> BoxedStrategy<ErrorOrValue> {
    Union::new(vec![
        (0usize..Errno::ALL.len())
            .prop_map(|i| ErrorOrValue::Error(Errno::ALL[i]))
            .boxed(),
        Just(ErrorOrValue::Value(RetValue::None)).boxed(),
        (-1_000_000i64..1_000_000)
            .prop_map(|n| ErrorOrValue::Value(RetValue::Num(n)))
            .boxed(),
        data_strategy().prop_map(|b| ErrorOrValue::Value(RetValue::Bytes(b))).boxed(),
        (0i32..100).prop_map(|n| ErrorOrValue::Value(RetValue::Fd(Fd(n)))).boxed(),
        (0i32..100)
            .prop_map(|n| ErrorOrValue::Value(RetValue::DirHandle(DirHandleId(n))))
            .boxed(),
        path_strategy()
            .prop_filter("readdir names never contain newlines for the line format", |s| {
                !s.is_empty()
            })
            .prop_map(|s| ErrorOrValue::Value(RetValue::ReaddirEntry(Some(s))))
            .boxed(),
        Just(ErrorOrValue::Value(RetValue::ReaddirEntry(None))).boxed(),
        path_strategy().prop_map(|s| ErrorOrValue::Value(RetValue::Path(s))).boxed(),
        (0usize..3, 0u64..1_000_000, 1u32..100, mode_strategy(), 0u32..5000, 0u32..5000)
            .prop_map(|(k, size, nlink, mode, uid, gid)| {
                let kind =
                    [FileKind::Regular, FileKind::Directory, FileKind::Symlink][k];
                ErrorOrValue::Value(RetValue::Stat(Box::new(Stat {
                    kind,
                    size,
                    nlink,
                    mode,
                    uid: Uid(uid),
                    gid: Gid(gid),
                })))
            })
            .boxed(),
    ])
    .boxed()
}

fn script_strategy() -> BoxedStrategy<Script> {
    prop_vec(
        Union::new(vec![
            (0u32..4, command_strategy())
                .prop_map(|(pid, cmd)| ScriptStep::Call { pid: Pid(pid + 1), cmd })
                .boxed(),
            (2u32..6, 0u32..5000, 0u32..5000)
                .prop_map(|(pid, uid, gid)| ScriptStep::CreateProcess {
                    pid: Pid(pid),
                    uid: Uid(uid),
                    gid: Gid(gid),
                })
                .boxed(),
            (2u32..6).prop_map(|pid| ScriptStep::DestroyProcess { pid: Pid(pid) }).boxed(),
        ]),
        0..12,
    )
    .prop_map(|steps| {
        let mut s = Script::new("prop___case", "prop");
        s.steps = steps;
        s
    })
    .boxed()
}

fn trace_strategy() -> BoxedStrategy<Trace> {
    prop_vec((0u32..4, command_strategy(), ret_strategy()), 0..10)
        .prop_map(|triples| {
            let mut t = Trace::new("prop___trace", "prop");
            for (pid, cmd, ret) in triples {
                t.push_call_return(Pid(pid + 1), cmd, ret);
            }
            t
        })
        .boxed()
}

// --- the properties -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse→intern→print: a path string entering through the parser interns
    /// to symbols that resolve back to exactly the original text (including
    /// names needing escapes), and a second parse of the same text reuses the
    /// same symbols — the interner is idempotent through the text format.
    #[test]
    fn path_intern_round_trips(text in path_strategy()) {
        let p = ParsedPath::parse(&text);
        prop_assert_eq!(p.as_str(), text.as_str());
        let again = ParsedPath::parse(&text);
        prop_assert_eq!(p.raw_name(), again.raw_name());
        prop_assert_eq!(p.components(), again.components());
        // Components resolve back to the non-empty slash-separated pieces.
        let expect: Vec<&str> = text.split('/').filter(|c| !c.is_empty()).collect();
        let got: Vec<&str> = p.components().iter().map(|n| n.as_str()).collect();
        prop_assert_eq!(got, expect);
        // And the quoted Display form is what the String printed before the
        // intern refactor: the rendered text formats are unchanged.
        prop_assert_eq!(format!("{p}"), format!("{text:?}"));
    }

    /// Every renderable command round-trips through its display form.
    #[test]
    fn command_display_round_trips(cmd in command_strategy()) {
        let printed = cmd.to_string();
        let reparsed = sibylfs_script::parse::parse_command(&printed, 1)
            .unwrap_or_else(|e| panic!("parse {printed:?}: {e}"));
        prop_assert_eq!(cmd, reparsed);
    }

    /// Every renderable return value round-trips.
    #[test]
    fn return_display_round_trips(ret in ret_strategy()) {
        let printed = ret.to_string();
        let reparsed = sibylfs_script::parse::parse_return(&printed, 1)
            .unwrap_or_else(|e| panic!("parse {printed:?}: {e}"));
        prop_assert_eq!(ret, reparsed);
    }

    /// Whole scripts round-trip: `parse(render(s)) == s`.
    #[test]
    fn script_round_trips(script in script_strategy()) {
        let text = render_script(&script);
        let reparsed = parse_script(&text)
            .unwrap_or_else(|e| panic!("parse rendered script: {e}\n{text}"));
        prop_assert_eq!(script, reparsed);
    }

    /// Whole traces round-trip at the label level (line numbers are
    /// regenerated by the parser).
    #[test]
    fn trace_round_trips(trace in trace_strategy()) {
        let text = render_trace(&trace);
        let reparsed = parse_trace(&text)
            .unwrap_or_else(|e| panic!("parse rendered trace: {e}\n{text}"));
        let expected: Vec<_> = trace.labels().cloned().collect();
        let actual: Vec<_> = reparsed.labels().cloned().collect();
        prop_assert_eq!(expected, actual);
    }
}

// --- the generated corpus -------------------------------------------------

/// Every script of the quick suite round-trips byte-exactly at the
/// structural level.
#[test]
fn quick_suite_corpus_round_trips() {
    let suite = sibylfs_testgen::generate_suite(sibylfs_testgen::SuiteOptions::quick());
    assert!(suite.len() > 500, "corpus unexpectedly small: {}", suite.len());
    for script in &suite {
        let text = render_script(script);
        let reparsed = parse_script(&text)
            .unwrap_or_else(|e| panic!("{}: parse rendered script: {e}", script.name));
        assert_eq!(script, &reparsed, "script {} does not round-trip", script.name);
        // Rendering is a pure function of the structure: a second render of
        // the reparsed script is byte-identical.
        assert_eq!(text, render_script(&reparsed), "{} renders unstably", script.name);
    }
}

/// Every trace the quick suite produces (on a well-behaved and on a
/// defective configuration) round-trips.
#[test]
fn executed_trace_corpus_round_trips() {
    let suite = sibylfs_testgen::generate_suite(sibylfs_testgen::SuiteOptions::quick());
    for config in ["linux/tmpfs", "linux/sshfs-tmpfs"] {
        let profile = sibylfs_fsimpl::configs::by_name(config).unwrap();
        for script in &suite {
            let trace = sibylfs_exec::execute_script(
                &profile,
                script,
                sibylfs_exec::ExecOptions::default(),
            );
            let text = render_trace(&trace);
            let reparsed = parse_trace(&text)
                .unwrap_or_else(|e| panic!("{config}/{}: parse rendered trace: {e}", script.name));
            let expected: Vec<_> = trace.labels().cloned().collect();
            let actual: Vec<_> = reparsed.labels().cloned().collect();
            assert_eq!(expected, actual, "trace of {} on {config} does not round-trip", script.name);
        }
    }
}
