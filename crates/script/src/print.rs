//! Printer for the script and trace text formats.
//!
//! Commands and return values print via their `Display` implementations in
//! `sibylfs-core`; this module adds the file-level framing (`@type` headers,
//! `# Test` names, process prefixes and directives, line numbers).

use std::fmt::Write as _;

use sibylfs_core::commands::OsLabel;
use sibylfs_core::types::INITIAL_PID;

use crate::{Script, ScriptStep, Trace};

/// Render a script to its text form.
pub fn render_script(script: &Script) -> String {
    let mut out = String::new();
    out.push_str("@type script\n");
    if !script.name.is_empty() {
        let _ = writeln!(out, "# Test {}", script.name);
    }
    for step in &script.steps {
        match step {
            ScriptStep::Call { pid, cmd } => {
                if *pid == INITIAL_PID {
                    let _ = writeln!(out, "{cmd}");
                } else {
                    let _ = writeln!(out, "[p{}] {cmd}", pid.0);
                }
            }
            ScriptStep::CreateProcess { pid, uid, gid } => {
                let _ = writeln!(out, "@process create {} {} {}", pid.0, uid.0, gid.0);
            }
            ScriptStep::DestroyProcess { pid } => {
                let _ = writeln!(out, "@process destroy {}", pid.0);
            }
        }
    }
    out
}

/// Render a trace to its text form. Call lines are numbered by their position
/// in the trace (as in Fig. 3 of the paper); return values follow on the next
/// line.
pub fn render_trace(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("@type trace\n");
    if !trace.name.is_empty() {
        let _ = writeln!(out, "# Test {}", trace.name);
    }
    for step in &trace.steps {
        match &step.label {
            OsLabel::Call(pid, cmd) => {
                if *pid == INITIAL_PID {
                    let _ = writeln!(out, "{}: {cmd}", step.lineno);
                } else {
                    let _ = writeln!(out, "{}: [p{}] {cmd}", step.lineno, pid.0);
                }
            }
            OsLabel::Return(_, ret) => {
                let _ = writeln!(out, "{ret}");
            }
            OsLabel::Create(pid, uid, gid) => {
                let _ = writeln!(out, "@process create {} {} {}", pid.0, uid.0, gid.0);
            }
            OsLabel::Destroy(pid) => {
                let _ = writeln!(out, "@process destroy {}", pid.0);
            }
            OsLabel::Tau => {
                // τ events are internal and never appear in recorded traces.
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_script, parse_trace};
    use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue};
    use sibylfs_core::errno::Errno;
    use sibylfs_core::flags::{FileMode, OpenFlags};
    use sibylfs_core::types::{Gid, Pid, Uid};

    #[test]
    fn script_render_parse_round_trip() {
        let mut s = Script::new("rename___case_1", "rename");
        s.call(OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777)))
            .call(OsCommand::Open(
                "nonemptydir/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o666)),
            ))
            .create_process(Pid(2), Uid(1000), Gid(1000))
            .call_as(Pid(2), OsCommand::Rename("emptydir".into(), "nonemptydir".into()))
            .destroy_process(Pid(2));
        let text = render_script(&s);
        let parsed = parse_script(&text).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn trace_render_parse_round_trip() {
        let mut t = Trace::new("open___case", "open");
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Open("f".into(), OpenFlags::O_CREAT, Some(FileMode::new(0o644))),
            ErrorOrValue::Value(RetValue::Fd(sibylfs_core::types::Fd(3))),
        );
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Write(sibylfs_core::types::Fd(3), b"hello".to_vec()),
            ErrorOrValue::Value(RetValue::Num(5)),
        );
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Rmdir("f".into()),
            ErrorOrValue::Error(Errno::ENOTDIR),
        );
        let text = render_trace(&t);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.call_count(), 3);
        assert_eq!(parsed.name, t.name);
        // Labels survive the round trip (line numbers are regenerated).
        let expected: Vec<_> = t.labels().cloned().collect();
        let actual: Vec<_> = parsed.labels().cloned().collect();
        assert_eq!(expected, actual);
    }

    #[test]
    fn rendered_script_matches_paper_style() {
        let mut s = Script::new("rename___rename_emptydir___nonemptydir", "rename");
        s.call(OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777)));
        let text = render_script(&s);
        assert!(text.starts_with("@type script\n# Test rename___rename_emptydir___nonemptydir\n"));
        assert!(text.contains("mkdir \"emptydir\" 0o777"));
    }
}
