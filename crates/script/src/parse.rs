//! Parser for the script and trace text formats.
//!
//! The grammar is exactly what [`crate::print`] produces, so parsing and
//! printing round-trip; the property tests in the workspace `tests/`
//! directory exercise this.

use std::fmt;
use std::str::FromStr;

use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue, Stat};
use sibylfs_core::errno::Errno;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{DirHandleId, Fd, FileKind, Gid, Pid, Uid, INITIAL_PID};

use crate::{Script, ScriptStep, Trace};

/// A parse error, with the (1-based) line and column at which it occurred.
///
/// The span locates the error in the file the user actually wrote (comments,
/// blank lines and `[pN]` prefixes included), so diagnostics tools — and
/// remote clients of the trace-checking server, who only ever see this
/// structure — can anchor the error without re-parsing. Render through
/// `sibylfs_check::render::render_parse_error` for the Fig. 4 diagnostic
/// shape shared with lint findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line number of the offending line.
    pub line: usize,
    /// 1-based column within that line where the offending token starts.
    /// Column 1 for errors that concern the whole line (e.g. a malformed
    /// directive or a missing header).
    pub col: usize,
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> ParseError {
        ParseError { line, col: 1, message: message.into() }
    }

    fn new_at(line: usize, col: usize, message: impl Into<String>) -> ParseError {
        ParseError { line, col, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A cursor over a single line.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
    /// 0-based offset of `s` within the raw source line (the `[pN]` prefix,
    /// leading whitespace and trace line-number tag stripped by the caller),
    /// so error columns point into the line as written.
    col_base: usize,
}

impl<'a> Cursor<'a> {
    fn with_col_base(s: &'a str, line: usize, col_base: usize) -> Cursor<'a> {
        Cursor { s, pos: 0, line, col_base }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    /// The 1-based source column of the current position.
    fn col(&self) -> usize {
        self.col_base + self.pos + 1
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new_at(self.line, self.col(), msg)
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') || self.rest().starts_with('\t') {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?} at {:?}", self.rest())))
        }
    }

    /// A bare word: letters, digits, `_`, `-`.
    fn word(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.s.as_bytes();
        while self.pos < self.s.len() {
            let c = bytes[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.err(format!("expected a word at {:?}", self.rest())))
        } else {
            Ok(&self.s[start..self.pos])
        }
    }

    /// A signed decimal integer.
    fn int(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.s.as_bytes();
        if self.pos < self.s.len() && (bytes[self.pos] == b'-' || bytes[self.pos] == b'+') {
            self.pos += 1;
        }
        while self.pos < self.s.len() && bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.s[start..self.pos]
            .parse::<i64>()
            .map_err(|_| {
                ParseError::new_at(
                    self.line,
                    self.col_base + start + 1,
                    format!("expected an integer at {:?}", &self.s[start..]),
                )
            })
    }

    /// A decimal integer constrained to the argument's actual domain.
    ///
    /// The script grammar writes every numeric argument as a plain signed
    /// decimal, but most arguments are unsigned (uid/gid, counts, sizes) or
    /// narrower than `i64` (fd/dh numbers). A bare `as` cast here would
    /// silently wrap — `read fd -1` becoming a ~2^64-byte count — so
    /// out-of-domain values are a positioned [`ParseError`] instead.
    fn int_as<T: TryFrom<i64>>(&mut self, what: &str) -> Result<T, ParseError> {
        self.skip_ws();
        let col = self.col();
        let n = self.int()?;
        T::try_from(n).map_err(|_| {
            ParseError::new_at(self.line, col, format!("{what} out of range: {n}"))
        })
    }

    /// An octal mode, `0o777` or plain octal digits.
    fn mode(&mut self) -> Result<FileMode, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.s.as_bytes();
        if self.rest().starts_with("0o") {
            self.pos += 2;
        }
        while self.pos < self.s.len() && (b'0'..=b'7').contains(&bytes[self.pos]) {
            self.pos += 1;
        }
        let text = &self.s[start..self.pos];
        text.parse::<FileMode>().map_err(|_| self.err(format!("expected an octal mode, got {text:?}")))
    }

    /// A double-quoted string with `\"`, `\\`, `\n`, `\t`, `\r`, `\0` escapes.
    fn quoted(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if !self.rest().starts_with('"') {
            return Err(self.err(format!("expected a quoted string at {:?}", self.rest())));
        }
        self.pos += 1;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return Err(self.err("unterminated escape"));
                    };
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        '0' => out.push('\0'),
                        'u' => {
                            // Rust-style \u{XX} escape produced by {:?}.
                            let rest = &self.rest()[i + 2..];
                            let Some(close) = rest.find('}') else {
                                return Err(self.err("bad unicode escape"));
                            };
                            let hex = &rest[1..close];
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad unicode escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            // Consume "{…}" — `close` characters of braced
                            // payload plus the closing brace itself.
                            for _ in 0..=close {
                                chars.next();
                            }
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{other}")));
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    /// A `(FD n)` form.
    fn fd(&mut self) -> Result<Fd, ParseError> {
        self.expect("(FD")?;
        let n = self.int_as::<i32>("file descriptor")?;
        self.expect(")")?;
        Ok(Fd(n))
    }

    /// A `(DH n)` form.
    fn dh(&mut self) -> Result<DirHandleId, ParseError> {
        self.expect("(DH")?;
        let n = self.int_as::<i32>("directory handle")?;
        self.expect(")")?;
        Ok(DirHandleId(n))
    }

    /// A `[FLAG;FLAG;…]` list.
    fn flags(&mut self) -> Result<OpenFlags, ParseError> {
        self.expect("[")?;
        let mut flags = OpenFlags::empty();
        loop {
            let w = self.word()?;
            let f: OpenFlags =
                w.parse().map_err(|_| self.err(format!("unknown open flag {w:?}")))?;
            flags = flags | f;
            if self.eat(";") {
                continue;
            }
            self.expect("]")?;
            return Ok(flags);
        }
    }
}

/// Parse a single command line (without any process prefix).
pub fn parse_command(text: &str, line: usize) -> Result<OsCommand, ParseError> {
    parse_command_at(text, line, 0)
}

/// Parse a command line whose text starts `col_base` columns into the raw
/// source line (after a `[pN]` prefix or a trace call tag), so error columns
/// point into the line as written.
fn parse_command_at(text: &str, line: usize, col_base: usize) -> Result<OsCommand, ParseError> {
    let mut c = Cursor::with_col_base(text, line, col_base);
    let name = c.word()?.to_string();
    let cmd = match name.as_str() {
        "chdir" => OsCommand::Chdir(c.quoted()?.into()),
        "chmod" => OsCommand::Chmod(c.quoted()?.into(), c.mode()?),
        "chown" => {
            let p = c.quoted()?;
            let uid = c.int_as::<u32>("uid")?;
            let gid = c.int_as::<u32>("gid")?;
            OsCommand::Chown(p.into(), Uid(uid), Gid(gid))
        }
        "close" => OsCommand::Close(c.fd()?),
        "closedir" => OsCommand::Closedir(c.dh()?),
        "link" => OsCommand::Link(c.quoted()?.into(), c.quoted()?.into()),
        "lseek" => {
            let fd = c.fd()?;
            let off = c.int()?;
            let w = c.word()?;
            let whence: SeekWhence =
                w.parse().map_err(|_| c.err(format!("unknown whence {w:?}")))?;
            OsCommand::Lseek(fd, off, whence)
        }
        "lstat" => OsCommand::Lstat(c.quoted()?.into()),
        "mkdir" => OsCommand::Mkdir(c.quoted()?.into(), c.mode()?),
        "open" => {
            let p = c.quoted()?;
            let flags = c.flags()?;
            let mode = if c.at_end() { None } else { Some(c.mode()?) };
            OsCommand::Open(p.into(), flags, mode)
        }
        "opendir" => OsCommand::Opendir(c.quoted()?.into()),
        "pread" => {
            let fd = c.fd()?;
            let count = c.int_as::<usize>("count")?;
            let off = c.int()?;
            OsCommand::Pread(fd, count, off)
        }
        "pwrite" => {
            let fd = c.fd()?;
            let data = c.quoted()?.into_bytes();
            let off = c.int()?;
            OsCommand::Pwrite(fd, data, off)
        }
        "read" => OsCommand::Read(c.fd()?, c.int_as::<usize>("count")?),
        "readdir" => OsCommand::Readdir(c.dh()?),
        "readlink" => OsCommand::Readlink(c.quoted()?.into()),
        "rename" => OsCommand::Rename(c.quoted()?.into(), c.quoted()?.into()),
        "rewinddir" => OsCommand::Rewinddir(c.dh()?),
        "rmdir" => OsCommand::Rmdir(c.quoted()?.into()),
        "stat" => OsCommand::Stat(c.quoted()?.into()),
        "symlink" => OsCommand::Symlink(c.quoted()?.into(), c.quoted()?.into()),
        "truncate" => OsCommand::Truncate(c.quoted()?.into(), c.int()?),
        "umask" => OsCommand::Umask(c.mode()?),
        "unlink" => OsCommand::Unlink(c.quoted()?.into()),
        "write" => OsCommand::Write(c.fd()?, c.quoted()?.into_bytes()),
        "add_user_to_group" => {
            let uid = c.int_as::<u32>("uid")?;
            let gid = c.int_as::<u32>("gid")?;
            OsCommand::AddUserToGroup(Uid(uid), Gid(gid))
        }
        other => return Err(c.err(format!("unknown command {other:?}"))),
    };
    if !c.at_end() {
        return Err(c.err(format!("trailing input: {:?}", c.rest())));
    }
    Ok(cmd)
}

/// Parse a return-value line: an errno name or an `RV_*` form.
pub fn parse_return(text: &str, line: usize) -> Result<ErrorOrValue, ParseError> {
    parse_return_at(text, line, 0)
}

/// Like [`parse_return`] but with the column offset of `text` within the raw
/// source line, so error columns point into the line as written.
fn parse_return_at(text: &str, line: usize, col_base: usize) -> Result<ErrorOrValue, ParseError> {
    let trimmed = text.trim_start();
    let col_base = col_base + (text.len() - trimmed.len());
    let trimmed = trimmed.trim_end();
    if let Ok(e) = Errno::from_str(trimmed) {
        return Ok(ErrorOrValue::Error(e));
    }
    let mut c = Cursor::with_col_base(trimmed, line, col_base);
    let head = c.word()?;
    let value = match head {
        "RV_none" => RetValue::None,
        "RV_num" => {
            c.expect("(")?;
            let n = c.int()?;
            c.expect(")")?;
            RetValue::Num(n)
        }
        "RV_fd" => {
            c.expect("(")?;
            let n = c.int_as::<i32>("file descriptor")?;
            c.expect(")")?;
            RetValue::Fd(Fd(n))
        }
        "RV_dh" => {
            c.expect("(")?;
            let n = c.int_as::<i32>("directory handle")?;
            c.expect(")")?;
            RetValue::DirHandle(DirHandleId(n))
        }
        "RV_bytes" => {
            c.expect("(")?;
            let s = c.quoted()?;
            c.expect(")")?;
            RetValue::Bytes(s.into_bytes())
        }
        "RV_path" => {
            c.expect("(")?;
            let s = c.quoted()?;
            c.expect(")")?;
            RetValue::Path(s)
        }
        "RV_readdir" => {
            c.expect("(")?;
            let s = c.quoted()?;
            c.expect(")")?;
            RetValue::ReaddirEntry(Some(s))
        }
        "RV_readdir_end" => RetValue::ReaddirEntry(None),
        "RV_stat" => {
            c.expect("{")?;
            c.expect("kind=")?;
            let kind_word = c.word()?;
            let kind = match kind_word {
                "FILE" => FileKind::Regular,
                "DIR" => FileKind::Directory,
                "SYMLINK" => FileKind::Symlink,
                other => return Err(c.err(format!("unknown file kind {other:?}"))),
            };
            c.expect(";")?;
            c.expect("size=")?;
            let size = c.int_as::<u64>("size")?;
            c.expect(";")?;
            c.expect("nlink=")?;
            let nlink = c.int_as::<u32>("nlink")?;
            c.expect(";")?;
            c.expect("mode=")?;
            let mode = c.mode()?;
            c.expect(";")?;
            c.expect("uid=")?;
            let uid = c.int_as::<u32>("uid")?;
            c.expect(";")?;
            c.expect("gid=")?;
            let gid = c.int_as::<u32>("gid")?;
            c.expect("}")?;
            RetValue::Stat(Box::new(Stat { kind, size, nlink, mode, uid: Uid(uid), gid: Gid(gid) }))
        }
        other => return Err(c.err(format!("unknown return value {other:?}"))),
    };
    if !c.at_end() {
        return Err(c.err(format!("trailing input: {:?}", c.rest())));
    }
    Ok(ErrorOrValue::Value(value))
}

/// Parse an optional `[pN]` process prefix; returns the pid and the rest of
/// the line.
fn parse_pid_prefix(text: &str) -> (Pid, &str) {
    let t = text.trim_start();
    if let Some(rest) = t.strip_prefix("[p") {
        if let Some(end) = rest.find(']') {
            if let Ok(n) = rest[..end].parse::<u32>() {
                return (Pid(n), rest[end + 1..].trim_start());
            }
        }
    }
    (INITIAL_PID, t)
}

fn parse_process_directive(text: &str, line: usize) -> Result<Option<ScriptStep>, ParseError> {
    let Some(rest) = text.trim().strip_prefix("@process ") else {
        return Ok(None);
    };
    let parts: Vec<&str> = rest.split_whitespace().collect();
    match parts.as_slice() {
        ["create", pid, uid, gid] => {
            let parse =
                |s: &str| s.parse::<u32>().map_err(|_| ParseError::new(line, "bad number"));
            Ok(Some(ScriptStep::CreateProcess {
                pid: Pid(parse(pid)?),
                uid: Uid(parse(uid)?),
                gid: Gid(parse(gid)?),
            }))
        }
        ["destroy", pid] => {
            let pid = pid.parse::<u32>().map_err(|_| ParseError::new(line, "bad pid"))?;
            Ok(Some(ScriptStep::DestroyProcess { pid: Pid(pid) }))
        }
        _ => Err(ParseError::new(line, format!("bad @process directive: {rest:?}"))),
    }
}

/// Parse a complete script file.
pub fn parse_script(text: &str) -> Result<Script, ParseError> {
    parse_script_spanned(text).map(|(script, _)| script)
}

/// Parse a complete script file, also returning the 1-based source line of
/// each step (parallel to `script.steps`). Diagnostics tools use the spans
/// to anchor findings to the file the user actually wrote, where comments
/// and blank lines shift steps away from `step index + 1`.
pub fn parse_script_spanned(text: &str) -> Result<(Script, Vec<usize>), ParseError> {
    let mut script = Script::default();
    let mut linenos = Vec::new();
    let mut seen_type = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("@type") {
            let kind = rest.trim();
            if kind != "script" {
                return Err(ParseError::new(lineno, format!("expected '@type script', got {kind:?}")));
            }
            seen_type = true;
            continue;
        }
        if let Some(step) = parse_process_directive(line, lineno)? {
            script.steps.push(step);
            linenos.push(lineno);
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if let Some(name) = comment.strip_prefix("Test ") {
                script.name = name.trim().to_string();
                if script.group.is_empty() {
                    script.group =
                        script.name.split("___").next().unwrap_or("misc").to_string();
                }
            }
            continue;
        }
        let leading = raw.len() - raw.trim_start().len();
        let (pid, rest) = parse_pid_prefix(line);
        let cmd = parse_command_at(rest, lineno, leading + (line.len() - rest.len()))?;
        script.steps.push(ScriptStep::Call { pid, cmd });
        linenos.push(lineno);
    }
    if !seen_type {
        return Err(ParseError::new(1, "missing '@type script' header"));
    }
    Ok((script, linenos))
}

/// Parse a complete trace file.
pub fn parse_trace(text: &str) -> Result<Trace, ParseError> {
    let mut trace = Trace::default();
    let mut seen_type = false;
    let mut pending_call: Option<Pid> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("@type") {
            let kind = rest.trim();
            if kind != "trace" {
                return Err(ParseError::new(lineno, format!("expected '@type trace', got {kind:?}")));
            }
            seen_type = true;
            continue;
        }
        if let Some(step) = parse_process_directive(line, lineno)? {
            match step {
                ScriptStep::CreateProcess { pid, uid, gid } => {
                    trace.push_label(sibylfs_core::commands::OsLabel::Create(pid, uid, gid));
                }
                ScriptStep::DestroyProcess { pid } => {
                    trace.push_label(sibylfs_core::commands::OsLabel::Destroy(pid));
                }
                ScriptStep::Call { .. } => unreachable!("directives never produce calls"),
            }
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if let Some(name) = comment.strip_prefix("Test ") {
                trace.name = name.trim().to_string();
                if trace.group.is_empty() {
                    trace.group = trace.name.split("___").next().unwrap_or("misc").to_string();
                }
            }
            continue;
        }
        let leading = raw.len() - raw.trim_start().len();
        // A call line starts with "<n>:"; a return line is anything else.
        if let Some(colon) = line.find(':') {
            if line[..colon].chars().all(|ch| ch.is_ascii_digit()) && !line[..colon].is_empty() {
                let rest = &line[colon + 1..];
                let (pid, rest) = parse_pid_prefix(rest);
                let cmd = parse_command_at(rest, lineno, leading + (line.len() - rest.len()))?;
                trace.push_label(sibylfs_core::commands::OsLabel::Call(pid, cmd));
                pending_call = Some(pid);
                continue;
            }
        }
        // Return line.
        let pid = pending_call.take().ok_or_else(|| {
            ParseError::new(lineno, "return value without a preceding call")
        })?;
        let ret = parse_return_at(line, lineno, leading)?;
        trace.push_label(sibylfs_core::commands::OsLabel::Return(pid, ret));
    }
    if !seen_type {
        return Err(ParseError::new(1, "missing '@type trace' header"));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_rename_script() {
        let text = r#"@type script
# Test rename___rename_emptydir___nonemptydir
mkdir "emptydir" 0o777
mkdir "nonemptydir" 0o777
open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
rename "emptydir" "nonemptydir"
"#;
        let s = parse_script(text).unwrap();
        assert_eq!(s.name, "rename___rename_emptydir___nonemptydir");
        assert_eq!(s.group, "rename");
        assert_eq!(s.call_count(), 4);
        match &s.steps[2] {
            ScriptStep::Call { cmd: OsCommand::Open(p, flags, Some(mode)), .. } => {
                assert_eq!(p, "nonemptydir/f");
                assert!(flags.contains(OpenFlags::O_CREAT));
                assert!(flags.contains(OpenFlags::O_WRONLY));
                assert_eq!(*mode, FileMode::new(0o666));
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn parse_trace_with_error_and_value_returns() {
        let text = r#"@type trace
# Test rename___x
1: mkdir "emptydir" 0o777
RV_none
3: rename "emptydir" "nonemptydir"
EPERM
"#;
        let t = parse_trace(text).unwrap();
        assert_eq!(t.call_count(), 2);
        assert_eq!(t.steps.len(), 4);
        match &t.steps[3].label {
            sibylfs_core::commands::OsLabel::Return(_, ErrorOrValue::Error(e)) => {
                assert_eq!(*e, Errno::EPERM)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_every_command_form() {
        let lines = [
            r#"chdir "/d""#,
            r#"chmod "/f" 0o644"#,
            r#"chown "/f" 1000 1000"#,
            "close (FD 3)",
            "closedir (DH 1)",
            r#"link "/a" "/b""#,
            "lseek (FD 3) -10 SEEK_END",
            r#"lstat "/f""#,
            r#"mkdir "/d" 0o777"#,
            r#"open "/f" [O_CREAT;O_RDWR] 0o644"#,
            r#"open "/f" [O_RDONLY]"#,
            r#"opendir "/d""#,
            "pread (FD 3) 100 5",
            r#"pwrite (FD 3) "data" 5"#,
            "read (FD 3) 100",
            "readdir (DH 1)",
            r#"readlink "/s""#,
            r#"rename "/a" "/b""#,
            "rewinddir (DH 1)",
            r#"rmdir "/d""#,
            r#"stat "/f""#,
            r#"symlink "target" "/s""#,
            r#"truncate "/f" 100"#,
            "umask 0o22",
            r#"unlink "/f""#,
            r#"write (FD 3) "hello\nworld""#,
            "add_user_to_group 1000 500",
        ];
        for l in lines {
            let cmd = parse_command(l, 1).unwrap_or_else(|e| panic!("failed on {l:?}: {e}"));
            // Round trip through Display and back.
            let printed = cmd.to_string();
            let reparsed = parse_command(&printed, 1)
                .unwrap_or_else(|e| panic!("round trip failed on {printed:?}: {e}"));
            assert_eq!(cmd, reparsed, "round trip mismatch for {l:?}");
        }
    }

    #[test]
    fn parse_return_values() {
        for (text, expect_err) in [
            ("RV_none", false),
            ("RV_num(42)", false),
            ("RV_num(-1)", false),
            ("RV_fd(3)", false),
            ("RV_dh(1)", false),
            (r#"RV_bytes("abc")"#, false),
            (r#"RV_path("/x")"#, false),
            (r#"RV_readdir("f")"#, false),
            ("RV_readdir_end", false),
            ("ENOENT", false),
            ("EWHATEVER", true),
            ("RV_gibberish", true),
        ] {
            let r = parse_return(text, 1);
            assert_eq!(r.is_err(), expect_err, "case {text:?}: {r:?}");
        }
        let stat = parse_return(
            "RV_stat {kind=DIR; size=0; nlink=2; mode=0o755; uid=0; gid=0}",
            1,
        )
        .unwrap();
        match stat {
            ErrorOrValue::Value(RetValue::Stat(s)) => {
                assert_eq!(s.kind, FileKind::Directory);
                assert_eq!(s.nlink, 2);
                assert_eq!(s.mode, FileMode::new(0o755));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "@type script\nmkdir \"/d\" 0o777\nbogus \"/x\"\n";
        let err = parse_script(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn multiprocess_script_round_trip() {
        let text = r#"@type script
# Test permissions___multiproc
add_user_to_group 1000 1000
@process create 2 1000 1000
[p2] mkdir "/d" 0o700
[p2] stat "/d"
@process destroy 2
"#;
        let s = parse_script(text).unwrap();
        assert_eq!(s.steps.len(), 5);
        assert!(matches!(s.steps[1], ScriptStep::CreateProcess { pid: Pid(2), .. }));
        assert!(matches!(
            s.steps[2],
            ScriptStep::Call { pid: Pid(2), cmd: OsCommand::Mkdir(..) }
        ));
        assert!(matches!(s.steps[4], ScriptStep::DestroyProcess { pid: Pid(2) }));
    }

    #[test]
    fn spanned_parse_tracks_source_lines() {
        let text = "@type script\n# Test t\n\nmkdir \"/d\" 0o777\n\n# comment\nstat \"/d\"\n@process destroy 1\n";
        let (s, spans) = parse_script_spanned(text).unwrap();
        assert_eq!(s.steps.len(), 3);
        assert_eq!(spans, vec![4, 7, 8]);
    }

    #[test]
    fn missing_header_is_rejected() {
        assert!(parse_script("mkdir \"/d\" 0o777\n").is_err());
        assert!(parse_trace("1: mkdir \"/d\" 0o777\nRV_none\n").is_err());
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        // Each of these used to truncate silently through a bare `as` cast.
        for (text, what) in [
            ("read (FD 3) -1", "count"),
            ("pread (FD 3) -1 0", "count"),
            (r#"chown "/f" -1 0"#, "uid"),
            (r#"chown "/f" 0 -1"#, "gid"),
            (r#"chown "/f" 4294967296 0"#, "uid"),
            ("close (FD 4294967296)", "file descriptor"),
            ("closedir (DH -4294967296)", "directory handle"),
            ("add_user_to_group -1 0", "uid"),
            ("add_user_to_group 0 99999999999", "gid"),
        ] {
            let err = parse_command(text, 1)
                .expect_err(&format!("{text:?} should be out of range"));
            assert!(
                err.message.contains("out of range") && err.message.contains(what),
                "case {text:?}: {err}"
            );
        }
        for (text, what) in [
            ("RV_fd(4294967296)", "file descriptor"),
            ("RV_dh(-4294967296)", "directory handle"),
            ("RV_stat {kind=FILE; size=-1; nlink=1; mode=0o644; uid=0; gid=0}", "size"),
            ("RV_stat {kind=FILE; size=0; nlink=-1; mode=0o644; uid=0; gid=0}", "nlink"),
            ("RV_stat {kind=FILE; size=0; nlink=1; mode=0o644; uid=-1; gid=0}", "uid"),
            ("RV_stat {kind=FILE; size=0; nlink=1; mode=0o644; uid=0; gid=-1}", "gid"),
        ] {
            let err = parse_return(text, 1)
                .expect_err(&format!("{text:?} should be out of range"));
            assert!(
                err.message.contains("out of range") && err.message.contains(what),
                "case {text:?}: {err}"
            );
        }
        // In-range extremes still parse.
        assert!(parse_command("read (FD 3) 0", 1).is_ok());
        assert!(parse_command(r#"chown "/f" 4294967295 0"#, 1).is_ok());
        assert!(parse_command("lseek (FD 3) -10 SEEK_END", 1).is_ok(), "signed offsets stay legal");
        assert!(parse_return("RV_fd(-1)", 1).is_ok(), "RV_fd(-1) is a legal sentinel");
    }

    #[test]
    fn errors_carry_columns() {
        // Column points at the offending token in the raw source line,
        // counting the `[pN]` prefix and leading indentation.
        let text = "@type script\n# Test t\n[p2] chown \"/f\" -5 0\n";
        let err = parse_script(text).unwrap_err();
        assert_eq!(err.line, 3);
        let raw_line = text.lines().nth(2).unwrap();
        assert_eq!(&raw_line[err.col - 1..err.col + 1], "-5", "col {} in {raw_line:?}", err.col);
        assert!(err.to_string().starts_with("line 3:"), "{err}");

        // Same through the trace parser, with the call-tag prefix.
        let trace = "@type trace\n# Test t\n1: read (FD 3) -1\nRV_none\n";
        let err = parse_trace(trace).unwrap_err();
        assert_eq!(err.line, 3);
        let raw_line = trace.lines().nth(2).unwrap();
        assert_eq!(&raw_line[err.col - 1..err.col + 1], "-1", "col {} in {raw_line:?}", err.col);

        // Return lines too.
        let trace = "@type trace\n# Test t\n1: stat \"/f\"\n  RV_stat {kind=FILE; size=-1; nlink=1; mode=0o644; uid=0; gid=0}\n";
        let err = parse_trace(trace).unwrap_err();
        assert_eq!(err.line, 4);
        let raw_line = trace.lines().nth(3).unwrap();
        assert_eq!(&raw_line[err.col - 1..err.col + 1], "-1", "col {} in {raw_line:?}", err.col);
    }
}
