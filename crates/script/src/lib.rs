//! # SibylFS script and trace formats
//!
//! Test scripts drive the file system under test; traces record what the
//! system actually did; checked traces record the oracle's verdict (Figs. 2–4
//! of the paper). This crate defines the in-memory representations of scripts
//! and traces and a concrete text syntax with a parser and printer.
//!
//! The text syntax follows the paper's examples:
//!
//! ```text
//! @type script
//! # Test rename___rename_emptydir___nonemptydir
//! mkdir "emptydir" 0o777
//! mkdir "nonemptydir" 0o777
//! open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
//! rename "emptydir" "nonemptydir"
//! ```
//!
//! and for traces every call line is followed by the observed return value
//! (`RV_none`, `RV_num(3)`, an errno name, …). Multi-process scripts prefix
//! lines with `[p2]` and use `@process create`/`@process destroy` directives.

pub mod parse;
pub mod print;

use serde::{Deserialize, Serialize};

use sibylfs_core::commands::{ErrorOrValue, OsCommand, OsLabel};
use sibylfs_core::types::{Gid, Pid, Uid, INITIAL_PID};

pub use parse::{parse_script, parse_script_spanned, parse_trace, ParseError};
pub use print::{render_script, render_trace};

/// One step of a test script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScriptStep {
    /// A libc call made by a process.
    Call {
        /// The calling process.
        pid: Pid,
        /// The command and its arguments.
        cmd: OsCommand,
    },
    /// Create a new process with the given credentials.
    CreateProcess {
        /// The new process id.
        pid: Pid,
        /// The user the process runs as.
        uid: Uid,
        /// The group the process runs as.
        gid: Gid,
    },
    /// Destroy a process.
    DestroyProcess {
        /// The process to destroy.
        pid: Pid,
    },
}

/// A test script: a named sequence of steps, executed against an initially
/// empty file system by a default process (`p1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Script {
    /// The script name (from the `# Test <name>` header comment).
    pub name: String,
    /// The libc function group this script belongs to (e.g. `"rename"`),
    /// used to organise suites; derived from the name when omitted.
    pub group: String,
    /// The steps, in order.
    pub steps: Vec<ScriptStep>,
}

impl Script {
    /// Create an empty script with the given name and group.
    pub fn new(name: impl Into<String>, group: impl Into<String>) -> Script {
        Script { name: name.into(), group: group.into(), steps: Vec::new() }
    }

    /// Append a call by the default process.
    pub fn call(&mut self, cmd: OsCommand) -> &mut Self {
        self.steps.push(ScriptStep::Call { pid: INITIAL_PID, cmd });
        self
    }

    /// Append a call by a specific process.
    pub fn call_as(&mut self, pid: Pid, cmd: OsCommand) -> &mut Self {
        self.steps.push(ScriptStep::Call { pid, cmd });
        self
    }

    /// Append a process-creation step.
    pub fn create_process(&mut self, pid: Pid, uid: Uid, gid: Gid) -> &mut Self {
        self.steps.push(ScriptStep::CreateProcess { pid, uid, gid });
        self
    }

    /// Append a process-destruction step.
    pub fn destroy_process(&mut self, pid: Pid) -> &mut Self {
        self.steps.push(ScriptStep::DestroyProcess { pid });
        self
    }

    /// The number of libc calls in the script.
    pub fn call_count(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, ScriptStep::Call { .. })).count()
    }
}

/// One event of a recorded trace, tagged with the line number of the call in
/// the trace file (used in diagnostics, as in Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// The line number of this step in the rendered trace.
    pub lineno: usize,
    /// The observed label.
    pub label: OsLabel,
}

/// A recorded trace: the interleaving of calls and observed return values
/// produced by executing a script against a real (or simulated) file system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// The originating script name.
    pub name: String,
    /// The libc function group of the originating script.
    pub group: String,
    /// The recorded events in order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Create an empty trace for the given script name/group.
    pub fn new(name: impl Into<String>, group: impl Into<String>) -> Trace {
        Trace { name: name.into(), group: group.into(), steps: Vec::new() }
    }

    /// Append a call/return pair observed for `pid`.
    pub fn push_call_return(&mut self, pid: Pid, cmd: OsCommand, ret: ErrorOrValue) {
        let lineno = self.steps.len() + 1;
        self.steps.push(TraceStep { lineno, label: OsLabel::Call(pid, cmd) });
        let lineno = self.steps.len() + 1;
        self.steps.push(TraceStep { lineno, label: OsLabel::Return(pid, ret) });
    }

    /// Append a process lifecycle label.
    pub fn push_label(&mut self, label: OsLabel) {
        let lineno = self.steps.len() + 1;
        self.steps.push(TraceStep { lineno, label });
    }

    /// The labels of the trace in order (without line numbers).
    pub fn labels(&self) -> impl Iterator<Item = &OsLabel> {
        self.steps.iter().map(|s| &s.label)
    }

    /// The number of call labels (i.e. libc invocations) in the trace.
    pub fn call_count(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s.label, OsLabel::Call(..))).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::RetValue;
    use sibylfs_core::flags::FileMode;

    #[test]
    fn script_builder_counts_calls() {
        let mut s = Script::new("t", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), FileMode::new(0o777)))
            .create_process(Pid(2), Uid(1000), Gid(1000))
            .call_as(Pid(2), OsCommand::Stat("/d".into()))
            .destroy_process(Pid(2));
        assert_eq!(s.call_count(), 2);
        assert_eq!(s.steps.len(), 4);
    }

    #[test]
    fn trace_records_call_return_pairs() {
        let mut t = Trace::new("t", "mkdir");
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Mkdir("/d".into(), FileMode::new(0o777)),
            ErrorOrValue::Value(RetValue::None),
        );
        assert_eq!(t.steps.len(), 2);
        assert_eq!(t.call_count(), 1);
        assert_eq!(t.steps[0].lineno, 1);
        assert_eq!(t.steps[1].lineno, 2);
    }
}
