//! End-to-end and robustness tests for the oracle server: a live server, real
//! TCP sessions, hostile framing, and the interner budget. These are the
//! "long-lived process" guarantees the batch CLI never had to make.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sibylfs_check::{check_trace, render_checked_trace, CheckOptions};
use sibylfs_exec::{execute_script, ExecOptions};
use sibylfs_fsimpl::configs;
use sibylfs_script::{parse_trace, render_trace};
use sibylfs_serve::protocol::{
    encode_request, parse_spec_config, read_frame, write_frame, Request, MAX_FRAME_LEN,
};
use sibylfs_serve::{start, BlockingClient, Response, ServeOptions};
use sibylfs_testgen::{loadgen_scripts, LoadgenOptions};

fn corpus(n: usize) -> Vec<String> {
    let profile = configs::by_name("linux/ext4").unwrap();
    loadgen_scripts(LoadgenOptions { scripts: n, ..Default::default() })
        .iter()
        .map(|s| render_trace(&execute_script(&profile, s, ExecOptions::default())))
        .collect()
}

fn wait_for_no_sessions(server: &sibylfs_serve::ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_sessions() > 0 {
        assert!(Instant::now() < deadline, "sessions leaked: {}", server.active_sessions());
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn verdicts_match_batch_checking_bit_for_bit() {
    let server = start(ServeOptions::default()).unwrap();
    let cfg = parse_spec_config("linux").unwrap();
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    for text in corpus(12) {
        let resp = client.check("linux", &text).unwrap();
        let Response::Verdict(remote) = resp else { panic!("expected verdict, got {resp:?}") };
        let local = render_checked_trace(&check_trace(
            &cfg,
            &parse_trace(&text).unwrap(),
            CheckOptions::default(),
        ));
        assert_eq!(remote, local);
        assert!(remote.contains("# Verdict: accepted"), "loadgen corpus must check cleanly");
    }
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let server = start(ServeOptions::default()).unwrap();
    let texts = corpus(8);
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    for t in &texts {
        client.send_check("linux", t).unwrap();
    }
    for t in &texts {
        let name_line = t.lines().nth(1).unwrap(); // "# Test <name>"
        let Response::Verdict(v) = client.recv().unwrap() else { panic!("expected verdict") };
        assert!(
            v.contains(name_line),
            "responses out of order: wanted {name_line:?} in:\n{v}"
        );
    }
}

#[test]
fn parse_errors_come_back_with_line_and_column() {
    let server = start(ServeOptions::default()).unwrap();
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    let bad = "@type trace\n# Test t\n1: read (FD 3) -1\nRV_none\n";
    let resp = client.check("linux", bad).unwrap();
    let Response::Error { line, col, message } = resp else {
        panic!("expected an error, got {resp:?}");
    };
    assert_eq!(line, 3);
    assert_eq!(col as usize, bad.lines().nth(2).unwrap().find("-1").unwrap() + 1);
    assert!(message.contains("count out of range"), "{message}");

    // The session survives the error and still checks the next trace.
    let good = corpus(1).remove(0);
    assert!(matches!(client.check("linux", &good).unwrap(), Response::Verdict(_)));
}

#[test]
fn bad_config_and_malformed_payloads_get_clean_errors() {
    let server = start(ServeOptions::default()).unwrap();
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();

    let resp = client.check("plan9", "@type trace\n").unwrap();
    assert!(matches!(resp, Response::Error { line: 0, col: 0, .. }), "got {resp:?}");

    // Hand-rolled garbage payload: unknown tag. Session answers and survives.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, &[0x7f, 1, 2, 3]).unwrap();
    let reply = read_frame(&mut raw).unwrap().unwrap();
    assert_eq!(reply[0], 0x82, "expected an error response");
    // Same connection still works for a real request afterwards.
    write_frame(&mut raw, &encode_request(&Request::Stats)).unwrap();
    let reply = read_frame(&mut raw).unwrap().unwrap();
    assert_eq!(reply[0], 0x83, "session must survive payload-level garbage");
}

#[test]
fn framing_attacks_drop_the_session_not_the_server() {
    let opts = ServeOptions { max_inflight_per_session: 4, ..Default::default() };
    let server = start(opts).unwrap();

    // Oversized length prefix.
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(&(MAX_FRAME_LEN + 1).to_be_bytes()).unwrap();
        raw.write_all(&[0u8; 16]).unwrap();
        let mut buf = Vec::new();
        let n = raw.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server must close without a response after frame desync");
    }
    // Truncated frame: promise 100 bytes, send 3, disconnect.
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        drop(raw);
    }
    // Mid-session disconnect with requests in flight.
    {
        let texts = corpus(4);
        let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
        for t in &texts {
            client.send_check("linux", t).unwrap();
        }
        drop(client);
    }

    wait_for_no_sessions(&server);

    // The server is still fully alive for a fresh client.
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    let good = corpus(1).remove(0);
    assert!(matches!(client.check("linux", &good).unwrap(), Response::Verdict(_)));
}

#[test]
fn oversized_names_are_rejected_at_the_boundary() {
    let opts = ServeOptions { max_name_len: 64, ..Default::default() };
    let server = start(opts).unwrap();
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    let big = "x".repeat(65);
    let text = format!("@type trace\n# Test t\n1: mkdir \"{big}\" 0o755\nRV_none\n");
    let resp = client.check("linux", &text).unwrap();
    let Response::Error { message, .. } = resp else { panic!("expected error, got {resp:?}") };
    assert!(message.contains("65 bytes exceeds the 64-byte limit"), "{message}");
}

#[test]
fn hostile_client_cannot_balloon_the_interner() {
    let opts = ServeOptions {
        max_name_len: 64,
        intern_budget_bytes: Some(4 << 10),
        ..Default::default()
    };
    let server = start(opts).unwrap();
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();

    // Stream unique path components until the budget trips. Each name is
    // under the per-name limit, so only the budget can stop the growth.
    let mut rejected = false;
    for i in 0..10_000 {
        let text = format!(
            "@type trace\n# Test hostile_{i}\n1: mkdir \"uniq_{i:05}_{}\" 0o755\nRV_none\n",
            "p".repeat(40)
        );
        match client.check("linux", &text).unwrap() {
            Response::Verdict(_) => {}
            Response::Error { message, .. } => {
                assert!(message.contains("interner budget"), "{message}");
                rejected = true;
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(rejected, "the interner budget never tripped after 10k unique names");

    // Stats still answer, and report the growth the attack caused.
    let stats = client.stats().unwrap();
    assert!(stats.contains("intern_growth_bytes="), "{stats}");
    let growth: usize = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("intern_growth_bytes="))
        .unwrap()
        .parse()
        .unwrap();
    // The budget bounds growth up to one in-flight request's worth of slack.
    assert!(growth < (4 << 10) + 4096, "growth {growth} not bounded by the budget");
}

#[test]
fn stats_line_reports_sessions_and_intern_state() {
    let server = start(ServeOptions::default()).unwrap();
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    let good = corpus(1).remove(0);
    client.check("linux", &good).unwrap();
    let stats = client.stats().unwrap();
    for key in [
        "sessions=",
        "sessions_total=",
        "checked=",
        "errors=",
        "queued=",
        "workers=",
        "intern_count=",
        "intern_bytes=",
        "intern_growth_bytes=",
        // Per-tick rates: deltas between two consecutive metrics snapshots,
        // so a tail of the stderr log shows load, not lifetime totals.
        "checked_per_s=",
        "req_per_s=",
        "in_Bps=",
        "out_Bps=",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats:?}");
    }
    assert_eq!(server.stats_line().split(' ').count(), stats.split(' ').count());
}

#[test]
fn concurrent_sessions_all_get_correct_verdicts() {
    let server = start(ServeOptions { workers: 4, ..Default::default() }).unwrap();
    let texts = std::sync::Arc::new(corpus(16));
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|k| {
            let texts = std::sync::Arc::clone(&texts);
            std::thread::spawn(move || {
                let mut client = BlockingClient::connect_tcp(addr).unwrap();
                for t in texts.iter().skip(k % 4) {
                    let Response::Verdict(v) = client.check("linux", t).unwrap() else {
                        panic!("expected verdict")
                    };
                    assert!(v.contains("# Verdict: accepted"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    wait_for_no_sessions(&server);
}

#[test]
fn metrics_request_returns_a_parsed_snapshot_over_the_wire() {
    let server = start(ServeOptions::default()).unwrap();
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    let before = client.metrics().unwrap();
    let req0 = before.counter("sibylfs_serve_requests_total").unwrap();
    for text in corpus(3) {
        assert!(matches!(client.check("linux", &text).unwrap(), Response::Verdict(_)));
    }
    let after = client.metrics().unwrap();
    // 3 checks + the first metrics request itself happened in between.
    let req1 = after.counter("sibylfs_serve_requests_total").unwrap();
    assert!(req1 >= req0 + 4, "requests_total went {req0} -> {req1}");
    assert!(after.counter("sibylfs_serve_bytes_in_total").unwrap() > 0);
    assert!(after.counter("sibylfs_serve_bytes_out_total").unwrap() > 0);
    assert!(after.counter("sibylfs_serve_sessions_opened_total").unwrap() >= 1);
    let lat = after.histogram("sibylfs_serve_request_ns").unwrap();
    assert!(lat.count >= 4, "latency histogram saw {} samples", lat.count);
    assert!(lat.p50 <= lat.p99);
}

/// The minimal HTTP exposition endpoint: GET /metrics answers metrics-v1
/// text, unknown paths 404, non-GET methods 405, and the verdict path is
/// untouched by scrapes.
#[test]
fn metrics_addr_serves_http_get() {
    let opts =
        ServeOptions { metrics_addr: Some("127.0.0.1:0".to_string()), ..Default::default() };
    let server = start(opts).unwrap();
    let maddr = server.metrics_addr().expect("metrics listener bound");

    let http = |request: &str| -> String {
        let mut s = TcpStream::connect(maddr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf
    };

    let ok = http("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    assert!(ok.contains("@type metrics-v1"), "{ok}");
    assert!(ok.contains("counter sibylfs_serve_requests_total"), "{ok}");

    let missing = http("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    let bad_method = http("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(bad_method.starts_with("HTTP/1.1 405"), "{bad_method}");

    // Scraping must not disturb the oracle path.
    let mut client = BlockingClient::connect_tcp(server.addr()).unwrap();
    let good = corpus(1).remove(0);
    assert!(matches!(client.check("linux", &good).unwrap(), Response::Verdict(_)));
}
