//! A blocking client for the oracle wire protocol.
//!
//! Mirrors the shape of FxRPC-style blocking file-ops clients: connect once,
//! then either lock-step (`check`, `stats`) or pipeline explicitly with
//! `send_check` + `recv` — the server answers strictly in request order, so a
//! pipelined caller matches the Nth response to the Nth request.

use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use sibylfs_core::obs::MetricsSnapshot;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};

/// A blocking connection to a `sibylfs serve` instance.
pub struct BlockingClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl BlockingClient {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<BlockingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(BlockingClient { writer: BufWriter::new(stream), reader })
    }

    /// Queue a Check request without waiting for the response (pipelining).
    pub fn send_check(&mut self, config: &str, trace_text: &str) -> io::Result<()> {
        let payload = encode_request(&Request::Check {
            config: config.to_string(),
            trace_text: trace_text.to_string(),
        });
        write_frame(&mut self.writer, &payload)?;
        self.writer.flush()
    }

    /// Receive the next in-order response. Errors with `UnexpectedEof` if the
    /// server closed the connection.
    pub fn recv(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Check one trace, blocking for the verdict.
    pub fn check(&mut self, config: &str, trace_text: &str) -> io::Result<Response> {
        self.send_check(config, trace_text)?;
        self.recv()
    }

    /// Fetch the server's one-line stats summary.
    pub fn stats(&mut self) -> io::Result<String> {
        write_frame(&mut self.writer, &encode_request(&Request::Stats))?;
        self.writer.flush()?;
        match self.recv()? {
            Response::StatsLine(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a stats line, got {other:?}"),
            )),
        }
    }

    /// Fetch a structured metrics snapshot (transported as `@type metrics-v1`
    /// text and parsed on this side).
    pub fn metrics(&mut self) -> io::Result<MetricsSnapshot> {
        write_frame(&mut self.writer, &encode_request(&Request::Metrics))?;
        self.writer.flush()?;
        match self.recv()? {
            Response::Metrics(text) => MetricsSnapshot::parse(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a metrics snapshot, got {other:?}"),
            )),
        }
    }
}
