//! Load generator for the oracle server.
//!
//! Builds a deterministic trace corpus (testgen's loadgen families executed
//! on the simulated ext4 backend), then drives a server with N concurrent
//! pipelined clients and reports checked-traces/sec plus latency percentiles
//! per client count. With `--verify`, every server verdict is compared
//! byte-for-byte against local batch checking — the CI smoke job runs this at
//! high client counts to pin "the server is the same oracle as the CLI".
//!
//! Results go to stdout, to `SIBYLFS_BENCH_JSON` (same record grammar as the
//! bench harness, so `sibylfs bench-diff` gates the `serve_loadgen/…` family),
//! and optionally to a summary JSON via `--out`.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sibylfs_check::{check_trace, render_checked_trace, CheckOptions};
use sibylfs_core::obs;
use sibylfs_exec::{execute_script, ExecOptions};
use sibylfs_fsimpl::configs;
use sibylfs_script::print::render_trace;
use sibylfs_serve::protocol::parse_spec_config;
use sibylfs_serve::{BlockingClient, Response, ServeOptions};
use sibylfs_testgen::{loadgen_scripts, LoadgenOptions};

const USAGE: &str = "\
usage: sibylfs_loadgen [options]

Drive a sibylfs oracle server with concurrent pipelined clients.

options:
  --addr HOST:PORT   target server (default: start an in-process server)
  --clients LIST     comma-separated client counts to sweep (default 1,2,4,8,16,32)
  --requests N       checks per client per run (default 50)
  --config NAME      model config, SpecConfig syntax (default linux)
  --scripts N        corpus size (default 64)
  --window W         per-client pipelining window (default 8)
  --workers N        checker workers for the in-process server (default 4)
  --verify           compare every verdict against local batch checking
  --out FILE         write a JSON summary of the sweep
  --trace-out FILE   record spans and write Chrome trace-event JSON
  -h, --help         show this help

After each sweep step the server's metrics snapshot is scraped; pool
utilization and the reorder-buffer high-water mark are embedded in the
SIBYLFS_BENCH_JSON records.
";

struct Args {
    addr: Option<String>,
    clients: Vec<usize>,
    requests: usize,
    config: String,
    scripts: usize,
    window: usize,
    workers: usize,
    verify: bool,
    out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        clients: vec![1, 2, 4, 8, 16, 32],
        requests: 50,
        config: "linux".to_string(),
        scripts: 64,
        window: 8,
        workers: 4,
        verify: false,
        out: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--clients" => {
                args.clients = value("--clients")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("bad client count {s:?}: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.clients.is_empty() || args.clients.contains(&0) {
                    return Err("--clients needs positive counts".to_string());
                }
            }
            "--requests" => args.requests = value("--requests")?.parse().map_err(|e| format!("bad --requests: {e}"))?,
            "--config" => args.config = value("--config")?,
            "--scripts" => args.scripts = value("--scripts")?.parse().map_err(|e| format!("bad --scripts: {e}"))?,
            "--window" => args.window = value("--window")?.parse().map_err(|e| format!("bad --window: {e}"))?,
            "--workers" => args.workers = value("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?,
            "--verify" => args.verify = true,
            "--out" => args.out = Some(value("--out")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.requests == 0 || args.window == 0 {
        return Err("--requests and --window must be positive".to_string());
    }
    Ok(args)
}

/// Per-run measurements for one client count.
struct RunResult {
    clients: usize,
    total_requests: usize,
    elapsed: Duration,
    p50_ns: u128,
    p95_ns: u128,
    p99_ns: u128,
}

impl RunResult {
    fn throughput(&self) -> f64 {
        self.total_requests as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One client's work: `requests` checks over the corpus, pipelined `window`
/// deep, returning per-request latencies.
fn run_client(
    addr: &str,
    config: &str,
    corpus: &[String],
    requests: usize,
    window: usize,
    start_at: usize,
) -> Result<Vec<u128>, String> {
    let mut client =
        BlockingClient::connect_tcp(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut latencies = Vec::with_capacity(requests);
    let mut sent_at = std::collections::VecDeque::with_capacity(window);
    let mut sent = 0;
    let mut received = 0;
    while received < requests {
        while sent < requests && sent - received < window {
            let text = &corpus[(start_at + sent) % corpus.len()];
            client.send_check(config, text).map_err(|e| format!("send: {e}"))?;
            sent_at.push_back(Instant::now());
            sent += 1;
        }
        let resp = client.recv().map_err(|e| format!("recv: {e}"))?;
        let t0: Instant = sent_at.pop_front().ok_or("response without a request")?;
        latencies.push(t0.elapsed().as_nanos());
        match resp {
            Response::Verdict(_) => {}
            Response::Error { line, col, message } => {
                return Err(format!("server error at {line}:{col}: {message}"));
            }
            Response::StatsLine(_) | Response::Metrics(_) => {
                return Err("unexpected non-verdict response".to_string())
            }
        }
        received += 1;
    }
    Ok(latencies)
}

fn run_sweep_step(
    addr: &str,
    config: &str,
    corpus: &Arc<Vec<String>>,
    clients: usize,
    requests: usize,
    window: usize,
) -> Result<RunResult, String> {
    let started = Instant::now();
    let failures = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let corpus = Arc::clone(corpus);
        let addr = addr.to_string();
        let config = config.to_string();
        let failures = Arc::clone(&failures);
        handles.push(std::thread::spawn(move || {
            match run_client(&addr, &config, &corpus, requests, window, c * 7) {
                Ok(lat) => lat,
                Err(e) => {
                    eprintln!("client {c}: {e}");
                    failures.fetch_add(1, Ordering::SeqCst);
                    Vec::new()
                }
            }
        }));
    }
    let mut all: Vec<u128> = Vec::with_capacity(clients * requests);
    for h in handles {
        all.extend(h.join().map_err(|_| "client thread panicked".to_string())?);
    }
    if failures.load(Ordering::SeqCst) > 0 {
        return Err(format!("{} client(s) failed", failures.load(Ordering::SeqCst)));
    }
    let elapsed = started.elapsed();
    all.sort_unstable();
    Ok(RunResult {
        clients,
        total_requests: clients * requests,
        elapsed,
        p50_ns: percentile(&all, 0.50),
        p95_ns: percentile(&all, 0.95),
        p99_ns: percentile(&all, 0.99),
    })
}

/// One scrape of the server-side pool/reorder metrics, taken via the wire
/// protocol's Metrics request. Counters are cumulative since server start,
/// so per-sweep figures are deltas between two scrapes.
struct PoolScrape {
    busy_ns: u64,
    workers: i64,
    reorder_hwm: i64,
    queue_hwm: i64,
}

fn scrape_pool(addr: &str) -> Result<PoolScrape, String> {
    let mut client =
        BlockingClient::connect_tcp(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let snap = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    Ok(PoolScrape {
        busy_ns: snap.counter("sibylfs_pool_busy_ns_total").unwrap_or(0),
        workers: snap.gauge("sibylfs_pool_workers").map(|(v, _)| v).unwrap_or(0),
        reorder_hwm: snap.gauge("sibylfs_serve_reorder_depth").map(|(_, h)| h).unwrap_or(0),
        queue_hwm: snap.gauge("sibylfs_pool_queue_depth").map(|(_, h)| h).unwrap_or(0),
    })
}

/// Append records to the `SIBYLFS_BENCH_JSON` file using the same grammar as
/// the bench harness (a single JSON array; read-strip-rewrite append).
/// `extra` is a preformatted `, "key": value` JSON fragment (bench-diff's
/// parser skips keys it does not know, so records stay gate-compatible).
fn emit_bench_record(name: &str, ns_per_iter: u128, iters: usize, elems_per_sec: f64, extra: &str) {
    let Ok(path) = std::env::var("SIBYLFS_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let record = format!(
        "  {{\"name\": {name:?}, \"ns_per_iter\": {ns_per_iter}, \"iters\": {iters}, \
         \"elems_per_sec\": {elems_per_sec:.1}{extra}, \"mode\": \"timed\"}}"
    );
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let body = existing.trim();
    let new_text = if let Some(inner) = body.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let inner = inner.trim_end();
        if inner.is_empty() {
            format!("[\n{record}\n]\n")
        } else {
            format!("[{inner},\n{record}\n]\n")
        }
    } else {
        format!("[\n{record}\n]\n")
    };
    if let Err(e) = std::fs::write(&path, new_text) {
        eprintln!("warning: cannot write {path}: {e}");
    }
}

fn verify_against_batch(
    addr: &str,
    config: &str,
    corpus: &[String],
) -> Result<(), String> {
    let cfg = parse_spec_config(config)?;
    let mut client =
        BlockingClient::connect_tcp(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    for (i, text) in corpus.iter().enumerate() {
        let resp = client.check(config, text).map_err(|e| format!("check: {e}"))?;
        let Response::Verdict(remote) = resp else {
            return Err(format!("corpus[{i}]: expected a verdict, got {resp:?}"));
        };
        let trace = sibylfs_script::parse_trace(text)
            .map_err(|e| format!("corpus[{i}] does not reparse: {e}"))?;
        let local = render_checked_trace(&check_trace(&cfg, &trace, CheckOptions::default()));
        if remote != local {
            return Err(format!(
                "corpus[{i}]: server verdict differs from batch checking\n--- local ---\n{local}\n--- server ---\n{remote}"
            ));
        }
    }
    println!("verify: {} verdicts bit-identical to batch checking", corpus.len());
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Tracing must be on before the corpus build and the verify pass: the
    // client-side spans (local exec/check work, per-sweep brackets) are the
    // whole point of `--trace-out` here — the server records its own file.
    if args.trace_out.is_some() {
        obs::set_tracing(true);
    }

    // Build the corpus: deterministic scripts, executed on simulated ext4 so
    // every trace checks cleanly and any load-test deviation is a real bug.
    let profile = match configs::by_name("linux/ext4") {
        Some(p) => p,
        None => {
            eprintln!("error: linux/ext4 behaviour profile missing");
            std::process::exit(2);
        }
    };
    let scripts = loadgen_scripts(LoadgenOptions { scripts: args.scripts, ..Default::default() });
    let corpus: Arc<Vec<String>> = Arc::new(
        scripts
            .iter()
            .map(|s| render_trace(&execute_script(&profile, s, ExecOptions::default())))
            .collect(),
    );
    println!(
        "corpus: {} traces, {} bytes total",
        corpus.len(),
        corpus.iter().map(String::len).sum::<usize>()
    );

    // Start an in-process server unless one was pointed at.
    let (_server, addr) = match &args.addr {
        Some(a) => (None, a.clone()),
        None => {
            let opts = ServeOptions { workers: args.workers, ..Default::default() };
            match sibylfs_serve::start(opts) {
                Ok(h) => {
                    let addr = h.addr().to_string();
                    println!("in-process server on {addr} ({} workers)", args.workers);
                    (Some(h), addr)
                }
                Err(e) => {
                    eprintln!("error: cannot start server: {e}");
                    std::process::exit(2);
                }
            }
        }
    };

    if args.verify {
        if let Err(e) = verify_against_batch(&addr, &args.config, &corpus) {
            eprintln!("VERIFY FAILED: {e}");
            std::process::exit(1);
        }
    }

    let mut results = Vec::new();
    let mut scrape = scrape_pool(&addr)
        .map_err(|e| eprintln!("warning: metrics scrape unavailable: {e}"))
        .ok();
    for &clients in &args.clients {
        let sweep = {
            let _span = obs::span("loadgen", "sweep");
            run_sweep_step(&addr, &args.config, &corpus, clients, args.requests, args.window)
        };
        match sweep {
            Ok(r) => {
                println!(
                    "clients={:<3} {:>8.0} checks/s  p50={:>8.2}ms p95={:>8.2}ms p99={:>8.2}ms  ({} checks in {:.2?})",
                    r.clients,
                    r.throughput(),
                    r.p50_ns as f64 / 1e6,
                    r.p95_ns as f64 / 1e6,
                    r.p99_ns as f64 / 1e6,
                    r.total_requests,
                    r.elapsed,
                );
                // Scrape the server's metrics and attribute this sweep's
                // pool-busy delta to it: utilization = busy worker-time over
                // available worker-time.
                let mut extra = String::new();
                let after = scrape.as_ref().and_then(|_| scrape_pool(&addr).ok());
                if let (Some(before), Some(after)) = (&scrape, &after) {
                    let workers = after.workers.max(1) as f64;
                    let util = after.busy_ns.saturating_sub(before.busy_ns) as f64
                        / (r.elapsed.as_nanos() as f64 * workers);
                    println!(
                        "            pool: utilization={:>5.1}%  queue_hwm={}  reorder_hwm={}",
                        util * 100.0,
                        after.queue_hwm,
                        after.reorder_hwm,
                    );
                    extra = format!(
                        ", \"pool_utilization\": {util:.3}, \"reorder_depth_hwm\": {}, \"queue_depth_hwm\": {}",
                        after.reorder_hwm, after.queue_hwm,
                    );
                }
                if after.is_some() {
                    scrape = after;
                }
                emit_bench_record(
                    &format!("serve_loadgen/throughput/{clients}_clients"),
                    r.p50_ns,
                    r.total_requests,
                    r.throughput(),
                    &extra,
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("error: sweep at {clients} clients: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.trace_out {
        match obs::write_chrome_trace(std::path::Path::new(path)) {
            Ok(n) => println!("trace: {n} spans written to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.out {
        let mut body = String::from("[\n");
        for (i, r) in results.iter().enumerate() {
            body.push_str(&format!(
                "  {{\"clients\": {}, \"checks_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"requests\": {}}}{}\n",
                r.clients,
                r.throughput(),
                r.p50_ns as f64 / 1e6,
                r.p95_ns as f64 / 1e6,
                r.p99_ns as f64 / 1e6,
                r.total_requests,
                if i + 1 == results.len() { "" } else { "," },
            ));
        }
        body.push_str("]\n");
        match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => println!("summary written to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
