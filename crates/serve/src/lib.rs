//! # SibylFS oracle server
//!
//! The paper positions the formal model as a test *oracle*; this crate turns
//! the batch checker into a network service. [`server::start`] runs a
//! long-lived TCP server that accepts traces over a length-prefixed wire
//! protocol ([`protocol`]), checks them on a shared
//! [`CheckerPool`](sibylfs_check::CheckerPool), and streams structured
//! verdicts back in request order. [`client::BlockingClient`] is the matching
//! library client, and the `sibylfs_loadgen` binary drives a server with many
//! concurrent clients to measure checked-traces/sec and latency percentiles.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::BlockingClient;
pub use protocol::{Request, Response};
pub use server::{start, ServeOptions, ServerHandle};
