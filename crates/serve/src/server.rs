//! The long-running oracle server.
//!
//! One accept thread, two threads per session (reader and writer), and one
//! shared [`CheckerPool`] doing the actual model checking, so checking stays
//! batched across clients: a single client's burst fans out over every pool
//! worker, and many idle sessions cost no checker threads at all.
//!
//! Sessions are pipelined: the reader assigns each request a sequence number
//! and submits it, completions land in a per-session reorder buffer, and the
//! writer drains the buffer strictly in sequence order. In-flight requests
//! per session are bounded (`max_inflight_per_session`); at the bound the
//! reader simply stops reading, which turns into TCP backpressure on the
//! client rather than unbounded queue growth on the server.
//!
//! Robustness rules a long-lived process needs, each pinned by a test:
//! - malformed request payloads get an in-order `Error` response; the session
//!   survives, and framing-level corruption (oversized length prefix, type
//!   desync) drops only that session, never the server;
//! - quoted names longer than `max_name_len` are rejected *before* parsing,
//!   so they never reach the interner;
//! - when growth of the process-wide interner since server start exceeds
//!   `intern_budget_bytes`, further Check requests are refused (the verdict
//!   for traces already admitted still completes) — a hostile client can then
//!   only degrade service, not OOM the process.

use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use sibylfs_check::{render_checked_trace, CheckOptions, CheckerPool};
use sibylfs_core::intern;
use sibylfs_core::obs;
use sibylfs_script::parse_trace;

use crate::protocol::{
    decode_request, encode_response, oversized_name_len, parse_spec_config, read_frame,
    write_frame, ProtocolError, Request, Response, DEFAULT_MAX_NAME_LEN,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port 0 to let the OS pick (the bound address is
    /// available from [`ServerHandle::addr`]).
    pub addr: String,
    /// Checker pool size.
    pub workers: usize,
    /// Per-session cap on requests accepted but not yet answered.
    pub max_inflight_per_session: usize,
    /// Per-name byte limit enforced at the protocol boundary.
    pub max_name_len: usize,
    /// Cap on process-wide interner growth (bytes) since server start;
    /// `None` disables the budget.
    pub intern_budget_bytes: Option<usize>,
    /// Optional bind address for the Prometheus-style metrics endpoint: a
    /// minimal HTTP server answering `GET /metrics` with the `@type
    /// metrics-v1` text exposition. `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Options passed to every check.
    pub check: CheckOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_inflight_per_session: 64,
            max_name_len: DEFAULT_MAX_NAME_LEN,
            intern_budget_bytes: None,
            metrics_addr: None,
            check: CheckOptions::default(),
        }
    }
}

struct Shared {
    opts: ServeOptions,
    pool: CheckerPool,
    shutdown: AtomicBool,
    active_sessions: AtomicUsize,
    sessions_total: AtomicU64,
    checked_total: AtomicU64,
    errors_total: AtomicU64,
    intern_baseline_bytes: usize,
    /// The metrics snapshot (and when it was taken) behind the previous
    /// stats line, so each tick reports *rates over the tick* rather than
    /// monotonically-growing totals.
    last_tick: Mutex<(Instant, obs::MetricsSnapshot)>,
}

impl Shared {
    fn stats_line(&self) -> String {
        let st = intern::stats();
        // Per-tick rates: the delta between two consecutive snapshots of the
        // process-wide counters, divided by the tick's wall-clock length.
        // The first tick rates against server start.
        let (checked_per_s, req_per_s, in_bps, out_bps) = {
            let now = Instant::now();
            let snap = obs::snapshot();
            let mut prev = self.last_tick.lock().unwrap_or_else(|e| e.into_inner());
            let dt = now.duration_since(prev.0).as_secs_f64();
            let rate = |name: &str| {
                let cur = snap.counter(name).unwrap_or(0);
                let old = prev.1.counter(name).unwrap_or(0);
                if dt > 0.0 { cur.saturating_sub(old) as f64 / dt } else { 0.0 }
            };
            let rates = (
                rate("sibylfs_check_traces_total"),
                rate("sibylfs_serve_requests_total"),
                rate("sibylfs_serve_bytes_in_total"),
                rate("sibylfs_serve_bytes_out_total"),
            );
            *prev = (now, snap);
            rates
        };
        format!(
            "sessions={} sessions_total={} checked={} errors={} queued={} workers={} intern_count={} intern_bytes={} intern_growth_bytes={} checked_per_s={checked_per_s:.1} req_per_s={req_per_s:.1} in_Bps={in_bps:.0} out_Bps={out_bps:.0}",
            self.active_sessions.load(Ordering::Relaxed),
            self.sessions_total.load(Ordering::Relaxed),
            self.checked_total.load(Ordering::Relaxed),
            self.errors_total.load(Ordering::Relaxed),
            self.pool.queued(),
            self.pool.workers(),
            st.count,
            st.bytes,
            st.bytes.saturating_sub(self.intern_baseline_bytes),
        )
    }

    fn intern_budget_exceeded(&self) -> bool {
        match self.opts.intern_budget_bytes {
            None => false,
            Some(budget) => {
                intern::stats().bytes.saturating_sub(self.intern_baseline_bytes) > budget
            }
        }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    metrics_addr: Option<SocketAddr>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address the metrics HTTP endpoint bound, if enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Sessions currently connected.
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::SeqCst)
    }

    /// The same one-line stats summary the Stats request returns.
    pub fn stats_line(&self) -> String {
        self.shared.stats_line()
    }

    /// Stop accepting connections and wait for the accept thread. Live
    /// sessions wind down as their clients disconnect.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loops with throwaway connections.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(h) = self.metrics_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a server. Returns once the listener is bound, with the accept loop
/// running on a background thread.
pub fn start(opts: ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    let metrics_listener = match &opts.metrics_addr {
        Some(maddr) => Some(TcpListener::bind(maddr)?),
        None => None,
    };
    let shared = Arc::new(Shared {
        pool: CheckerPool::new(opts.workers),
        intern_baseline_bytes: intern::stats().bytes,
        opts,
        shutdown: AtomicBool::new(false),
        active_sessions: AtomicUsize::new(0),
        sessions_total: AtomicU64::new(0),
        checked_total: AtomicU64::new(0),
        errors_total: AtomicU64::new(0),
        last_tick: Mutex::new((Instant::now(), obs::snapshot())),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("sibylfs-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    let (metrics_addr, metrics_thread) = match metrics_listener {
        Some(l) => {
            let maddr = l.local_addr()?;
            let http_shared = Arc::clone(&shared);
            let h = std::thread::Builder::new()
                .name("sibylfs-metrics-http".to_string())
                .spawn(move || metrics_http_loop(&l, &http_shared))?;
            (Some(maddr), Some(h))
        }
        None => (None, None),
    };
    Ok(ServerHandle { shared, addr, accept_thread: Some(accept_thread), metrics_addr, metrics_thread })
}

/// The minimal HTTP front end for Prometheus-style scraping: answers
/// `GET /metrics` (or `GET /`) with the `@type metrics-v1` exposition and
/// closes the connection. One request per connection, handled inline on the
/// accept thread — a scrape is a few hundred bytes, so there is nothing to
/// pipeline.
fn metrics_http_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let _ = serve_one_metrics_request(stream);
    }
}

fn serve_one_metrics_request(stream: TcpStream) -> io::Result<()> {
    use std::io::BufRead as _;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line so well-behaved clients are not cut
    // off mid-send (we answer and close regardless).
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "only GET is supported\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", obs::snapshot().render())
    } else {
        ("404 Not Found", "try GET /metrics\n".to_string())
    };
    let mut out = BufWriter::new(stream);
    write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    out.flush()
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let session_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("sibylfs-session".to_string())
            .spawn(move || run_session(stream, &session_shared));
    }
}

/// Per-session reply reorder buffer shared by the reader (producer via pool
/// callbacks) and the writer (consumer, strictly in sequence order).
struct ReplyState {
    /// Sequence number the next accepted request will get.
    assigned: u64,
    /// Sequence number the writer will send next.
    written: u64,
    /// Completed responses waiting for their turn, keyed by sequence.
    ready: BTreeMap<u64, Vec<u8>>,
    /// The reader is done (EOF or fatal framing error); the writer exits
    /// once everything assigned has been written.
    closed: bool,
}

struct Session {
    state: Mutex<ReplyState>,
    progress: Condvar,
}

impl Session {
    fn lock(&self) -> MutexGuard<'_, ReplyState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn complete(&self, seq: u64, resp: &Response) {
        let payload = encode_response(resp);
        let mut st = self.lock();
        st.ready.insert(seq, payload);
        obs::m::SERVE_REORDER_DEPTH.set(st.ready.len() as i64);
        drop(st);
        obs::m::SERVE_INFLIGHT.dec();
        self.progress.notify_all();
    }
}

/// Decrements the active-session gauge even if the session thread panics.
struct SessionGauge<'a>(&'a Shared);

impl Drop for SessionGauge<'_> {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::SeqCst);
        // Every session ends through this drop — clean EOF, framing error,
        // or panic — so "killed" counts all torn-down sessions.
        obs::m::SERVE_SESSIONS_KILLED_TOTAL.inc();
    }
}

fn run_session(stream: TcpStream, shared: &Arc<Shared>) {
    shared.active_sessions.fetch_add(1, Ordering::SeqCst);
    shared.sessions_total.fetch_add(1, Ordering::SeqCst);
    obs::m::SERVE_SESSIONS_OPENED_TOTAL.inc();
    let _gauge = SessionGauge(shared);

    let Ok(write_stream) = stream.try_clone() else { return };
    let session = Arc::new(Session {
        state: Mutex::new(ReplyState {
            assigned: 0,
            written: 0,
            ready: BTreeMap::new(),
            closed: false,
        }),
        progress: Condvar::new(),
    });

    let writer_session = Arc::clone(&session);
    let writer = std::thread::Builder::new()
        .name("sibylfs-session-writer".to_string())
        .spawn(move || writer_loop(write_stream, &writer_session));

    reader_loop(stream, shared, &session);

    let mut st = session.lock();
    st.closed = true;
    drop(st);
    session.progress.notify_all();
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

fn writer_loop(stream: TcpStream, session: &Session) {
    let mut out = BufWriter::new(stream);
    loop {
        let payload = {
            let mut st = session.lock();
            loop {
                let next = st.written;
                if let Some(p) = st.ready.remove(&next) {
                    st.written += 1;
                    break p;
                }
                if st.closed && st.written == st.assigned {
                    return;
                }
                st = session.progress.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        session.progress.notify_all(); // free a backpressure slot
        obs::m::SERVE_BYTES_OUT_TOTAL.add(4 + payload.len() as u64);
        if write_frame(&mut out, &payload).and_then(|()| out.flush()).is_err() {
            // The client went away mid-reply; drain silently so the reader's
            // in-flight checks still complete and the session can unwind.
            let mut st = session.lock();
            st.written = st.assigned;
            st.ready.clear();
            let closed = st.closed;
            drop(st);
            // Free any reader blocked on a backpressure slot.
            session.progress.notify_all();
            if closed {
                return;
            }
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>, session: &Arc<Session>) {
    let mut input = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut input) {
            Ok(Some(f)) => f,
            // Clean EOF, connection reset, or fatal framing error (oversized
            // prefix): stop reading. Nothing more can be decoded reliably.
            Ok(None) | Err(_) => return,
        };
        let started = Instant::now();
        obs::m::SERVE_BYTES_IN_TOTAL.add(4 + frame.len() as u64);
        obs::m::SERVE_REQUESTS_TOTAL.inc();

        // Backpressure: wait for an in-flight slot before accepting work.
        let seq = {
            let mut st = session.lock();
            while (st.assigned - st.written) as usize
                >= shared.opts.max_inflight_per_session.max(1)
            {
                st = session.progress.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let seq = st.assigned;
            st.assigned += 1;
            seq
        };
        obs::m::SERVE_INFLIGHT.inc();

        match decode_request(&frame) {
            Err(e @ ProtocolError::BadTag(_)) | Err(e @ ProtocolError::Malformed(_)) => {
                // Payload-level garbage: answer in order and keep the
                // session; framing is still intact.
                shared.errors_total.fetch_add(1, Ordering::Relaxed);
                obs::m::SERVE_ERRORS_TOTAL.inc();
                obs::m::SERVE_REQUEST_NS.record_duration(started.elapsed());
                session.complete(seq, &Response::Error {
                    line: 0,
                    col: 0,
                    message: e.to_string(),
                });
            }
            Err(e) => {
                shared.errors_total.fetch_add(1, Ordering::Relaxed);
                obs::m::SERVE_ERRORS_TOTAL.inc();
                obs::m::SERVE_REQUEST_NS.record_duration(started.elapsed());
                session.complete(seq, &Response::Error {
                    line: 0,
                    col: 0,
                    message: e.to_string(),
                });
                return;
            }
            Ok(Request::Stats) => {
                obs::m::SERVE_REQUEST_NS.record_duration(started.elapsed());
                session.complete(seq, &Response::StatsLine(shared.stats_line()));
            }
            Ok(Request::Metrics) => {
                obs::m::SERVE_REQUEST_NS.record_duration(started.elapsed());
                session.complete(seq, &Response::Metrics(obs::snapshot().render()));
            }
            Ok(Request::Check { config, trace_text }) => {
                handle_check(shared, session, seq, started, &config, &trace_text);
            }
        }
    }
}

fn handle_check(
    shared: &Arc<Shared>,
    session: &Arc<Session>,
    seq: u64,
    started: Instant,
    config: &str,
    trace_text: &str,
) {
    let reject = |message: String, line: u32, col: u32| {
        shared.errors_total.fetch_add(1, Ordering::Relaxed);
        obs::m::SERVE_ERRORS_TOTAL.inc();
        obs::m::SERVE_REQUEST_NS.record_duration(started.elapsed());
        session.complete(seq, &Response::Error { line, col, message });
    };

    let cfg = match parse_spec_config(config) {
        Ok(cfg) => cfg,
        Err(e) => return reject(format!("bad config: {e}"), 0, 0),
    };
    // Order matters: name-length and interner-budget gates run before
    // parse_trace, because parsing is what interns path components.
    if let Some(len) = oversized_name_len(trace_text, shared.opts.max_name_len) {
        return reject(
            format!(
                "name of {len} bytes exceeds the {}-byte limit",
                shared.opts.max_name_len
            ),
            0,
            0,
        );
    }
    if shared.intern_budget_exceeded() {
        return reject(
            "interner budget exceeded; the server is refusing new names".to_string(),
            0,
            0,
        );
    }
    let trace = match parse_trace(trace_text) {
        Ok(t) => t,
        Err(e) => {
            return reject(
                e.message.clone(),
                u32::try_from(e.line).unwrap_or(u32::MAX),
                u32::try_from(e.col).unwrap_or(u32::MAX),
            )
        }
    };

    let done_shared = Arc::clone(shared);
    let done_session = Arc::clone(session);
    shared.pool.submit(cfg, trace, shared.opts.check, move |checked| {
        done_shared.checked_total.fetch_add(1, Ordering::Relaxed);
        obs::m::SERVE_REQUEST_NS.record_duration(started.elapsed());
        done_session.complete(seq, &Response::Verdict(render_checked_trace(&checked)));
    });
}
