//! The oracle wire protocol: length-prefixed frames over a byte stream.
//!
//! Every frame is a 4-byte big-endian payload length followed by the payload;
//! the first payload byte is the message type. Requests flow client→server,
//! responses server→client, and a session is fully pipelined: a client may
//! have many requests in flight, and the server answers strictly in request
//! order, so responses need no correlation IDs.
//!
//! ```text
//! frame    := u32_be(len) payload[len]            len <= MAX_FRAME_LEN
//! request  := 0x01 u16_be(cfg_len) cfg trace      check `trace` against `cfg`
//!           | 0x02                                server stats line
//!           | 0x03                                metrics snapshot
//! response := 0x81 verdict-text                   rendered checked trace
//!           | 0x82 u32_be(line) u32_be(col) msg   error (0,0 = no location)
//!           | 0x83 stats-text                     one stats line
//!           | 0x84 metrics-v1-text                full metrics exposition
//! ```
//!
//! `cfg` is a [`SpecConfig`] in its `Display` syntax (`linux`, `posix,no-por`,
//! `mac,non-root`, ...); [`parse_spec_config`] round-trips it. Verdict text is
//! exactly what `sibylfs_check::render_checked_trace` produces, which is what
//! makes "server verdicts are bit-identical to batch checking" a meaningful,
//! CI-checkable property.

use std::io::{self, Read, Write};

use sibylfs_core::flavor::{Flavor, PorMode, SpecConfig};

/// Hard ceiling on a frame payload; anything larger is a protocol error.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// Default per-name byte limit enforced at the protocol boundary (see
/// [`oversized_name_len`]); a server may configure a different value.
pub const DEFAULT_MAX_NAME_LEN: usize = 512;

/// Message type tags.
pub const TAG_CHECK: u8 = 0x01;
pub const TAG_STATS: u8 = 0x02;
pub const TAG_METRICS: u8 = 0x03;
pub const TAG_VERDICT: u8 = 0x81;
pub const TAG_ERROR: u8 = 0x82;
pub const TAG_STATS_RESP: u8 = 0x83;
pub const TAG_METRICS_RESP: u8 = 0x84;

/// A client→server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Check a trace (text form) against a model config (Display form).
    Check { config: String, trace_text: String },
    /// Ask for the server's one-line stats summary.
    Stats,
    /// Ask for a full metrics snapshot (`@type metrics-v1` text).
    Metrics,
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The rendered checked trace for an accepted Check request.
    Verdict(String),
    /// The request failed; `line`/`col` locate parse errors (0,0 otherwise).
    Error { line: u32, col: u32, message: String },
    /// The stats line for a Stats request.
    StatsLine(String),
    /// The metrics exposition for a Metrics request: `@type metrics-v1` text,
    /// parseable back into a structured snapshot with
    /// [`sibylfs_core::obs::MetricsSnapshot::parse`].
    Metrics(String),
}

/// A framing or payload decoding failure. Framing errors are fatal to the
/// session (the stream position is unrecoverable); payload errors are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The 4-byte length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLong(u32),
    /// The payload was empty or its type byte is unknown.
    BadTag(Option<u8>),
    /// The payload body did not decode (truncated field, bad UTF-8, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::FrameTooLong(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            ProtocolError::BadTag(Some(t)) => write!(f, "unknown message type 0x{t:02x}"),
            ProtocolError::BadTag(None) => write!(f, "empty frame payload"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too long"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame boundary; a
/// connection cut mid-frame is an `UnexpectedEof` error, and an oversized
/// length prefix surfaces as [`ProtocolError::FrameTooLong`] wrapped in
/// `InvalidData` (the session must be dropped — the stream position is lost).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLong(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encode a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Check { config, trace_text } => {
            let mut out = Vec::with_capacity(3 + config.len() + trace_text.len());
            out.push(TAG_CHECK);
            let cfg_len = u16::try_from(config.len()).unwrap_or(u16::MAX);
            out.extend_from_slice(&cfg_len.to_be_bytes());
            out.extend_from_slice(&config.as_bytes()[..cfg_len as usize]);
            out.extend_from_slice(trace_text.as_bytes());
            out
        }
        Request::Stats => vec![TAG_STATS],
        Request::Metrics => vec![TAG_METRICS],
    }
}

/// Decode a frame payload as a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    match payload.first().copied() {
        Some(TAG_CHECK) => {
            let body = &payload[1..];
            if body.len() < 2 {
                return Err(ProtocolError::Malformed("missing config length"));
            }
            let cfg_len = u16::from_be_bytes([body[0], body[1]]) as usize;
            let rest = &body[2..];
            if rest.len() < cfg_len {
                return Err(ProtocolError::Malformed("config length exceeds payload"));
            }
            let config = std::str::from_utf8(&rest[..cfg_len])
                .map_err(|_| ProtocolError::Malformed("config is not UTF-8"))?
                .to_string();
            let trace_text = std::str::from_utf8(&rest[cfg_len..])
                .map_err(|_| ProtocolError::Malformed("trace is not UTF-8"))?
                .to_string();
            Ok(Request::Check { config, trace_text })
        }
        Some(TAG_STATS) => {
            if payload.len() != 1 {
                return Err(ProtocolError::Malformed("stats request carries a body"));
            }
            Ok(Request::Stats)
        }
        Some(TAG_METRICS) => {
            if payload.len() != 1 {
                return Err(ProtocolError::Malformed("metrics request carries a body"));
            }
            Ok(Request::Metrics)
        }
        other => Err(ProtocolError::BadTag(other)),
    }
}

/// Encode a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Verdict(text) => {
            let mut out = Vec::with_capacity(1 + text.len());
            out.push(TAG_VERDICT);
            out.extend_from_slice(text.as_bytes());
            out
        }
        Response::Error { line, col, message } => {
            let mut out = Vec::with_capacity(9 + message.len());
            out.push(TAG_ERROR);
            out.extend_from_slice(&line.to_be_bytes());
            out.extend_from_slice(&col.to_be_bytes());
            out.extend_from_slice(message.as_bytes());
            out
        }
        Response::StatsLine(text) => {
            let mut out = Vec::with_capacity(1 + text.len());
            out.push(TAG_STATS_RESP);
            out.extend_from_slice(text.as_bytes());
            out
        }
        Response::Metrics(text) => {
            let mut out = Vec::with_capacity(1 + text.len());
            out.push(TAG_METRICS_RESP);
            out.extend_from_slice(text.as_bytes());
            out
        }
    }
}

/// Decode a frame payload as a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    match payload.first().copied() {
        Some(TAG_VERDICT) => {
            let text = std::str::from_utf8(&payload[1..])
                .map_err(|_| ProtocolError::Malformed("verdict is not UTF-8"))?;
            Ok(Response::Verdict(text.to_string()))
        }
        Some(TAG_ERROR) => {
            let body = &payload[1..];
            if body.len() < 8 {
                return Err(ProtocolError::Malformed("error response too short"));
            }
            let line = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
            let col = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
            let message = std::str::from_utf8(&body[8..])
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8"))?
                .to_string();
            Ok(Response::Error { line, col, message })
        }
        Some(TAG_STATS_RESP) => {
            let text = std::str::from_utf8(&payload[1..])
                .map_err(|_| ProtocolError::Malformed("stats line is not UTF-8"))?;
            Ok(Response::StatsLine(text.to_string()))
        }
        Some(TAG_METRICS_RESP) => {
            let text = std::str::from_utf8(&payload[1..])
                .map_err(|_| ProtocolError::Malformed("metrics text is not UTF-8"))?;
            Ok(Response::Metrics(text.to_string()))
        }
        other => Err(ProtocolError::BadTag(other)),
    }
}

/// Parse a [`SpecConfig`] from its `Display` syntax: a flavour name followed
/// by comma-separated modifiers (`no-perms`, `timestamps`, `non-root`,
/// `no-por`).
pub fn parse_spec_config(s: &str) -> Result<SpecConfig, String> {
    let mut parts = s.split(',');
    let flavor_str = parts.next().unwrap_or("").trim();
    let flavor: Flavor = flavor_str.parse().map_err(|e| format!("{e}"))?;
    let mut cfg = SpecConfig::standard(flavor);
    for part in parts {
        match part.trim() {
            "no-perms" => cfg.permissions = false,
            "timestamps" => cfg.timestamps = true,
            "non-root" => cfg.root_user = false,
            "no-por" => cfg.por = PorMode::Off,
            other => return Err(format!("unknown config modifier: {other:?}")),
        }
    }
    Ok(cfg)
}

/// Scan a script/trace text for quoted names longer than `max` bytes,
/// returning the length of the first offender. Runs **before** parsing, so a
/// hostile client cannot grow the process-wide interner with giant unique
/// path components: parsing is what interns names, and oversized requests are
/// rejected here without ever reaching the parser.
pub fn oversized_name_len(text: &str, max: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1; // skip the escaped byte
                }
                j += 1;
            }
            let len = j.saturating_sub(start);
            if len > max {
                return Some(len);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_round_trip() {
        for req in [
            Request::Check { config: "linux".into(), trace_text: "@type trace\n".into() },
            Request::Check { config: "posix,no-por".into(), trace_text: String::new() },
            Request::Stats,
            Request::Metrics,
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        for resp in [
            Response::Verdict("@type checked-trace\n".into()),
            Response::Error { line: 3, col: 17, message: "uid out of range: -5".into() },
            Response::Error { line: 0, col: 0, message: "interner budget exceeded".into() },
            Response::StatsLine("sessions=1 checked=2".into()),
            Response::Metrics("@type metrics-v1\ncounter sibylfs_pool_jobs_total 5\n".into()),
        ] {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_without_panicking(){
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x7f, 1, 2, 3]).is_err());
        assert!(decode_request(&[TAG_CHECK]).is_err());
        assert!(decode_request(&[TAG_CHECK, 0xff, 0xff, b'x']).is_err());
        assert!(decode_request(&[TAG_CHECK, 0, 1, 0xff, 0xfe]).is_err());
        assert!(decode_request(&[TAG_STATS, 0]).is_err());
        assert!(decode_request(&[TAG_METRICS, 0]).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[TAG_ERROR, 0, 0]).is_err());
        assert!(decode_response(&[TAG_VERDICT, 0xff, 0xfe]).is_err());
    }

    #[test]
    fn frame_io_round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at frame boundary");
    }

    #[test]
    fn truncated_and_oversized_frames_are_io_errors() {
        // Length prefix promises more bytes than the stream holds.
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&10u32.to_be_bytes());
        truncated.extend_from_slice(b"abc");
        let err = read_frame(&mut io::Cursor::new(truncated)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Length prefix over the hard limit.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let err = read_frame(&mut io::Cursor::new(oversized)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // EOF mid-length-prefix.
        let err = read_frame(&mut io::Cursor::new(vec![0u8, 0])).unwrap();
        assert_eq!(err, None, "a 2-byte stream never starts a frame");
    }

    #[test]
    fn spec_config_display_round_trip() {
        for cfg in [
            SpecConfig::standard(Flavor::Linux),
            SpecConfig::standard(Flavor::Posix).with_por(PorMode::Off),
            SpecConfig::unprivileged(Flavor::Mac),
            SpecConfig::without_permissions(Flavor::FreeBsd),
        ] {
            let s = cfg.to_string();
            assert_eq!(parse_spec_config(&s).unwrap(), cfg, "round trip of {s:?}");
        }
        assert!(parse_spec_config("plan9").is_err());
        assert!(parse_spec_config("linux,frobnicate").is_err());
    }

    #[test]
    fn oversized_names_are_detected_before_parse() {
        let ok = format!("1: mkdir \"{}\" 0o755\n", "a".repeat(64));
        assert_eq!(oversized_name_len(&ok, 64), None);
        let bad = format!("1: mkdir \"{}\" 0o755\n", "a".repeat(65));
        assert_eq!(oversized_name_len(&bad, 64), Some(65));
        // Escaped quotes do not end the scan early.
        let esc = format!("1: write (FD 3) \"x\\\"{}\"\n", "y".repeat(100));
        assert!(oversized_name_len(&esc, 64).is_some());
        // Unterminated quote at EOF terminates cleanly.
        assert_eq!(oversized_name_len("mkdir \"abc", 64), None);
    }

    proptest! {
        #[test]
        fn framing_round_trips_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            let mut r = io::Cursor::new(buf);
            let back = read_frame(&mut r).unwrap().unwrap();
            prop_assert_eq!(back, payload);
            prop_assert_eq!(read_frame(&mut r).unwrap(), None);
        }

        #[test]
        fn decode_never_panics_on_garbage(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_request(&payload);
            let _ = decode_response(&payload);
        }

        #[test]
        fn check_request_round_trips(
            cfg_bytes in proptest::collection::vec(any::<u8>(), 0..24),
            trace_bytes in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            // Map arbitrary bytes into printable ASCII so both fields are
            // valid UTF-8 of the same byte length.
            let ascii = |bs: &[u8]| -> String {
                bs.iter().map(|b| (b' ' + (b % 95)) as char).collect()
            };
            let req = Request::Check { config: ascii(&cfg_bytes), trace_text: ascii(&trace_bytes) };
            prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }
}
