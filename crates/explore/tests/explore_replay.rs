//! End-to-end properties of the exploration loop, including the acceptance
//! contract: every corpus entry the engine saves replays deterministically
//! and re-checks with exactly the verdict recorded in its header, and a
//! single-worker run is reproducible bit-for-bit from its base seed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use sibylfs_check::{check_trace_with_coverage, CheckOptions};
use sibylfs_core::flavor::SpecConfig;
use sibylfs_exec::{execute_script, ExecOptions};
use sibylfs_explore::corpus::{recorded_novel_keys, recorded_verdict};
use sibylfs_explore::{explore, BaselineMode, ExploreOptions};
use sibylfs_fsimpl::configs;
use sibylfs_script::parse_script;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sibylfs-explore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().map(|x| x == "script").unwrap_or(false) {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn every_saved_corpus_entry_replays_with_the_recorded_verdict() {
    let dir = scratch_dir("replay");
    let opts = ExploreOptions {
        iterations: Some(400),
        workers: 2,
        baseline: BaselineMode::SeedsOnly,
        corpus_dir: Some(dir.clone()),
        ..ExploreOptions::default()
    };
    let outcome = explore(&opts).unwrap();
    assert!(!outcome.saved.is_empty(), "nothing was persisted");

    let profile = configs::by_name(&opts.config).unwrap();
    let cfg = SpecConfig::standard(opts.flavor);
    let files = corpus_files(&dir);
    assert!(files.len() >= outcome.saved.len());
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        let script = parse_script(&text)
            .unwrap_or_else(|e| panic!("{}: corpus file does not parse: {e}", file.display()));
        let recorded = recorded_verdict(&text)
            .unwrap_or_else(|| panic!("{}: no recorded verdict", file.display()));
        // Replay: re-execute from scratch and re-check. Execution and
        // checking are deterministic, so the verdict must be identical.
        let trace = execute_script(&profile, &script, ExecOptions::default());
        let (checked, cov) = check_trace_with_coverage(&cfg, &trace, CheckOptions::default());
        assert_eq!(
            checked.accepted,
            recorded,
            "{}: replayed verdict differs from the recorded one",
            file.display()
        );
        // Every coverage key the entry was saved for is reproduced.
        for key in recorded_novel_keys(&text) {
            assert!(
                cov.contains(&key),
                "{}: replay no longer reaches {key:?}",
                file.display()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_worker_runs_are_reproducible_bit_for_bit() {
    let run = |tag: &str| {
        let dir = scratch_dir(tag);
        let opts = ExploreOptions {
            iterations: Some(150),
            workers: 1,
            seed: 7,
            baseline: BaselineMode::SeedsOnly,
            corpus_dir: Some(dir.clone()),
            ..ExploreOptions::default()
        };
        explore(&opts).unwrap();
        let files: BTreeMap<String, String> = corpus_files(&dir)
            .into_iter()
            .map(|p| {
                let rel = p.strip_prefix(&dir).unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&p).unwrap();
                (rel, text)
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        files
    };
    let a = run("repro-a");
    let b = run("repro-b");
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "two identical single-worker runs saved different corpus sets"
    );
    assert_eq!(a, b, "corpus file contents differ between identical runs");

    // A different base seed explores a different corpus.
    let dir = scratch_dir("repro-c");
    let opts = ExploreOptions {
        iterations: Some(150),
        workers: 1,
        seed: 8,
        baseline: BaselineMode::SeedsOnly,
        corpus_dir: Some(dir.clone()),
        ..ExploreOptions::default()
    };
    explore(&opts).unwrap();
    let c: Vec<String> = corpus_files(&dir)
        .into_iter()
        .map(|p| p.strip_prefix(&dir).unwrap().to_string_lossy().into_owned())
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    assert_ne!(a.keys().cloned().collect::<Vec<_>>(), c, "seed 7 and seed 8 found identical corpora");
}
