//! Shrinker guarantees, tested against the *real* execute-and-check pipeline
//! (not toy predicates): minimality — removing any remaining call loses the
//! target coverage point — plus a property test that shrinking always
//! preserves the triggering `(syscall, errno)` pair it was asked to keep.

use proptest::prelude::*;

use sibylfs_check::{check_trace_with_coverage, CheckOptions};
use sibylfs_core::commands::OsCommand;
use sibylfs_core::coverage::{CoverageKey, CoverageMap};
use sibylfs_core::flags::{FileMode, OpenFlags};
use sibylfs_core::flavor::{Flavor, SpecConfig};
use sibylfs_exec::{execute_script, ExecOptions};
use sibylfs_explore::shrink::{is_one_minimal, shrink};
use sibylfs_fsimpl::{configs, BehaviorProfile};
use sibylfs_script::Script;
use sibylfs_testgen::random::{random_script_with_seed, split_seed};

fn profile() -> BehaviorProfile {
    configs::by_name("linux/tmpfs").expect("registered configuration")
}

fn coverage_of(profile: &BehaviorProfile, script: &Script) -> CoverageMap {
    let trace = execute_script(profile, script, ExecOptions::default());
    let cfg = SpecConfig::standard(Flavor::Linux);
    check_trace_with_coverage(&cfg, &trace, CheckOptions::default()).1
}

/// The paper-style scenario: a long script in which only two calls matter
/// (create a directory, then collide with it). The shrinker must find exactly
/// that two-call core, and the core must be 1-minimal: removing any remaining
/// call loses the target coverage point.
#[test]
fn shrinking_to_a_transition_keeps_exactly_the_relevant_calls() {
    let profile = profile();
    let mut sc = Script::new("shrink___eexist", "explore");
    sc.call(OsCommand::Stat("/".into()))
        .call(OsCommand::Mkdir("noise1".into(), FileMode::new(0o777)))
        .call(OsCommand::Mkdir("d".into(), FileMode::new(0o777)))
        .call(OsCommand::Symlink("noise2".into(), "n2".into()))
        .call(OsCommand::Open("noise3".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(FileMode::new(0o644))))
        .call(OsCommand::Mkdir("d".into(), FileMode::new(0o777)))
        .call(OsCommand::Unlink("noise3".into()));
    let target =
        CoverageKey::Transition { syscall: "mkdir".to_string(), outcome: "EEXIST".to_string() };
    assert!(coverage_of(&profile, &sc).contains(&target), "precondition");

    let keep = |cand: &Script| coverage_of(&profile, cand).contains(&target);
    let small = shrink(&sc, keep);
    // mkdir "d" twice is the entire explanation.
    assert_eq!(small.call_count(), 2, "{small:?}");
    assert!(keep(&small));
    assert!(is_one_minimal(&small, keep));
    // Spelled out: removing any single remaining call loses the point.
    for i in 0..small.steps.len() {
        let mut cand = small.clone();
        cand.steps.remove(i);
        assert!(!keep(&cand), "removing step {i} kept the target — not minimal");
    }
}

/// Shrinking towards a specification *branch* key behaves the same way.
#[test]
fn shrinking_to_a_branch_point_is_minimal() {
    let profile = profile();
    let mut sc = Script::new("shrink___branch", "explore");
    sc.call(OsCommand::Mkdir("a".into(), FileMode::new(0o777)))
        .call(OsCommand::Mkdir("b".into(), FileMode::new(0o777)))
        .call(OsCommand::Symlink("a".into(), "s".into()))
        .call(OsCommand::Stat("x".into()))
        .call(OsCommand::Rmdir("s/".into()));
    let target =
        CoverageKey::Branch("common/symlink_with_trailing_slash_may_enotdir".to_string());
    let keep = |cand: &Script| coverage_of(&profile, cand).contains(&target);
    assert!(keep(&sc), "precondition");
    let small = shrink(&sc, keep);
    // The minimal witness needs the symlink-to-dir setup and the rmdir:
    // mkdir a; symlink a s; rmdir s/.
    assert_eq!(small.call_count(), 3, "{small:?}");
    assert!(is_one_minimal(&small, keep));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any random script that produces at least one error return,
    /// shrinking while preserving the first (syscall, errno) pair keeps
    /// exactly that behaviour and ends 1-minimal.
    #[test]
    fn shrinking_preserves_the_triggering_syscall_errno_pair(seed in any::<u64>()) {
        let profile = profile();
        let script = random_script_with_seed(
            format!("shrink___prop_{seed:016x}"),
            split_seed(seed, 1),
            12,
        );
        let cov = coverage_of(&profile, &script);
        // Pick the first observed error transition as the target, if any.
        let target = cov.iter().find(|k| {
            matches!(k, CoverageKey::Transition { outcome, .. } if !outcome.starts_with("ok/"))
        }).cloned();
        if let Some(target) = target {
            let keep = |cand: &Script| coverage_of(&profile, cand).contains(&target);
            let small = shrink(&script, keep);
            prop_assert!(keep(&small), "shrinking lost {target:?} (seed {seed})");
            prop_assert!(small.steps.len() <= script.steps.len());
            prop_assert!(is_one_minimal(&small, keep), "not 1-minimal for {target:?} (seed {seed})");
        }
    }
}
