//! Delta-debugging shrinker.
//!
//! Any script worth keeping — because it reached a new coverage key, or
//! because it distinguishes two backends — is minimized before it is
//! persisted, so the corpus stays a set of *small* explanations rather than
//! an archive of 40-call accidents. The algorithm is classic ddmin over the
//! script's step list: remove exponentially shrinking chunks while the
//! caller-supplied predicate still holds, then a greedy single-step pass to a
//! fixpoint. The result is **1-minimal**: removing any single remaining step
//! makes the predicate fail (the property the shrinker tests assert).
//!
//! The predicate re-executes and re-checks candidates, so it is the only
//! judge of validity: a candidate that breaks a process lifecycle or loses
//! the target behaviour simply fails the predicate and the removal is
//! rejected. The shrinker never needs to understand script semantics.

use sibylfs_script::{Script, ScriptStep};

/// Shrink `script` to a locally minimal step sequence for which `keep` still
/// returns `true`.
///
/// `keep(script)` must hold on entry; if it does not, the script is returned
/// unchanged. The number of predicate evaluations is O(n log n) for the chunk
/// phase plus O(n²) worst case for the 1-minimality fixpoint — fine for the
/// ≤ ~40-step scripts the explorer produces.
pub fn shrink<F>(script: &Script, mut keep: F) -> Script
where
    F: FnMut(&Script) -> bool,
{
    if !keep(script) {
        return script.clone();
    }
    let mut current = script.clone();

    // Phase 1: ddmin-style chunk removal, halving the chunk size.
    let mut chunk = (current.steps.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < current.steps.len() {
            let candidate = without_range(&current, i, chunk);
            if !candidate.steps.is_empty() && keep(&candidate) {
                current = candidate;
                // Re-test the same index: the next chunk slid into place.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Phase 2: single-step removals to a fixpoint, establishing 1-minimality.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.steps.len() {
            if current.steps.len() == 1 {
                break;
            }
            let candidate = without_range(&current, i, 1);
            if keep(&candidate) {
                current = candidate;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }
    current
}

/// Whether `script` is 1-minimal with respect to `keep`: removing any single
/// step makes the predicate fail. Exposed for the shrinker's own test suite.
pub fn is_one_minimal<F>(script: &Script, mut keep: F) -> bool
where
    F: FnMut(&Script) -> bool,
{
    (0..script.steps.len()).all(|i| {
        let candidate = without_range(script, i, 1);
        candidate.steps.is_empty() || !keep(&candidate)
    })
}

fn without_range(script: &Script, start: usize, len: usize) -> Script {
    let steps: Vec<ScriptStep> = script
        .steps
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < start || *i >= start + len)
        .map(|(_, s)| s.clone())
        .collect();
    Script { name: script.name.clone(), group: script.group.clone(), steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::OsCommand;
    use sibylfs_core::flags::FileMode;

    fn script_of(paths: &[&str]) -> Script {
        let mut sc = Script::new("shrink___t", "explore");
        for p in paths {
            sc.call(OsCommand::Mkdir((*p).into(), FileMode::new(0o777)));
        }
        sc
    }

    #[test]
    fn shrinks_to_the_single_relevant_step() {
        let sc = script_of(&["a", "b", "target", "c", "d", "e", "f", "g"]);
        let keep = |s: &Script| {
            s.steps.iter().any(|st| {
                matches!(st, ScriptStep::Call { cmd: OsCommand::Mkdir(p, _), .. } if p == "target")
            })
        };
        let small = shrink(&sc, keep);
        assert_eq!(small.steps.len(), 1);
        assert!(is_one_minimal(&small, keep));
    }

    #[test]
    fn preserves_multi_step_dependencies() {
        // The predicate needs both "x" and "y": neither alone suffices, so
        // the minimum has exactly two steps.
        let sc = script_of(&["p", "x", "q", "r", "y", "s"]);
        let keep = |s: &Script| {
            let has = |needle: &str| {
                s.steps.iter().any(|st| {
                    matches!(st, ScriptStep::Call { cmd: OsCommand::Mkdir(p, _), .. } if p == needle)
                })
            };
            has("x") && has("y")
        };
        let small = shrink(&sc, keep);
        assert_eq!(small.steps.len(), 2);
        assert!(is_one_minimal(&small, keep));
    }

    #[test]
    fn failing_precondition_returns_the_input_unchanged() {
        let sc = script_of(&["a", "b"]);
        assert_eq!(shrink(&sc, |_| false), sc);
    }
}
