//! The exploration corpus: the set of scripts that have earned their place by
//! increasing coverage (or by distinguishing two backends), deduplicated by a
//! fingerprint of their rendered text and persisted with enough header
//! metadata to replay any entry in isolation.
//!
//! ## On-disk layout
//!
//! ```text
//! <corpus-dir>/
//!   explore___w0_i00042_s4fd1….script     # coverage-novel, minimized
//!   seed___open___gap_….script            # the known-hard starting corpus
//!   divergences/
//!     explore___w1_i00007_s9ab2….script   # backend-distinguishing testcase
//! ```
//!
//! Every file is a valid `@type script` file (parsable by `sibylfs exec`)
//! whose comment header records provenance: the base seed, worker and
//! iteration that produced it, the derived per-entry seed, the verdict its
//! trace received, and the coverage keys it was saved for. Comments are
//! ignored by the parser, so the files replay as ordinary scripts.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use sibylfs_core::coverage::CoverageKey;
use sibylfs_script::{render_script, Script};

/// Why an entry is in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A known-hard script the corpus was seeded with.
    Seed,
    /// A minimized script that reached at least one new coverage key.
    Coverage,
    /// A minimized script on which two backends' verdicts differ.
    Divergence,
}

impl EntryKind {
    fn label(self) -> &'static str {
        match self {
            EntryKind::Seed => "seed",
            EntryKind::Coverage => "coverage",
            EntryKind::Divergence => "divergence",
        }
    }
}

/// Provenance of a mutated entry: the chain of seeds that regenerates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// The run's base seed (`--seed`).
    pub base_seed: u64,
    /// The worker that produced the entry.
    pub worker: usize,
    /// The worker-local iteration counter.
    pub iter: u64,
    /// `split_seed(split_seed(base_seed, worker), iter)` — the RNG seed of
    /// the mutation that produced this script.
    pub derived_seed: u64,
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The (minimized) script.
    pub script: Script,
    /// Why it was kept.
    pub kind: EntryKind,
    /// Seed chain for mutated entries (`None` for seeds).
    pub provenance: Option<Provenance>,
    /// The coverage keys this entry was saved for.
    pub novel: Vec<CoverageKey>,
    /// Whether the checker accepted the entry's trace when it was saved
    /// (replays must reproduce exactly this verdict).
    pub accepted: bool,
}

/// The shared, fingerprint-deduplicated corpus. Wrapped in a
/// `parking_lot::Mutex` by the driver; the structure itself is single-threaded.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    fingerprints: HashSet<u64>,
}

/// FxHash fingerprint of a script's *steps* (the generated name plays no
/// part): cheap, deterministic and stable across runs — two behaviourally
/// identical scripts always collide, whatever they are called. Keys only the
/// dedup set, never persistence.
///
/// The step content is streamed straight into the hasher through a
/// `fmt::Write` adapter: no clone of the step list, no intermediate `String`
/// render, and path symbols are resolved to their *content* (symbol ids are
/// interning-order-dependent and would not be stable across runs).
pub fn fingerprint(script: &Script) -> u64 {
    use std::fmt::Write as _;
    use std::hash::Hasher as _;

    struct HashWrite(sibylfs_core::fxhash::FxHasher64);
    impl std::fmt::Write for HashWrite {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }

    let mut h = HashWrite(sibylfs_core::fxhash::FxHasher64::default());
    for step in &script.steps {
        match step {
            sibylfs_script::ScriptStep::Call { pid, cmd } => {
                let _ = write!(h, "c{}:{cmd};", pid.0);
            }
            sibylfs_script::ScriptStep::CreateProcess { pid, uid, gid } => {
                let _ = write!(h, "+{}:{}:{};", pid.0, uid.0, gid.0);
            }
            sibylfs_script::ScriptStep::DestroyProcess { pid } => {
                let _ = write!(h, "-{};", pid.0);
            }
        }
    }
    h.0.finish()
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert an entry unless a script with the same fingerprint is already
    /// present; `true` if it was added.
    pub fn insert(&mut self, entry: CorpusEntry) -> bool {
        if self.fingerprints.insert(fingerprint(&entry.script)) {
            self.entries.push(entry);
            true
        } else {
            false
        }
    }

    /// Pick a random entry to mutate next (uniform; every entry keeps pulling
    /// its weight — corpus growth is already biased towards novelty).
    pub fn pick(&self, rng: &mut StdRng) -> Option<&CorpusEntry> {
        self.entries.as_slice().choose(rng)
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }
}

/// Render the full corpus file for an entry: the standard script rendering
/// with the provenance header spliced in after the `# Test` line.
pub fn entry_file_text(entry: &CorpusEntry) -> String {
    let rendered = render_script(&entry.script);
    let mut header = String::new();
    match entry.provenance {
        Some(p) => {
            let _ = writeln!(
                header,
                "# explore: kind={} base-seed=0x{:016x} worker={} iter={} derived-seed=0x{:016x}",
                entry.kind.label(),
                p.base_seed,
                p.worker,
                p.iter,
                p.derived_seed
            );
        }
        None => {
            let _ = writeln!(header, "# explore: kind={}", entry.kind.label());
        }
    }
    let _ = writeln!(header, "# verdict: {}", if entry.accepted { "accepted" } else { "deviating" });
    for key in &entry.novel {
        match key {
            CoverageKey::Branch(p) => {
                let _ = writeln!(header, "# novel: branch {p}");
            }
            CoverageKey::Transition { syscall, outcome } => {
                let _ = writeln!(header, "# novel: transition {syscall} {outcome}");
            }
        }
    }
    // Splice after the `# Test` line (always present: entries are named).
    let mut out = String::with_capacity(rendered.len() + header.len());
    let mut spliced = false;
    for line in rendered.lines() {
        out.push_str(line);
        out.push('\n');
        if !spliced && line.starts_with("# Test ") {
            out.push_str(&header);
            spliced = true;
        }
    }
    if !spliced {
        out.push_str(&header);
    }
    out
}

/// The verdict recorded in a persisted corpus file, if any — the replay
/// harness compares a fresh check against this.
pub fn recorded_verdict(file_text: &str) -> Option<bool> {
    for line in file_text.lines() {
        if let Some(v) = line.trim().strip_prefix("# verdict: ") {
            return Some(v == "accepted");
        }
    }
    None
}

/// The coverage keys recorded in a persisted corpus file's `# novel:` lines.
pub fn recorded_novel_keys(file_text: &str) -> Vec<CoverageKey> {
    let mut out = Vec::new();
    for line in file_text.lines() {
        let Some(rest) = line.trim().strip_prefix("# novel: ") else { continue };
        let mut parts = rest.split_whitespace();
        match parts.next() {
            Some("branch") => {
                if let Some(p) = parts.next() {
                    out.push(CoverageKey::Branch(p.to_string()));
                }
            }
            Some("transition") => {
                if let (Some(s), Some(o)) = (parts.next(), parts.next()) {
                    out.push(CoverageKey::Transition {
                        syscall: s.to_string(),
                        outcome: o.to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Persist one entry under `dir` (divergences go to a subdirectory), creating
/// directories as needed. Returns the file path.
pub fn persist_entry(dir: &Path, entry: &CorpusEntry) -> io::Result<PathBuf> {
    let target_dir = match entry.kind {
        EntryKind::Divergence => dir.join("divergences"),
        _ => dir.to_path_buf(),
    };
    std::fs::create_dir_all(&target_dir)?;
    let path = target_dir.join(format!("{}.script", entry.script.name));
    std::fs::write(&path, entry_file_text(entry))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sibylfs_core::commands::OsCommand;
    use sibylfs_core::flags::FileMode;
    use sibylfs_script::parse_script;

    fn entry(name: &str, path: &str) -> CorpusEntry {
        let mut sc = Script::new(name, "explore");
        sc.call(OsCommand::Mkdir(path.into(), FileMode::new(0o777)));
        CorpusEntry {
            script: sc,
            kind: EntryKind::Coverage,
            provenance: Some(Provenance { base_seed: 42, worker: 1, iter: 7, derived_seed: 0xABCD }),
            novel: vec![
                CoverageKey::Branch("mkdir/success".into()),
                CoverageKey::Transition { syscall: "mkdir".into(), outcome: "ok/none".into() },
            ],
            accepted: true,
        }
    }

    #[test]
    fn dedup_is_by_script_content_not_name() {
        let mut c = Corpus::new();
        assert!(c.insert(entry("explore___a", "d")));
        // Same steps, same name → duplicate.
        assert!(!c.insert(entry("explore___a", "d")));
        // Same steps under a different generated name → still a duplicate
        // (a shrunk discovery that lands on an existing script's exact call
        // sequence must not inflate the corpus).
        assert!(!c.insert(entry("explore___b", "d")));
        // Different steps → new.
        assert!(c.insert(entry("explore___a", "e")));
        assert_eq!(c.len(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(c.pick(&mut rng).is_some());
    }

    #[test]
    fn entry_files_parse_as_scripts_and_round_trip_their_metadata() {
        let e = entry("explore___w1_i00007_s000000000000abcd", "d");
        let text = entry_file_text(&e);
        assert!(text.contains("# explore: kind=coverage base-seed=0x000000000000002a worker=1 iter=7"));
        assert!(text.contains("# verdict: accepted"));
        // The parser ignores the metadata comments and recovers the script.
        let parsed = parse_script(&text).unwrap();
        assert_eq!(parsed, e.script);
        assert_eq!(recorded_verdict(&text), Some(true));
        assert_eq!(recorded_novel_keys(&text), e.novel);
    }
}
