//! Script mutation operators.
//!
//! The exploration loop evolves scripts the way a coverage-guided fuzzer
//! evolves byte strings, except the unit of mutation is a libc call, not a
//! byte: calls are inserted (fresh random calls and spliced fragments of the
//! hand-written suite), perturbed (paths, open flags, modes, offsets,
//! descriptor numbers), reordered, duplicated, deleted, and re-interleaved
//! across processes. Every mutation is a pure function of the parent script
//! and the RNG, so a recorded seed replays the exact mutation.
//!
//! Mutated scripts are always *well-formed* with respect to process
//! lifecycles (calls come from live processes, creates use fresh pids, the
//! initial process is never destroyed): the simulation silently tolerates
//! malformed lifecycles where the model rejects them, so an unsanitised
//! mutator would flood the divergence detector with uninteresting findings.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use sibylfs_core::commands::OsCommand;
use sibylfs_core::obs;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{DirHandleId, Fd, Gid, Pid, Uid, INITIAL_PID};
use sibylfs_script::{Script, ScriptStep};
use sibylfs_testgen::random::random_command;
use sibylfs_testgen::sequences;

/// Paths the perturbation operator steers towards: the small colliding
/// universe of the random generator plus the syntactic edge cases
/// (empty, root, dots, trailing slashes, over-long names) that guard the
/// rarest path-resolution branches of the specification.
const PATHS: &[&str] = &[
    "a", "b", "c", "d", "e", "dir1", "dir2", "s1", "s2", "deep", "a/b", "dir1/a", "deep/deep",
    "", "/", ".", "..", "./a", "../a", "a/.", "a/..", "a/", "/a/b/", "dir1//a",
];

/// File modes spanning the permission-check space.
const MODES: &[u32] = &[0o000, 0o444, 0o555, 0o600, 0o644, 0o666, 0o700, 0o755, 0o777, 0o7777];

/// Offsets and lengths at the boundaries the model special-cases.
const OFFSETS: &[i64] = &[-2, -1, 0, 1, 2, 7, 100, 4096, i64::MAX - 1, i64::MAX];

/// Mutates scripts, splicing fragments from a fixed library of hand-written
/// suite scripts (sequential I/O, readdir, permissions, defect scenarios and
/// the model-gap fixtures — the inputs already known to reach hard states).
pub struct Mutator {
    splice_pool: Vec<Script>,
    /// Bound on the number of steps a mutated script may grow to.
    max_steps: usize,
}

impl Mutator {
    /// Build the mutator with the standard splice pool.
    pub fn new(max_steps: usize) -> Mutator {
        let mut splice_pool = Vec::new();
        splice_pool.extend(sequences::io_sequence_scripts());
        splice_pool.extend(sequences::readdir_scripts());
        splice_pool.extend(sequences::permission_scripts());
        splice_pool.extend(sequences::defect_scenario_scripts());
        splice_pool.extend(sequences::model_gap_scripts().into_iter().map(|(sc, _)| sc));
        Mutator { splice_pool, max_steps }
    }

    /// Produce one mutated child of `parent`. Deterministic in the RNG state.
    pub fn mutate(&self, parent: &Script, rng: &mut StdRng, name: impl Into<String>) -> Script {
        let mut steps = parent.steps.clone();
        let rounds = rng.gen_range(1..=3);
        for _ in 0..rounds {
            match rng.gen_range(0..8) {
                0 => {
                    obs::m::MUT_INSERT_TOTAL.inc();
                    self.insert_random_call(&mut steps, rng);
                }
                1 => {
                    obs::m::MUT_SPLICE_TOTAL.inc();
                    self.splice(&mut steps, rng);
                }
                // Perturbation pulls double weight in the op distribution.
                2 | 3 => {
                    obs::m::MUT_PERTURB_TOTAL.inc();
                    self.perturb(&mut steps, rng);
                }
                4 => {
                    obs::m::MUT_DELETE_TOTAL.inc();
                    self.delete(&mut steps, rng);
                }
                5 => {
                    obs::m::MUT_DUPLICATE_TOTAL.inc();
                    self.duplicate(&mut steps, rng);
                }
                6 => {
                    obs::m::MUT_SWAP_TOTAL.inc();
                    self.swap(&mut steps, rng);
                }
                _ => {
                    obs::m::MUT_INTERLEAVE_TOTAL.inc();
                    self.interleave(&mut steps, rng);
                }
            }
        }
        sanitize(&mut steps, self.max_steps);
        if !steps.iter().any(|s| matches!(s, ScriptStep::Call { .. })) {
            steps.push(ScriptStep::Call { pid: INITIAL_PID, cmd: random_command(rng) });
        }
        Script { name: name.into(), group: "explore".to_string(), steps }
    }

    fn insert_random_call(&self, steps: &mut Vec<ScriptStep>, rng: &mut StdRng) {
        let at = rng.gen_range(0..=steps.len());
        steps.insert(at, ScriptStep::Call { pid: INITIAL_PID, cmd: random_command(rng) });
    }

    fn splice(&self, steps: &mut Vec<ScriptStep>, rng: &mut StdRng) {
        let Some(source) = self.splice_pool.choose(rng) else { return };
        let calls: Vec<&OsCommand> = source
            .steps
            .iter()
            .filter_map(|s| match s {
                ScriptStep::Call { cmd, .. } => Some(cmd),
                _ => None,
            })
            .collect();
        if calls.is_empty() {
            return;
        }
        let len = rng.gen_range(1..=calls.len().min(5));
        let start = rng.gen_range(0..=calls.len() - len);
        let at = rng.gen_range(0..=steps.len());
        for (k, cmd) in calls[start..start + len].iter().enumerate() {
            steps.insert(at + k, ScriptStep::Call { pid: INITIAL_PID, cmd: (*cmd).clone() });
        }
    }

    fn perturb(&self, steps: &mut [ScriptStep], rng: &mut StdRng) {
        let call_positions: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, ScriptStep::Call { .. }).then_some(i))
            .collect();
        let Some(&at) = call_positions.choose(rng) else { return };
        if let ScriptStep::Call { cmd, .. } = &mut steps[at] {
            perturb_command(cmd, rng);
        }
    }

    fn delete(&self, steps: &mut Vec<ScriptStep>, rng: &mut StdRng) {
        if steps.is_empty() {
            return;
        }
        let at = rng.gen_range(0..steps.len());
        steps.remove(at);
    }

    fn duplicate(&self, steps: &mut Vec<ScriptStep>, rng: &mut StdRng) {
        let call_positions: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, ScriptStep::Call { .. }).then_some(i))
            .collect();
        let Some(&at) = call_positions.choose(rng) else { return };
        let step = steps[at].clone();
        steps.insert(at, step);
    }

    fn swap(&self, steps: &mut [ScriptStep], rng: &mut StdRng) {
        if steps.len() < 2 {
            return;
        }
        let a = rng.gen_range(0..steps.len());
        let b = rng.gen_range(0..steps.len());
        steps.swap(a, b);
    }

    /// Move a contiguous range of calls onto a newly created process with its
    /// own credentials — the concurrent-process interleaving operator that
    /// drives the permission and multi-process branches of the model.
    fn interleave(&self, steps: &mut Vec<ScriptStep>, rng: &mut StdRng) {
        if steps.is_empty() {
            return;
        }
        let max_pid = steps
            .iter()
            .map(|s| match s {
                ScriptStep::Call { pid, .. } => pid.0,
                ScriptStep::CreateProcess { pid, .. } => pid.0,
                ScriptStep::DestroyProcess { pid } => pid.0,
            })
            .max()
            .unwrap_or(INITIAL_PID.0);
        let pid = Pid(max_pid + 1);
        let (uid, gid) = *[(Uid(0), Gid(0)), (Uid(1000), Gid(1000)), (Uid(2000), Gid(2000))]
            .choose(rng)
            .expect("non-empty");
        let start = rng.gen_range(0..steps.len());
        let len = rng.gen_range(1..=(steps.len() - start).min(4));
        for step in steps.iter_mut().skip(start).take(len) {
            if let ScriptStep::Call { pid: p, .. } = step {
                *p = pid;
            }
        }
        steps.insert(start, ScriptStep::CreateProcess { pid, uid, gid });
        if rng.gen_bool(0.5) {
            steps.push(ScriptStep::DestroyProcess { pid });
        }
    }
}

fn perturb_path(path: &mut sibylfs_core::path::ParsedPath, rng: &mut StdRng) {
    // Perturbation is a text-level operation (it deliberately produces
    // un-normalised paths: doubled slashes, overlong components); the result
    // re-enters the interner through one parse. The interner is append-only
    // (strings are leaked by design), so the mutator must not manufacture an
    // unbounded stream of ever-longer texts: a long-running fuzz would grow
    // process memory monotonically. Capping at just past PATH_MAX keeps the
    // path-too-long envelope reachable while bounding each interned string;
    // slash-append chains reset once they blow past the cap.
    const MAX_PERTURBED_LEN: usize = 4200;
    let mut text = path.as_str().to_string();
    if text.len() > MAX_PERTURBED_LEN {
        text = (*PATHS.choose(rng).expect("non-empty")).to_string();
    }
    match rng.gen_range(0..5) {
        0 => text = (*PATHS.choose(rng).expect("non-empty")).to_string(),
        1 => text.push('/'),
        2 => {
            if text.starts_with('/') {
                text.remove(0);
            } else {
                text.insert(0, '/');
            }
        }
        3 => {
            text.push('/');
            text.push_str(PATHS.choose(rng).expect("non-empty"));
        }
        _ => text = "n".repeat(rng.gen_range(250..300)),
    }
    *path = sibylfs_core::path::ParsedPath::parse(&text);
}

fn perturb_command(cmd: &mut OsCommand, rng: &mut StdRng) {
    let mode = FileMode::new(*MODES.choose(rng).expect("non-empty"));
    let offset = *OFFSETS.choose(rng).expect("non-empty");
    match cmd {
        OsCommand::Chdir(p)
        | OsCommand::Opendir(p)
        | OsCommand::Readlink(p)
        | OsCommand::Rmdir(p)
        | OsCommand::Stat(p)
        | OsCommand::Lstat(p)
        | OsCommand::Unlink(p) => perturb_path(p, rng),
        OsCommand::Chmod(p, m) => {
            if rng.gen_bool(0.5) {
                perturb_path(p, rng);
            } else {
                *m = mode;
            }
        }
        OsCommand::Chown(p, uid, gid) => match rng.gen_range(0..3) {
            0 => perturb_path(p, rng),
            1 => *uid = Uid([0, 1000, 2000, 3000][rng.gen_range(0..4usize)]),
            _ => *gid = Gid([0, 500, 777, 888, 1000][rng.gen_range(0..5usize)]),
        },
        OsCommand::Mkdir(p, m) => {
            if rng.gen_bool(0.5) {
                perturb_path(p, rng);
            } else {
                *m = mode;
            }
        }
        OsCommand::Open(p, flags, m) => match rng.gen_range(0..3) {
            0 => perturb_path(p, rng),
            1 => {
                let (_, flag) =
                    OpenFlags::NAMED[rng.gen_range(0..OpenFlags::NAMED.len())];
                *flags = if flags.contains(flag) { flags.without(flag) } else { flags.with(flag) };
            }
            _ => *m = if rng.gen_bool(0.2) { None } else { Some(mode) },
        },
        OsCommand::Link(a, b) | OsCommand::Symlink(a, b) | OsCommand::Rename(a, b) => {
            if rng.gen_bool(0.5) {
                perturb_path(a, rng);
            } else {
                perturb_path(b, rng);
            }
        }
        OsCommand::Close(fd) | OsCommand::Read(fd, ..) | OsCommand::Write(fd, ..) => {
            *fd = Fd(rng.gen_range(0..8));
        }
        OsCommand::Lseek(fd, off, whence) => match rng.gen_range(0..3) {
            0 => *fd = Fd(rng.gen_range(0..8)),
            1 => *off = offset,
            _ => {
                *whence = *[SeekWhence::Set, SeekWhence::Cur, SeekWhence::End]
                    .choose(rng)
                    .expect("non-empty")
            }
        },
        OsCommand::Pread(fd, count, off) => match rng.gen_range(0..3) {
            0 => *fd = Fd(rng.gen_range(0..8)),
            1 => *count = rng.gen_range(0..128),
            _ => *off = offset,
        },
        OsCommand::Pwrite(fd, data, off) => match rng.gen_range(0..3) {
            0 => *fd = Fd(rng.gen_range(0..8)),
            1 => *data = vec![b'm'; rng.gen_range(0..64)],
            _ => *off = offset,
        },
        OsCommand::Readdir(dh) | OsCommand::Rewinddir(dh) | OsCommand::Closedir(dh) => {
            *dh = DirHandleId(rng.gen_range(0..4));
        }
        OsCommand::Truncate(p, len) => {
            if rng.gen_bool(0.5) {
                perturb_path(p, rng);
            } else {
                *len = offset;
            }
        }
        OsCommand::Umask(m) => *m = mode,
        OsCommand::AddUserToGroup(uid, gid) => {
            *uid = Uid([1000, 2000, 3000][rng.gen_range(0..3usize)]);
            *gid = Gid([500, 777, 888][rng.gen_range(0..3usize)]);
        }
    }
}

/// Repair process lifecycles after mutation so only the *model-relevant*
/// behaviour of a script varies: calls come from live processes, creates use
/// globally fresh pids, destroys hit live non-initial processes, and the step
/// count stays within `max_steps`.
pub fn sanitize(steps: &mut Vec<ScriptStep>, max_steps: usize) {
    steps.truncate(max_steps);
    let mut alive = vec![INITIAL_PID];
    let mut max_pid = INITIAL_PID.0;
    let mut fixed = Vec::with_capacity(steps.len());
    for step in steps.drain(..) {
        match step {
            ScriptStep::Call { pid, cmd } => {
                let pid = if alive.contains(&pid) {
                    pid
                } else {
                    // Deterministic repair: route the orphaned call through
                    // the most recently created live process.
                    *alive.last().expect("the initial process is never removed")
                };
                fixed.push(ScriptStep::Call { pid, cmd });
            }
            ScriptStep::CreateProcess { pid, uid, gid } => {
                let pid = if alive.contains(&pid) || pid.0 <= max_pid {
                    Pid(max_pid + 1)
                } else {
                    pid
                };
                max_pid = max_pid.max(pid.0);
                alive.push(pid);
                fixed.push(ScriptStep::CreateProcess { pid, uid, gid });
            }
            ScriptStep::DestroyProcess { pid } => {
                if pid != INITIAL_PID && alive.contains(&pid) {
                    alive.retain(|p| *p != pid);
                    fixed.push(ScriptStep::DestroyProcess { pid });
                }
            }
        }
    }
    *steps = fixed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sibylfs_testgen::random::split_seed;

    fn parent() -> Script {
        let mut sc = Script::new("seed___parent", "explore");
        sc.call(OsCommand::Mkdir("d".into(), FileMode::new(0o777)))
            .call(OsCommand::Stat("d".into()))
            .call(OsCommand::Rmdir("d".into()));
        sc
    }

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let m = Mutator::new(40);
        let p = parent();
        for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
            let a = m.mutate(&p, &mut StdRng::seed_from_u64(seed), "explore___t");
            let b = m.mutate(&p, &mut StdRng::seed_from_u64(seed), "explore___t");
            assert_eq!(a, b);
        }
        let a = m.mutate(&p, &mut StdRng::seed_from_u64(1), "explore___t");
        let c = m.mutate(&p, &mut StdRng::seed_from_u64(2), "explore___t");
        assert_ne!(a.steps, c.steps, "different seeds should give different children");
    }

    #[test]
    fn mutated_scripts_have_well_formed_process_lifecycles() {
        let m = Mutator::new(40);
        let mut script = parent();
        let mut rng = StdRng::seed_from_u64(99);
        // Stack hundreds of mutations and verify the invariants hold at every
        // generation (lifecycle validity is what keeps sim-vs-model
        // divergence detection signal-only).
        for i in 0..300 {
            script = m.mutate(&script, &mut rng, format!("explore___g{i}"));
            let mut alive = vec![INITIAL_PID];
            let mut seen_pids = vec![INITIAL_PID];
            assert!(script.steps.len() <= 41, "growth unbounded: {}", script.steps.len());
            assert!(script.call_count() >= 1);
            for step in &script.steps {
                match step {
                    ScriptStep::Call { pid, .. } => {
                        assert!(alive.contains(pid), "call from dead pid {pid:?}");
                    }
                    ScriptStep::CreateProcess { pid, .. } => {
                        assert!(!seen_pids.contains(pid), "pid {pid:?} reused");
                        alive.push(*pid);
                        seen_pids.push(*pid);
                    }
                    ScriptStep::DestroyProcess { pid } => {
                        assert_ne!(*pid, INITIAL_PID);
                        assert!(alive.contains(pid), "destroy of dead pid {pid:?}");
                        alive.retain(|p| p != pid);
                    }
                }
            }
        }
    }

    #[test]
    fn split_seeded_mutations_cover_distinct_children() {
        let m = Mutator::new(40);
        let p = parent();
        let children: std::collections::BTreeSet<String> = (0..32)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(split_seed(42, i));
                sibylfs_script::render_script(&m.mutate(&p, &mut rng, "explore___x"))
            })
            .collect();
        assert!(children.len() >= 24, "only {} distinct children from 32 seeds", children.len());
    }
}
