//! # SibylFS coverage-guided model exploration
//!
//! The test suite of the paper is *static*: a fixed set of combinatorial and
//! hand-written scripts. This crate closes the feedback loop — like
//! coverage-risk-driven ridge selection, a measurable coverage objective
//! steers generation instead of blind sampling. The engine maintains a corpus
//! of interesting scripts, mutates them ([`mutate`]), executes the children on
//! a backend (the deterministic simulation by default, or the real host in
//! differential mode), checks the resulting traces against the model, and
//! keeps exactly those children that light up a coverage key
//! ([`sibylfs_core::coverage::CoverageKey`]) nothing else has reached — after
//! first minimizing them with the delta-debugging shrinker ([`shrink`]).
//!
//! ## Determinism and replay
//!
//! All randomness derives from one base seed through
//! [`sibylfs_testgen::random::split_seed`]: worker `w` owns
//! `split_seed(seed, w)`, and its iteration `i` owns
//! `split_seed(split_seed(seed, w), i)` — the *derived seed* recorded in the
//! header of every persisted corpus entry. The saved script itself replays
//! without any seed (execution and checking are deterministic); the seed
//! chain additionally pins the mutation that produced it. With more than one
//! worker the *set* of discoveries depends on scheduling (novelty is judged
//! against a shared map), but every individual entry is self-contained.
//!
//! ## Differential mode
//!
//! With [`Backend::Host`], every child runs on both the simulation and the
//! real kernel; any sim-vs-host verdict mismatch (modulo the two documented
//! kernel divergences) is itself a finding, shrunk and saved under
//! `divergences/` in the corpus directory.

pub mod corpus;
pub mod mutate;
pub mod shrink;

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sibylfs_check::{check_trace_with_coverage, CheckOptions, CheckedTrace, Deviation};
use sibylfs_core::coverage::{CoverageKey, CoverageMap};
use sibylfs_core::flavor::{Flavor, SpecConfig};
use sibylfs_core::obs;
use sibylfs_exec::{ExecError, ExecOptions, ExecPipeline, Executor, SimExecutor};
use sibylfs_fsimpl::configs;
use sibylfs_report::render_coverage_map_markdown;
use sibylfs_script::Script;
use sibylfs_testgen::random::split_seed;
use sibylfs_testgen::sequences;
use sibylfs_testgen::{generate_suite, SuiteOptions};

use corpus::{Corpus, CorpusEntry, EntryKind, Provenance};
use mutate::Mutator;
use shrink::shrink;

/// Which executor(s) the exploration loop drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The in-process simulation only (deterministic, fast, default).
    Sim,
    /// Differential mode: every child runs on the real host kernel *and* the
    /// simulation; verdict mismatches are saved as distinguishing testcases.
    Host,
}

impl Backend {
    /// Short label used by reports.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Host => "host",
        }
    }
}

/// What the initial global coverage (the novelty reference) is seeded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// Execute and check the full static quick suite first; exploration then
    /// hunts only what that suite does not reach. This is the production mode
    /// (and what the acceptance gate measures against).
    QuickSuite,
    /// Start from the corpus seeds only — cheaper; used by unit tests.
    SeedsOnly,
}

/// Options for one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// The simulated configuration under test (also the sim half of
    /// differential mode).
    pub config: String,
    /// The model flavour traces are checked against.
    pub flavor: Flavor,
    /// Sim-only or sim-vs-host differential.
    pub backend: Backend,
    /// Stop after this many iterations (children evaluated).
    pub iterations: Option<u64>,
    /// Stop after this much wall-clock time. If neither bound is given, a
    /// 60-second budget is used.
    pub time_budget: Option<Duration>,
    /// Base seed; every other seed in the run derives from it.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Where to persist corpus entries (`None`: in-memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Bound on mutated script length, in steps.
    pub max_steps: usize,
    /// How many mutants each worker generates per round before executing
    /// them all through the shared execution pipeline. Larger batches keep
    /// the pipeline (and, in differential mode, the pooled host workers)
    /// busy; `1` restores strictly-sequential per-mutant evaluation.
    pub batch: usize,
    /// What the novelty reference starts from.
    pub baseline: BaselineMode,
    /// Print a live stats line to stderr.
    pub progress: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            config: "linux/tmpfs".to_string(),
            flavor: Flavor::Linux,
            backend: Backend::Sim,
            iterations: None,
            time_budget: None,
            seed: 42,
            workers: std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(2),
            corpus_dir: None,
            max_steps: 40,
            batch: 8,
            baseline: BaselineMode::QuickSuite,
            progress: false,
        }
    }
}

/// Why an exploration run could not start (or finish).
#[derive(Debug)]
pub enum ExploreError {
    /// `--config` names no registered simulated configuration.
    UnknownConfig(String),
    /// Differential mode requested where the host sandbox cannot be built.
    HostUnavailable(String),
    /// Persisting the corpus failed.
    Io(std::io::Error),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::UnknownConfig(name) => {
                write!(f, "unknown configuration {name:?} (see `sibylfs configs`)")
            }
            ExploreError::HostUnavailable(why) => {
                write!(f, "host backend unavailable: {why}")
            }
            ExploreError::Io(e) => write!(f, "corpus I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<std::io::Error> for ExploreError {
    fn from(e: std::io::Error) -> Self {
        ExploreError::Io(e)
    }
}

/// The result of an exploration run.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// The configuration explored.
    pub config: String,
    /// The flavour checked against.
    pub flavor: Flavor,
    /// `"sim"` or `"host"`.
    pub backend: &'static str,
    /// The base seed of the run.
    pub seed: u64,
    /// Children evaluated.
    pub iterations: u64,
    /// Wall-clock seconds spent exploring (baseline excluded).
    pub elapsed_secs: f64,
    /// Coverage of the novelty reference before exploring.
    pub baseline: CoverageMap,
    /// Final cumulative coverage.
    pub coverage: CoverageMap,
    /// Keys exploration reached that the baseline did not.
    pub novel_keys: Vec<CoverageKey>,
    /// Corpus size at the end (seeds + discoveries).
    pub corpus_len: usize,
    /// Files persisted (empty without `corpus_dir`).
    pub saved: Vec<PathBuf>,
    /// Backend-distinguishing (or model-deviating) testcases found.
    pub divergences: usize,
    /// Host-execution failures skipped (differential mode only).
    pub exec_errors: usize,
    /// Mutants statically rejected by the linter (execution skipped).
    pub lint_rejected: usize,
    /// Mutants statically repaired (doomed steps dropped) before execution.
    pub lint_repaired: usize,
}

impl ExploreOutcome {
    /// The headline branch-coverage percentages (baseline, final).
    pub fn coverage_percents(&self) -> (f64, f64) {
        (self.baseline.branch_summary().percent(), self.coverage.branch_summary().percent())
    }

    /// Render the final markdown report: run header, coverage delta, novel
    /// keys, and the full coverage map (per-syscall errno-envelope table plus
    /// the uncovered-transition list).
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (base_pct, final_pct) = self.coverage_percents();
        let _ = writeln!(out, "# Exploration report\n");
        let _ = writeln!(
            out,
            "* configuration: `{}`  model: `{}`  backend: {}  seed: {}",
            self.config,
            self.flavor.name(),
            self.backend,
            self.seed
        );
        let _ = writeln!(
            out,
            "* iterations: {}  elapsed: {:.1}s  corpus: {} entries  divergences: {}",
            self.iterations, self.elapsed_secs, self.corpus_len, self.divergences
        );
        let rejected_pct = if self.iterations > 0 {
            self.lint_rejected as f64 * 100.0 / self.iterations as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "* static pre-filter: {} mutant(s) rejected ({rejected_pct:.1}% of iterations, \
             execution skipped), {} repaired",
            self.lint_rejected, self.lint_repaired
        );
        let _ = writeln!(
            out,
            "* baseline coverage: {:.1}% branches, {} transitions",
            base_pct,
            self.baseline.transition_count()
        );
        let _ = writeln!(
            out,
            "* explored coverage: {:.1}% branches, {} transitions ({} novel key(s))\n",
            final_pct,
            self.coverage.transition_count(),
            self.novel_keys.len()
        );
        if !self.novel_keys.is_empty() {
            let _ = writeln!(out, "Keys first reached by exploration:\n");
            for key in self.novel_keys.iter().take(40) {
                match key {
                    CoverageKey::Branch(p) => {
                        let _ = writeln!(out, "* branch `{p}`");
                    }
                    CoverageKey::Transition { syscall, outcome } => {
                        let _ = writeln!(out, "* transition `{syscall}` → `{outcome}`");
                    }
                }
            }
            if self.novel_keys.len() > 40 {
                let _ = writeln!(out, "* … and {} more", self.novel_keys.len() - 40);
            }
            let _ = writeln!(out);
        }
        out.push_str(&render_coverage_map_markdown(&self.coverage));
        out
    }
}

/// The two documented real-kernel divergences from the differential-harness
/// PR; in differential mode these must not register as findings on every
/// iteration. Kept in sync with `tests/host_differential.rs`.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn known_host_divergence(d: &Deviation) -> bool {
    (d.function == "open"
        && d.observed.starts_with("RV_fd(")
        && d.call.contains("[O_WRONLY;O_RDWR"))
        // The mutator also seeks to i64::MAX - 1, hence the truncated match.
        || (d.function == "lseek"
            && d.observed.starts_with("EINVAL")
            && d.call.contains("922337203685477580"))
        // The modelled MAX_FILE_SIZE is deliberately far below any real
        // kernel's s_maxbytes, so a sparse write/truncate between the two
        // limits succeeds on the host where the model answers EFBIG.
        || (matches!(d.function.as_str(), "truncate" | "pwrite" | "write")
            && (d.observed.starts_with("RV_none") || d.observed.starts_with("RV_num("))
            && d.allowed.iter().any(|a| a.contains("EFBIG")))
}

/// One evaluated child.
struct Eval {
    checked: CheckedTrace,
    cov: CoverageMap,
}

fn evaluate(exec: &dyn Executor, cfg: &SpecConfig, script: &Script) -> Result<Eval, ExecError> {
    let trace = exec.execute_script(script, ExecOptions::default())?;
    let (checked, cov) = check_trace_with_coverage(cfg, &trace, CheckOptions::default());
    Ok(Eval { checked, cov })
}

/// Shared cross-worker state.
struct Shared {
    corpus: Mutex<Corpus>,
    global: Mutex<CoverageMap>,
    /// Deviation/divergence signatures already saved, so one root cause does
    /// not flood the corpus.
    divergence_sigs: Mutex<std::collections::BTreeSet<(String, String)>>,
    saved: Mutex<Vec<PathBuf>>,
    iterations: AtomicU64,
    novel_entries: AtomicUsize,
    divergences: AtomicUsize,
    exec_errors: AtomicUsize,
    /// Mutants the static linter rejected outright (no calls left after
    /// dropping doomed steps), saving an execution each.
    lint_rejected: AtomicUsize,
    /// Mutants the linter repaired (doomed steps dropped) before execution.
    lint_repaired: AtomicUsize,
    active_workers: AtomicUsize,
    stop: AtomicBool,
}

/// The executors every explore worker shares: one simulator (and, in
/// differential mode, one pooled host backend), each fronted by an
/// [`ExecPipeline`] so a worker's whole mutant batch executes concurrently.
struct ExecCtx<'a> {
    sim: &'a SimExecutor,
    pipe_sim: &'a ExecPipeline,
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    host: Option<&'a sibylfs_exec::HostFs>,
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    pipe_host: Option<&'a ExecPipeline>,
}

/// Run the exploration loop.
pub fn explore(opts: &ExploreOptions) -> Result<ExploreOutcome, ExploreError> {
    let profile = configs::by_name(&opts.config)
        .ok_or_else(|| ExploreError::UnknownConfig(opts.config.clone()))?;
    if opts.backend == Backend::Host && !sibylfs_exec::host_backend_available() {
        return Err(ExploreError::HostUnavailable(
            "needs Linux with chroot privilege".to_string(),
        ));
    }
    let cfg = SpecConfig::standard(opts.flavor);
    let sim = SimExecutor::new(profile.clone());

    // --- Baseline: what does the static suite already reach? -------------
    let mut baseline = CoverageMap::new();
    if opts.baseline == BaselineMode::QuickSuite {
        for script in generate_suite(SuiteOptions::quick()) {
            if let Ok(eval) = evaluate(&sim, &cfg, &script) {
                baseline.merge(&eval.cov);
            }
        }
    }

    // --- Seed the corpus with the known-hard scripts ---------------------
    let mut corpus0 = Corpus::new();
    let mut global0 = baseline.clone();
    let mut saved0 = Vec::new();
    let seed_scripts: Vec<Script> = sequences::model_gap_scripts()
        .into_iter()
        .map(|(sc, _)| sc)
        .chain(sequences::defect_scenario_scripts())
        .collect();
    for script in seed_scripts {
        let eval = evaluate(&sim, &cfg, &script).expect("the simulation is infallible");
        global0.merge(&eval.cov);
        let entry = CorpusEntry {
            script,
            kind: EntryKind::Seed,
            provenance: None,
            novel: Vec::new(),
            accepted: eval.checked.accepted,
        };
        if corpus0.insert(entry) {
            if let Some(dir) = &opts.corpus_dir {
                let e = corpus0.entries().last().expect("just inserted");
                saved0.push(corpus::persist_entry(dir, e)?);
            }
        }
    }
    if opts.baseline == BaselineMode::SeedsOnly {
        baseline = global0.clone();
    }
    obs::m::EXPLORE_CORPUS_SIZE.set(corpus0.len() as i64);

    let shared = Shared {
        corpus: Mutex::new(corpus0),
        global: Mutex::new(global0),
        divergence_sigs: Mutex::new(Default::default()),
        saved: Mutex::new(saved0),
        iterations: AtomicU64::new(0),
        novel_entries: AtomicUsize::new(0),
        divergences: AtomicUsize::new(0),
        exec_errors: AtomicUsize::new(0),
        lint_rejected: AtomicUsize::new(0),
        lint_repaired: AtomicUsize::new(0),
        active_workers: AtomicUsize::new(opts.workers),
        stop: AtomicBool::new(false),
    };
    let mutator = Mutator::new(opts.max_steps);
    let budget = match (opts.iterations, opts.time_budget) {
        (None, None) => Some(Duration::from_secs(60)),
        (_, tb) => tb,
    };

    // One executor pair for the whole run: all workers feed the same
    // pipelines, so mutant batches from different workers interleave over the
    // executor threads (and the persistent host jails) instead of each worker
    // paying its own setup.
    let sim_arc = std::sync::Arc::new(sim);
    let pipe_sim = ExecPipeline::new(sim_arc.clone(), opts.workers.max(1));
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    let host_arc = (opts.backend == Backend::Host)
        .then(|| std::sync::Arc::new(sibylfs_exec::HostFs::pooled(opts.workers.max(1))));
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    let pipe_host = host_arc
        .clone()
        .map(|h| ExecPipeline::new(h as std::sync::Arc<dyn Executor + Send + Sync>, opts.workers.max(1)));
    let ctx = ExecCtx {
        sim: &sim_arc,
        pipe_sim: &pipe_sim,
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        host: host_arc.as_deref(),
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        pipe_host: pipe_host.as_ref(),
    };
    let start = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..opts.workers {
            let shared = &shared;
            let mutator = &mutator;
            let cfg = &cfg;
            let opts_ref = opts;
            let ctx = &ctx;
            scope.spawn(move || {
                worker_loop(w, opts_ref, ctx, cfg, mutator, shared, start, budget);
                shared.active_workers.fetch_sub(1, Ordering::SeqCst);
            });
        }
        if opts.progress {
            let shared = &shared;
            scope.spawn(move || {
                while shared.active_workers.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(500));
                    let pct = shared.global.lock().branch_summary().percent();
                    eprint!(
                        "\rexplore: {} iters, corpus {}, coverage {:.1}% branches, {} novel, {} divergences, {} lint-rejected   ",
                        shared.iterations.load(Ordering::Relaxed),
                        shared.corpus.lock().len(),
                        pct,
                        shared.novel_entries.load(Ordering::Relaxed),
                        shared.divergences.load(Ordering::Relaxed),
                        shared.lint_rejected.load(Ordering::Relaxed),
                    );
                }
                eprintln!();
            });
        }
    });

    let elapsed_secs = start.elapsed().as_secs_f64();
    let coverage = shared.global.into_inner();
    let novel_keys = coverage.novel_versus(&baseline);
    Ok(ExploreOutcome {
        config: opts.config.clone(),
        flavor: opts.flavor,
        backend: opts.backend.label(),
        seed: opts.seed,
        iterations: shared.iterations.load(Ordering::SeqCst),
        elapsed_secs,
        baseline,
        coverage,
        novel_keys,
        corpus_len: shared.corpus.into_inner().len(),
        saved: shared.saved.into_inner(),
        divergences: shared.divergences.load(Ordering::SeqCst),
        exec_errors: shared.exec_errors.load(Ordering::SeqCst),
        lint_rejected: shared.lint_rejected.load(Ordering::SeqCst),
        lint_repaired: shared.lint_repaired.load(Ordering::SeqCst),
    })
}

/// One mutant planned for batch execution.
struct Planned {
    child: Script,
    provenance: Provenance,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    opts: &ExploreOptions,
    ctx: &ExecCtx<'_>,
    cfg: &SpecConfig,
    mutator: &Mutator,
    shared: &Shared,
    start: Instant,
    budget: Option<Duration>,
) {
    let sim = ctx.sim;
    let worker_seed = split_seed(opts.seed, worker as u64);
    let mut iter: u64 = 0;
    let batch_size = opts.batch.max(1);

    loop {
        // --- Plan a batch of mutants (seed chain identical to the old
        // one-at-a-time loop: worker w, iteration i still owns
        // split_seed(split_seed(seed, w), i)). --------------------------
        let mut planned: Vec<Planned> = Vec::with_capacity(batch_size);
        while planned.len() < batch_size {
            if shared.stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(b) = budget {
                if start.elapsed() >= b {
                    shared.stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            if let Some(max) = opts.iterations {
                if shared.iterations.fetch_add(1, Ordering::SeqCst) >= max {
                    shared.iterations.fetch_sub(1, Ordering::SeqCst);
                    shared.stop.store(true, Ordering::Relaxed);
                    break;
                }
            } else {
                shared.iterations.fetch_add(1, Ordering::SeqCst);
            }
            obs::m::EXPLORE_ITERATIONS_TOTAL.inc();

            let derived = split_seed(worker_seed, iter);
            let provenance =
                Provenance { base_seed: opts.seed, worker, iter, derived_seed: derived };
            iter += 1;
            let mut rng = StdRng::seed_from_u64(derived);
            let parent = {
                let corpus = shared.corpus.lock();
                corpus
                    .pick(&mut rng)
                    .expect("the corpus is seeded before workers start")
                    .script
                    .clone()
            };
            let name = format!("explore___w{worker}_i{:05}_s{derived:016x}", provenance.iter);
            let child = mutator.mutate(&parent, &mut rng, name);

            // Static pre-exec filter: drop statically-doomed steps whose every
            // predicted coverage key is already reached globally; skip children
            // with no calls left. Steps predicting a *novel* key are kept, so
            // the filter can only save executions, never coverage.
            let repair = {
                let global = shared.global.lock();
                sibylfs_analyze::repair_for_explore(&child, &global)
            };
            let child = match repair {
                sibylfs_analyze::RepairOutcome::Clean => child,
                sibylfs_analyze::RepairOutcome::Repaired(repaired, _dropped) => {
                    shared.lint_repaired.fetch_add(1, Ordering::Relaxed);
                    obs::m::EXPLORE_LINT_REPAIRED_TOTAL.inc();
                    repaired
                }
                sibylfs_analyze::RepairOutcome::Rejected => {
                    shared.lint_rejected.fetch_add(1, Ordering::Relaxed);
                    obs::m::EXPLORE_LINT_REJECTED_TOTAL.inc();
                    continue;
                }
            };
            planned.push(Planned { child, provenance });
        }
        if planned.is_empty() {
            break; // stopped (or budget hit) with nothing left to evaluate
        }

        // --- Execute the whole batch through the shared pipeline(s):
        // this worker's mutants run concurrently over the executor threads
        // (and, in differential mode, the persistent host jails), and
        // interleave with every other worker's batches. ------------------
        let scripts: Vec<Script> = planned.iter().map(|p| p.child.clone()).collect();
        let sim_traces = ctx.pipe_sim.execute_batch(&scripts, ExecOptions::default());
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        let host_traces: Vec<Option<Result<sibylfs_script::Trace, ExecError>>> =
            match ctx.pipe_host {
                Some(pipe) => pipe
                    .execute_batch(&scripts, ExecOptions::default())
                    .into_iter()
                    .map(Some)
                    .collect(),
                None => planned.iter().map(|_| None).collect(),
            };
        #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
        let host_traces: Vec<Option<Result<sibylfs_script::Trace, ExecError>>> =
            planned.iter().map(|_| None).collect();

        // --- Process results in claim order (novelty, divergences, and
        // shrinking are deterministic per mutant given the shared state). --
        for ((p, sim_res), host_res) in
            planned.into_iter().zip(sim_traces).zip(host_traces)
        {
            let _span = obs::span("explore", "explore_iter");
            let Planned { child, provenance } = p;
            let trace = match sim_res {
                Ok(t) => t,
                Err(_) => {
                    shared.exec_errors.fetch_add(1, Ordering::Relaxed);
                    obs::m::EXPLORE_EXEC_ERRORS_TOTAL.inc();
                    continue;
                }
            };
            let (checked, cov) = check_trace_with_coverage(cfg, &trace, CheckOptions::default());
            let eval = Eval { checked, cov };

            // Differential mode: compare the sim verdict with the host verdict.
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            if let (Some(host), Some(host_res)) = (ctx.host, host_res) {
                match host_res {
                    Ok(host_trace) => {
                        let (hchecked, hcov) =
                            check_trace_with_coverage(cfg, &host_trace, CheckOptions::default());
                        let host_eval = Eval { checked: hchecked, cov: hcov };
                        if verdict_mismatch(&eval, &host_eval) {
                            handle_divergence(
                                sim, host, cfg, &child, &eval, &host_eval, provenance, opts,
                                shared,
                            );
                        }
                    }
                    Err(_) => {
                        shared.exec_errors.fetch_add(1, Ordering::Relaxed);
                        obs::m::EXPLORE_EXEC_ERRORS_TOTAL.inc();
                    }
                }
            }
            #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
            let _ = host_res;

            // Sim-only mode: a deviation means the simulation left the model's
            // envelope — itself a distinguishing finding.
            if opts.backend == Backend::Sim && !eval.checked.accepted {
                handle_sim_deviation(sim, cfg, &child, &eval, provenance, opts, shared);
            }

            // Coverage feedback: does the child reach anything new?
            let novel0 = {
                let global = shared.global.lock();
                eval.cov.novel_versus(&global)
            };
            if novel0.is_empty() {
                continue;
            }
            // Minimize while preserving every novel key, outside all locks.
            let target: CoverageMap = {
                let mut m = CoverageMap::new();
                for k in &novel0 {
                    m.insert(k.clone());
                }
                m
            };
            let minimized = shrink(&child, |cand| {
                evaluate(sim, cfg, cand)
                    .map(|e| target.novel_versus(&e.cov).is_empty())
                    .unwrap_or(false)
            });
            let Ok(min_eval) = evaluate(sim, cfg, &minimized) else { continue };
            let (new_keys, added) = {
                let mut global = shared.global.lock();
                let new_keys = min_eval.cov.novel_versus(&global);
                let added = global.merge(&min_eval.cov);
                (new_keys, added)
            };
            if added == 0 {
                continue; // another worker got there first
            }
            let entry = CorpusEntry {
                script: minimized,
                kind: EntryKind::Coverage,
                provenance: Some(provenance),
                novel: new_keys,
                accepted: min_eval.checked.accepted,
            };
            save_entry(entry, opts, shared);
            shared.novel_entries.fetch_add(1, Ordering::Relaxed);
            obs::m::EXPLORE_NOVEL_TOTAL.inc();
        }
    }
}

/// Two evaluations disagree when one conforms to the model and the other does
/// not (after dropping the documented kernel divergences from the host side).
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn verdict_mismatch(sim: &Eval, host: &Eval) -> bool {
    let host_deviates =
        host.checked.deviations.iter().any(|d| !known_host_divergence(d));
    sim.checked.accepted == host_deviates
}

/// A sim-vs-host verdict mismatch: shrink to a minimal distinguishing script
/// and save it under `divergences/`.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
#[allow(clippy::too_many_arguments)]
fn handle_divergence(
    sim: &SimExecutor,
    host: &sibylfs_exec::HostFs,
    cfg: &SpecConfig,
    child: &Script,
    eval: &Eval,
    host_eval: &Eval,
    provenance: Provenance,
    opts: &ExploreOptions,
    shared: &Shared,
) {
    let sig = divergence_signature(eval, host_eval);
    if !shared.divergence_sigs.lock().insert(sig) {
        return;
    }
    let minimized = shrink(child, |cand| {
        match (evaluate(sim, cfg, cand), evaluate(host, cfg, cand)) {
            (Ok(s), Ok(h)) => verdict_mismatch(&s, &h),
            _ => false,
        }
    });
    let accepted = evaluate(sim, cfg, &minimized).map(|e| e.checked.accepted).unwrap_or(false);
    let entry = CorpusEntry {
        script: minimized,
        kind: EntryKind::Divergence,
        provenance: Some(provenance),
        novel: Vec::new(),
        accepted,
    };
    save_entry(entry, opts, shared);
    shared.divergences.fetch_add(1, Ordering::Relaxed);
    obs::m::EXPLORE_DIVERGENCES_TOTAL.inc();
}

/// The payload-free shape of an observed value: `RV_bytes("zzz")` and
/// `RV_bytes("m")` are the same root cause, so divergence dedup and the
/// shrinker's preservation predicate both key on the constructor only.
fn observed_kind(observed: &str) -> &str {
    let end = observed.find(['(', ' ', '{']).unwrap_or(observed.len());
    &observed[..end]
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn divergence_signature(sim: &Eval, host: &Eval) -> (String, String) {
    let side = |e: &Eval| {
        e.checked
            .deviations
            .first()
            .map(|d| format!("{}:{}", d.function, observed_kind(&d.observed)))
            .unwrap_or_else(|| "clean".to_string())
    };
    (side(sim), side(host))
}

/// The simulation deviated from the model: a model/sim gap of exactly the
/// kind the differential-harness PR fixed six of. Shrink preserving the first
/// deviation signature and save it.
fn handle_sim_deviation(
    sim: &SimExecutor,
    cfg: &SpecConfig,
    child: &Script,
    eval: &Eval,
    provenance: Provenance,
    opts: &ExploreOptions,
    shared: &Shared,
) {
    let Some(first) = eval.checked.deviations.first() else { return };
    let sig = (first.function.clone(), observed_kind(&first.observed).to_string());
    if !shared.divergence_sigs.lock().insert(sig.clone()) {
        return;
    }
    let minimized = shrink(child, |cand| {
        evaluate(sim, cfg, cand)
            .map(|e| {
                e.checked
                    .deviations
                    .iter()
                    .any(|d| d.function == sig.0 && observed_kind(&d.observed) == sig.1)
            })
            .unwrap_or(false)
    });
    let entry = CorpusEntry {
        script: minimized,
        kind: EntryKind::Divergence,
        provenance: Some(provenance),
        novel: Vec::new(),
        accepted: false,
    };
    save_entry(entry, opts, shared);
    shared.divergences.fetch_add(1, Ordering::Relaxed);
    obs::m::EXPLORE_DIVERGENCES_TOTAL.inc();
}

fn save_entry(entry: CorpusEntry, opts: &ExploreOptions, shared: &Shared) {
    let mut corpus = shared.corpus.lock();
    if !corpus.insert(entry) {
        return;
    }
    let entry = corpus.entries().last().expect("just inserted").clone();
    obs::m::EXPLORE_CORPUS_SIZE.set(corpus.len() as i64);
    drop(corpus);
    if let Some(dir) = &opts.corpus_dir {
        match corpus::persist_entry(dir, &entry) {
            Ok(path) => shared.saved.lock().push(path),
            Err(e) => eprintln!("warning: could not persist corpus entry: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_with_seeds_only_baseline_finds_novel_coverage() {
        let opts = ExploreOptions {
            iterations: Some(200),
            workers: 2,
            baseline: BaselineMode::SeedsOnly,
            ..ExploreOptions::default()
        };
        let outcome = explore(&opts).unwrap();
        assert_eq!(outcome.backend, "sim");
        assert!(outcome.iterations >= 200, "ran only {} iterations", outcome.iterations);
        assert!(
            !outcome.novel_keys.is_empty(),
            "200 iterations over the seeds-only baseline should find something new"
        );
        assert!(outcome.corpus_len > 15, "corpus did not grow: {}", outcome.corpus_len);
        let (base, fin) = outcome.coverage_percents();
        assert!(fin >= base);
        let md = outcome.render_markdown();
        assert!(md.contains("# Exploration report"));
        assert!(md.contains("novel key(s)"));
    }

    #[test]
    fn unknown_config_is_a_clean_error() {
        let opts =
            ExploreOptions { config: "plan9/fossil".to_string(), ..ExploreOptions::default() };
        match explore(&opts) {
            Err(ExploreError::UnknownConfig(name)) => assert_eq!(name, "plan9/fossil"),
            other => panic!("expected UnknownConfig, got {other:?}"),
        }
    }
}
