//! Real-host POSIX execution backend (Linux only).
//!
//! This is the reproduction's equivalent of the paper's test executor (§6.2):
//! each script runs in a *forked worker process* that chroots into a fresh
//! per-script temporary directory, so every execution starts from an empty
//! file-system namespace and absolute paths (including symlink targets) stay
//! inside the jail. The worker issues genuine libc calls with the script's
//! flags and modes, maps raw errnos back through [`sibylfs_core::errno`], and
//! streams the rendered trace back to the parent over a pipe.
//!
//! ## Sandboxing and privilege
//!
//! Building the jail needs `chroot(2)` (CAP_SYS_CHROOT) and the multi-user
//! permission scripts need to switch effective credentials (CAP_SETUID/
//! CAP_SETGID) and to `chown` to arbitrary ids (CAP_CHOWN) — i.e. the backend
//! wants to run as root, exactly like the paper's harness. Unprivileged runs
//! report [`ExecError::SandboxUnavailable`] and callers (the differential
//! test, the survey) skip the host rows gracefully. [`sandbox_available`]
//! probes this once per process with a throwaway fork+chroot.
//!
//! Inside the jail, the worker emulates the *per-virtual-process* state the
//! model tracks — working directory (a saved `O_PATH` descriptor, restored
//! with `fchdir` before each call, which preserves "deleted cwd" semantics),
//! umask, effective uid/gid plus supplementary groups (switched with
//! `seteuid`/`setegid`, which also drops root's capability overrides so
//! permission checks are genuinely enforced), and the fd / directory-handle
//! tables. Virtual descriptor numbers are allocated monotonically from 3
//! (handles from 1) per process, mirroring the simulator's discipline that
//! the generated scripts rely on; the kernel's real descriptor numbers are an
//! implementation detail the trace never exposes.
//!
//! ## Abstraction mapping
//!
//! One stat field is normalised: the model defines the size of a directory to
//! be 0, while real file systems report block-allocation sizes (4096 on ext4,
//! entry-dependent values on tmpfs). The worker therefore records directory
//! sizes as 0 — the same interpretation step the paper applies when comparing
//! concrete `struct stat` values against the abstract specification state.
//! Every other field (kind, size for files and symlinks, nlink, mode,
//! uid/gid) is reported exactly as the kernel returned it.

// Every unsafe block below carries a `// SAFETY:` justification, and unsafe
// operations inside `unsafe fn` bodies still need their own block.
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use sibylfs_core::commands::{ErrorOrValue, OsCommand, OsLabel, RetValue, Stat};
use sibylfs_core::errno::Errno;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{DirHandleId, Fd, FileKind, Gid, Pid, Uid, INITIAL_PID};
use sibylfs_script::{parse_trace, render_trace, Script, ScriptStep, Trace};

use crate::{ExecError, ExecOptions, Executor};

// The backend is split across three modules:
//
// * this one — the raw libc bindings, the jail-side `HostWorld` call
//   dispatcher, and the original cold-fork execution path (one fork+chroot
//   per script, also the pool's fallback);
// * [`protocol`] — the length-prefixed pipe frames a persistent worker
//   speaks to its parent;
// * [`pool`] — the persistent pre-jailed worker pool: fork+chroot once per
//   worker, reset the jail between scripts.
mod pool;
mod protocol;

pub use pool::WorkerPool;

/// Raw libc bindings. The workspace is offline (no `libc` crate), so the
/// handful of symbols the backend needs are declared inline; all are part of
/// glibc's and musl's stable ABI on Linux.
mod raw {
    use std::os::raw::{c_char, c_int, c_uint, c_void};

    /// glibc/musl `struct dirent` on 64-bit Linux.
    #[repr(C)]
    pub struct Dirent {
        pub d_ino: u64,
        pub d_off: i64,
        pub d_reclen: u16,
        pub d_type: u8,
        pub d_name: [c_char; 256],
    }

    /// `struct statx_timestamp` from the kernel uapi (architecture
    /// independent, unlike `struct stat`).
    #[repr(C)]
    pub struct StatxTimestamp {
        pub tv_sec: i64,
        pub tv_nsec: u32,
        pub __reserved: i32,
    }

    /// `struct statx` from the kernel uapi.
    #[repr(C)]
    pub struct Statx {
        pub stx_mask: u32,
        pub stx_blksize: u32,
        pub stx_attributes: u64,
        pub stx_nlink: u32,
        pub stx_uid: u32,
        pub stx_gid: u32,
        pub stx_mode: u16,
        pub __spare0: [u16; 1],
        pub stx_ino: u64,
        pub stx_size: u64,
        pub stx_blocks: u64,
        pub stx_attributes_mask: u64,
        pub stx_atime: StatxTimestamp,
        pub stx_btime: StatxTimestamp,
        pub stx_ctime: StatxTimestamp,
        pub stx_mtime: StatxTimestamp,
        pub stx_rdev_major: u32,
        pub stx_rdev_minor: u32,
        pub stx_dev_major: u32,
        pub stx_dev_minor: u32,
        pub stx_mnt_id: u64,
        pub stx_dio_mem_align: u32,
        pub stx_dio_offset_align: u32,
        pub __spare3: [u64; 12],
    }

    pub const AT_FDCWD: c_int = -100;
    pub const AT_SYMLINK_NOFOLLOW: c_int = 0x100;
    pub const STATX_BASIC_STATS: c_uint = 0x7ff;

    pub const SEEK_SET: c_int = 0;
    pub const SEEK_CUR: c_int = 1;
    pub const SEEK_END: c_int = 2;

    pub const S_IFMT: u32 = 0o170000;
    pub const S_IFDIR: u32 = 0o040000;
    pub const S_IFREG: u32 = 0o100000;
    pub const S_IFLNK: u32 = 0o120000;

    // open(2) flag values. The access-mode bits and the generic flags are
    // identical across Linux architectures; O_DIRECTORY/O_NOFOLLOW differ.
    pub const O_WRONLY: c_int = 0o1;
    pub const O_RDWR: c_int = 0o2;
    pub const O_CREAT: c_int = 0o100;
    pub const O_EXCL: c_int = 0o200;
    pub const O_TRUNC: c_int = 0o1000;
    pub const O_APPEND: c_int = 0o2000;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_SYNC: c_int = 0o4010000;
    pub const O_CLOEXEC: c_int = 0o2000000;
    pub const O_PATH: c_int = 0o10000000;
    // The backend is gated to 64-bit targets (the bindings assume 64-bit
    // off_t and the 64-bit struct dirent), so only the aarch64-vs-rest split
    // matters here.
    #[cfg(not(target_arch = "aarch64"))]
    pub const O_DIRECTORY: c_int = 0o200000;
    #[cfg(not(target_arch = "aarch64"))]
    pub const O_NOFOLLOW: c_int = 0o400000;
    #[cfg(target_arch = "aarch64")]
    pub const O_DIRECTORY: c_int = 0o40000;
    #[cfg(target_arch = "aarch64")]
    pub const O_NOFOLLOW: c_int = 0o100000;

    /// `SIGKILL`, for force-reaping a misbehaving pool worker.
    pub const SIGKILL: c_int = 9;

    extern "C" {
        pub fn fork() -> c_int;
        pub fn waitpid(pid: c_int, status: *mut c_int, options: c_int) -> c_int;
        pub fn kill(pid: c_int, sig: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn _exit(status: c_int) -> !;
        pub fn chroot(path: *const c_char) -> c_int;
        pub fn chdir(path: *const c_char) -> c_int;
        pub fn fchdir(fd: c_int) -> c_int;
        pub fn mkdir(path: *const c_char, mode: c_uint) -> c_int;
        pub fn rmdir(path: *const c_char) -> c_int;
        pub fn unlink(path: *const c_char) -> c_int;
        pub fn link(oldpath: *const c_char, newpath: *const c_char) -> c_int;
        pub fn symlink(target: *const c_char, linkpath: *const c_char) -> c_int;
        pub fn readlink(path: *const c_char, buf: *mut c_char, bufsiz: usize) -> isize;
        pub fn rename(oldpath: *const c_char, newpath: *const c_char) -> c_int;
        pub fn open(path: *const c_char, flags: c_int, mode: c_uint) -> c_int;
        pub fn lseek(fd: c_int, offset: i64, whence: c_int) -> i64;
        pub fn pread(fd: c_int, buf: *mut c_void, count: usize, offset: i64) -> isize;
        pub fn pwrite(fd: c_int, buf: *const c_void, count: usize, offset: i64) -> isize;
        pub fn truncate(path: *const c_char, length: i64) -> c_int;
        pub fn chmod(path: *const c_char, mode: c_uint) -> c_int;
        pub fn chown(path: *const c_char, owner: c_uint, group: c_uint) -> c_int;
        pub fn umask(mask: c_uint) -> c_uint;
        pub fn seteuid(euid: c_uint) -> c_int;
        pub fn setegid(egid: c_uint) -> c_int;
        pub fn setgroups(size: usize, list: *const c_uint) -> c_int;
        pub fn statx(
            dirfd: c_int,
            pathname: *const c_char,
            flags: c_int,
            mask: c_uint,
            statxbuf: *mut Statx,
        ) -> c_int;
        pub fn close_range(first: c_uint, last: c_uint, flags: c_int) -> c_int;
        pub fn opendir(name: *const c_char) -> *mut c_void;
        pub fn readdir(dirp: *mut c_void) -> *mut Dirent;
        pub fn rewinddir(dirp: *mut c_void);
        pub fn closedir(dirp: *mut c_void) -> c_int;
        pub fn __errno_location() -> *mut c_int;
    }
}

/// The current thread's errno.
fn errno_raw() -> i32 {
    // SAFETY: `__errno_location` returns a valid, thread-local pointer for
    // the lifetime of the thread; reading it is always defined.
    unsafe { *raw::__errno_location() }
}

/// Map a raw Linux errno to the model's [`Errno`]. The numbers are the
/// asm-generic values shared by every Linux architecture the backend targets.
fn errno_from_raw(raw: i32) -> Errno {
    match raw {
        1 => Errno::EPERM,
        2 => Errno::ENOENT,
        6 => Errno::ENXIO,
        9 => Errno::EBADF,
        11 => Errno::EAGAIN,
        13 => Errno::EACCES,
        16 => Errno::EBUSY,
        17 => Errno::EEXIST,
        18 => Errno::EXDEV,
        20 => Errno::ENOTDIR,
        21 => Errno::EISDIR,
        22 => Errno::EINVAL,
        23 => Errno::ENFILE,
        24 => Errno::EMFILE,
        26 => Errno::ETXTBSY,
        27 => Errno::EFBIG,
        28 => Errno::ENOSPC,
        29 => Errno::ESPIPE,
        30 => Errno::EROFS,
        31 => Errno::EMLINK,
        36 => Errno::ENAMETOOLONG,
        39 => Errno::ENOTEMPTY,
        40 => Errno::ELOOP,
        75 => Errno::EOVERFLOW,
        95 => Errno::EOPNOTSUPP,
        // Anything outside the model's scope (EIO, EDQUOT, …) is reported as
        // EINVAL so it still surfaces as a checkable (and almost certainly
        // deviating) observation rather than aborting the run.
        _ => Errno::EINVAL,
    }
}

/// Translate the model's abstract open flags to the kernel's encoding.
fn raw_open_flags(flags: OpenFlags) -> i32 {
    // The access mode uses the same 2-bit encoding as the kernel; an invalid
    // combination (O_WRONLY|O_RDWR) is passed through untouched so the trace
    // records what the kernel genuinely does with it.
    let mut out = 0;
    if flags.contains(OpenFlags::O_WRONLY) {
        out |= raw::O_WRONLY;
    }
    if flags.contains(OpenFlags::O_RDWR) {
        out |= raw::O_RDWR;
    }
    for (abs, rawv) in [
        (OpenFlags::O_CREAT, raw::O_CREAT),
        (OpenFlags::O_EXCL, raw::O_EXCL),
        (OpenFlags::O_TRUNC, raw::O_TRUNC),
        (OpenFlags::O_APPEND, raw::O_APPEND),
        (OpenFlags::O_DIRECTORY, raw::O_DIRECTORY),
        (OpenFlags::O_NOFOLLOW, raw::O_NOFOLLOW),
        (OpenFlags::O_NONBLOCK, raw::O_NONBLOCK),
        (OpenFlags::O_SYNC, raw::O_SYNC),
        (OpenFlags::O_CLOEXEC, raw::O_CLOEXEC),
    ] {
        // Every flag in the table is a nonzero bit, so `contains` is exact.
        if flags.contains(abs) {
            out |= rawv;
        }
    }
    out
}

/// A NUL-terminated copy of a script path. Script paths are arbitrary
/// strings; one containing an interior NUL cannot reach the kernel, which is
/// indistinguishable from the path not existing.
fn c_path(p: impl AsRef<str>) -> Result<Vec<u8>, Errno> {
    let p = p.as_ref();
    if p.as_bytes().contains(&0) {
        return Err(Errno::ENOENT);
    }
    let mut v = Vec::with_capacity(p.len() + 1);
    v.extend_from_slice(p.as_bytes());
    v.push(0);
    Ok(v)
}

macro_rules! try_cpath {
    ($p:expr) => {
        match c_path($p) {
            Ok(v) => v,
            Err(e) => return ErrorOrValue::Error(e),
        }
    };
}

/// Upper bound on a single `read`/`pread` transfer, so a pathological count
/// in a generated script cannot balloon the worker.
const MAX_TRANSFER: usize = 16 << 20;

/// Per-virtual-process state inside the worker (mirrors the model's
/// per-process state: cwd, umask, credentials, descriptor tables).
struct VProc {
    /// `O_PATH` descriptor on the process's working directory; `fchdir` to it
    /// before each call. Keeps working "deleted cwd" semantics.
    cwd_fd: i32,
    umask: u32,
    uid: u32,
    gid: u32,
    /// Virtual fd numbers are handed out monotonically from 3, as the
    /// simulator does and the generated scripts assume.
    next_fd: i32,
    fds: BTreeMap<i32, i32>,
    next_dh: i32,
    dhs: BTreeMap<i32, *mut std::os::raw::c_void>,
}

/// The whole jail-side world: virtual processes plus the harness's group
/// table (`add_user_to_group`).
struct HostWorld {
    procs: BTreeMap<u32, VProc>,
    /// gid → member uids.
    groups: BTreeMap<u32, BTreeSet<u32>>,
    /// Which virtual process the worker's kernel context (cwd, umask,
    /// credentials, supplementary groups) currently belongs to. Consecutive
    /// calls from the same process skip the seven context syscalls of
    /// [`enter`](HostWorld::enter) — the dominant fixed cost per call on the
    /// pooled path. `Chdir`/`Umask` keep the kernel in sync as they mutate
    /// the process, so they do not invalidate; anything that touches
    /// credentials or group membership behind the kernel's back sets this to
    /// `None`.
    entered: Option<u32>,
}

impl HostWorld {
    fn new() -> HostWorld {
        HostWorld { procs: BTreeMap::new(), groups: BTreeMap::new(), entered: None }
    }

    fn create_process(&mut self, pid: Pid, uid: Uid, gid: Gid) {
        // Regain full privilege to open the jail root regardless of what the
        // previous call ran as.
        // SAFETY: plain FFI calls with no pointer arguments; changing
        // effective credentials cannot violate memory safety, and a failure
        // (unprivileged run) only surfaces as kernel-side EACCES later.
        unsafe {
            raw::seteuid(0);
            raw::setegid(0);
        }
        self.entered = None;
        let root = c_path("/").expect("static path");
        // SAFETY: `root` is a live, NUL-terminated buffer for the duration of
        // the call; `open` does not retain the pointer.
        let cwd_fd = unsafe {
            raw::open(
                root.as_ptr().cast(),
                raw::O_PATH | raw::O_DIRECTORY | raw::O_CLOEXEC,
                0,
            )
        };
        self.procs.insert(
            pid.0,
            VProc {
                cwd_fd,
                umask: 0o022,
                uid: uid.0,
                gid: gid.0,
                next_fd: 3,
                fds: BTreeMap::new(),
                next_dh: 1,
                dhs: BTreeMap::new(),
            },
        );
    }

    fn destroy_process(&mut self, pid: Pid) {
        self.entered = None;
        if let Some(proc) = self.procs.remove(&pid.0) {
            // SAFETY: every fd in `proc.fds` and `proc.cwd_fd` is a real
            // descriptor this process opened and still owns (virtual fds are
            // removed from the map when closed); every pointer in `proc.dhs`
            // is a live `DIR*` from `opendir` that is closed exactly once,
            // here, as the map entry is dropped with the process. The
            // credential calls take no pointers.
            unsafe {
                raw::seteuid(0);
                raw::setegid(0);
                for fd in proc.fds.values() {
                    raw::close(*fd);
                }
                for dh in proc.dhs.values() {
                    raw::closedir(*dh);
                }
                raw::close(proc.cwd_fd);
            }
        }
    }

    /// Switch the worker into the virtual process's execution context:
    /// working directory, umask, supplementary groups, and effective
    /// credentials (in that order — credential changes come last because they
    /// drop the privileges the other steps may need).
    fn enter(&self, proc: &VProc) {
        // SAFETY: `fchdir`/`umask`/credential calls take integers only;
        // `setgroups` reads `groups.len()` u32s from `groups`, which is a
        // live Vec for the duration of the call and not retained.
        unsafe {
            raw::seteuid(0);
            raw::setegid(0);
            raw::fchdir(proc.cwd_fd);
            raw::umask(proc.umask);
            let groups: Vec<u32> = self
                .groups
                .iter()
                .filter(|(_, members)| members.contains(&proc.uid))
                .map(|(gid, _)| *gid)
                .collect();
            raw::setgroups(groups.len(), groups.as_ptr());
            raw::setegid(proc.gid);
            raw::seteuid(proc.uid);
        }
    }

    /// Execute one libc call on behalf of `pid`, returning what the kernel
    /// reports.
    fn call(&mut self, pid: Pid, cmd: &OsCommand) -> ErrorOrValue {
        if !self.procs.contains_key(&pid.0) {
            // Mirrors the simulator: a call from an unknown process never
            // reaches the kernel.
            return ErrorOrValue::Error(Errno::EINVAL);
        }
        if self.entered != Some(pid.0) {
            let proc = &self.procs[&pid.0];
            self.enter(proc);
            self.entered = Some(pid.0);
        }
        match cmd {
            OsCommand::Mkdir(path, mode) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                ok_none(unsafe { raw::mkdir(p.as_ptr().cast(), mode.bits()) })
            }
            OsCommand::Rmdir(path) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                ok_none(unsafe { raw::rmdir(p.as_ptr().cast()) })
            }
            OsCommand::Unlink(path) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                ok_none(unsafe { raw::unlink(p.as_ptr().cast()) })
            }
            OsCommand::Chdir(path) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                if unsafe { raw::chdir(p.as_ptr().cast()) } != 0 {
                    return ErrorOrValue::Error(errno_from_raw(errno_raw()));
                }
                let dot = c_path(".").expect("static path");
                // SAFETY: `dot` is a live NUL-terminated buffer; `open` does
                // not retain it.
                let new_cwd = unsafe {
                    raw::open(
                        dot.as_ptr().cast(),
                        raw::O_PATH | raw::O_DIRECTORY | raw::O_CLOEXEC,
                        0,
                    )
                };
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                if new_cwd >= 0 {
                    // SAFETY: `cwd_fd` is owned by this VProc and immediately
                    // replaced below, so it is closed exactly once.
                    unsafe { raw::close(proc.cwd_fd) };
                    proc.cwd_fd = new_cwd;
                } else {
                    // The kernel cwd moved but the snapshot fd could not be
                    // taken: the cached context no longer matches `cwd_fd`,
                    // so force a full re-enter on the next call.
                    self.entered = None;
                }
                ErrorOrValue::Value(RetValue::None)
            }
            OsCommand::Truncate(path, len) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                ok_none(unsafe { raw::truncate(p.as_ptr().cast(), *len) })
            }
            OsCommand::Stat(path) => self.do_stat(path, true),
            OsCommand::Lstat(path) => self.do_stat(path, false),
            OsCommand::Link(src, dst) => {
                let a = try_cpath!(src);
                let b = try_cpath!(dst);
                // SAFETY: `a` and `b` are live NUL-terminated buffers; not retained.
                ok_none(unsafe { raw::link(a.as_ptr().cast(), b.as_ptr().cast()) })
            }
            OsCommand::Symlink(target, path) => {
                let t = try_cpath!(target);
                let p = try_cpath!(path);
                // SAFETY: `t` and `p` are live NUL-terminated buffers; not retained.
                ok_none(unsafe { raw::symlink(t.as_ptr().cast(), p.as_ptr().cast()) })
            }
            OsCommand::Readlink(path) => {
                let p = try_cpath!(path);
                let mut buf = vec![0u8; 4096];
                // SAFETY: `p` is NUL-terminated; `buf` is a live allocation
                // of exactly `buf.len()` writable bytes.
                let n = unsafe {
                    raw::readlink(p.as_ptr().cast(), buf.as_mut_ptr().cast(), buf.len())
                };
                if n < 0 {
                    return ErrorOrValue::Error(errno_from_raw(errno_raw()));
                }
                buf.truncate(n as usize);
                ErrorOrValue::Value(RetValue::Path(String::from_utf8_lossy(&buf).into_owned()))
            }
            OsCommand::Rename(src, dst) => {
                let a = try_cpath!(src);
                let b = try_cpath!(dst);
                // SAFETY: `a` and `b` are live NUL-terminated buffers; not retained.
                ok_none(unsafe { raw::rename(a.as_ptr().cast(), b.as_ptr().cast()) })
            }
            OsCommand::Open(path, flags, mode) => {
                let p = try_cpath!(path);
                let m = mode.map(|m| m.bits()).unwrap_or(0o666);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                let fd = unsafe { raw::open(p.as_ptr().cast(), raw_open_flags(*flags), m) };
                if fd < 0 {
                    return ErrorOrValue::Error(errno_from_raw(errno_raw()));
                }
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                let vfd = proc.next_fd;
                proc.next_fd += 1;
                proc.fds.insert(vfd, fd);
                ErrorOrValue::Value(RetValue::Fd(Fd(vfd)))
            }
            OsCommand::Close(vfd) => {
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                match proc.fds.remove(&vfd.0) {
                    // SAFETY: `fd` was owned by the fd table and has just
                    // been removed from it, so it is closed exactly once.
                    Some(fd) => ok_none(unsafe { raw::close(fd) }),
                    None => ErrorOrValue::Error(Errno::EBADF),
                }
            }
            OsCommand::Lseek(vfd, off, whence) => {
                let Some(fd) = self.real_fd(pid, *vfd) else {
                    return ErrorOrValue::Error(Errno::EBADF);
                };
                let w = match whence {
                    SeekWhence::Set => raw::SEEK_SET,
                    SeekWhence::Cur => raw::SEEK_CUR,
                    SeekWhence::End => raw::SEEK_END,
                };
                // SAFETY: integer-only FFI call on a descriptor we own.
                let n = unsafe { raw::lseek(fd, *off, w) };
                if n < 0 {
                    ErrorOrValue::Error(errno_from_raw(errno_raw()))
                } else {
                    ErrorOrValue::Value(RetValue::Num(n))
                }
            }
            OsCommand::Read(vfd, count) => self.do_read(pid, *vfd, *count, None),
            OsCommand::Pread(vfd, count, off) => self.do_read(pid, *vfd, *count, Some(*off)),
            OsCommand::Write(vfd, data) => self.do_write(pid, *vfd, data, None),
            OsCommand::Pwrite(vfd, data, off) => self.do_write(pid, *vfd, data, Some(*off)),
            OsCommand::Chmod(path, mode) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                ok_none(unsafe { raw::chmod(p.as_ptr().cast(), mode.bits()) })
            }
            OsCommand::Chown(path, uid, gid) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; not retained.
                ok_none(unsafe { raw::chown(p.as_ptr().cast(), uid.0, gid.0) })
            }
            OsCommand::Umask(mask) => {
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                let old = proc.umask;
                proc.umask = mask.bits() & 0o777;
                // SAFETY: integer-only FFI call; cannot fail.
                unsafe { raw::umask(proc.umask) };
                ErrorOrValue::Value(RetValue::Num(old as i64))
            }
            OsCommand::AddUserToGroup(uid, gid) => {
                self.groups.entry(gid.0).or_default().insert(uid.0);
                // The entered process's supplementary groups may now be
                // stale; rebuild the kernel context on the next call.
                self.entered = None;
                ErrorOrValue::Value(RetValue::None)
            }
            OsCommand::Opendir(path) => {
                let p = try_cpath!(path);
                // SAFETY: `p` is a live NUL-terminated buffer; `opendir`
                // copies the path and does not retain the pointer.
                let dir = unsafe { raw::opendir(p.as_ptr().cast()) };
                if dir.is_null() {
                    return ErrorOrValue::Error(errno_from_raw(errno_raw()));
                }
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                let vdh = proc.next_dh;
                proc.next_dh += 1;
                proc.dhs.insert(vdh, dir);
                ErrorOrValue::Value(RetValue::DirHandle(DirHandleId(vdh)))
            }
            OsCommand::Readdir(vdh) => {
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                let Some(dir) = proc.dhs.get(&vdh.0).copied() else {
                    return ErrorOrValue::Error(Errno::EBADF);
                };
                loop {
                    // SAFETY: `dir` is a live `DIR*` from `opendir`, owned by
                    // the dh table and not closed until `closedir` removes it.
                    let ent = unsafe { raw::readdir(dir) };
                    if ent.is_null() {
                        return ErrorOrValue::Value(RetValue::ReaddirEntry(None));
                    }
                    // SAFETY: `ent` is non-null (checked above) and points
                    // into the `DIR` buffer, valid until the next readdir on
                    // this handle; `d_name` is NUL-terminated by the kernel.
                    let name = unsafe { c_str_bytes(&(*ent).d_name) };
                    if name == b"." || name == b".." {
                        continue;
                    }
                    return ErrorOrValue::Value(RetValue::ReaddirEntry(Some(
                        String::from_utf8_lossy(name).into_owned(),
                    )));
                }
            }
            OsCommand::Rewinddir(vdh) => {
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                match proc.dhs.get(&vdh.0).copied() {
                    Some(dir) => {
                        // SAFETY: `dir` is a live `DIR*` owned by the table.
                        unsafe { raw::rewinddir(dir) };
                        ErrorOrValue::Value(RetValue::None)
                    }
                    None => ErrorOrValue::Error(Errno::EBADF),
                }
            }
            OsCommand::Closedir(vdh) => {
                let proc = self.procs.get_mut(&pid.0).expect("checked above");
                match proc.dhs.remove(&vdh.0) {
                    Some(dir) => {
                        // SAFETY: `dir` has just been removed from the dh
                        // table, so it is a live `DIR*` closed exactly once.
                        unsafe { raw::closedir(dir) };
                        ErrorOrValue::Value(RetValue::None)
                    }
                    None => ErrorOrValue::Error(Errno::EBADF),
                }
            }
        }
    }

    fn real_fd(&self, pid: Pid, vfd: Fd) -> Option<i32> {
        self.procs.get(&pid.0).and_then(|p| p.fds.get(&vfd.0)).copied()
    }

    fn do_stat(&self, path: &sibylfs_core::path::ParsedPath, follow: bool) -> ErrorOrValue {
        let p = match c_path(path) {
            Ok(v) => v,
            Err(e) => return ErrorOrValue::Error(e),
        };
        let mut buf = std::mem::MaybeUninit::<raw::Statx>::zeroed();
        let flags = if follow { 0 } else { raw::AT_SYMLINK_NOFOLLOW };
        // SAFETY: `p` is NUL-terminated and `buf` is a properly-aligned,
        // writable `Statx` the kernel fills; neither pointer is retained.
        let rc = unsafe {
            raw::statx(
                raw::AT_FDCWD,
                p.as_ptr().cast(),
                flags,
                raw::STATX_BASIC_STATS,
                buf.as_mut_ptr(),
            )
        };
        if rc != 0 {
            return ErrorOrValue::Error(errno_from_raw(errno_raw()));
        }
        // SAFETY: statx returned 0, so the kernel populated every
        // STATX_BASIC_STATS field; the buffer started zeroed, so even
        // padding/unrequested fields are initialised.
        let stx = unsafe { buf.assume_init() };
        let kind = match u32::from(stx.stx_mode) & raw::S_IFMT {
            raw::S_IFDIR => FileKind::Directory,
            raw::S_IFLNK => FileKind::Symlink,
            raw::S_IFREG => FileKind::Regular,
            // Nothing else is creatable through the modelled API; treat any
            // leak from the environment as a regular file.
            _ => FileKind::Regular,
        };
        // Abstraction mapping: the model defines directory sizes to be 0 (see
        // the module docs); every other field is the kernel's answer.
        let size = if kind == FileKind::Directory { 0 } else { stx.stx_size };
        ErrorOrValue::Value(RetValue::Stat(Box::new(Stat {
            kind,
            size,
            nlink: stx.stx_nlink,
            mode: FileMode::new(u32::from(stx.stx_mode)),
            uid: Uid(stx.stx_uid),
            gid: Gid(stx.stx_gid),
        })))
    }

    fn do_read(&mut self, pid: Pid, vfd: Fd, count: usize, offset: Option<i64>) -> ErrorOrValue {
        let Some(fd) = self.real_fd(pid, vfd) else {
            return ErrorOrValue::Error(Errno::EBADF);
        };
        let mut buf = vec![0u8; count.min(MAX_TRANSFER)];
        // SAFETY: `buf` is a live allocation of exactly `buf.len()` writable
        // bytes, and `fd` is a descriptor this process owns.
        let n = match offset {
            None => unsafe { raw::read(fd, buf.as_mut_ptr().cast(), buf.len()) },
            Some(off) => unsafe { raw::pread(fd, buf.as_mut_ptr().cast(), buf.len(), off) },
        };
        if n < 0 {
            return ErrorOrValue::Error(errno_from_raw(errno_raw()));
        }
        buf.truncate(n as usize);
        ErrorOrValue::Value(RetValue::Bytes(buf))
    }

    fn do_write(&mut self, pid: Pid, vfd: Fd, data: &[u8], offset: Option<i64>) -> ErrorOrValue {
        let Some(fd) = self.real_fd(pid, vfd) else {
            return ErrorOrValue::Error(Errno::EBADF);
        };
        // SAFETY: `data` is a live slice of `data.len()` readable bytes, and
        // `fd` is a descriptor this process owns.
        let n = match offset {
            None => unsafe { raw::write(fd, data.as_ptr().cast(), data.len()) },
            Some(off) => unsafe { raw::pwrite(fd, data.as_ptr().cast(), data.len(), off) },
        };
        if n < 0 {
            ErrorOrValue::Error(errno_from_raw(errno_raw()))
        } else {
            ErrorOrValue::Value(RetValue::Num(n as i64))
        }
    }
}

/// Map a zero-return C call to `RV_none`, anything else to the thread errno.
fn ok_none(rc: i32) -> ErrorOrValue {
    if rc == 0 {
        ErrorOrValue::Value(RetValue::None)
    } else {
        ErrorOrValue::Error(errno_from_raw(errno_raw()))
    }
}

/// The bytes of a NUL-terminated `d_name` field.
/// # Safety
///
/// `name` must contain a NUL terminator within its 256 bytes (as the kernel
/// guarantees for `d_name`); the returned slice borrows from `name`.
unsafe fn c_str_bytes(name: &[std::os::raw::c_char; 256]) -> &[u8] {
    let ptr = name.as_ptr().cast::<u8>();
    let mut len = 0;
    // SAFETY: `ptr.add(len)` stays within the 256-byte array because `len`
    // is bounded by the loop condition.
    while len < 256 && unsafe { *ptr.add(len) } != 0 {
        len += 1;
    }
    // SAFETY: the first `len` bytes were just read and are within `name`.
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

/// Worker exit codes (beyond the trace payload on the pipe).
const EXIT_OK: i32 = 0;
const EXIT_SANDBOX: i32 = 3;

/// Execute every step of `script` inside the already-chrooted jail and
/// return the observed trace. All virtual processes are destroyed before
/// returning, so every descriptor and `DIR*` the script opened is closed —
/// a persistent pool worker relies on this as the first half of its
/// between-scripts hygiene (the second half is the jail reset in
/// [`pool`]).
fn run_script_in_jail(script: &Script, opts: ExecOptions) -> Trace {
    let mut world = HostWorld::new();
    let (uid, gid) = if opts.root_user { (Uid(0), Gid(0)) } else { (Uid(1000), Gid(1000)) };
    world.create_process(INITIAL_PID, uid, gid);

    let mut trace = Trace::new(script.name.clone(), script.group.clone());
    for step in &script.steps {
        match step {
            ScriptStep::Call { pid, cmd } => {
                let ret = world.call(*pid, cmd);
                trace.push_call_return(*pid, cmd.clone(), ret);
            }
            ScriptStep::CreateProcess { pid, uid, gid } => {
                world.create_process(*pid, *uid, *gid);
                trace.push_label(OsLabel::Create(*pid, *uid, *gid));
            }
            ScriptStep::DestroyProcess { pid } => {
                world.destroy_process(*pid);
                trace.push_label(OsLabel::Destroy(*pid));
            }
        }
    }
    let pids: Vec<u32> = world.procs.keys().copied().collect();
    for pid in pids {
        world.destroy_process(Pid(pid));
    }
    trace
}

/// Run the script inside the already-forked worker: build the jail, execute
/// every step, stream the rendered trace to `out_fd`, and `_exit`. Never
/// returns.
fn worker_main(root: &[u8], script: &Script, opts: ExecOptions, out_fd: i32) -> ! {
    // SAFETY: runs only in the freshly-forked single-threaded worker.
    // `close_range` takes integers; `root` is NUL-terminated by the caller;
    // the `c"…"` literals are NUL-terminated by construction; `msg` is a live
    // buffer for the duration of the failed-sandbox write; `_exit` never
    // returns and skips atexit handlers, which is exactly what a forked
    // worker that must not run the parent's destructors wants.
    unsafe {
        // Drop every inherited descriptor except stdio and our pipe: a
        // concurrently-forking sibling's pipe write-end held open here would
        // keep that sibling's parent from ever seeing EOF. Best effort —
        // close_range is glibc ≥ 2.34 / kernel ≥ 5.9.
        if out_fd > 3 {
            raw::close_range(3, out_fd as u32 - 1, 0);
        }
        raw::close_range(out_fd as u32 + 1, u32::MAX, 0);
        if raw::chdir(root.as_ptr().cast()) != 0
            || raw::chroot(c".".as_ptr().cast()) != 0
            || raw::chdir(c"/".as_ptr().cast()) != 0
        {
            let msg = format!("!sandbox errno={}\n", errno_raw());
            write_all(out_fd, msg.as_bytes());
            raw::_exit(EXIT_SANDBOX);
        }
        raw::umask(0o022);
    }

    let trace = run_script_in_jail(script, opts);
    let rendered = render_trace(&trace);
    write_all(out_fd, rendered.as_bytes());
    // SAFETY: terminating the worker without unwinding into the parent's
    // state is the whole point; `_exit` takes an integer and never returns.
    unsafe { raw::_exit(EXIT_OK) }
}

fn write_all(fd: i32, mut buf: &[u8]) {
    while !buf.is_empty() {
        // SAFETY: `buf` is a live slice of `buf.len()` readable bytes.
        let n = unsafe { raw::write(fd, buf.as_ptr().cast(), buf.len()) };
        if n <= 0 {
            return;
        }
        buf = &buf[n as usize..];
    }
}

/// Whether the worker sandbox can be built here: probed once per process by
/// forking a throwaway worker that attempts the chroot.
pub fn sandbox_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        let Ok(dir) = fresh_sandbox_dir() else { return false };
        let mut ok = false;
        let mut root = dir.as_os_str().as_encoded_bytes().to_vec();
        root.push(0);
        // SAFETY: `root` is NUL-terminated; the child branch calls only
        // async-signal-safe functions (`chdir`/`chroot`/`_exit`) before
        // exiting, and the parent branch passes a valid `&mut status` to
        // `waitpid`.
        unsafe {
            let pid = raw::fork();
            if pid == 0 {
                let rc = if raw::chdir(root.as_ptr().cast()) == 0
                    && raw::chroot(c".".as_ptr().cast()) == 0
                {
                    EXIT_OK
                } else {
                    EXIT_SANDBOX
                };
                raw::_exit(rc);
            }
            if pid > 0 {
                let mut status = 0;
                raw::waitpid(pid, &mut status, 0);
                ok = exit_code(status) == Some(EXIT_OK);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        ok
    })
}

/// Decode a `waitpid` status into an exit code, if the child exited normally.
fn exit_code(status: i32) -> Option<i32> {
    // WIFEXITED / WEXITSTATUS.
    if status & 0x7f == 0 {
        Some((status >> 8) & 0xff)
    } else {
        None
    }
}

static SANDBOX_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where jail roots are built: `$TMPDIR` when the user set one, otherwise
/// `/dev/shm` when it is a writable directory (on most distributions the only
/// guaranteed tmpfs mount), otherwise the platform default (`/tmp`).
///
/// Preferring tmpfs is a measured throughput choice, not a nicety: the
/// paper's suite executions run on tmpfs, and on hosts where `/tmp` is
/// disk-backed every syscall a script makes inside the jail pays journalled-
/// filesystem latency — which dominates pooled per-script cost once the
/// fork+chroot setup is amortized away.
fn sandbox_base_dir() -> PathBuf {
    if std::env::var_os("TMPDIR").is_some() {
        return std::env::temp_dir();
    }
    let shm = Path::new("/dev/shm");
    if shm.is_dir() && !shm.metadata().map(|m| m.permissions().readonly()).unwrap_or(true) {
        return shm.to_path_buf();
    }
    std::env::temp_dir()
}

/// A fresh, empty directory to use as a jail root.
fn fresh_sandbox_dir() -> std::io::Result<PathBuf> {
    let dir = sandbox_base_dir().join(format!(
        "sibylfs-host-{}-{}",
        std::process::id(),
        SANDBOX_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    // A stale directory from a crashed previous run would leak state into the
    // jail; start clean.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// The real-host executor, in one of two modes:
///
/// * **cold-fork** ([`HostFs::new`]) — stateless; every
///   [`Executor::execute_script`] call forks a fresh worker and builds a
///   fresh chroot jail (the original, and the baseline the `exec_pipeline`
///   bench measures against);
/// * **pooled** ([`HostFs::pooled`]) — a shared [`WorkerPool`] of persistent
///   pre-jailed workers; each script is one round-trip over a pipe to an
///   already-chrooted worker that resets its jail between scripts. Workers
///   are spawned lazily, and a dead or corrupt worker triggers a cold-fork
///   fallback for that script plus a respawn for the next.
///
/// Cloning shares the pool, so a pooled `HostFs` can be handed to an
/// [`ExecPipeline`](crate::ExecPipeline) whose executor threads each check
/// out their own worker process concurrently.
#[derive(Debug, Clone, Default)]
pub struct HostFs {
    pool: Option<std::sync::Arc<WorkerPool>>,
}

impl HostFs {
    /// Create the cold-fork host backend handle (fresh fork+chroot per
    /// script).
    pub fn new() -> HostFs {
        HostFs::default()
    }

    /// Create a host backend over a pool of `workers` persistent pre-jailed
    /// worker processes (clamped to at least 1). Workers are spawned on
    /// first use, so construction succeeds even where the sandbox is
    /// unavailable — the first execution reports
    /// [`ExecError::SandboxUnavailable`] just like the cold-fork mode.
    pub fn pooled(workers: usize) -> HostFs {
        HostFs { pool: Some(std::sync::Arc::new(WorkerPool::new(workers))) }
    }

    /// Whether this handle runs on the persistent worker pool.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }

    /// Whether this backend can run here (see [`sandbox_available`]).
    pub fn available() -> bool {
        sandbox_available()
    }
}

impl Executor for HostFs {
    fn backend_name(&self) -> &'static str {
        "host"
    }

    fn config_name(&self) -> String {
        crate::HOST_CONFIG_NAME.to_string()
    }

    fn execute_script(&self, script: &Script, opts: ExecOptions) -> Result<Trace, ExecError> {
        let started = std::time::Instant::now();
        let res = match &self.pool {
            Some(pool) => pool.execute(script, opts),
            None => cold_execute(script, opts),
        };
        if res.is_ok() {
            sibylfs_core::obs::m::EXEC_SCRIPTS_TOTAL.inc();
            sibylfs_core::obs::m::EXEC_SCRIPT_NS.record_duration(started.elapsed());
        }
        res
    }
}

/// Execute one script the original way: fork a throwaway worker, build a
/// fresh chroot jail, stream the trace back, tear everything down. Also the
/// pool's per-script fallback when a persistent worker dies.
pub(super) fn cold_execute(script: &Script, opts: ExecOptions) -> Result<Trace, ExecError> {
    sibylfs_core::obs::m::EXEC_COLD_FORKS_TOTAL.inc();
    let backend_err = |message: String| ExecError::Backend {
        script: script.name.clone(),
        message,
    };
    let dir = fresh_sandbox_dir().map_err(|e| backend_err(format!("sandbox dir: {e}")))?;
    let mut root = dir.as_os_str().as_encoded_bytes().to_vec();
    root.push(0);

    let mut pipe_fds = [0i32; 2];
    // SAFETY: `pipe_fds` is a live array of exactly the two c_ints the
    // kernel writes.
    if unsafe { raw::pipe(pipe_fds.as_mut_ptr()) } != 0 {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(backend_err(format!("pipe: errno {}", errno_raw())));
    }
    let (rd, wr) = (pipe_fds[0], pipe_fds[1]);

    // SAFETY: integer-only FFI call; the child branch immediately enters
    // `worker_main`, which uses only fork-safe operations before `_exit`.
    let child = unsafe { raw::fork() };
    if child < 0 {
        // SAFETY: both pipe ends were just created and are owned here.
        unsafe {
            raw::close(rd);
            raw::close(wr);
        }
        let _ = std::fs::remove_dir_all(&dir);
        return Err(backend_err(format!("fork: errno {}", errno_raw())));
    }
    if child == 0 {
        // SAFETY: the worker owns its copy of the read end; closing it
        // once here leaves only `wr` for the trace stream.
        unsafe { raw::close(rd) };
        worker_main(&root, script, opts, wr);
    }

    // Parent: collect the rendered trace, reap the worker, tear down the
    // jail.
    // SAFETY: the parent owns its copy of the write end and closes it
    // exactly once, so the pipe reports EOF when the worker exits.
    unsafe { raw::close(wr) };
    let mut output = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        // SAFETY: `buf` is a live array of `buf.len()` writable bytes.
        let n = unsafe { raw::read(rd, buf.as_mut_ptr().cast(), buf.len()) };
        if n <= 0 {
            break;
        }
        output.extend_from_slice(&buf[..n as usize]);
    }
    // SAFETY: `rd` is owned here and closed exactly once; `waitpid`
    // writes through a valid `&mut status`.
    unsafe { raw::close(rd) };
    let mut status = 0;
    unsafe { raw::waitpid(child, &mut status, 0) };
    let _ = std::fs::remove_dir_all(&dir);

    match exit_code(status) {
        Some(EXIT_OK) => {}
        Some(EXIT_SANDBOX) => {
            return Err(ExecError::SandboxUnavailable(format!(
                "worker could not chroot ({})",
                String::from_utf8_lossy(&output).trim()
            )));
        }
        other => {
            return Err(backend_err(format!(
                "worker died (exit {:?}, wait status {status})",
                other
            )));
        }
    }

    let text = String::from_utf8_lossy(&output);
    let mut trace = parse_trace(&text)
        .map_err(|e| backend_err(format!("worker trace unparseable: {e}")))?;
    // The on-disk format re-derives the group from the name; pin both to
    // the script's own values.
    trace.name = script.name.clone();
    trace.group = script.group.clone();
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue};

    fn host_or_skip() -> Option<HostFs> {
        if HostFs::available() {
            Some(HostFs::new())
        } else {
            eprintln!("skipping: host sandbox unavailable (need chroot privilege)");
            None
        }
    }

    fn mode(m: u32) -> FileMode {
        FileMode::new(m)
    }

    #[test]
    fn host_executes_a_basic_script_like_the_sim() {
        let Some(host) = host_or_skip() else { return };
        let mut s = Script::new("mkdir___host_smoke", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), mode(0o777)))
            .call(OsCommand::Open(
                "/d/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                Some(mode(0o644)),
            ))
            .call(OsCommand::Write(Fd(3), b"hello".to_vec()))
            .call(OsCommand::Lseek(Fd(3), 0, SeekWhence::Set))
            .call(OsCommand::Read(Fd(3), 100))
            .call(OsCommand::Close(Fd(3)))
            .call(OsCommand::Stat("/d/f".into()));
        let host_trace = host.execute_script(&s, ExecOptions::default()).unwrap();
        let sim = crate::SimExecutor::new(
            sibylfs_fsimpl::configs::by_name("linux/ext4").unwrap(),
        );
        let sim_trace = sim.execute_script(&s, ExecOptions::default()).unwrap();
        // The two backends agree label for label on this script.
        let host_labels: Vec<_> = host_trace.labels().cloned().collect();
        let sim_labels: Vec<_> = sim_trace.labels().cloned().collect();
        assert_eq!(host_labels, sim_labels);
    }

    #[test]
    fn host_jails_are_fresh_per_script() {
        let Some(host) = host_or_skip() else { return };
        let mut s = Script::new("mkdir___fresh", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), mode(0o777)));
        let t1 = host.execute_script(&s, ExecOptions::default()).unwrap();
        let t2 = host.execute_script(&s, ExecOptions::default()).unwrap();
        // If state leaked between jails the second mkdir would report EEXIST.
        assert_eq!(t1, t2);
        match &t1.steps[1].label {
            OsLabel::Return(_, ErrorOrValue::Value(RetValue::None)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn host_enforces_permissions_for_unprivileged_virtual_processes() {
        let Some(host) = host_or_skip() else { return };
        let mut s = Script::new("permissions___host_private", "permissions");
        s.call(OsCommand::Mkdir("/private".into(), mode(0o700)))
            .create_process(Pid(2), Uid(2000), Gid(2000))
            .call_as(
                Pid(2),
                OsCommand::Open(
                    "/private/f".into(),
                    OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                    Some(mode(0o644)),
                ),
            )
            .destroy_process(Pid(2));
        let t = host.execute_script(&s, ExecOptions::default()).unwrap();
        let last_return = t
            .labels()
            .filter_map(|l| match l {
                OsLabel::Return(Pid(2), v) => Some(v.clone()),
                _ => None,
            })
            .last()
            .expect("p2 returned");
        assert_eq!(last_return, ErrorOrValue::Error(Errno::EACCES));
    }

    #[test]
    fn host_deleted_cwd_reports_enoent() {
        let Some(host) = host_or_skip() else { return };
        let mut s = Script::new("open___host_deleted_cwd", "open");
        s.call(OsCommand::Mkdir("/deserted".into(), mode(0o700)))
            .call(OsCommand::Chdir("/deserted".into()))
            .call(OsCommand::Rmdir("/deserted".into()))
            .call(OsCommand::Open(
                "party".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDONLY,
                Some(mode(0o600)),
            ));
        let t = host.execute_script(&s, ExecOptions::default()).unwrap();
        match &t.steps.last().unwrap().label {
            OsLabel::Return(_, ErrorOrValue::Error(e)) => assert_eq!(*e, Errno::ENOENT),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn virtual_fd_numbers_are_monotonic_like_the_sim() {
        let Some(host) = host_or_skip() else { return };
        let mut s = Script::new("open___host_fd_alloc", "open");
        s.call(OsCommand::Open("a".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Close(Fd(3)))
            .call(OsCommand::Open("b".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))));
        let t = host.execute_script(&s, ExecOptions::default()).unwrap();
        let fds: Vec<i32> = t
            .labels()
            .filter_map(|l| match l {
                OsLabel::Return(_, ErrorOrValue::Value(RetValue::Fd(fd))) => Some(fd.0),
                _ => None,
            })
            .collect();
        assert_eq!(fds, vec![3, 4], "virtual fds never reuse closed numbers");
    }
}
