//! A pool of persistent pre-jailed host worker processes.
//!
//! The cold-fork path pays fork + chroot + tempdir creation + teardown for
//! every script — milliseconds of fixed cost around microseconds of actual
//! syscalls. A [`WorkerPool`] pays that cost once per worker: each worker is
//! forked and chrooted at spawn, then serves many scripts over the
//! [`protocol`](super::protocol) pipes, *resetting its jail between scripts*
//! instead of being re-forked.
//!
//! ## The jail-reset contract
//!
//! After replying with a trace, and before reading the next request, the
//! worker restores every piece of state a script can dirty:
//!
//! 1. **credentials** — `seteuid(0)`/`setegid(0)`/`setgroups(0)` (scripts
//!    switch effective ids for permission tests);
//! 2. **umask** — back to the initial `0o022`;
//! 3. **working directory** — `fchdir` to the jail-root `O_PATH` descriptor
//!    saved right after the chroot (scripts `chdir` freely, and may even
//!    delete the directory they stand in);
//! 4. **file-system contents** — every entry under `/` is removed by a
//!    recursive unlink walk rooted at that descriptor's directory;
//! 5. **descriptors** — `close_range` over everything except stdio, the two
//!    protocol pipes, and the jail-root fd (virtual-process teardown in
//!    [`run_script_in_jail`](super::run_script_in_jail) already closed the
//!    script's fds and `DIR*` handles; this is the backstop).
//!
//! A worker that cannot complete the reset `_exit`s rather than serve a
//! dirty jail; the parent notices EOF on the next request, falls back to a
//! **cold fork** for that script (`sibylfs_exec_cold_forks_total` counts
//! these), and spawns a replacement worker
//! (`sibylfs_exec_worker_respawns_total`). Successful per-script resets are
//! counted by `sibylfs_exec_jail_resets_total`.

use std::path::PathBuf;
use std::sync::{Condvar, Mutex, MutexGuard};

use sibylfs_core::obs;
use sibylfs_script::{parse_trace, render_trace, Script, Trace};

use super::protocol::{
    decode_exec_request, encode_exec_request, read_frame, write_frame, TAG_ERROR, TAG_EXEC,
    TAG_READY, TAG_SANDBOX, TAG_TRACE,
};
use super::{errno_raw, fresh_sandbox_dir, raw, EXIT_OK, EXIT_SANDBOX};
use crate::{ExecError, ExecOptions};

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

/// One live worker process, from the parent's point of view.
#[derive(Debug)]
struct Worker {
    pid: i32,
    /// Parent's write end of the request pipe; closing it is the graceful
    /// shutdown signal (the worker reads EOF and exits).
    req_wr: i32,
    /// Parent's read end of the reply pipe.
    rep_rd: i32,
    /// The jail root on the parent's side of the chroot.
    dir: PathBuf,
}

#[derive(Debug)]
struct PoolState {
    idle: Vec<Worker>,
    /// Workers alive (idle + checked out). Bounded by the pool capacity.
    live: usize,
}

/// A lazy, fixed-capacity pool of persistent pre-jailed workers.
///
/// Workers are spawned on demand up to the capacity; callers needing a
/// worker when all are busy block until one is returned (or dies). Shared
/// behind an `Arc` by [`HostFs::pooled`](super::HostFs::pooled), so the
/// executor threads of an [`ExecPipeline`](crate::ExecPipeline) each check
/// out their own worker concurrently.
#[derive(Debug)]
pub struct WorkerPool {
    cap: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl WorkerPool {
    /// Create an empty pool with capacity `workers` (clamped to ≥ 1). No
    /// processes are forked until the first execution.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool {
            cap: workers.max(1),
            state: Mutex::new(PoolState { idle: Vec::new(), live: 0 }),
            available: Condvar::new(),
        }
    }

    /// Pool capacity (maximum concurrent worker processes).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Execute one script on a pooled worker. A dead or corrupt worker is
    /// discarded and the script transparently re-runs on a cold fork, so a
    /// single worker failure costs one fork, not a verdict.
    pub(super) fn execute(&self, script: &Script, opts: ExecOptions) -> Result<Trace, ExecError> {
        let worker = self.checkout()?;
        match run_on(&worker, script, opts) {
            Ok(res) => {
                // The worker resets its jail after every served script; it
                // is only returned to the pool on a healthy reply.
                obs::m::EXEC_JAIL_RESETS_TOTAL.inc();
                self.checkin(worker);
                res
            }
            Err(why) => {
                self.discard(worker);
                obs::m::EXEC_WORKER_RESPAWNS_TOTAL.inc();
                let _ = why; // the cold-fork result supersedes the diagnosis
                super::cold_execute(script, opts)
            }
        }
    }

    /// Take an idle worker, spawning one if the pool is under capacity;
    /// block while all workers are checked out.
    fn checkout(&self) -> Result<Worker, ExecError> {
        let mut st = lock(&self.state);
        loop {
            if let Some(w) = st.idle.pop() {
                return Ok(w);
            }
            if st.live < self.cap {
                st.live += 1;
                drop(st);
                return spawn_worker().inspect_err(|_| {
                    lock(&self.state).live -= 1;
                    self.available.notify_one();
                });
            }
            st = self.available.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn checkin(&self, worker: Worker) {
        lock(&self.state).idle.push(worker);
        self.available.notify_one();
    }

    /// Force-reap a worker that broke protocol (or died); its slot becomes
    /// spawnable again.
    fn discard(&self, worker: Worker) {
        // SAFETY: `pid` is a child this pool forked and has not yet reaped;
        // the descriptors are owned by `worker` and closed exactly once
        // here. `waitpid` writes through a valid `&mut status`.
        unsafe {
            raw::kill(worker.pid, raw::SIGKILL);
            let mut status = 0;
            raw::waitpid(worker.pid, &mut status, 0);
            raw::close(worker.req_wr);
            raw::close(worker.rep_rd);
        }
        let _ = std::fs::remove_dir_all(&worker.dir);
        lock(&self.state).live -= 1;
        self.available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut st = lock(&self.state);
        let idle: Vec<Worker> = st.idle.drain(..).collect();
        for w in idle {
            // SAFETY: closing the request pipe makes the worker read EOF and
            // `_exit(0)`; the descriptors are owned by `w` and closed exactly
            // once, and `waitpid` writes through a valid `&mut status`.
            unsafe {
                raw::close(w.req_wr);
                let mut status = 0;
                raw::waitpid(w.pid, &mut status, 0);
                raw::close(w.rep_rd);
            }
            let _ = std::fs::remove_dir_all(&w.dir);
            st.live -= 1;
        }
    }
}

/// Fork one persistent worker and wait for its ready/sandbox handshake.
fn spawn_worker() -> Result<Worker, ExecError> {
    let spawn_err = |message: String| ExecError::Backend {
        script: "<worker-spawn>".to_string(),
        message,
    };
    let dir = fresh_sandbox_dir().map_err(|e| spawn_err(format!("sandbox dir: {e}")))?;
    let mut root = dir.as_os_str().as_encoded_bytes().to_vec();
    root.push(0);

    let mut req = [0i32; 2];
    let mut rep = [0i32; 2];
    // SAFETY: each array is a live buffer of exactly the two c_ints the
    // kernel writes.
    if unsafe { raw::pipe(req.as_mut_ptr()) } != 0 {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(spawn_err(format!("pipe: errno {}", errno_raw())));
    }
    if unsafe { raw::pipe(rep.as_mut_ptr()) } != 0 {
        // SAFETY: both request-pipe ends were just created and are owned here.
        unsafe {
            raw::close(req[0]);
            raw::close(req[1]);
        }
        let _ = std::fs::remove_dir_all(&dir);
        return Err(spawn_err(format!("pipe: errno {}", errno_raw())));
    }

    // SAFETY: integer-only FFI call; the child branch immediately enters
    // `pool_worker_main` and never returns into Rust caller frames.
    let pid = unsafe { raw::fork() };
    if pid < 0 {
        // SAFETY: all four pipe ends were just created and are owned here.
        unsafe {
            for fd in [req[0], req[1], rep[0], rep[1]] {
                raw::close(fd);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        return Err(spawn_err(format!("fork: errno {}", errno_raw())));
    }
    if pid == 0 {
        // SAFETY: the child owns its copies of the parent-side ends and
        // closes each exactly once before entering the serve loop.
        unsafe {
            raw::close(req[1]);
            raw::close(rep[0]);
        }
        pool_worker_main(&root, req[0], rep[1]);
    }

    // SAFETY: the parent owns its copies of the child-side ends and closes
    // each exactly once.
    unsafe {
        raw::close(req[0]);
        raw::close(rep[1]);
    }
    let worker = Worker { pid, req_wr: req[1], rep_rd: rep[0], dir };

    // The worker reports exactly one startup frame: ready, or why not.
    match read_frame(worker.rep_rd) {
        Some((TAG_READY, _)) => Ok(worker),
        Some((TAG_SANDBOX, msg)) => {
            let why = String::from_utf8_lossy(&msg).into_owned();
            reap(worker);
            Err(ExecError::SandboxUnavailable(format!("worker could not chroot ({why})")))
        }
        other => {
            let desc = match other {
                Some((tag, _)) => format!("unexpected startup frame tag {tag:#x}"),
                None => "worker died before handshake".to_string(),
            };
            reap(worker);
            Err(spawn_err(desc))
        }
    }
}

/// Reap a worker that never became usable.
fn reap(worker: Worker) {
    // SAFETY: `pid` is an unreaped child of this process; the descriptors
    // are owned by `worker` and closed exactly once.
    unsafe {
        raw::close(worker.req_wr);
        let mut status = 0;
        raw::waitpid(worker.pid, &mut status, 0);
        raw::close(worker.rep_rd);
    }
    let _ = std::fs::remove_dir_all(&worker.dir);
}

/// One request/reply round-trip. The outer `Err` means the worker can no
/// longer be trusted (died, or sent bytes we cannot interpret) and must be
/// discarded; the inner result is the script's own outcome.
fn run_on(
    worker: &Worker,
    script: &Script,
    opts: ExecOptions,
) -> Result<Result<Trace, ExecError>, String> {
    if !write_frame(worker.req_wr, TAG_EXEC, &encode_exec_request(script, opts)) {
        return Err("request write failed (worker gone)".to_string());
    }
    match read_frame(worker.rep_rd) {
        Some((TAG_TRACE, bytes)) => {
            let text = String::from_utf8_lossy(&bytes);
            match parse_trace(&text) {
                Ok(mut trace) => {
                    // As in the cold path: the rendered form re-derives the
                    // group from the name; pin both to the script's values.
                    trace.name = script.name.clone();
                    trace.group = script.group.clone();
                    Ok(Ok(trace))
                }
                // An unparseable trace means worker state is suspect, not
                // just this script: discard it.
                Err(e) => Err(format!("worker trace unparseable: {e}")),
            }
        }
        Some((TAG_ERROR, msg)) => Ok(Err(ExecError::Backend {
            script: script.name.clone(),
            message: String::from_utf8_lossy(&msg).into_owned(),
        })),
        Some((tag, _)) => Err(format!("unexpected reply frame tag {tag:#x}")),
        None => Err("worker died mid-script".to_string()),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// Serve loop of a persistent worker: chroot once, then
/// read-execute-reply-reset until EOF on the request pipe. Never returns.
fn pool_worker_main(root: &[u8], req_rd: i32, rep_wr: i32) -> ! {
    close_all_except(&[0, 1, 2, req_rd, rep_wr]);
    // SAFETY: `root` is NUL-terminated by the caller and the `c"…"` literals
    // by construction; all other calls are integer-only. `_exit` never
    // returns and skips the parent's atexit state, as a forked worker must.
    let jail_root_fd = unsafe {
        if raw::chdir(root.as_ptr().cast()) != 0
            || raw::chroot(c".".as_ptr().cast()) != 0
            || raw::chdir(c"/".as_ptr().cast()) != 0
        {
            let msg = format!("errno={}", errno_raw());
            write_frame(rep_wr, TAG_SANDBOX, msg.as_bytes());
            raw::_exit(EXIT_SANDBOX);
        }
        raw::umask(0o022);
        // The anchor the whole reset contract hangs off: an O_PATH handle on
        // the jail root taken *after* the chroot, so `fchdir` can always get
        // back no matter where (or in what deleted directory) a script left
        // the process.
        let fd = raw::open(
            c"/".as_ptr().cast(),
            raw::O_PATH | raw::O_DIRECTORY | raw::O_CLOEXEC,
            0,
        );
        if fd < 0 {
            let msg = format!("jail root fd: errno={}", errno_raw());
            write_frame(rep_wr, TAG_SANDBOX, msg.as_bytes());
            raw::_exit(EXIT_SANDBOX);
        }
        fd
    };
    if !write_frame(rep_wr, TAG_READY, b"") {
        // SAFETY: integer-only, never returns.
        unsafe { raw::_exit(EXIT_OK) };
    }

    loop {
        let Some((tag, payload)) = read_frame(req_rd) else {
            // EOF: the pool is shutting down.
            // SAFETY: integer-only, never returns.
            unsafe { raw::_exit(EXIT_OK) };
        };
        if tag != TAG_EXEC {
            // Protocol violation: die rather than guess (the parent will
            // cold-fork the script in flight and respawn).
            // SAFETY: integer-only, never returns.
            unsafe { raw::_exit(EXIT_SANDBOX) };
        }
        match decode_exec_request(&payload) {
            Ok((script, opts)) => {
                let trace = super::run_script_in_jail(&script, opts);
                let rendered = render_trace(&trace);
                if !write_frame(rep_wr, TAG_TRACE, rendered.as_bytes()) {
                    // SAFETY: integer-only, never returns.
                    unsafe { raw::_exit(EXIT_OK) };
                }
                // Reset *after* replying, overlapping the teardown with the
                // parent's dispatch of the next script. A worker that cannot
                // restore a pristine jail must never serve again.
                if !reset_jail(jail_root_fd, req_rd, rep_wr) {
                    // SAFETY: integer-only, never returns.
                    unsafe { raw::_exit(EXIT_SANDBOX) };
                }
            }
            Err(msg) => {
                // The jail was not touched, so the worker stays usable.
                if !write_frame(rep_wr, TAG_ERROR, msg.as_bytes()) {
                    // SAFETY: integer-only, never returns.
                    unsafe { raw::_exit(EXIT_OK) };
                }
            }
        }
    }
}

/// Restore the pristine-jail invariant between scripts (see the module docs
/// for the full contract). Returns `false` if any step fails, in which case
/// the worker must exit.
fn reset_jail(jail_root_fd: i32, req_rd: i32, rep_wr: i32) -> bool {
    // SAFETY: integer-only FFI calls; `setgroups(0, null)` reads zero
    // elements, for which a null pointer is valid.
    unsafe {
        raw::seteuid(0);
        raw::setegid(0);
        raw::setgroups(0, std::ptr::null());
        raw::umask(0o022);
        if raw::fchdir(jail_root_fd) != 0 {
            return false;
        }
    }
    if !remove_tree_children(b".") {
        return false;
    }
    // Scripts chmod/chown the jail root itself ("/" from their point of
    // view); put it back the way a fresh sandbox directory comes up.
    // SAFETY: the `c"."` literal is NUL-terminated; integer-only otherwise.
    unsafe {
        if raw::chmod(c".".as_ptr().cast(), 0o755) != 0
            || raw::chown(c".".as_ptr().cast(), 0, 0) != 0
        {
            return false;
        }
    }
    close_all_except(&[0, 1, 2, req_rd, rep_wr, jail_root_fd]);
    true
}

/// Recursively delete every entry *under* `dir` (the directory itself
/// survives). Paths are relative to the restored jail-root cwd; running with
/// euid 0 inside the chroot, mode bits cannot get in the way.
fn remove_tree_children(dir: &[u8]) -> bool {
    let mut cdir = dir.to_vec();
    cdir.push(0);
    // SAFETY: `cdir` is a live NUL-terminated buffer; `opendir` copies it.
    let handle = unsafe { raw::opendir(cdir.as_ptr().cast()) };
    if handle.is_null() {
        return false;
    }
    let mut names: Vec<Vec<u8>> = Vec::new();
    loop {
        // SAFETY: `handle` is the live `DIR*` opened above, closed only
        // after this loop.
        let ent = unsafe { raw::readdir(handle) };
        if ent.is_null() {
            break;
        }
        // SAFETY: `ent` is non-null and points into the DIR buffer, valid
        // until the next readdir; `d_name` is NUL-terminated by the kernel.
        let name = unsafe { super::c_str_bytes(&(*ent).d_name) };
        if name == b"." || name == b".." {
            continue;
        }
        names.push(name.to_vec());
    }
    // SAFETY: `handle` is live and closed exactly once.
    unsafe { raw::closedir(handle) };

    for name in names {
        let mut child = dir.to_vec();
        child.push(b'/');
        child.extend_from_slice(&name);
        let mut cchild = child.clone();
        cchild.push(0);
        let mut buf = std::mem::MaybeUninit::<raw::Statx>::zeroed();
        // SAFETY: `cchild` is NUL-terminated and `buf` is a properly-aligned
        // writable `Statx`; neither pointer is retained.
        let rc = unsafe {
            raw::statx(
                raw::AT_FDCWD,
                cchild.as_ptr().cast(),
                raw::AT_SYMLINK_NOFOLLOW,
                raw::STATX_BASIC_STATS,
                buf.as_mut_ptr(),
            )
        };
        if rc != 0 {
            return false;
        }
        // SAFETY: statx returned 0, so the zero-initialised buffer's
        // requested fields are populated.
        let stx = unsafe { buf.assume_init() };
        if u32::from(stx.stx_mode) & raw::S_IFMT == raw::S_IFDIR {
            // SAFETY: `cchild` is a live NUL-terminated buffer.
            if !remove_tree_children(&child) || unsafe { raw::rmdir(cchild.as_ptr().cast()) } != 0
            {
                return false;
            }
        } else {
            // SAFETY: `cchild` is a live NUL-terminated buffer.
            if unsafe { raw::unlink(cchild.as_ptr().cast()) } != 0 {
                return false;
            }
        }
    }
    true
}

/// Close every descriptor except the listed ones, using `close_range` over
/// the gaps between them.
fn close_all_except(keep: &[i32]) {
    let mut keep: Vec<u32> = keep.iter().filter(|&&fd| fd >= 0).map(|&fd| fd as u32).collect();
    keep.sort_unstable();
    keep.dedup();
    let mut next = 0u32;
    for fd in keep {
        if fd > next {
            // SAFETY: integer-only FFI call; best effort (close_range is
            // glibc ≥ 2.34 / kernel ≥ 5.9, like the cold path's usage).
            unsafe { raw::close_range(next, fd - 1, 0) };
        }
        next = fd + 1;
    }
    // SAFETY: integer-only FFI call, as above.
    unsafe { raw::close_range(next, u32::MAX, 0) };
}

#[cfg(test)]
mod tests {
    use super::super::HostFs;
    use crate::{ExecOptions, Executor};
    use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue};
    use sibylfs_core::flags::{FileMode, OpenFlags};
    use sibylfs_core::types::{Fd, Gid, Pid, Uid};
    use sibylfs_script::Script;

    fn pooled_or_skip(workers: usize) -> Option<HostFs> {
        if HostFs::available() {
            Some(HostFs::pooled(workers))
        } else {
            eprintln!("skipping: host sandbox unavailable (need chroot privilege)");
            None
        }
    }

    fn mode(m: u32) -> FileMode {
        FileMode::new(m)
    }

    /// A script that dirties every axis of worker state the reset contract
    /// covers: files and nested directories, open fds and directory handles
    /// (deliberately not closed), a changed cwd (inside a directory that
    /// still exists), a changed umask, and non-root credentials left in
    /// effect at the end.
    fn dirty_script() -> Script {
        let mut s = Script::new("pool___dirty", "pool");
        s.call(OsCommand::Mkdir("/junk".into(), mode(0o700)))
            .call(OsCommand::Mkdir("/junk/nested".into(), mode(0o777)))
            .call(OsCommand::Open(
                "/junk/nested/leak".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                Some(mode(0o666)),
            ))
            .call(OsCommand::Write(Fd(3), b"residue".to_vec()))
            .call(OsCommand::Opendir("/junk".into()))
            .call(OsCommand::Symlink("/junk".into(), "/hole".into()))
            .call(OsCommand::Chdir("/junk/nested".into()))
            .call(OsCommand::Umask(mode(0o077)))
            .create_process(Pid(2), Uid(3000), Gid(3000))
            .call_as(Pid(2), OsCommand::Mkdir("/theirs".into(), mode(0o755)));
        s
    }

    /// A probe that would answer differently on any leaked state: leftover
    /// entries show up in the root readdir, a leaked umask changes the
    /// created file's mode, leaked fds/cwd/credentials change fd numbering
    /// or permissions.
    fn probe_script() -> Script {
        let mut s = Script::new("pool___probe", "pool");
        s.call(OsCommand::Opendir("/".into()))
            .call(OsCommand::Readdir(sibylfs_core::types::DirHandleId(1)))
            .call(OsCommand::Open(
                "/probe".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(mode(0o777)),
            ))
            .call(OsCommand::Stat("/probe".into()))
            .call(OsCommand::Mkdir("/pdir".into(), mode(0o777)))
            .call(OsCommand::Stat("/pdir".into()));
        s
    }

    #[test]
    fn jail_reset_leaves_nothing_observable_for_the_next_script() {
        // One worker, so both scripts run in the same process and the same
        // jail: the probe sees the reset, or the leak.
        let Some(pooled) = pooled_or_skip(1) else { return };
        let cold = HostFs::new();
        let opts = ExecOptions::default();

        let baseline = cold.execute_script(&probe_script(), opts).unwrap();
        pooled.execute_script(&dirty_script(), opts).unwrap();
        let after_dirty = pooled.execute_script(&probe_script(), opts).unwrap();
        assert_eq!(
            after_dirty, baseline,
            "a probe after a jail-dirtying script must be byte-identical to a fresh jail"
        );
        // And explicitly: the root directory scans empty again.
        match &after_dirty.steps[3].label {
            sibylfs_core::commands::OsLabel::Return(
                _,
                ErrorOrValue::Value(RetValue::ReaddirEntry(None)),
            ) => {}
            other => panic!("root not empty after reset: {other:?}"),
        }
    }

    #[test]
    fn repeated_scripts_on_one_worker_match_cold_forks() {
        let Some(pooled) = pooled_or_skip(1) else { return };
        let cold = HostFs::new();
        let opts = ExecOptions::default();
        let mut s = Script::new("mkdir___pool_repeat", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), mode(0o777)))
            .call(OsCommand::Open(
                "/d/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                Some(mode(0o644)),
            ))
            .call(OsCommand::Write(Fd(3), b"x".to_vec()))
            .call(OsCommand::Stat("/d/f".into()));
        let reference = cold.execute_script(&s, opts).unwrap();
        for round in 0..5 {
            let t = pooled.execute_script(&s, opts).unwrap();
            assert_eq!(t, reference, "round {round} must not see prior rounds");
        }
    }

    #[test]
    fn pooled_execution_reuses_workers_instead_of_forking() {
        let Some(pooled) = pooled_or_skip(2) else { return };
        let opts = ExecOptions::default();
        let resets0 = sibylfs_core::obs::m::EXEC_JAIL_RESETS_TOTAL.get();
        let mut s = Script::new("mkdir___pool_counter", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), mode(0o777)));
        for _ in 0..6 {
            pooled.execute_script(&s, opts).unwrap();
        }
        assert!(
            sibylfs_core::obs::m::EXEC_JAIL_RESETS_TOTAL.get() >= resets0 + 6,
            "every pooled script rides a jail reset, not a fresh fork"
        );
    }
}
