//! The length-prefixed pipe protocol between the parent and a persistent
//! pool worker.
//!
//! Frames are `[tag: 1 byte][len: 4 bytes LE][payload: len bytes]`, in both
//! directions. The parent sends one [`TAG_EXEC`] request per script; the
//! worker answers each with exactly one reply frame:
//!
//! * [`TAG_READY`] — sent once at startup, after the chroot succeeded (so a
//!   failed spawn is detected at spawn time, not first use);
//! * [`TAG_TRACE`] — the rendered trace of an executed script;
//! * [`TAG_ERROR`] — a request-level failure (unparseable request); the jail
//!   was not touched, so the worker stays usable;
//! * [`TAG_SANDBOX`] — the worker cannot provide a (clean) jail: chroot
//!   failed at startup. Jail-reset failures after a reply do not get a
//!   frame; the worker exits and the parent sees EOF on the next request.
//!
//! EOF on the request pipe is the shutdown signal; EOF on the reply pipe
//! means the worker died and the parent falls back to a cold fork for the
//! script in flight. All I/O is blocking; a frame larger than [`MAX_FRAME`]
//! is treated as a protocol failure (the reader gives up, killing the
//! worker) rather than an allocation.

use super::raw;

pub(super) const TAG_EXEC: u8 = b'X';
pub(super) const TAG_READY: u8 = b'R';
pub(super) const TAG_TRACE: u8 = b'T';
pub(super) const TAG_ERROR: u8 = b'E';
pub(super) const TAG_SANDBOX: u8 = b'S';

/// Upper bound on one frame's payload. Traces are bounded by script size and
/// [`MAX_TRANSFER`](super::MAX_TRANSFER)-capped reads, so anything larger is
/// corruption, not data.
pub(super) const MAX_FRAME: usize = 64 << 20;

/// Write all of `buf` to `fd`; `false` on any write error (broken pipe ⇒
/// the peer is gone).
pub(super) fn write_all(fd: i32, mut buf: &[u8]) -> bool {
    while !buf.is_empty() {
        // SAFETY: `buf` is a live slice of `buf.len()` readable bytes.
        let n = unsafe { raw::write(fd, buf.as_ptr().cast(), buf.len()) };
        if n <= 0 {
            return false;
        }
        buf = &buf[n as usize..];
    }
    true
}

/// Read exactly `buf.len()` bytes; `false` on EOF or error.
fn read_exact(fd: i32, buf: &mut [u8]) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        let rest = &mut buf[filled..];
        // SAFETY: `rest` is a live slice of `rest.len()` writable bytes.
        let n = unsafe { raw::read(fd, rest.as_mut_ptr().cast(), rest.len()) };
        if n <= 0 {
            return false;
        }
        filled += n as usize;
    }
    true
}

/// Send one frame; `false` if the peer is gone.
pub(super) fn write_frame(fd: i32, tag: u8, payload: &[u8]) -> bool {
    let mut header = [0u8; 5];
    header[0] = tag;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    write_all(fd, &header) && write_all(fd, payload)
}

/// Receive one frame; `None` on EOF, short read, or an oversized length
/// (all of which mean the worker/parent is unusable).
pub(super) fn read_frame(fd: i32) -> Option<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    if !read_exact(fd, &mut header) {
        return None;
    }
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME {
        return None;
    }
    let mut payload = vec![0u8; len];
    if !read_exact(fd, &mut payload) {
        return None;
    }
    Some((header[0], payload))
}

/// Encode a [`TAG_EXEC`] payload: one options byte, then the rendered
/// script.
pub(super) fn encode_exec_request(
    script: &sibylfs_script::Script,
    opts: crate::ExecOptions,
) -> Vec<u8> {
    let rendered = sibylfs_script::render_script(script);
    let mut payload = Vec::with_capacity(1 + rendered.len());
    payload.push(u8::from(opts.root_user));
    payload.extend_from_slice(rendered.as_bytes());
    payload
}

/// Decode a [`TAG_EXEC`] payload back into the script and options.
pub(super) fn decode_exec_request(
    payload: &[u8],
) -> Result<(sibylfs_script::Script, crate::ExecOptions), String> {
    let (&opts_byte, text) = payload.split_first().ok_or("empty exec request")?;
    let text = std::str::from_utf8(text).map_err(|e| format!("non-UTF-8 script: {e}"))?;
    let script =
        sibylfs_script::parse_script(text).map_err(|e| format!("unparseable script: {e}"))?;
    Ok((script, crate::ExecOptions { root_user: opts_byte != 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::OsCommand;
    use sibylfs_core::flags::FileMode;
    use sibylfs_script::Script;

    #[test]
    fn exec_request_round_trips_script_and_options() {
        let mut s = Script::new("mkdir___proto", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), FileMode::new(0o777)));
        for root_user in [true, false] {
            let payload = encode_exec_request(&s, crate::ExecOptions { root_user });
            let (back, opts) = decode_exec_request(&payload).expect("round-trip");
            assert_eq!(opts.root_user, root_user);
            assert_eq!(back.steps, s.steps);
        }
        assert!(decode_exec_request(&[]).is_err());
        assert!(decode_exec_request(&[1, 0xff, 0xfe]).is_err(), "non-UTF-8 rejected");
    }

    #[test]
    fn frames_round_trip_over_a_real_pipe() {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live array of exactly the two c_ints the kernel
        // writes.
        assert_eq!(unsafe { raw::pipe(fds.as_mut_ptr()) }, 0);
        // Larger than the default 64 KiB pipe buffer, so the writer must run
        // on its own thread for the frame to drain.
        let payload = vec![7u8; 70_000];
        let wr = fds[1];
        let send = {
            let payload = payload.clone();
            std::thread::spawn(move || {
                assert!(write_frame(wr, TAG_TRACE, &payload));
                // SAFETY: `wr` is owned by this test and closed exactly once.
                unsafe { raw::close(wr) };
            })
        };
        let (tag, got) = read_frame(fds[0]).expect("frame");
        assert_eq!(tag, TAG_TRACE);
        assert_eq!(got, payload);
        assert!(read_frame(fds[0]).is_none(), "EOF after the writer closes");
        // SAFETY: the read end is owned by this test and closed exactly once.
        unsafe { raw::close(fds[0]) };
        send.join().unwrap();
    }
}
