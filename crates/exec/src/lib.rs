//! # SibylFS test executor
//!
//! Runs test scripts against a (simulated) file system under test and records
//! the resulting traces (the "Test executor" box of Fig. 1).
//!
//! The paper's executor forks interpreter and worker processes inside chroot
//! jails so that every script starts from an empty file-system namespace and
//! runs with the uid/gid/group memberships the script asks for (§6.2). The
//! reproduction achieves the same observable effect in-process: every script
//! execution starts from a fresh [`SimOs`] with an empty root, the initial
//! process runs as root (or as an unprivileged user when requested), and
//! additional processes are created with whatever credentials the script
//! declares.

use serde::{Deserialize, Serialize};

use sibylfs_core::commands::OsLabel;
use sibylfs_core::types::{Gid, Uid, INITIAL_PID};
use sibylfs_fsimpl::{BehaviorProfile, SimOs};
use sibylfs_script::{Script, ScriptStep, Trace};

/// Options controlling script execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOptions {
    /// Whether the initial process runs as root (the paper's default; worker
    /// processes for permission tests are created explicitly by scripts).
    pub root_user: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { root_user: true }
    }
}

/// Execute a single script against a fresh instance of the given
/// configuration, producing the observed trace.
pub fn execute_script(profile: &BehaviorProfile, script: &Script, opts: ExecOptions) -> Trace {
    let mut sim = SimOs::new(profile.clone());
    let (uid, gid) = if opts.root_user { (Uid(0), Gid(0)) } else { (Uid(1000), Gid(1000)) };
    sim.create_process(INITIAL_PID, uid, gid);

    let mut trace = Trace::new(script.name.clone(), script.group.clone());
    for step in &script.steps {
        match step {
            ScriptStep::Call { pid, cmd } => {
                let ret = sim.call(*pid, cmd);
                trace.push_call_return(*pid, cmd.clone(), ret);
            }
            ScriptStep::CreateProcess { pid, uid, gid } => {
                sim.create_process(*pid, *uid, *gid);
                trace.push_label(OsLabel::Create(*pid, *uid, *gid));
            }
            ScriptStep::DestroyProcess { pid } => {
                sim.destroy_process(*pid);
                trace.push_label(OsLabel::Destroy(*pid));
            }
        }
    }
    trace
}

/// Execute a whole suite of scripts against one configuration.
///
/// Each script runs against its own fresh file system, mirroring the paper's
/// per-script chroot jails.
pub fn execute_suite(
    profile: &BehaviorProfile,
    scripts: &[Script],
    opts: ExecOptions,
) -> Vec<Trace> {
    scripts.iter().map(|s| execute_script(profile, s, opts)).collect()
}

/// Summary statistics of a suite execution, reported by the performance
/// experiment (§7.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ExecStats {
    /// Number of scripts executed.
    pub scripts: usize,
    /// Total number of libc calls across all traces.
    pub calls: usize,
    /// Total size of the rendered trace data in bytes.
    pub trace_bytes: usize,
}

/// Execute a suite and gather statistics alongside the traces.
pub fn execute_suite_with_stats(
    profile: &BehaviorProfile,
    scripts: &[Script],
    opts: ExecOptions,
) -> (Vec<Trace>, ExecStats) {
    let traces = execute_suite(profile, scripts, opts);
    let stats = ExecStats {
        scripts: traces.len(),
        calls: traces.iter().map(|t| t.call_count()).sum(),
        trace_bytes: traces.iter().map(|t| sibylfs_script::render_trace(t).len()).sum(),
    };
    (traces, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue};
    use sibylfs_core::errno::Errno;
    use sibylfs_core::flags::{FileMode, OpenFlags};
    use sibylfs_core::types::Pid;
    use sibylfs_fsimpl::configs;

    fn paper_rename_script() -> Script {
        let mut s = Script::new("rename___rename_emptydir___nonemptydir", "rename");
        s.call(OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777)))
            .call(OsCommand::Mkdir("nonemptydir".into(), FileMode::new(0o777)))
            .call(OsCommand::Open(
                "nonemptydir/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o666)),
            ))
            .call(OsCommand::Rename("emptydir".into(), "nonemptydir".into()));
        s
    }

    #[test]
    fn executes_the_paper_example_on_ext4() {
        let profile = configs::by_name("linux/ext4").unwrap();
        let trace = execute_script(&profile, &paper_rename_script(), ExecOptions::default());
        assert_eq!(trace.call_count(), 4);
        // ext4 reports ENOTEMPTY (allowed); the final return is an error.
        let last = trace.steps.last().unwrap();
        match &last.label {
            OsLabel::Return(_, ErrorOrValue::Error(e)) => assert_eq!(*e, Errno::ENOTEMPTY),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sshfs_produces_the_fig4_deviation() {
        let profile = configs::by_name("linux/sshfs-tmpfs").unwrap();
        let trace = execute_script(&profile, &paper_rename_script(), ExecOptions::default());
        let last = trace.steps.last().unwrap();
        match &last.label {
            OsLabel::Return(_, ErrorOrValue::Error(e)) => assert_eq!(*e, Errno::EPERM),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn each_script_starts_from_an_empty_file_system() {
        let profile = configs::by_name("linux/tmpfs").unwrap();
        let mut s = Script::new("mkdir___simple", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), FileMode::new(0o777)));
        // Running the same script twice must give identical traces: state does
        // not leak between executions.
        let t1 = execute_script(&profile, &s, ExecOptions::default());
        let t2 = execute_script(&profile, &s, ExecOptions::default());
        assert_eq!(t1, t2);
        match &t1.steps[1].label {
            OsLabel::Return(_, ErrorOrValue::Value(RetValue::None)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiprocess_scripts_record_lifecycle_labels() {
        let profile = configs::by_name("linux/ext4").unwrap();
        let mut s = Script::new("permissions___two_procs", "permissions");
        s.call(OsCommand::Mkdir("/shared".into(), FileMode::new(0o777)))
            .create_process(Pid(2), Uid(1000), Gid(1000))
            .call_as(Pid(2), OsCommand::Mkdir("/shared/theirs".into(), FileMode::new(0o755)))
            .destroy_process(Pid(2));
        let trace = execute_script(&profile, &s, ExecOptions::default());
        assert!(trace.labels().any(|l| matches!(l, OsLabel::Create(Pid(2), ..))));
        assert!(trace.labels().any(|l| matches!(l, OsLabel::Destroy(Pid(2)))));
        assert_eq!(trace.call_count(), 2);
    }

    #[test]
    fn suite_stats_add_up() {
        let profile = configs::by_name("linux/ext4").unwrap();
        let scripts = vec![paper_rename_script(), paper_rename_script()];
        let (traces, stats) = execute_suite_with_stats(&profile, &scripts, ExecOptions::default());
        assert_eq!(traces.len(), 2);
        assert_eq!(stats.scripts, 2);
        assert_eq!(stats.calls, 8);
        assert!(stats.trace_bytes > 0);
    }
}
