//! # SibylFS test executor
//!
//! Runs test scripts against a file system under test and records the
//! resulting traces (the "Test executor" box of Fig. 1).
//!
//! The crate provides two trace producers behind the [`Executor`] trait:
//!
//! * [`SimExecutor`] — the in-process deterministic simulation
//!   ([`SimOs`](sibylfs_fsimpl::SimOs)) parameterised by a
//!   [`BehaviorProfile`]. Every script execution starts from a fresh
//!   simulated kernel with an empty root; the initial process runs as root
//!   (or as an unprivileged user when requested), and additional processes
//!   are created with whatever credentials the script declares.
//! * [`HostFs`] (`target_os = "linux"` only) — the real-host backend: each
//!   script runs in a forked worker process chroot-jailed inside a fresh
//!   temporary directory, issuing genuine libc syscalls, exactly as the
//!   paper's test executor does (§6.2). See the [`host`] module.
//!
//! Both backends record the same [`Trace`] structure, so the checker and the
//! reporting pipeline are oblivious to where a trace came from — which is
//! what lets `tests/host_differential.rs` compare the simulation against the
//! real kernel with the model as the oracle.

use std::fmt;

use serde::{Deserialize, Serialize};

use sibylfs_core::commands::OsLabel;
use sibylfs_core::obs;
use sibylfs_core::types::{Gid, Uid, INITIAL_PID};
use sibylfs_fsimpl::{BehaviorProfile, SimOs};
use sibylfs_script::{Script, ScriptStep, Trace};

// The host backend's inline libc bindings assume the 64-bit Linux ABI
// (64-bit `off_t`, the 64-bit `struct dirent` layout), so it is compiled
// only for 64-bit Linux targets; everywhere else the backend is absent and
// [`host_backend_available`] is `false`.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
pub mod host;

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
pub use host::HostFs;

pub mod pipeline;

pub use pipeline::ExecPipeline;
use std::sync::Arc;

/// The configuration name under which the host backend appears in the CLI
/// (`sibylfs run --config host/linux`) and in survey reports.
pub const HOST_CONFIG_NAME: &str = "host/linux";

/// Whether the real-host backend can run here (Linux, with enough privilege
/// to build a chroot jail). Always `false` on non-Linux targets.
pub fn host_backend_available() -> bool {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        host::sandbox_available()
    }
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    {
        false
    }
}

/// Options controlling script execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOptions {
    /// Whether the initial process runs as root (the paper's default; worker
    /// processes for permission tests are created explicitly by scripts).
    pub root_user: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { root_user: true }
    }
}

/// Why an executor failed to produce a trace.
///
/// The simulation is infallible; the host backend can fail to set up its
/// sandbox (insufficient privilege) or to ferry the trace back from the
/// worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The backend cannot run at all in this environment (e.g. the host
    /// backend without the privilege to chroot). Callers should skip, not
    /// fail.
    SandboxUnavailable(String),
    /// Executing one script went wrong (worker died, trace unparseable, …).
    Backend {
        /// The script being executed.
        script: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::SandboxUnavailable(why) => {
                write!(f, "host sandbox unavailable: {why}")
            }
            ExecError::Backend { script, message } => {
                write!(f, "executing {script:?} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A trace producer: anything that can run a test script from a fresh,
/// empty file-system state and record the libc-level call/return trace.
///
/// The checker only ever sees the produced [`Trace`], so implementations are
/// interchangeable — the substitution argument of the `fsimpl` crate, now
/// validated differentially by `tests/host_differential.rs`.
pub trait Executor {
    /// Short backend label used by reports: `"sim"` or `"host"`.
    fn backend_name(&self) -> &'static str;

    /// The configuration name this executor tests (e.g. `"linux/ext4"` or
    /// [`HOST_CONFIG_NAME`]).
    fn config_name(&self) -> String;

    /// Execute a single script from a fresh initial state.
    fn execute_script(&self, script: &Script, opts: ExecOptions) -> Result<Trace, ExecError>;
}

/// The simulation-backed executor (the seed's original behaviour).
#[derive(Debug, Clone)]
pub struct SimExecutor {
    /// The behaviour profile the simulated kernel runs with.
    pub profile: BehaviorProfile,
}

impl SimExecutor {
    /// Create an executor for the given configuration.
    pub fn new(profile: BehaviorProfile) -> SimExecutor {
        SimExecutor { profile }
    }
}

impl Executor for SimExecutor {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn config_name(&self) -> String {
        self.profile.name.clone()
    }

    fn execute_script(&self, script: &Script, opts: ExecOptions) -> Result<Trace, ExecError> {
        Ok(execute_script(&self.profile, script, opts))
    }
}

/// Execute a single script against a fresh instance of the given simulated
/// configuration, producing the observed trace.
pub fn execute_script(profile: &BehaviorProfile, script: &Script, opts: ExecOptions) -> Trace {
    let _span = obs::span("exec", "execute_script");
    let started = std::time::Instant::now();
    let mut sim = SimOs::new(profile.clone());
    let (uid, gid) = if opts.root_user { (Uid(0), Gid(0)) } else { (Uid(1000), Gid(1000)) };
    sim.create_process(INITIAL_PID, uid, gid);

    let mut trace = Trace::new(script.name.clone(), script.group.clone());
    for step in &script.steps {
        match step {
            ScriptStep::Call { pid, cmd } => {
                let ret = sim.call(*pid, cmd);
                trace.push_call_return(*pid, cmd.clone(), ret);
            }
            ScriptStep::CreateProcess { pid, uid, gid } => {
                sim.create_process(*pid, *uid, *gid);
                trace.push_label(OsLabel::Create(*pid, *uid, *gid));
            }
            ScriptStep::DestroyProcess { pid } => {
                sim.destroy_process(*pid);
                trace.push_label(OsLabel::Destroy(*pid));
            }
        }
    }
    obs::m::EXEC_SCRIPTS_TOTAL.inc();
    obs::m::EXEC_SCRIPT_NS.record_duration(started.elapsed());
    trace
}

/// Execute a whole suite of scripts on any backend.
///
/// Each script runs against its own fresh file system, mirroring the paper's
/// per-script chroot jails (which the host backend realises literally).
pub fn execute_suite_on(
    exec: &dyn Executor,
    scripts: &[Script],
    opts: ExecOptions,
) -> Result<Vec<Trace>, ExecError> {
    scripts.iter().map(|s| exec.execute_script(s, opts)).collect()
}

/// Execute a whole suite through a temporary [`ExecPipeline`] with `workers`
/// executor threads, returning traces in input order.
///
/// Semantics match [`execute_suite_on`]: the first failing script's error is
/// returned (by input order, so the choice is deterministic even though later
/// scripts may already have executed). Traces are byte-identical to the
/// sequential path — both backends execute every script from a fresh root, so
/// parallelism is unobservable in the results.
pub fn execute_suite_pipelined(
    exec: Arc<dyn Executor + Send + Sync>,
    scripts: &[Script],
    opts: ExecOptions,
    workers: usize,
) -> Result<Vec<Trace>, ExecError> {
    let pipe = ExecPipeline::new(exec, workers);
    pipe.execute_batch(scripts, opts).into_iter().collect()
}

/// Execute a whole suite of scripts against one simulated configuration.
pub fn execute_suite(
    profile: &BehaviorProfile,
    scripts: &[Script],
    opts: ExecOptions,
) -> Vec<Trace> {
    scripts.iter().map(|s| execute_script(profile, s, opts)).collect()
}

/// Summary statistics of a suite execution, reported by the performance
/// experiment (§7.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ExecStats {
    /// Number of scripts executed.
    pub scripts: usize,
    /// Total number of libc calls across all traces.
    pub calls: usize,
    /// Total size of the rendered trace data in bytes.
    pub trace_bytes: usize,
}

/// Execute a suite and gather statistics alongside the traces.
pub fn execute_suite_with_stats(
    profile: &BehaviorProfile,
    scripts: &[Script],
    opts: ExecOptions,
) -> (Vec<Trace>, ExecStats) {
    let traces = execute_suite(profile, scripts, opts);
    let stats = ExecStats {
        scripts: traces.len(),
        calls: traces.iter().map(|t| t.call_count()).sum(),
        trace_bytes: traces.iter().map(|t| sibylfs_script::render_trace(t).len()).sum(),
    };
    (traces, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue};
    use sibylfs_core::errno::Errno;
    use sibylfs_core::flags::{FileMode, OpenFlags};
    use sibylfs_core::types::Pid;
    use sibylfs_fsimpl::configs;

    fn paper_rename_script() -> Script {
        let mut s = Script::new("rename___rename_emptydir___nonemptydir", "rename");
        s.call(OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777)))
            .call(OsCommand::Mkdir("nonemptydir".into(), FileMode::new(0o777)))
            .call(OsCommand::Open(
                "nonemptydir/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o666)),
            ))
            .call(OsCommand::Rename("emptydir".into(), "nonemptydir".into()));
        s
    }

    #[test]
    fn executes_the_paper_example_on_ext4() {
        let profile = configs::by_name("linux/ext4").unwrap();
        let trace = execute_script(&profile, &paper_rename_script(), ExecOptions::default());
        assert_eq!(trace.call_count(), 4);
        // ext4 reports ENOTEMPTY (allowed); the final return is an error.
        let last = trace.steps.last().unwrap();
        match &last.label {
            OsLabel::Return(_, ErrorOrValue::Error(e)) => assert_eq!(*e, Errno::ENOTEMPTY),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sshfs_produces_the_fig4_deviation() {
        let profile = configs::by_name("linux/sshfs-tmpfs").unwrap();
        let trace = execute_script(&profile, &paper_rename_script(), ExecOptions::default());
        let last = trace.steps.last().unwrap();
        match &last.label {
            OsLabel::Return(_, ErrorOrValue::Error(e)) => assert_eq!(*e, Errno::EPERM),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn each_script_starts_from_an_empty_file_system() {
        let profile = configs::by_name("linux/tmpfs").unwrap();
        let mut s = Script::new("mkdir___simple", "mkdir");
        s.call(OsCommand::Mkdir("/d".into(), FileMode::new(0o777)));
        // Running the same script twice must give identical traces: state does
        // not leak between executions.
        let t1 = execute_script(&profile, &s, ExecOptions::default());
        let t2 = execute_script(&profile, &s, ExecOptions::default());
        assert_eq!(t1, t2);
        match &t1.steps[1].label {
            OsLabel::Return(_, ErrorOrValue::Value(RetValue::None)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiprocess_scripts_record_lifecycle_labels() {
        let profile = configs::by_name("linux/ext4").unwrap();
        let mut s = Script::new("permissions___two_procs", "permissions");
        s.call(OsCommand::Mkdir("/shared".into(), FileMode::new(0o777)))
            .create_process(Pid(2), Uid(1000), Gid(1000))
            .call_as(Pid(2), OsCommand::Mkdir("/shared/theirs".into(), FileMode::new(0o755)))
            .destroy_process(Pid(2));
        let trace = execute_script(&profile, &s, ExecOptions::default());
        assert!(trace.labels().any(|l| matches!(l, OsLabel::Create(Pid(2), ..))));
        assert!(trace.labels().any(|l| matches!(l, OsLabel::Destroy(Pid(2)))));
        assert_eq!(trace.call_count(), 2);
    }

    #[test]
    fn suite_stats_add_up() {
        let profile = configs::by_name("linux/ext4").unwrap();
        let scripts = vec![paper_rename_script(), paper_rename_script()];
        let (traces, stats) = execute_suite_with_stats(&profile, &scripts, ExecOptions::default());
        assert_eq!(traces.len(), 2);
        assert_eq!(stats.scripts, 2);
        assert_eq!(stats.calls, 8);
        assert!(stats.trace_bytes > 0);
    }

    #[test]
    fn sim_executor_matches_free_function() {
        let profile = configs::by_name("linux/ext4").unwrap();
        let exec = SimExecutor::new(profile.clone());
        assert_eq!(exec.backend_name(), "sim");
        assert_eq!(exec.config_name(), "linux/ext4");
        let script = paper_rename_script();
        let via_trait = exec.execute_script(&script, ExecOptions::default()).unwrap();
        let direct = execute_script(&profile, &script, ExecOptions::default());
        assert_eq!(via_trait, direct);
        let suite = [paper_rename_script()];
        let traces = execute_suite_on(&exec, &suite, ExecOptions::default()).unwrap();
        assert_eq!(traces, execute_suite(&profile, &suite, ExecOptions::default()));
    }
}
