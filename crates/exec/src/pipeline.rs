//! A streaming execution pipeline over any [`Executor`].
//!
//! [`execute_suite_on`](crate::execute_suite_on) runs one script at a time on
//! the calling thread — the right shape for a unit test, the wrong shape for
//! a suite: the host backend's per-script latency (a worker round-trip, even
//! a pooled one) serializes end-to-end, and downstream checking cannot start
//! until the whole suite has executed.
//!
//! [`ExecPipeline`] owns N executor threads fed from a *bounded* queue
//! ([`submit`](ExecPipeline::submit) blocks when the queue is full, so a fast
//! producer cannot buffer an unbounded suite in memory), and
//! [`execute_ordered`](ExecPipeline::execute_ordered) adds deterministic
//! order-preserving delivery on top: completed traces park in a reorder
//! buffer keyed by submission index and a sink receives them strictly in
//! input order while later scripts are still executing — the same
//! per-session sequencing idiom as the serve writer loop. This is what lets
//! the CLI hand trace `i` to the checker pool while scripts `i+1..` are
//! still running, with results byte-identical to the sequential path.
//!
//! The pipeline is backend-agnostic: the executor is shared behind an `Arc`,
//! so the sim backend (stateless per call) and the pooled host backend
//! (workers checked out per call internally) both parallelize safely.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use sibylfs_core::obs;
use sibylfs_script::{Script, Trace};

use crate::{ExecError, ExecOptions, Executor};

/// One unit of work: execute `script` and hand the result to `done`.
struct Job {
    script: Script,
    opts: ExecOptions,
    done: Box<dyn FnOnce(Result<Trace, ExecError>) + Send>,
}

struct PipeState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PipeInner {
    state: Mutex<PipeState>,
    /// Signalled when a job is queued (workers wait on this).
    work_ready: Condvar,
    /// Signalled when a job is picked up (blocked submitters wait on this).
    slot_free: Condvar,
    /// Queue capacity: submit blocks once this many jobs are waiting.
    capacity: usize,
}

/// A fixed-size pool of executor threads with a bounded FIFO queue.
pub struct ExecPipeline {
    inner: Arc<PipeInner>,
    workers: Vec<JoinHandle<()>>,
}

impl ExecPipeline {
    /// Spawn a pipeline with `workers` executor threads (clamped to at least
    /// 1) and a queue bounded at twice the worker count.
    pub fn new(exec: Arc<dyn Executor + Send + Sync>, workers: usize) -> ExecPipeline {
        let workers = workers.max(1);
        Self::with_capacity(exec, workers, workers * 2)
    }

    /// Spawn a pipeline with an explicit queue bound (clamped to ≥ 1).
    pub fn with_capacity(
        exec: Arc<dyn Executor + Send + Sync>,
        workers: usize,
        capacity: usize,
    ) -> ExecPipeline {
        let workers = workers.max(1);
        let inner = Arc::new(PipeInner {
            state: Mutex::new(PipeState { queue: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
            slot_free: Condvar::new(),
            capacity: capacity.max(1),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let exec = Arc::clone(&exec);
                std::thread::Builder::new()
                    .name(format!("sibylfs-exec-{i}"))
                    .spawn(move || worker_loop(&inner, &*exec))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|e| panic!("failed to spawn exec worker: {e}"));
        obs::m::EXEC_PIPE_WORKERS.add(handles.len() as i64);
        ExecPipeline { inner, workers: handles }
    }

    /// Number of executor threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one script, blocking while the queue is at capacity
    /// (backpressure). `done` runs on an executor thread once the trace is
    /// ready; jobs complete in whatever order workers finish, so callers
    /// needing ordered results use [`execute_ordered`](Self::execute_ordered)
    /// or [`execute_batch`](Self::execute_batch).
    pub fn submit(
        &self,
        script: Script,
        opts: ExecOptions,
        done: impl FnOnce(Result<Trace, ExecError>) + Send + 'static,
    ) {
        let mut st = lock(&self.inner.state);
        while st.queue.len() >= self.inner.capacity && !st.shutdown {
            st = self.inner.slot_free.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.queue.push_back(Job { script, opts, done: Box::new(done) });
        obs::m::EXEC_PIPE_QUEUE_DEPTH.inc();
        drop(st);
        self.inner.work_ready.notify_one();
    }

    /// Execute `scripts`, delivering `(index, result)` to `sink` strictly in
    /// input order — index `i` is always delivered before `i+1`, even though
    /// execution itself is out of order across the workers. Completed traces
    /// that arrive early wait in a reorder buffer (its depth is visible as
    /// the `sibylfs_exec_pipe_reorder_depth` gauge). The sink runs on the
    /// calling thread, interleaved with submission, so it may block (e.g.
    /// feeding a checker pool) without stalling the executor threads beyond
    /// the queue bound.
    pub fn execute_ordered(
        &self,
        scripts: &[Script],
        opts: ExecOptions,
        mut sink: impl FnMut(usize, Result<Trace, ExecError>),
    ) {
        struct Reorder {
            ready: BTreeMap<usize, Result<Trace, ExecError>>,
            next: usize,
        }
        let reorder: Arc<(Mutex<Reorder>, Condvar)> =
            Arc::new((Mutex::new(Reorder { ready: BTreeMap::new(), next: 0 }), Condvar::new()));

        // Drain every result that is already deliverable in order; when
        // `block` is set, wait until at least one more is delivered.
        let drain = |sink: &mut dyn FnMut(usize, Result<Trace, ExecError>), block: bool| {
            let (m, cv) = &*reorder;
            let mut g = lock(m);
            let mut delivered = Vec::new();
            loop {
                loop {
                    let next = g.next;
                    let Some(res) = g.ready.remove(&next) else { break };
                    delivered.push((next, res));
                    g.next += 1;
                }
                if !delivered.is_empty() || !block {
                    break;
                }
                g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            obs::m::EXEC_PIPE_REORDER_DEPTH.set(g.ready.len() as i64);
            drop(g);
            // Deliver outside the lock: the sink may block on the checker
            // pool, and workers must keep inserting completions meanwhile.
            for (i, res) in delivered {
                sink(i, res);
            }
        };

        for (i, script) in scripts.iter().enumerate() {
            let reorder = Arc::clone(&reorder);
            self.submit(script.clone(), opts, move |res| {
                let (m, cv) = &*reorder;
                let mut g = lock(m);
                g.ready.insert(i, res);
                obs::m::EXEC_PIPE_REORDER_DEPTH.set(g.ready.len() as i64);
                drop(g);
                cv.notify_all();
            });
            // Opportunistic: hand over whatever is already in order, so the
            // sink streams while submission continues.
            drain(&mut sink, false);
        }
        while lock(&reorder.0).next < scripts.len() {
            drain(&mut sink, true);
        }
    }

    /// Execute a batch and return per-script results in input order.
    pub fn execute_batch(
        &self,
        scripts: &[Script],
        opts: ExecOptions,
    ) -> Vec<Result<Trace, ExecError>> {
        let mut out = Vec::with_capacity(scripts.len());
        self.execute_ordered(scripts, opts, |_, res| out.push(res));
        out
    }
}

impl Drop for ExecPipeline {
    fn drop(&mut self) {
        let workers = self.workers.len() as i64;
        lock(&self.inner.state).shutdown = true;
        self.inner.work_ready.notify_all();
        self.inner.slot_free.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        obs::m::EXEC_PIPE_WORKERS.add(-workers);
    }
}

fn worker_loop(inner: &PipeInner, exec: &(dyn Executor + Send + Sync)) {
    loop {
        let job = {
            let mut st = lock(&inner.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = inner.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        obs::m::EXEC_PIPE_QUEUE_DEPTH.dec();
        inner.slot_free.notify_one();
        let started = Instant::now();
        let res = {
            let _span = obs::span("exec", "pipeline_job");
            exec.execute_script(&job.script, job.opts)
        };
        let busy = started.elapsed();
        obs::m::EXEC_PIPE_SCRIPTS_TOTAL.inc();
        obs::m::EXEC_PIPE_BUSY_NS_TOTAL.add(u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX));
        (job.done)(res);
    }
}

/// Lock a mutex, riding through poisoning: a panicking completion callback
/// must not wedge the remaining jobs.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_suite_on, SimExecutor};
    use sibylfs_core::commands::OsCommand;
    use sibylfs_core::flags::FileMode;
    use sibylfs_fsimpl::configs;

    fn suite(n: usize) -> Vec<Script> {
        (0..n)
            .map(|i| {
                let mut s = Script::new(format!("mkdir___pipe_{i}"), "mkdir");
                s.call(OsCommand::Mkdir(format!("/d{i}").into(), FileMode::new(0o777)))
                    .call(OsCommand::Stat(format!("/d{i}").into()));
                s
            })
            .collect()
    }

    fn sim() -> Arc<dyn Executor + Send + Sync> {
        Arc::new(SimExecutor::new(configs::by_name("linux/tmpfs").unwrap()))
    }

    #[test]
    fn batch_matches_sequential_execution_exactly() {
        let scripts = suite(37);
        let exec = SimExecutor::new(configs::by_name("linux/tmpfs").unwrap());
        let sequential = execute_suite_on(&exec, &scripts, ExecOptions::default()).unwrap();
        let pipe = ExecPipeline::new(sim(), 4);
        let piped: Vec<Trace> = pipe
            .execute_batch(&scripts, ExecOptions::default())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(piped, sequential, "pipelined traces must be byte-identical, in order");
    }

    #[test]
    fn ordered_delivery_is_strictly_in_input_order() {
        let scripts = suite(64);
        let pipe = ExecPipeline::with_capacity(sim(), 8, 3);
        let mut seen = Vec::new();
        pipe.execute_ordered(&scripts, ExecOptions::default(), |i, res| {
            assert!(res.is_ok());
            seen.push(i);
        });
        assert_eq!(seen, (0..scripts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_queue_applies_backpressure_but_completes() {
        // Capacity 1 with a single worker: submission must block and resume
        // rather than deadlock or drop jobs.
        let scripts = suite(16);
        let pipe = ExecPipeline::with_capacity(sim(), 1, 1);
        let results = pipe.execute_batch(&scripts, ExecOptions::default());
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn pipeline_records_throughput_metrics() {
        let scripts = suite(8);
        let before = obs::m::EXEC_PIPE_SCRIPTS_TOTAL.get();
        let pipe = ExecPipeline::new(sim(), 2);
        let _ = pipe.execute_batch(&scripts, ExecOptions::default());
        assert!(obs::m::EXEC_PIPE_SCRIPTS_TOTAL.get() >= before + 8);
        assert!(obs::m::EXEC_PIPE_WORKERS.high_water() >= 2);
    }
}
