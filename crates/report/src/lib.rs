//! # SibylFS result analysis and reporting
//!
//! The volume of data produced by a test run (tens of thousands of checked
//! traces per platform, §2) makes manual analysis impractical; this crate
//! reproduces the paper's analysis tooling: per-run summaries, aggregation of
//! deviations by libc function and by error signature, cross-configuration
//! merging that highlights behaviour common to many systems versus
//! configuration-specific deviations, and coverage reports. Output is
//! markdown/plain text rather than HTML, but the aggregation logic is the
//! same.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use sibylfs_check::CheckedTrace;
use sibylfs_core::coverage::{CoverageMap, CoverageSummary};

/// A single aggregated deviation signature: the libc function, what was
/// observed, and what the specification allowed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviationKey {
    /// The libc function involved.
    pub function: String,
    /// What the implementation did.
    pub observed: String,
    /// What the model allowed (joined for readability).
    pub allowed: String,
}

/// The summary of checking one configuration's traces against one flavour of
/// the specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RunSummary {
    /// The configuration name (e.g. `linux/ext4`).
    pub config: String,
    /// The specification flavour used for checking.
    pub flavor: String,
    /// The executor that produced the traces: `"sim"` for the in-process
    /// simulation, `"host"` for the real-host backend.
    pub backend: String,
    /// Number of traces checked.
    pub traces: usize,
    /// Number of traces accepted.
    pub accepted: usize,
    /// Number of traces with at least one deviation.
    pub failing: usize,
    /// Total deviation count.
    pub deviations: usize,
    /// Deviations per libc function.
    pub by_function: BTreeMap<String, usize>,
    /// Deviations per (function, observed, allowed) signature.
    pub by_signature: BTreeMap<DeviationKey, usize>,
    /// Names of failing traces (capped to keep reports readable).
    pub failing_traces: Vec<String>,
}

/// Maximum number of failing trace names retained in a summary.
const MAX_FAILING_NAMES: usize = 50;

/// Summarise a checked run of simulation-produced traces.
pub fn summarize_run(config: &str, flavor: &str, checked: &[CheckedTrace]) -> RunSummary {
    summarize_run_for_backend(config, flavor, "sim", checked)
}

/// Summarise a checked run, labelling which executor produced the traces.
pub fn summarize_run_for_backend(
    config: &str,
    flavor: &str,
    backend: &str,
    checked: &[CheckedTrace],
) -> RunSummary {
    let mut summary = RunSummary {
        config: config.to_string(),
        flavor: flavor.to_string(),
        backend: backend.to_string(),
        traces: checked.len(),
        ..RunSummary::default()
    };
    for trace in checked {
        if trace.accepted {
            summary.accepted += 1;
        } else {
            summary.failing += 1;
            if summary.failing_traces.len() < MAX_FAILING_NAMES {
                summary.failing_traces.push(trace.name.clone());
            }
        }
        for d in &trace.deviations {
            summary.deviations += 1;
            *summary.by_function.entry(d.function.clone()).or_default() += 1;
            let key = DeviationKey {
                function: d.function.clone(),
                observed: d.observed.clone(),
                allowed: d.allowed.join(", "),
            };
            *summary.by_signature.entry(key).or_default() += 1;
        }
    }
    summary
}

impl RunSummary {
    /// The acceptance rate as a percentage.
    pub fn acceptance_rate(&self) -> f64 {
        if self.traces == 0 {
            100.0
        } else {
            self.accepted as f64 * 100.0 / self.traces as f64
        }
    }

    /// The most common deviation signatures, most frequent first.
    pub fn top_signatures(&self, n: usize) -> Vec<(&DeviationKey, usize)> {
        let mut v: Vec<(&DeviationKey, usize)> =
            self.by_signature.iter().map(|(k, c)| (k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.into_iter().take(n).collect()
    }
}

/// Render a run summary as markdown.
pub fn render_run_markdown(s: &RunSummary) -> String {
    let mut out = String::new();
    let backend_note =
        if s.backend.is_empty() || s.backend == "sim" { String::new() } else { format!(" [{} backend]", s.backend) };
    out.push_str(&format!(
        "## {}{} checked against the `{}` model\n\n",
        s.config, backend_note, s.flavor
    ));
    out.push_str(&format!(
        "* traces: {}  accepted: {}  failing: {}  ({:.2}% accepted)\n",
        s.traces,
        s.accepted,
        s.failing,
        s.acceptance_rate()
    ));
    out.push_str(&format!("* total deviations: {}\n\n", s.deviations));
    if !s.by_function.is_empty() {
        out.push_str("| function | deviations |\n|---|---|\n");
        for (f, c) in &s.by_function {
            out.push_str(&format!("| {f} | {c} |\n"));
        }
        out.push('\n');
    }
    if !s.by_signature.is_empty() {
        out.push_str("Top deviation signatures:\n\n");
        for (key, count) in s.top_signatures(10) {
            out.push_str(&format!(
                "* `{}`: observed {}, allowed {} — {} occurrence(s)\n",
                key.function, key.observed, key.allowed, count
            ));
        }
        out.push('\n');
    }
    out
}

/// A merged view over many configurations (the paper's merged test runs,
/// §2/§7): per-configuration acceptance plus the deviation signatures that
/// are unique to a few configurations (highlighted) versus common to many.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MergedReport {
    /// Per-configuration summaries, in input order.
    pub runs: Vec<RunSummary>,
    /// For each deviation signature, the configurations that exhibit it.
    pub signature_configs: BTreeMap<DeviationKey, BTreeSet<String>>,
}

/// Merge several run summaries.
pub fn merge_runs(runs: Vec<RunSummary>) -> MergedReport {
    let mut signature_configs: BTreeMap<DeviationKey, BTreeSet<String>> = BTreeMap::new();
    for run in &runs {
        for key in run.by_signature.keys() {
            signature_configs.entry(key.clone()).or_default().insert(run.config.clone());
        }
    }
    MergedReport { runs, signature_configs }
}

impl MergedReport {
    /// Deviation signatures exhibited by at most `threshold` configurations —
    /// the interesting, configuration-specific behaviours.
    pub fn distinctive_signatures(
        &self,
        threshold: usize,
    ) -> Vec<(&DeviationKey, &BTreeSet<String>)> {
        self.signature_configs.iter().filter(|(_, configs)| configs.len() <= threshold).collect()
    }

    /// Deviation signatures shared by at least `threshold` configurations —
    /// platform conventions rather than individual bugs.
    pub fn common_signatures(&self, threshold: usize) -> Vec<(&DeviationKey, &BTreeSet<String>)> {
        self.signature_configs.iter().filter(|(_, configs)| configs.len() >= threshold).collect()
    }
}

/// Render the merged acceptance table (one row per configuration).
pub fn render_merged_markdown(m: &MergedReport) -> String {
    let mut out = String::new();
    out.push_str("| configuration | backend | model | traces | accepted | failing | deviations |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for r in &m.runs {
        let backend = if r.backend.is_empty() { "sim" } else { &r.backend };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            r.config, backend, r.flavor, r.traces, r.accepted, r.failing, r.deviations
        ));
    }
    out.push('\n');
    let distinctive = m.distinctive_signatures(2);
    if !distinctive.is_empty() {
        out.push_str("Configuration-specific deviations (at most 2 configurations):\n\n");
        for (key, configs) in distinctive.iter().take(25) {
            out.push_str(&format!(
                "* `{}`: observed {} (allowed {}) — {}\n",
                key.function,
                key.observed,
                key.allowed,
                configs.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
        out.push('\n');
    }
    out
}

/// Render a full [`CoverageMap`] as markdown: the headline branch-coverage
/// number, the per-syscall outcome-envelope table (which errnos and success
/// shapes each libc function has been observed to produce), and the list of
/// specification points never exercised — the exploration engine's final
/// report, also pinned by a golden snapshot.
pub fn render_coverage_map_markdown(map: &CoverageMap) -> String {
    let mut out = String::new();
    let branches = map.branch_summary();
    out.push_str(&format!(
        "## Model coverage map\n\n\
         * specification branches: {} of {} exercised ({:.1}%)\n\
         * observed (syscall, outcome) transitions: {}\n\n",
        branches.hit,
        branches.total,
        branches.percent(),
        map.transition_count()
    ));
    let envelope = map.per_syscall_outcomes();
    if !envelope.is_empty() {
        out.push_str("### Per-syscall outcome envelope\n\n");
        out.push_str("| syscall | outcomes observed |\n|---|---|\n");
        for (syscall, outcomes) in &envelope {
            let joined: Vec<&str> = outcomes.iter().map(String::as_str).collect();
            out.push_str(&format!("| {syscall} | {} |\n", joined.join(", ")));
        }
        out.push('\n');
    }
    if !branches.missed.is_empty() {
        out.push_str("### Uncovered specification points\n\n");
        const MAX_LISTED: usize = 60;
        for m in branches.missed.iter().take(MAX_LISTED) {
            out.push_str(&format!("* `{m}`\n"));
        }
        if branches.missed.len() > MAX_LISTED {
            out.push_str(&format!("* … and {} more\n", branches.missed.len() - MAX_LISTED));
        }
        out.push('\n');
    }
    out
}

/// Render a coverage summary (§7.2) as markdown.
pub fn render_coverage_markdown(c: &CoverageSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Model coverage: {} of {} specification points exercised ({:.1}%)\n\n",
        c.hit,
        c.total,
        c.percent()
    ));
    if !c.missed.is_empty() {
        out.push_str("Uncovered specification points:\n\n");
        for m in &c.missed {
            out.push_str(&format!("* `{m}`\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_check::{CheckedStep, Deviation, StepKind, StepLabel, StepVerdict};

    fn fake_trace(name: &str, dev: Option<(&str, &str)>) -> CheckedTrace {
        let deviations = dev
            .map(|(f, obs)| {
                vec![Deviation {
                    lineno: 4,
                    function: f.to_string(),
                    call: format!("{f} \"x\""),
                    observed: obs.to_string(),
                    allowed: vec!["ENOENT".to_string()],
                }]
            })
            .unwrap_or_default();
        CheckedTrace {
            name: name.to_string(),
            group: "g".to_string(),
            accepted: deviations.is_empty(),
            steps: vec![CheckedStep {
                lineno: 1,
                label: StepLabel::Synthetic("p1: call stat \"x\""),
                kind: StepKind::Call,
                verdict: StepVerdict::Ok,
                states_tracked: 1,
            }],
            deviations,
            max_states_tracked: 1,
        }
    }

    #[test]
    fn summaries_count_correctly() {
        let checked = vec![
            fake_trace("a", None),
            fake_trace("b", Some(("rename", "EPERM"))),
            fake_trace("c", Some(("rename", "EPERM"))),
            fake_trace("d", Some(("open", "EISDIR"))),
        ];
        let s = summarize_run("linux/sshfs-tmpfs", "linux", &checked);
        assert_eq!(s.traces, 4);
        assert_eq!(s.accepted, 1);
        assert_eq!(s.failing, 3);
        assert_eq!(s.deviations, 3);
        assert_eq!(s.by_function["rename"], 2);
        assert_eq!(s.by_function["open"], 1);
        assert!(s.acceptance_rate() > 24.0 && s.acceptance_rate() < 26.0);
        let top = s.top_signatures(1);
        assert_eq!(top[0].0.function, "rename");
        assert_eq!(top[0].1, 2);
        let md = render_run_markdown(&s);
        assert!(md.contains("linux/sshfs-tmpfs"));
        assert!(md.contains("| rename | 2 |"));
    }

    #[test]
    fn merged_report_identifies_distinctive_signatures() {
        let a = summarize_run("linux/ext4", "linux", &[fake_trace("t", None)]);
        let b = summarize_run(
            "linux/sshfs-tmpfs",
            "linux",
            &[fake_trace("t", Some(("rename", "EPERM")))],
        );
        let c = summarize_run(
            "linux/posixovl-vfat",
            "linux",
            &[fake_trace("t", Some(("rename", "EPERM")))],
        );
        let merged = merge_runs(vec![a, b, c]);
        assert_eq!(merged.runs.len(), 3);
        let distinctive = merged.distinctive_signatures(2);
        assert_eq!(distinctive.len(), 1);
        assert_eq!(distinctive[0].1.len(), 2);
        assert!(merged.common_signatures(3).is_empty());
        let md = render_merged_markdown(&merged);
        assert!(md.contains("| linux/ext4 |"));
        assert!(md.contains("Configuration-specific deviations"));
    }

    #[test]
    fn host_backend_runs_are_labelled() {
        let s = summarize_run_for_backend("host/linux", "linux", "host", &[fake_trace("a", None)]);
        assert_eq!(s.backend, "host");
        let md = render_run_markdown(&s);
        assert!(md.contains("[host backend]"), "{md}");
        let sim = summarize_run("linux/ext4", "linux", &[fake_trace("a", None)]);
        assert_eq!(sim.backend, "sim");
        assert!(!render_run_markdown(&sim).contains("backend]"));
        let merged = merge_runs(vec![sim, s]);
        let md = render_merged_markdown(&merged);
        assert!(md.contains("| linux/ext4 | sim |"), "{md}");
        assert!(md.contains("| host/linux | host |"), "{md}");
    }

    #[test]
    fn coverage_map_rendering_has_envelope_table_and_uncovered_list() {
        use sibylfs_core::coverage::CoverageKey;
        let mut m = CoverageMap::new();
        m.insert(CoverageKey::Branch("open/existing_file_success".into()));
        m.insert(CoverageKey::Transition { syscall: "open".into(), outcome: "EEXIST".into() });
        m.insert(CoverageKey::Transition { syscall: "open".into(), outcome: "ok/fd".into() });
        m.insert(CoverageKey::Transition { syscall: "rmdir".into(), outcome: "ENOTEMPTY".into() });
        let md = render_coverage_map_markdown(&m);
        assert!(md.contains("## Model coverage map"));
        assert!(md.contains("| open | EEXIST, ok/fd |"), "{md}");
        assert!(md.contains("| rmdir | ENOTEMPTY |"));
        assert!(md.contains("Uncovered specification points"));
        // One real branch is covered, so it must not be in the uncovered list.
        assert!(!md.contains("* `open/existing_file_success`"));
        assert!(md.contains("transitions: 3"));
    }

    #[test]
    fn coverage_rendering() {
        let c = CoverageSummary { hit: 98, total: 100, missed: vec!["x/y".into(), "z/w".into()] };
        let md = render_coverage_markdown(&c);
        assert!(md.contains("98 of 100"));
        assert!(md.contains("98.0%"));
        assert!(md.contains("`x/y`"));
    }
}
