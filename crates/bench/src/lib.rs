//! Shared fixtures for the Criterion benchmarks that reproduce the paper's
//! performance evaluation (§7.1) and probe checker internals.

use sibylfs_core::flavor::{Flavor, SpecConfig};
use sibylfs_exec::{execute_suite, ExecOptions};
use sibylfs_fsimpl::{configs, BehaviorProfile};
use sibylfs_script::{Script, Trace};
use sibylfs_testgen::{generate_suite, SuiteOptions};

/// The number of scripts used by the throughput benchmarks (kept moderate so
/// a full `cargo bench` run finishes in minutes).
pub const BENCH_SUITE_SIZE: usize = 400;

/// A deterministic benchmark suite: the first `BENCH_SUITE_SIZE` scripts of
/// the quick suite.
pub fn bench_suite() -> Vec<Script> {
    generate_suite(SuiteOptions::quick()).into_iter().take(BENCH_SUITE_SIZE).collect()
}

/// The reference configuration used by the benchmarks (tmpfs on Linux, the
/// paper's execution baseline).
pub fn bench_profile() -> BehaviorProfile {
    configs::by_name("linux/tmpfs").expect("registered configuration")
}

/// The model configuration used by the benchmarks.
pub fn bench_spec() -> SpecConfig {
    SpecConfig::standard(Flavor::Linux)
}

/// Traces of the benchmark suite executed on the reference configuration.
pub fn bench_traces() -> Vec<Trace> {
    execute_suite(&bench_profile(), &bench_suite(), ExecOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_nonempty_and_deterministic() {
        let a = bench_suite();
        let b = bench_suite();
        assert_eq!(a.len(), BENCH_SUITE_SIZE);
        assert_eq!(a, b);
        let traces = bench_traces();
        assert_eq!(traces.len(), BENCH_SUITE_SIZE);
    }
}
