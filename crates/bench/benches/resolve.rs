//! Benchmark: path resolution over interned symbols.
//!
//! The intern-keyed state core resolves pre-parsed paths without touching
//! string data; this bench separates the three costs a path pays over its
//! lifetime: the one-time parse+intern at the input boundary, the (hot,
//! repeated) symbol-walk resolution, and the combined parse+resolve a
//! string-keyed implementation paid on *every* resolution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sibylfs_core::commands::{OsCommand, OsLabel};
use sibylfs_core::flags::FileMode;
use sibylfs_core::flavor::{Flavor, SpecConfig};
use sibylfs_core::os::trans::{default_completion, expand_calls, os_trans};
use sibylfs_core::os::OsState;
use sibylfs_core::path::{resolve, resolve_path, FollowLast, ParsedPath, ResolveCtx};
use sibylfs_core::types::INITIAL_PID;

/// A model state with a moderately deep directory tree and symlinks, built
/// through the transition engine itself.
fn populated_state(cfg: &SpecConfig) -> OsState {
    let mut st = OsState::initial_with_process(cfg, INITIAL_PID);
    let mut cmds = Vec::new();
    for d in 0..10 {
        cmds.push(OsCommand::Mkdir(format!("/d{d}").into(), FileMode::new(0o755)));
        for s in 0..5 {
            cmds.push(OsCommand::Mkdir(format!("/d{d}/s{s}").into(), FileMode::new(0o755)));
        }
    }
    cmds.push(OsCommand::Symlink("/d0/s0".into(), "/link".into()));
    cmds.push(OsCommand::Symlink("d1".into(), "/rel".into()));
    for cmd in cmds {
        let st1 = os_trans(cfg, &st, &OsLabel::Call(INITIAL_PID, cmd)).remove(0);
        let outs = expand_calls(cfg, &st1);
        let pending = outs.into_iter().last().expect("at least one outcome");
        let (_, next) = default_completion(&pending, INITIAL_PID).expect("completion");
        st = next;
    }
    st
}

fn resolve_benches(c: &mut Criterion) {
    let cfg = SpecConfig::standard(Flavor::Linux);
    let st = populated_state(&cfg);
    let ctx = ResolveCtx::new(&st.heap, st.heap.root(), None);

    let paths = [
        "/d9/s4/../../d0/s0/missing",
        "/link/f1",
        "/rel/s2",
        "/d3/s3",
        "missing",
    ];
    let parsed: Vec<ParsedPath> = paths.iter().map(|p| ParsedPath::parse(p)).collect();

    // The hot path: resolution of an already-interned path. This is what the
    // checker pays per state branch per command.
    c.bench_function("resolve_preparsed", |b| {
        b.iter(|| {
            for p in &parsed {
                black_box(resolve_path(&ctx, p, FollowLast::Follow));
            }
        })
    });

    // The boundary cost: parse + intern alone. Paid once per distinct path
    // string entering the system (parser, generator, FFI), then amortised.
    c.bench_function("resolve_parse_only", |b| {
        b.iter(|| {
            for p in &paths {
                black_box(ParsedPath::parse(p));
            }
        })
    });

    // What the string-keyed implementation paid on every resolution:
    // parse + resolve fused.
    c.bench_function("resolve_parse_and_walk", |b| {
        b.iter(|| {
            for p in &paths {
                black_box(resolve(&ctx, p, FollowLast::Follow));
            }
        })
    });
}

criterion_group!(benches, resolve_benches);
criterion_main!(benches);
