//! Benchmark: pipelined execution engine vs the sequential baselines.
//!
//! Two families of rows, both reported as scripts/sec over the bench suite:
//!
//! * `sim/*` — the in-process `SimExecutor`. `sim/sequential` is the plain
//!   `execute_suite_on` loop; `sim/pipelined/{1,2,4,8}` drive the same suite
//!   through `ExecPipeline` at each worker count. Sim execution is pure
//!   compute, so the pipelined rows only pull ahead of sequential when the
//!   machine has more than one core — on a single-core runner they measure
//!   the pipeline's handoff overhead instead (it should be small).
//! * `host/*` — the chroot-jailed real-kernel backend (skipped with a note
//!   when the sandbox is unavailable; run as root). `host/cold_fork` is the
//!   pre-pool baseline: one fork + chroot + sandbox build/teardown per
//!   script. `host/pooled/{1,2,4,8}` execute on persistent pre-jailed
//!   workers that reset the jail between scripts, so the win is the
//!   eliminated per-script setup — it shows up even on one core.
//!
//! Host rows run a reduced prefix of the suite: eleven timed loops of 400
//! cold forks would dominate bench wall clock without changing the ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use std::sync::Arc;

use sibylfs_bench::{bench_profile, bench_suite};
use sibylfs_exec::{
    execute_suite_on, execute_suite_pipelined, ExecOptions, Executor, SimExecutor,
};

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
use sibylfs_exec::HostFs;

/// Worker counts for the pipelined rows (the issue's 1/2/4/8 sweep).
const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Scripts per host row — see module docs.
const HOST_SUITE_LEN: usize = 96;

fn exec_pipeline(c: &mut Criterion) {
    let suite = bench_suite();
    let mut group = c.benchmark_group("exec_pipeline");
    group.sample_size(10);

    group.throughput(Throughput::Elements(suite.len() as u64));
    let sim = SimExecutor::new(bench_profile());
    group.bench_function("sim/sequential", |b| {
        b.iter(|| execute_suite_on(&sim, &suite, ExecOptions::default()).unwrap().len())
    });
    let sim: Arc<dyn Executor + Send + Sync> = Arc::new(SimExecutor::new(bench_profile()));
    for &w in WORKER_COUNTS {
        let sim = Arc::clone(&sim);
        group.bench_with_input(BenchmarkId::new("sim/pipelined", w), &w, |b, &w| {
            b.iter(|| {
                execute_suite_pipelined(Arc::clone(&sim), &suite, ExecOptions::default(), w)
                    .unwrap()
                    .len()
            })
        });
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    host_rows(&mut group, &suite);

    group.finish();
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn host_rows(group: &mut criterion::BenchmarkGroup<'_>, suite: &[sibylfs_script::Script]) {
    if !HostFs::available() {
        eprintln!("exec_pipeline: host rows skipped (sandbox unavailable; run as root)");
        return;
    }
    let host_suite = &suite[..suite.len().min(HOST_SUITE_LEN)];
    group.throughput(Throughput::Elements(host_suite.len() as u64));

    let cold = HostFs::new();
    group.bench_function("host/cold_fork", |b| {
        b.iter(|| execute_suite_on(&cold, host_suite, ExecOptions::default()).unwrap().len())
    });

    for &w in WORKER_COUNTS {
        // One pool per row, shared across iterations: the workers stay jailed
        // for the whole row, which is exactly the production reuse pattern.
        let host: Arc<dyn Executor + Send + Sync> = Arc::new(HostFs::pooled(w));
        group.bench_with_input(BenchmarkId::new("host/pooled", w), &w, |b, &w| {
            b.iter(|| {
                execute_suite_pipelined(
                    Arc::clone(&host),
                    host_suite,
                    ExecOptions::default(),
                    w,
                )
                .unwrap()
                .len()
            })
        });
    }
}

criterion_group!(benches, exec_pipeline);
criterion_main!(benches);
