//! Benchmark: test-suite execution throughput (§7.1).
//!
//! The paper reports suite execution on tmpfs taking 152 s versus 79 s for
//! checking — i.e. the oracle is not the bottleneck. This benchmark measures
//! the execution rate of the simulated configuration so the exec-vs-check
//! comparison of `exp_performance` can be related to wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use sibylfs_bench::{bench_profile, bench_suite};
use sibylfs_exec::{execute_suite, ExecOptions};

fn exec_throughput(c: &mut Criterion) {
    let suite = bench_suite();
    let profile = bench_profile();
    let mut group = c.benchmark_group("exec_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(suite.len() as u64));
    group.bench_function("execute_suite", |b| {
        b.iter(|| execute_suite(&profile, &suite, ExecOptions::default()).len())
    });
    group.finish();
}

criterion_group!(benches, exec_throughput);
criterion_main!(benches);
