//! Benchmark: per-trace checking latency (§3).
//!
//! The paper contrasts SibylFS with the Netsem TCP work, where checking a
//! single trace could take CPU-hours of constraint solving; careful isolation
//! of nondeterminism keeps SibylFS's per-trace cost in the millisecond range.
//! This benchmark measures the latency of checking representative individual
//! traces: a short single-call test, the paper's rename example, and a long
//! sequential I/O script.

use criterion::{criterion_group, criterion_main, Criterion};

use sibylfs_bench::{bench_profile, bench_spec};
use sibylfs_check::{check_trace, CheckOptions};
use sibylfs_core::commands::OsCommand;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::Fd;
use sibylfs_exec::{execute_script, ExecOptions};
use sibylfs_script::Script;

fn rename_example() -> Script {
    let mut s = Script::new("rename___rename_emptydir___nonemptydir", "rename");
    s.call(OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777)))
        .call(OsCommand::Mkdir("nonemptydir".into(), FileMode::new(0o777)))
        .call(OsCommand::Open(
            "nonemptydir/f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(FileMode::new(0o666)),
        ))
        .call(OsCommand::Rename("emptydir".into(), "nonemptydir".into()));
    s
}

fn long_io_script() -> Script {
    let mut s = Script::new("io___long_sequence", "write");
    s.call(OsCommand::Open(
        "f".into(),
        OpenFlags::O_CREAT | OpenFlags::O_RDWR,
        Some(FileMode::new(0o644)),
    ));
    for i in 0..100 {
        s.call(OsCommand::Write(Fd(3), vec![b'a' + (i % 26) as u8; 64]));
        s.call(OsCommand::Lseek(Fd(3), (i * 7) % 512, SeekWhence::Set));
        s.call(OsCommand::Read(Fd(3), 48));
    }
    s.call(OsCommand::Close(Fd(3)));
    s
}

fn per_trace_latency(c: &mut Criterion) {
    let profile = bench_profile();
    let cfg = bench_spec();
    let mut group = c.benchmark_group("per_trace_latency");
    for (name, script) in [("rename_example", rename_example()), ("long_io_301_calls", long_io_script())] {
        let trace = execute_script(&profile, &script, ExecOptions::default());
        group.bench_function(name, |b| {
            b.iter(|| check_trace(&cfg, &trace, CheckOptions::default()).accepted)
        });
    }
    group.finish();
}

criterion_group!(benches, per_trace_latency);
criterion_main!(benches);
