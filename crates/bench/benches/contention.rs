//! Benchmark: checking fxmark-style contention traces (the workload family
//! partial-order reduction exists for).
//!
//! Each family from `sibylfs_testgen::contention` is checked end to end —
//! the full Call/Tau/Return label stream through the checker. Two scales:
//!
//! * `p6` — six processes, POR only. Without reduction the τ-closure of the
//!   storm families is minutes of wall clock and gigabytes of states (the
//!   create/unlink storm reaches ~150 k states at five processes already);
//!   these benches exist to prove six-way contention *completes* under POR.
//! * `p4` — four processes, POR and no-POR side by side: the largest scale
//!   at which the unreduced closure is still bench-feasible, keeping the
//!   exponential-vs-linear gap visible in the recorded results. At this
//!   scale the unreduced create/unlink storm already exceeds the checker's
//!   4096-state bound (its verdict degrades to bounded), so `accepted` is
//!   only asserted for the POR runs.
//!
//! `rename_storm` deliberately carries unbounded footprints (rename is
//! treated conservatively), so its POR and no-POR times coincide: it
//! measures the exact-dedup safety net alone. Since POR cannot reduce it,
//! it exceeds the state bound at six processes in either mode and is only
//! benched at the four-process scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sibylfs_check::{check_trace, CheckOptions};
use sibylfs_core::flavor::{Flavor, PorMode, SpecConfig};
use sibylfs_testgen::contention::{contention_traces, ContentionOptions};

/// Bench id like `drbh_p6` from a trace named `contention___drbh_p6_n2`.
fn family_of(name: &str) -> String {
    let tail = name.split("___").nth(1).unwrap_or(name);
    tail.rsplit_once("_n").map(|(f, _)| f.to_string()).unwrap_or_else(|| tail.to_string())
}

fn contention(c: &mut Criterion) {
    let cfg = SpecConfig::standard(Flavor::Linux);
    let cfg_no_por = cfg.with_por(PorMode::Off);

    let mut group = c.benchmark_group("check_contention");
    group.sample_size(10);

    // Six-way contention: feasible only with reduction on, and only for the
    // commuting families (rename's footprint is unbounded, see above).
    for trace in contention_traces(ContentionOptions::new(6, 2))
        .iter()
        .filter(|t| !t.name.contains("rename_storm"))
    {
        group.bench_with_input(
            BenchmarkId::new(family_of(&trace.name), "por"),
            trace,
            |b, trace| {
                b.iter(|| {
                    let checked = check_trace(&cfg, trace, CheckOptions::default());
                    assert!(checked.accepted, "{} must check clean under POR", trace.name);
                    checked.max_states_tracked
                })
            },
        );
    }

    // Four-way contention: the POR on/off contrast at a scale where the
    // unreduced closure still terminates quickly enough to benchmark.
    for trace in &contention_traces(ContentionOptions::new(4, 2)) {
        for (mode, cfg) in [("por", &cfg), ("no_por", &cfg_no_por)] {
            group.bench_with_input(
                BenchmarkId::new(family_of(&trace.name), mode),
                trace,
                |b, trace| {
                    b.iter(|| {
                        let checked = check_trace(cfg, trace, CheckOptions::default());
                        if mode == "por" {
                            assert!(checked.accepted, "{} must check clean", trace.name);
                        }
                        checked.max_states_tracked
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, contention);
criterion_main!(benches);
