//! Benchmark: trace-checking throughput (§7.1).
//!
//! The paper checks the 21 070-trace suite in ~79 s with four workers
//! (≈266 traces/s). This benchmark measures the reproduction's checking rate
//! on a fixed 400-trace slice of the suite, single-threaded and with four
//! workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sibylfs_bench::{bench_spec, bench_traces};
use sibylfs_check::{check_traces_parallel, CheckOptions};

fn check_throughput(c: &mut Criterion) {
    let traces = bench_traces();
    let cfg = bench_spec();
    let mut group = c.benchmark_group("check_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces.len() as u64));
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                let (checked, _) =
                    check_traces_parallel(&cfg, &traces, CheckOptions::default(), w);
                checked.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, check_throughput);
criterion_main!(benches);
