//! Benchmark: checker internals — the cost of the building blocks whose
//! design §3 and §5 discuss (path resolution, per-command dispatch, the
//! τ-closure used for concurrent calls, and readdir's must/may machinery).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sibylfs_core::commands::{OsCommand, OsLabel};
use sibylfs_core::flags::FileMode;
use sibylfs_core::flavor::{Flavor, PorMode, SpecConfig};
use sibylfs_core::fs_ops::dispatch;
use sibylfs_core::os::state_set::StateSet;
use sibylfs_core::os::trans::{expand_calls, os_trans, tau_closure};
use sibylfs_core::os::OsState;
use sibylfs_core::path::{resolve, FollowLast, ResolveCtx};
use sibylfs_core::types::{Gid, Pid, Uid, INITIAL_PID};

/// A model state with a moderately deep directory tree and some symlinks.
fn populated_state(cfg: &SpecConfig) -> OsState {
    let mut st = OsState::initial_with_process(cfg, INITIAL_PID);
    let mut labels = Vec::new();
    for d in 0..10 {
        labels.push(OsCommand::Mkdir(format!("/d{d}").into(), FileMode::new(0o755)));
        for s in 0..5 {
            labels.push(OsCommand::Mkdir(format!("/d{d}/s{s}").into(), FileMode::new(0o755)));
        }
    }
    labels.push(OsCommand::Symlink("/d0/s0".into(), "/link".into()));
    for cmd in labels {
        let st1 = os_trans(cfg, &st, &OsLabel::Call(INITIAL_PID, cmd)).remove(0);
        let outs = sibylfs_core::os::trans::expand_calls(cfg, &st1);
        // Take the success branch (the last state produced).
        let pending = outs.into_iter().last().expect("at least one outcome");
        let (value, next) =
            sibylfs_core::os::trans::default_completion(&pending, INITIAL_PID).expect("completion");
        let _ = value;
        st = next;
    }
    st
}

fn checker_internals(c: &mut Criterion) {
    let cfg = SpecConfig::standard(Flavor::Linux);
    let st = populated_state(&cfg);

    c.bench_function("path_resolution_deep", |b| {
        let ctx = ResolveCtx::new(&st.heap, st.heap.root(), None);
        b.iter(|| resolve(&ctx, "/d9/s4/../../d0/s0/missing", FollowLast::Follow))
    });

    c.bench_function("dispatch_rename_checks", |b| {
        let cmd = OsCommand::Rename("/d0".into(), "/d1".into());
        b.iter(|| dispatch(&cfg, &st, INITIAL_PID, &cmd).errors.len())
    });

    // N processes with commuting calls in flight: the classic branching
    // workload. Each process mkdirs a distinct fresh path, so every pair of
    // in-flight calls commutes and partial-order reduction can prune the
    // closure to a single representative interleaving.
    let in_flight = |n: u32| {
        let mut stn = st.clone();
        for pid in 2..=n {
            let next = os_trans(&cfg, &stn, &OsLabel::Create(Pid(pid), Uid(0), Gid(0)));
            stn = next.into_iter().next().expect("created");
        }
        for pid in 1..=n {
            let path = format!("/bench_p{pid}");
            let next = os_trans(
                &cfg,
                &stn,
                &OsLabel::Call(Pid(pid), OsCommand::Mkdir(path.into(), FileMode::new(0o777))),
            );
            stn = next.into_iter().next().expect("call accepted");
        }
        stn
    };
    let st3 = in_flight(3);
    let st6 = in_flight(6);
    let cfg_no_por = cfg.with_por(PorMode::Off);

    c.bench_function("tau_closure_three_processes", |b| {
        b.iter(|| tau_closure(&cfg, std::slice::from_ref(&st3)).len())
    });

    // The same closure with reduction disabled: the pre-POR cost, kept as a
    // bench so the exponential-vs-linear gap stays visible in the results.
    c.bench_function("tau_closure_three_processes_no_por", |b| {
        b.iter(|| tau_closure(&cfg_no_por, std::slice::from_ref(&st3)).len())
    });

    // Six commuting calls in flight: 2^6 subset states without reduction,
    // a single chain of 7 under the sleep-set closure.
    c.bench_function("tau_closure_six_processes", |b| {
        b.iter(|| tau_closure(&cfg, std::slice::from_ref(&st6)).len())
    });

    c.bench_function("tau_closure_six_processes_no_por", |b| {
        b.iter(|| tau_closure(&cfg_no_por, std::slice::from_ref(&st6)).len())
    });

    // The cost of branching: with copy-on-write state sharing a clone is a
    // handful of reference-count bumps plus the small fid/proc tables, no
    // matter how much file content the heap carries.
    c.bench_function("state_clone_branching", |b| {
        b.iter(|| black_box(st.clone()))
    });

    // Fingerprint computation on a fresh (uncached) state: the one full walk
    // a state pays before all further dedup probes become O(1).
    c.bench_function("state_fingerprint_uncached", |b| {
        b.iter(|| st.clone().fingerprint())
    });

    // Dedup on insert: a τ-expansion's worth of duplicate and distinct states
    // pushed through a StateSet, the checker's per-step inner loop.
    c.bench_function("state_set_dedup_insert", |b| {
        let branches = expand_calls(&cfg, &st3);
        b.iter(|| {
            let mut set = StateSet::new();
            // Two rounds of the same states: the second round is all dedup
            // hits, as in a τ-closure revisiting its frontier.
            for _ in 0..2 {
                for s in &branches {
                    set.insert(s.clone());
                }
            }
            set.len()
        })
    });
}

criterion_group!(benches, checker_internals);
criterion_main!(benches);
