//! Golden-diagnostic fixtures for the script linter.
//!
//! One `tests/golden/<rule>.script` fixture per lint rule, each with the
//! rendered report pinned in `<rule>.expected`, plus `scenario_*` fixtures
//! that pin whole multi-finding reports (e.g. per-process liveness tracking
//! across a six-way contention script). Regenerate after an
//! intentional rendering or message change with:
//!
//! ```text
//! SIBYLFS_REGEN_GOLDEN=1 cargo test -p sibylfs_analyze --test golden
//! ```
//!
//! The second half asserts the exploration corpus seeds (the model-gap and
//! defect-scenario scripts) are lint-clean, so the pre-exec filter never
//! rejects a seed.

use std::fs;
use std::path::PathBuf;

use sibylfs_analyze::lint;
use sibylfs_script::parse_script_spanned;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn every_rule_has_a_matching_golden_fixture() {
    let regen = std::env::var_os("SIBYLFS_REGEN_GOLDEN").is_some();
    for rule in lint::RULES {
        let script_path = fixture_dir().join(format!("{rule}.script"));
        let text = fs::read_to_string(&script_path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", script_path.display()));
        let (script, linenos) = parse_script_spanned(&text)
            .unwrap_or_else(|e| panic!("fixture {rule}.script does not parse: {e}"));
        let diags = lint::lint_script(&script);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "fixture {rule}.script does not trigger rule {rule}; diagnostics: {diags:?}"
        );
        let rendered = lint::render_diagnostics(&script, &diags, Some(&linenos));

        let expected_path = fixture_dir().join(format!("{rule}.expected"));
        if regen {
            fs::write(&expected_path, &rendered)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", expected_path.display()));
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}\nregenerate with SIBYLFS_REGEN_GOLDEN=1",
                expected_path.display()
            )
        });
        assert_eq!(
            rendered, expected,
            "lint report for {rule}.script drifted from its golden file; \
             regenerate with SIBYLFS_REGEN_GOLDEN=1 if the change is intentional"
        );
    }
}

/// Scenario fixtures: multi-process, multi-finding scripts whose full lint
/// report is pinned. The six-process contention scenario is the per-process
/// liveness regression test — the analysis must attribute the dead-process
/// call to p4 and the use-after-close to p6 while the four other processes'
/// structurally identical call streams stay clean.
#[test]
fn scenario_fixtures_match_golden() {
    let regen = std::env::var_os("SIBYLFS_REGEN_GOLDEN").is_some();
    let mut seen = 0usize;
    for entry in fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let name = entry.expect("readable entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".script").filter(|s| s.starts_with("scenario_"))
        else {
            continue;
        };
        seen += 1;
        let text = fs::read_to_string(fixture_dir().join(format!("{stem}.script")))
            .unwrap_or_else(|e| panic!("cannot read {stem}.script: {e}"));
        let (script, linenos) = parse_script_spanned(&text)
            .unwrap_or_else(|e| panic!("fixture {stem}.script does not parse: {e}"));
        let diags = lint::lint_script(&script);
        assert!(
            !diags.is_empty(),
            "scenario fixture {stem}.script triggers no diagnostics — it pins nothing"
        );
        let rendered = lint::render_diagnostics(&script, &diags, Some(&linenos));
        let expected_path = fixture_dir().join(format!("{stem}.expected"));
        if regen {
            fs::write(&expected_path, &rendered)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", expected_path.display()));
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}\nregenerate with SIBYLFS_REGEN_GOLDEN=1",
                expected_path.display()
            )
        });
        assert_eq!(
            rendered, expected,
            "lint report for {stem}.script drifted from its golden file; \
             regenerate with SIBYLFS_REGEN_GOLDEN=1 if the change is intentional"
        );
    }
    assert!(seen > 0, "no scenario_*.script fixtures found");
}

/// Parse-error fixtures: deliberately unparseable `parse_*` scripts and
/// traces whose rendered diagnostic block (the `render_parse_error` path the
/// CLI and the oracle server both go through) is pinned. These lock down the
/// span-carrying errors from the negative-integer/robustness sweep — a silent
/// regression back to truncating casts would flip a fixture from "rejected
/// with a position" to "parses fine" and fail loudly here.
#[test]
fn parse_error_fixtures_match_golden() {
    let regen = std::env::var_os("SIBYLFS_REGEN_GOLDEN").is_some();
    let mut seen = 0usize;
    for entry in fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let name = entry.expect("readable entry").file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("parse_") || name.ends_with(".expected") {
            continue;
        }
        seen += 1;
        let text = fs::read_to_string(fixture_dir().join(name.as_ref()))
            .unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
        let err = if name.ends_with(".trace") {
            sibylfs_script::parse_trace(&text).expect_err("parse_* trace fixture must not parse")
        } else {
            parse_script_spanned(&text)
                .map(|_| ())
                .expect_err("parse_* script fixture must not parse")
        };
        let rendered = sibylfs_check::render_parse_error(&name, &err);
        let expected_path = fixture_dir().join(format!("{name}.expected"));
        if regen {
            fs::write(&expected_path, &rendered)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", expected_path.display()));
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}\nregenerate with SIBYLFS_REGEN_GOLDEN=1",
                expected_path.display()
            )
        });
        assert_eq!(
            rendered, expected,
            "parse diagnostic for {name} drifted from its golden file; \
             regenerate with SIBYLFS_REGEN_GOLDEN=1 if the change is intentional"
        );
    }
    assert!(seen > 0, "no parse_* fixtures found");
}

/// No fixture directory entry without a corresponding rule (or the
/// `scenario_`/`parse_` prefix): catches a renamed rule leaving stale
/// goldens behind.
#[test]
fn no_stale_golden_fixtures() {
    for entry in fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let name = entry.expect("readable entry").file_name();
        let name = name.to_string_lossy();
        let stem = name
            .strip_suffix(".script")
            .or_else(|| name.strip_suffix(".trace"))
            .or_else(|| name.strip_suffix(".expected"))
            .unwrap_or_else(|| panic!("unexpected file in tests/golden: {name}"));
        let stem = stem.strip_suffix(".script").or_else(|| stem.strip_suffix(".trace")).unwrap_or(stem);
        assert!(
            lint::RULES.contains(&stem) || stem.starts_with("scenario_") || stem.starts_with("parse_"),
            "tests/golden/{name} does not correspond to any lint rule"
        );
    }
}

/// The exploration corpus is seeded with the model-gap and defect-scenario
/// scripts; the static pre-exec filter must consider every one of them clean
/// (no `Error`-severity findings — warnings are fine, some seeds deliberately
/// probe overlong names).
#[test]
fn explore_corpus_seeds_are_lint_clean() {
    for (script, why) in sibylfs_testgen::sequences::model_gap_scripts() {
        let diags = lint::lint_script(&script);
        assert!(
            lint::is_clean(&diags),
            "model-gap script {} ({why}) is not lint-clean: {diags:?}",
            script.name
        );
    }
    for script in sibylfs_testgen::sequences::defect_scenario_scripts() {
        let diags = lint::lint_script(&script);
        assert!(
            lint::is_clean(&diags),
            "defect-scenario script {} is not lint-clean: {diags:?}",
            script.name
        );
    }
}
