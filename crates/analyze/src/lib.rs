//! # SibylFS static analyses
//!
//! Two static passes over the artefacts the rest of the workspace treats
//! dynamically:
//!
//! * [`audit`] — the **spec-consistency audit**: parses the embedded model
//!   source (`sibylfs_core::coverage::model_sources`) and cross-checks it
//!   against the declared registry in `sibylfs_core::spec_registry` — every
//!   `spec_point` unique and registered, every reachable errno declared in
//!   its syscall's envelope, every declared errno actually reachable.
//!   `sibylfs audit` renders the result as a machine-readable report that CI
//!   gates on.
//! * [`lint`] — the **flow-sensitive script linter**: an abstract
//!   interpretation over parsed scripts tracking per-process fd/dh lifecycle,
//!   process liveness, and path sanity. Diagnostics carry stable rule ids and
//!   step spans; for steps whose outcome is statically certain the linter
//!   also predicts the coverage keys the step could contribute, which lets
//!   the exploration engine drop statically-doomed mutant steps without
//!   losing coverage (`lint::repair_for_explore`).
//!
//! See `crates/analyze/DESIGN.md` for the abstract domain and the audit's
//! reachability closure.

pub mod audit;
pub mod lint;

pub use audit::{audit_model, AuditFinding, AuditReport};
pub use lint::{lint_script, render_diagnostics, repair_for_explore, Diagnostic, RepairOutcome, Severity};
