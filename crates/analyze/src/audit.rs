//! Spec-consistency audit.
//!
//! Parses the embedded model source (comment- and test-stripped), segments it
//! into functions, and computes for every syscall entry point the set of
//! errnos its rules can reach — transitively through the shared `SpecCtx`
//! checks, the path resolver, and the per-flavour errno tables. The result is
//! cross-checked against the declared registry in
//! `sibylfs_core::spec_registry`:
//!
//! | rule id                  | meaning                                              |
//! |--------------------------|------------------------------------------------------|
//! | `duplicate-spec-point`   | the same `spec_point` id occurs at two source sites  |
//! | `unregistered-spec-point`| a source id missing from the declared registry       |
//! | `stale-spec-point`       | a declared id no longer present in the source        |
//! | `misprefixed-spec-point` | an id whose prefix is no syscall or shared namespace |
//! | `undeclared-errno`       | a reachable errno missing from the syscall envelope  |
//! | `dead-errno`             | a declared errno no rule of the syscall can emit     |
//! | `missing-entry-fn`       | a declared entry function absent from the source     |
//!
//! The extraction is deliberately an *over*-approximation (it unions the
//! errnos of every function a rule could call, for every flavour), so
//! `undeclared-errno` findings are sound alarms while `dead-errno` findings
//! mean the errno is unreachable under every configuration — dead spec
//! surface.

use std::collections::{BTreeMap, BTreeSet};

use sibylfs_core::coverage;
use sibylfs_core::errno::Errno;
use sibylfs_core::spec_registry::{self, SHARED_PREFIXES, SYSCALLS};

/// One audit finding, identified by a stable rule id and a subject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Stable rule id (see the module table).
    pub rule: &'static str,
    /// What the finding is about (a spec-point id, or `"<syscall> <ERRNO>"`).
    pub subject: String,
    /// Human-readable context (source locations, reachability note).
    pub detail: String,
}

impl AuditFinding {
    /// The machine-readable report line for this finding. The `finding
    /// <rule> <subject>` prefix (everything before `--`) is what baselines
    /// match on, so detail text can change without invalidating a baseline.
    pub fn line(&self) -> String {
        format!("finding {} {} -- {}", self.rule, self.subject, self.detail)
    }

    /// The baseline key of this finding (report line minus the detail).
    pub fn key(&self) -> String {
        format!("finding {} {}", self.rule, self.subject)
    }
}

/// The result of auditing the model: summary statistics plus findings.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Model files scanned.
    pub files: usize,
    /// Functions segmented out of the model source.
    pub functions: usize,
    /// Distinct spec-point ids found in the source.
    pub points: usize,
    /// Declared syscalls checked.
    pub syscalls: usize,
    /// All findings, sorted by rule then subject.
    pub findings: Vec<AuditFinding>,
    /// Computed per-syscall errno reachability (model name → errnos).
    pub computed_envelopes: BTreeMap<String, BTreeSet<Errno>>,
}

impl AuditReport {
    /// Whether the audit found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the machine-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("@type audit-report\n");
        out.push_str(&format!(
            "# model: {} files, {} functions, {} spec points, {} syscalls\n",
            self.files, self.functions, self.points, self.syscalls
        ));
        for f in &self.findings {
            out.push_str(&f.line());
            out.push('\n');
        }
        out.push_str(&format!("# findings: {}\n", self.findings.len()));
        out
    }

    /// Findings not explained by a baseline report (matched on
    /// [`AuditFinding::key`]). An empty result means the gate passes.
    pub fn unexplained(&self, baseline: &str) -> Vec<&AuditFinding> {
        let allowed: BTreeSet<&str> = baseline
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with("finding "))
            .map(|l| l.split(" -- ").next().unwrap_or(l).trim_end())
            .collect();
        self.findings.iter().filter(|f| !allowed.contains(f.key().as_str())).collect()
    }

    /// Render the computed envelopes in `spec_registry.rs` syntax, used to
    /// bootstrap or update the declared table.
    pub fn render_computed_envelopes(&self) -> String {
        let mut out = String::new();
        for (name, errnos) in &self.computed_envelopes {
            let list: Vec<String> = errnos.iter().map(|e| e.to_string()).collect();
            out.push_str(&format!("{}: &[{}]\n", name, list.join(", ")));
        }
        out
    }
}

/// A function segmented out of the model source.
#[derive(Debug, Clone, Default)]
struct FnInfo {
    /// Direct `Errno::X` mentions in the body.
    errnos: BTreeSet<Errno>,
    /// Identifiers invoked as `name(…)` or `.name(…)` in the body.
    calls: BTreeSet<String>,
}

/// Everything the scanner extracts from the model source.
#[derive(Debug, Default)]
struct ModelScan {
    fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// spec-point id → source sites (`file:line`).
    points: BTreeMap<String, Vec<String>>,
}

/// Blank out comments, string contents, and char literals so that brace
/// counting and token extraction never trip over them. Length and line
/// structure are preserved.
fn blank_noncode(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Str { escape: bool },
        Char { escape: bool },
        Line,
        Block,
    }
    let mut st = St::Code;
    let mut out = String::with_capacity(src.len());
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            St::Code => match c {
                '"' => {
                    st = St::Str { escape: false };
                    out.push('"');
                }
                '\'' => {
                    // Distinguish a char literal from a lifetime: a literal
                    // is 'x' or an escape; a lifetime is 'ident not followed
                    // by a closing quote.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char { escape: false };
                    }
                    out.push('\'');
                }
                '/' if next == Some('/') => {
                    st = St::Line;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    st = St::Block;
                    out.push(' ');
                }
                c => out.push(c),
            },
            St::Str { escape } => {
                if c == '\n' {
                    out.push('\n');
                    st = St::Str { escape: false };
                } else if escape {
                    out.push(' ');
                    st = St::Str { escape: false };
                } else if c == '\\' {
                    out.push(' ');
                    st = St::Str { escape: true };
                } else if c == '"' {
                    out.push('"');
                    st = St::Code;
                } else {
                    out.push(' ');
                }
            }
            St::Char { escape } => {
                if escape {
                    out.push(' ');
                    st = St::Char { escape: false };
                } else if c == '\\' {
                    out.push(' ');
                    st = St::Char { escape: true };
                } else if c == '\'' {
                    out.push('\'');
                    st = St::Code;
                } else {
                    out.push(' ');
                }
            }
            St::Line => {
                if c == '\n' {
                    out.push('\n');
                    st = St::Code;
                } else {
                    out.push(' ');
                }
            }
            St::Block => {
                if c == '*' && next == Some('/') {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    st = St::Code;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extract the identifier ending immediately before byte position `end`.
fn ident_before(line: &str, end: usize) -> &str {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    &line[start..end]
}

/// Scan one model file into `scan`, skipping `#[cfg(test)]` modules.
/// Collect the body tokens of one code segment into a function's info:
/// direct `Errno::X` mentions and lowercase identifiers invoked as `name(`.
fn collect_tokens(info: &mut FnInfo, seg: &str) {
    let mut search = 0;
    while let Some(rel) = seg[search..].find("Errno::") {
        let at = search + rel + "Errno::".len();
        let name: String = seg[at..].chars().take_while(|c| is_ident_char(*c)).collect();
        if let Ok(e) = name.parse::<Errno>() {
            info.errnos.insert(e);
        }
        search = at;
    }
    for (pos, c) in seg.char_indices() {
        if c == '(' {
            let id = ident_before(seg, pos);
            if id
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                && id != "fn"
            {
                info.calls.insert(id.to_string());
            }
        }
    }
}

fn scan_file(scan: &mut ModelScan, file: &'static str, raw: &str) {
    let blanked = blank_noncode(raw);
    let mut depth: i32 = 0;
    // Function currently being collected, innermost last.
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    // Set when a `fn name` signature was seen and its `{` is still pending.
    let mut pending_fn: Option<String> = None;
    // Set when `#[cfg(test)]` was seen and the guarded item is pending.
    let mut pending_test_attr = false;
    // When inside a test module: the depth to return to before resuming.
    let mut skip_above: Option<i32> = None;

    for (idx, (line, raw_line)) in blanked.lines().zip(raw.lines()).enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim();

        if skip_above.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending_test_attr = true;
            } else if pending_test_attr && !trimmed.starts_with("#[") && !trimmed.is_empty() {
                if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                    skip_above = Some(depth);
                }
                pending_test_attr = false;
            }
        }

        let in_test = skip_above.is_some();

        if !in_test {
            // Function signature detection.
            let mut search = 0;
            while let Some(rel) = line[search..].find("fn ") {
                let at = search + rel;
                let boundary_ok =
                    at == 0 || !is_ident_char(line.as_bytes()[at - 1] as char);
                if boundary_ok {
                    let after = line[at + 3..].trim_start();
                    let name: String =
                        after.chars().take_while(|c| is_ident_char(*c)).collect();
                    if !name.is_empty() {
                        pending_fn = Some(name);
                    }
                }
                search = at + 3;
            }

            // spec_point literals come from the raw line (strings are blanked
            // in `line`), guarded by the blanked line so commented-out calls
            // are ignored.
            if line.contains("spec_point(") {
                let mut search = 0;
                while let Some(rel) = raw_line[search..].find("spec_point(\"") {
                    let at = search + rel + "spec_point(\"".len();
                    if let Some(end) = raw_line[at..].find('"') {
                        let id = raw_line[at..at + end].to_string();
                        scan.points.entry(id).or_default().push(format!("{file}:{lineno}"));
                        search = at + end;
                    } else {
                        break;
                    }
                }
            }

        }

        // Walk the line's brace events in source order, collecting body
        // tokens from the code segment *before* each event with whatever
        // function is innermost there. This keeps single-line functions
        // (`fn f() { g(); }`) and trailing tokens after a `}` attributed
        // to the right function.
        let mut events: Vec<(usize, char)> =
            line.char_indices().filter(|&(_, c)| c == '{' || c == '}').collect();
        events.push((line.len(), '\0'));
        let mut seg_start = 0usize;
        for (pos, c) in events {
            if skip_above.is_none() {
                if let Some(&(fi, _)) = fn_stack.last() {
                    collect_tokens(&mut scan.fns[fi], &line[seg_start..pos]);
                }
            }
            seg_start = pos + c.len_utf8();
            match c {
                '{' => {
                    if skip_above.is_none() {
                        if let Some(name) = pending_fn.take() {
                            let fi = scan.fns.len();
                            scan.fns.push(FnInfo::default());
                            scan.by_name.entry(name).or_default().push(fi);
                            fn_stack.push((fi, depth));
                        }
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&(_, d)) = fn_stack.last() {
                        if depth <= d {
                            fn_stack.pop();
                        }
                    }
                    if let Some(d) = skip_above {
                        if depth <= d {
                            skip_above = None;
                        }
                    }
                }
                _ => {}
            }
        }
        // A semicolon ends a pending signature that turned out to be a trait
        // method declaration or similar.
        if line.contains(';') && !line.contains('{') {
            pending_fn = None;
        }
    }
}

fn scan_model() -> (ModelScan, usize) {
    let sources = coverage::model_sources();
    let mut scan = ModelScan::default();
    for (file, src) in sources {
        scan_file(&mut scan, file, src);
    }
    (scan, sources.len())
}

/// Every errno reachable from `entry` through the call graph of the scanned
/// model (union over all flavours and trait configurations).
fn reachable_errnos(scan: &ModelScan, entry: &str) -> BTreeSet<Errno> {
    let mut out = BTreeSet::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: Vec<&str> = vec![entry];
    while let Some(name) = queue.pop() {
        if !seen.insert(name) {
            continue;
        }
        let Some(indices) = scan.by_name.get(name) else { continue };
        for &fi in indices {
            let f = &scan.fns[fi];
            out.extend(f.errnos.iter().copied());
            for callee in &f.calls {
                if !seen.contains(callee.as_str()) {
                    queue.push(callee);
                }
            }
        }
    }
    out
}

/// Run the spec-consistency audit over the embedded model source.
pub fn audit_model() -> AuditReport {
    let (scan, files) = scan_model();
    let mut findings = Vec::new();

    // Spec-point checks.
    let declared: BTreeSet<&str> = spec_registry::declared_points().iter().copied().collect();
    for (id, sites) in &scan.points {
        if sites.len() > 1 {
            findings.push(AuditFinding {
                rule: "duplicate-spec-point",
                subject: id.clone(),
                detail: format!("declared at {}", sites.join(" and ")),
            });
        }
        if !declared.contains(id.as_str()) {
            findings.push(AuditFinding {
                rule: "unregistered-spec-point",
                subject: id.clone(),
                detail: format!("present at {} but not in spec_registry::POINTS", sites[0]),
            });
        }
        let prefix = id.split('/').next().unwrap_or("");
        if spec_registry::syscall_spec(prefix).is_none() && !SHARED_PREFIXES.contains(&prefix) {
            findings.push(AuditFinding {
                rule: "misprefixed-spec-point",
                subject: id.clone(),
                detail: format!(
                    "prefix {prefix:?} is neither a declared syscall nor one of {SHARED_PREFIXES:?}"
                ),
            });
        }
    }
    for id in &declared {
        if !scan.points.contains_key(*id) {
            findings.push(AuditFinding {
                rule: "stale-spec-point",
                subject: (*id).to_string(),
                detail: "declared in spec_registry::POINTS but absent from the model source"
                    .to_string(),
            });
        }
    }

    // Errno envelope checks.
    let mut computed_envelopes = BTreeMap::new();
    for sys in SYSCALLS {
        if !scan.by_name.contains_key(sys.entry) {
            findings.push(AuditFinding {
                rule: "missing-entry-fn",
                subject: sys.name.to_string(),
                detail: format!("entry function {} not found in the model source", sys.entry),
            });
            continue;
        }
        let computed = reachable_errnos(&scan, sys.entry);
        let declared: BTreeSet<Errno> = sys.errnos.iter().copied().collect();
        for e in computed.difference(&declared) {
            findings.push(AuditFinding {
                rule: "undeclared-errno",
                subject: format!("{} {}", sys.name, e),
                detail: format!("reachable from {} but missing from the declared envelope", sys.entry),
            });
        }
        for e in declared.difference(&computed) {
            findings.push(AuditFinding {
                rule: "dead-errno",
                subject: format!("{} {}", sys.name, e),
                detail: format!("declared but unreachable from {} — dead spec surface", sys.entry),
            });
        }
        computed_envelopes.insert(sys.name.to_string(), computed);
    }

    findings.sort_by(|a, b| (a.rule, &a.subject).cmp(&(b.rule, &b.subject)));

    AuditReport {
        files,
        functions: scan.fns.len(),
        points: scan.points.len(),
        syscalls: SYSCALLS.len(),
        findings,
        computed_envelopes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_skips_comments_strings_and_test_mods() {
        let src = r#"
fn alpha() {
    // Errno::EACCES in a comment is ignored.
    let s = "Errno::EAGAIN in a string is ignored";
    beta(Errno::ENOENT);
    spec_point("alpha/go");
}

#[cfg(test)]
mod tests {
    fn gamma() {
        delta(Errno::EPERM);
        spec_point("test/hidden");
    }
}
"#;
        let mut scan = ModelScan::default();
        scan_file(&mut scan, "x.rs", src);
        assert!(scan.by_name.contains_key("alpha"));
        assert!(!scan.by_name.contains_key("gamma"));
        let fi = scan.by_name["alpha"][0];
        assert_eq!(
            scan.fns[fi].errnos.iter().copied().collect::<Vec<_>>(),
            vec![Errno::ENOENT]
        );
        assert!(scan.fns[fi].calls.contains("beta"));
        assert!(scan.points.contains_key("alpha/go"));
        assert!(!scan.points.contains_key("test/hidden"));
    }

    #[test]
    fn closure_follows_calls_transitively() {
        let src = r#"
fn top() { middle(); }
fn middle() { bottom(); }
fn bottom() { fail(Errno::ELOOP); }
fn unrelated() { other(Errno::EBUSY); }
"#;
        let mut scan = ModelScan::default();
        scan_file(&mut scan, "x.rs", src);
        let e = reachable_errnos(&scan, "top");
        assert!(e.contains(&Errno::ELOOP));
        assert!(!e.contains(&Errno::EBUSY));
    }

    #[test]
    fn model_audit_is_clean() {
        let report = audit_model();
        assert!(
            report.is_clean(),
            "spec-consistency findings:\n{}",
            report.render()
        );
        assert!(report.points >= 190, "expected the full registry, got {}", report.points);
        assert_eq!(report.syscalls, 25);
    }

    #[test]
    fn baseline_matching_ignores_detail_text() {
        let f = AuditFinding {
            rule: "dead-errno",
            subject: "open EBUSY".into(),
            detail: "whatever".into(),
        };
        let report = AuditReport { findings: vec![f], ..AuditReport::default() };
        assert_eq!(report.unexplained("").len(), 1);
        assert!(report.unexplained("finding dead-errno open EBUSY -- old detail\n").is_empty());
        assert!(report.unexplained("finding dead-errno open EBUSY\n").is_empty());
    }
}
