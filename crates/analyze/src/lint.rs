//! Flow-sensitive script linter.
//!
//! An abstract interpretation over parsed scripts. The domain mirrors the
//! allocation discipline both execution backends share: file descriptors are
//! handed out per process starting at 3, directory handles starting at 1,
//! both strictly monotonically and only on success, and neither is ever
//! reused. That makes a cheap *watermark* abstraction exact for the
//! judgements the linter cares about:
//!
//! * fd `n` is **maybe open** in a process iff `3 ≤ n < 3 + opens-so-far`
//!   (and `n` has not been closed), where opens-so-far counts `open` *calls*
//!   — the maximum number of descriptors that could have been allocated;
//! * after a `close` of a maybe-open fd the fd is **definitely not open**
//!   forever (whether or not the close succeeded, since ids are never
//!   reused); directory handles behave the same with base 1;
//! * a fd outside the maybe-open range was **never opened** and every use is
//!   statically doomed to `EBADF`.
//!
//! Process liveness is tracked exactly (create/destroy are deterministic in
//! the model), and path arguments get shallow sanity checks (empty,
//! overlong) that map to deterministic model behaviour.
//!
//! Diagnostics carry stable rule ids, the step index they anchor to, and —
//! when the step's outcome is statically certain — the exact coverage keys
//! the step could contribute. The exploration engine uses those predictions
//! to drop doomed mutant steps *only* when every predicted key is already
//! covered, so the pre-exec filter can never cost coverage
//! ([`repair_for_explore`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use sibylfs_core::commands::OsCommand;
use sibylfs_core::coverage::CoverageKey;
use sibylfs_core::coverage::CoverageMap;
use sibylfs_core::flags::OpenFlags;
use sibylfs_core::types::{Pid, INITIAL_PID, NAME_MAX, PATH_MAX};
use sibylfs_script::{Script, ScriptStep};

/// Diagnostic severity. Only `Error` diagnostics make a script "not
/// lint-clean"; warnings flag suspicious-but-spec-exercising constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but model-legal behaviour worth exercising.
    Warning,
    /// A statically-invalid step (doomed call or lifecycle violation).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "Warning"),
            Severity::Error => write!(f, "Error"),
        }
    }
}

/// One linter diagnostic, anchored to a script step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`use-after-close`, `double-close`, …).
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Index of the offending step in `script.steps` (0-based).
    pub step: usize,
    /// The process performing the step.
    pub pid: Pid,
    /// Human-readable description.
    pub message: String,
    /// When the step's outcome is statically certain: every coverage key the
    /// step could contribute (its transition plus the model branches it can
    /// hit). Empty when the outcome is not statically certain, in which case
    /// the exploration filter must not drop the step.
    pub predicted: Vec<CoverageKey>,
}

/// All lint rule ids, for docs and for the golden-fixture harness.
pub const RULES: &[&str] = &[
    "fd-never-opened",
    "use-after-close",
    "double-close",
    "dh-never-opened",
    "use-after-closedir",
    "double-closedir",
    "write-on-dirhandle",
    "dead-process-call",
    "empty-path",
    "overlong-path",
];

/// Watermark state of one live process.
#[derive(Debug, Default, Clone)]
struct ProcAbs {
    /// Number of `open` calls so far (upper bound on fds allocated).
    opens: usize,
    /// Whether each `open` call (in order) carried `O_DIRECTORY`.
    open_dirflag: Vec<bool>,
    /// Number of `opendir` calls so far.
    opendirs: usize,
    /// Fds that are definitely not open any more.
    closed_fds: BTreeSet<i32>,
    /// Directory handles that are definitely not open any more.
    closed_dhs: BTreeSet<i32>,
}

#[derive(Debug, PartialEq)]
enum HandleStatus {
    /// Below the base or above the allocation watermark.
    NeverOpened,
    /// Explicitly closed earlier (never reused afterwards).
    Closed,
    /// Possibly open.
    MaybeOpen,
}

impl ProcAbs {
    fn fd_status(&self, n: i32) -> HandleStatus {
        if self.closed_fds.contains(&n) {
            HandleStatus::Closed
        } else if n < 3 || (n as i64) >= 3 + self.opens as i64 {
            HandleStatus::NeverOpened
        } else {
            HandleStatus::MaybeOpen
        }
    }

    fn dh_status(&self, n: i32) -> HandleStatus {
        if self.closed_dhs.contains(&n) {
            HandleStatus::Closed
        } else if n < 1 || (n as i64) > self.opendirs as i64 {
            HandleStatus::NeverOpened
        } else {
            HandleStatus::MaybeOpen
        }
    }

    /// The `open` calls (0-based indices) that could have produced fd `n`:
    /// with fds handed out from 3 on success only, the `j`-th open (1-based)
    /// can produce fd `n` iff at least `n - 3` opens precede it.
    fn candidate_opens(&self, n: i32) -> std::ops::Range<usize> {
        let first = (n as usize).saturating_sub(3);
        first..self.opens
    }
}

fn transition(syscall: &str, outcome: &str) -> CoverageKey {
    CoverageKey::Transition { syscall: syscall.to_string(), outcome: outcome.to_string() }
}

fn branch(point: &str) -> CoverageKey {
    CoverageKey::Branch(point.to_string())
}

/// Lint a parsed script, returning diagnostics in step order.
pub fn lint_script(script: &Script) -> Vec<Diagnostic> {
    let mut procs: BTreeMap<Pid, ProcAbs> = BTreeMap::new();
    procs.insert(INITIAL_PID, ProcAbs::default());
    let mut diags = Vec::new();

    for (step, s) in script.steps.iter().enumerate() {
        match s {
            ScriptStep::CreateProcess { pid, .. } => {
                if procs.contains_key(pid) {
                    diags.push(Diagnostic {
                        rule: "dead-process-call",
                        severity: Severity::Error,
                        step,
                        pid: *pid,
                        message: format!(
                            "@process create of p{} which is already live; the model rejects the label",
                            pid.0
                        ),
                        predicted: Vec::new(),
                    });
                } else {
                    procs.insert(*pid, ProcAbs::default());
                }
            }
            ScriptStep::DestroyProcess { pid } => {
                if procs.remove(pid).is_none() {
                    diags.push(Diagnostic {
                        rule: "dead-process-call",
                        severity: Severity::Error,
                        step,
                        pid: *pid,
                        message: format!(
                            "@process destroy of p{} which is not live; the model rejects the label",
                            pid.0
                        ),
                        predicted: Vec::new(),
                    });
                }
            }
            ScriptStep::Call { pid, cmd } => {
                if !procs.contains_key(pid) {
                    diags.push(Diagnostic {
                        rule: "dead-process-call",
                        severity: Severity::Error,
                        step,
                        pid: *pid,
                        message: format!(
                            "call by p{} which is not live; the model rejects the label",
                            pid.0
                        ),
                        predicted: Vec::new(),
                    });
                    continue;
                }
                lint_paths(&mut diags, step, *pid, cmd);
                let p = procs.get_mut(pid).unwrap_or_else(|| unreachable!("checked live above"));
                lint_call(&mut diags, step, *pid, cmd, p);
            }
        }
    }
    diags
}

/// Per-call fd/dh lifecycle analysis over one live process's state.
fn lint_call(diags: &mut Vec<Diagnostic>, step: usize, pid: Pid, cmd: &OsCommand, p: &mut ProcAbs) {
    let name = cmd.name();
    let fd_diag = |p: &ProcAbs, n: i32, predicted: Vec<CoverageKey>| -> Option<Diagnostic> {
        let (rule, what) = match p.fd_status(n) {
            HandleStatus::NeverOpened => ("fd-never-opened", "was never opened"),
            HandleStatus::Closed => ("use-after-close", "was closed earlier"),
            HandleStatus::MaybeOpen => return None,
        };
        Some(Diagnostic {
            rule,
            severity: Severity::Error,
            step,
            pid,
            message: format!("p{}: {} on (FD {}), which {}", pid.0, name, n, what),
            predicted,
        })
    };

    match cmd {
        OsCommand::Open(_, flags, _) => {
            p.open_dirflag.push(flags.contains(OpenFlags::O_DIRECTORY));
            p.opens += 1;
        }
        OsCommand::Opendir(_) => {
            p.opendirs += 1;
        }
        OsCommand::Close(fd) => match p.fd_status(fd.0) {
            HandleStatus::MaybeOpen => {
                // Whether or not the close succeeds, the fd is never valid
                // again: ids are allocated monotonically and never reused.
                p.closed_fds.insert(fd.0);
            }
            status => {
                let (rule, what) = if status == HandleStatus::Closed {
                    ("double-close", "was already closed")
                } else {
                    ("fd-never-opened", "was never opened")
                };
                diags.push(Diagnostic {
                    rule,
                    severity: Severity::Error,
                    step,
                    pid,
                    message: format!("p{}: close of (FD {}), which {}", pid.0, fd.0, what),
                    predicted: vec![transition("close", "EBADF"), branch("close/bad_fd_ebadf")],
                });
            }
        },
        OsCommand::Lseek(fd, _, _) => {
            if let Some(d) =
                fd_diag(p, fd.0, vec![transition("lseek", "EBADF"), branch("lseek/bad_fd_ebadf")])
            {
                diags.push(d);
            }
        }
        OsCommand::Read(fd, _) => {
            if let Some(d) =
                fd_diag(p, fd.0, vec![transition("read", "EBADF"), branch("read/bad_fd_ebadf")])
            {
                diags.push(d);
            }
        }
        OsCommand::Pread(fd, _, off) => {
            // The model checks the offset before the fd, so a negative
            // offset makes EINVAL the certain outcome even on a bad fd.
            let predicted = if *off < 0 {
                vec![transition("pread", "EINVAL"), branch("pread/negative_offset_einval")]
            } else {
                vec![transition("pread", "EBADF"), branch("pread/bad_fd_ebadf")]
            };
            if let Some(d) = fd_diag(p, fd.0, predicted) {
                diags.push(d);
            }
        }
        // A zero-byte write on a bad fd is implementation-defined (it may
        // report success), so only non-empty writes are doomed.
        OsCommand::Write(fd, data) if !data.is_empty() => {
            if let Some(d) = fd_diag(
                p,
                fd.0,
                vec![transition("write", "EBADF"), branch("write/bad_fd_ebadf")],
            ) {
                diags.push(d);
            } else if let Some(d) = write_on_dirhandle(p, step, pid, "write", fd.0) {
                diags.push(d);
            }
        }
        OsCommand::Pwrite(fd, data, off) => {
            if *off < 0 {
                let predicted =
                    vec![transition("pwrite", "EINVAL"), branch("pwrite/negative_offset_einval")];
                if let Some(d) = fd_diag(p, fd.0, predicted) {
                    diags.push(d);
                }
            } else if !data.is_empty() {
                if let Some(d) = fd_diag(
                    p,
                    fd.0,
                    vec![transition("pwrite", "EBADF"), branch("pwrite/bad_fd_ebadf")],
                ) {
                    diags.push(d);
                } else if let Some(d) = write_on_dirhandle(p, step, pid, "pwrite", fd.0) {
                    diags.push(d);
                }
            }
        }
        OsCommand::Readdir(dh) | OsCommand::Rewinddir(dh) | OsCommand::Closedir(dh) => {
            let closing = matches!(cmd, OsCommand::Closedir(..));
            match p.dh_status(dh.0) {
                HandleStatus::MaybeOpen => {
                    if closing {
                        p.closed_dhs.insert(dh.0);
                    }
                }
                status => {
                    let (rule, what) = match (status == HandleStatus::Closed, closing) {
                        (true, true) => ("double-closedir", "was already closed"),
                        (true, false) => ("use-after-closedir", "was closed earlier"),
                        (false, _) => ("dh-never-opened", "was never opened"),
                    };
                    diags.push(Diagnostic {
                        rule,
                        severity: Severity::Error,
                        step,
                        pid,
                        message: format!("p{}: {} on (DH {}), which {}", pid.0, name, dh.0, what),
                        predicted: vec![
                            transition(name, "EBADF"),
                            branch(&format!("{name}/bad_handle_ebadf")),
                        ],
                    });
                }
            }
        }
        _ => {}
    }
}

/// `write`/`pwrite` on a maybe-open fd all of whose possible producers are
/// `O_DIRECTORY` opens. If such an open succeeded the fd is a read-only
/// directory descriptor (`open` with `O_DIRECTORY` and write access fails
/// with EISDIR and allocates nothing), and writing to it yields EBADF; if it
/// failed the fd was never allocated — EBADF either way.
fn write_on_dirhandle(
    p: &ProcAbs,
    step: usize,
    pid: Pid,
    syscall: &str,
    n: i32,
) -> Option<Diagnostic> {
    let candidates = p.candidate_opens(n);
    if candidates.is_empty() || !candidates.clone().all(|j| p.open_dirflag[j]) {
        return None;
    }
    Some(Diagnostic {
        rule: "write-on-dirhandle",
        severity: Severity::Error,
        step,
        pid,
        message: format!(
            "p{}: {} on (FD {}), which can only be a directory descriptor (every open that could \
             produce it uses O_DIRECTORY)",
            pid.0, syscall, n
        ),
        predicted: vec![
            transition(syscall, "EBADF"),
            branch(&format!("{syscall}/bad_fd_ebadf")),
            branch(&format!("{syscall}/fd_not_open_for_writing_ebadf")),
        ],
    })
}

/// Shallow path sanity checks (warnings only; both map to deterministic but
/// spec-exercising model behaviour, so the exploration filter keeps them).
fn lint_paths(diags: &mut Vec<Diagnostic>, step: usize, pid: Pid, cmd: &OsCommand) {
    for path in cmd.paths() {
        if path.is_empty() {
            diags.push(Diagnostic {
                rule: "empty-path",
                severity: Severity::Warning,
                step,
                pid,
                message: format!("p{}: {} with an empty path (always ENOENT)", pid.0, cmd.name()),
                predicted: Vec::new(),
            });
        } else if path.exceeds_path_max() {
            diags.push(Diagnostic {
                rule: "overlong-path",
                severity: Severity::Warning,
                step,
                pid,
                message: format!(
                    "p{}: {} path is {} bytes, over PATH_MAX={} (always ENAMETOOLONG)",
                    pid.0,
                    cmd.name(),
                    path.raw_len(),
                    PATH_MAX
                ),
                predicted: Vec::new(),
            });
        } else if let Some(i) = path.first_overlong() {
            diags.push(Diagnostic {
                rule: "overlong-path",
                severity: Severity::Warning,
                step,
                pid,
                message: format!(
                    "p{}: {} has a path component of {} bytes, over NAME_MAX={}",
                    pid.0,
                    cmd.name(),
                    path.components()[i].as_str().len(),
                    NAME_MAX
                ),
                predicted: Vec::new(),
            });
        }
    }
}

/// Whether the diagnostics leave the script lint-clean: no `Error`-severity
/// findings (warnings are allowed — they exercise the spec).
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

/// Outcome of the exploration pre-exec filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Nothing to drop: execute the script as-is.
    Clean,
    /// Some statically-doomed steps were dropped; the repaired script still
    /// has calls and should be executed instead.
    Repaired(Script, usize),
    /// After dropping doomed steps no calls remain: skip execution entirely.
    Rejected,
}

/// Drop statically-doomed steps whose every predicted coverage key is already
/// in `covered`.
///
/// Dropping such a step is semantics-preserving for the rest of the script: a
/// doomed call fails without mutating filesystem state and without allocating
/// a descriptor or handle, so the abstract state of every later step is
/// unchanged. Steps whose predictions contain a *novel* key are kept — the
/// first discovery of e.g. `close/bad_fd_ebadf` still pays its way — as are
/// diagnostics with no prediction at all (`dead-process-call` is rejected by
/// the model before execution and never reaches a syscall).
pub fn repair_for_explore(script: &Script, covered: &CoverageMap) -> RepairOutcome {
    let diags = lint_script(script);
    let doomed: BTreeSet<usize> = diags
        .iter()
        .filter(|d| {
            d.severity == Severity::Error
                && !d.predicted.is_empty()
                && d.predicted.iter().all(|k| covered.contains(k))
        })
        .map(|d| d.step)
        .collect();
    if doomed.is_empty() {
        return RepairOutcome::Clean;
    }
    let mut repaired = Script::new(script.name.clone(), script.group.clone());
    repaired.steps = script
        .steps
        .iter()
        .enumerate()
        .filter(|(i, _)| !doomed.contains(i))
        .map(|(_, s)| s.clone())
        .collect();
    if repaired.call_count() == 0 {
        RepairOutcome::Rejected
    } else {
        RepairOutcome::Repaired(repaired, doomed.len())
    }
}

/// Render diagnostics in the structural style of the trace checker's Fig. 4
/// blocks (shared with `sibylfs_check::render`). `linenos`, when given, maps
/// step indices to source lines of the script file; otherwise steps are
/// reported 1-based.
pub fn render_diagnostics(
    script: &Script,
    diags: &[Diagnostic],
    linenos: Option<&[usize]>,
) -> String {
    use sibylfs_check::render::{render_diagnostic_block, DiagnosticBlock};
    let mut out = String::new();
    out.push_str("@type lint-report\n");
    out.push_str(&format!("# Script {}\n", script.name));
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    if diags.is_empty() {
        out.push_str("# Verdict: clean\n");
        return out;
    }
    out.push_str(&format!("# Verdict: {errors} error(s), {warnings} warning(s)\n"));
    for d in diags {
        let lineno = linenos
            .and_then(|l| l.get(d.step).copied())
            .unwrap_or(d.step + 1);
        let mut notes = Vec::new();
        if !d.predicted.is_empty() {
            let keys: Vec<String> = d
                .predicted
                .iter()
                .map(|k| match k {
                    CoverageKey::Branch(p) => format!("branch {p}"),
                    CoverageKey::Transition { syscall, outcome } => {
                        format!("transition {syscall} {outcome}")
                    }
                })
                .collect();
            notes.push(format!("certain outcome; coverage keys: {}", keys.join(", ")));
        }
        render_diagnostic_block(
            &mut out,
            &DiagnosticBlock {
                lineno,
                severity: if d.severity == Severity::Error { "Error" } else { "Warning" },
                title: format!("[{}] {}", d.rule, d.message),
                notes,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::flags::FileMode;
    use sibylfs_core::types::{DirHandleId, Fd, Gid, Uid};

    fn open_cmd(path: &str) -> OsCommand {
        OsCommand::Open(path.into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(FileMode::new(0o644)))
    }

    #[test]
    fn clean_open_use_close_sequence() {
        let mut s = Script::new("ok", "open");
        s.call(open_cmd("f"))
            .call(OsCommand::Write(Fd(3), b"hi".to_vec()))
            .call(OsCommand::Close(Fd(3)));
        assert!(lint_script(&s).is_empty());
    }

    #[test]
    fn use_after_close_and_double_close() {
        let mut s = Script::new("bad", "open");
        s.call(open_cmd("f"))
            .call(OsCommand::Close(Fd(3)))
            .call(OsCommand::Read(Fd(3), 10))
            .call(OsCommand::Close(Fd(3)));
        let d = lint_script(&s);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].rule, "use-after-close");
        assert_eq!(d[0].step, 2);
        assert_eq!(d[1].rule, "double-close");
        assert!(!is_clean(&d));
    }

    #[test]
    fn watermark_tracks_possible_allocations() {
        let mut s = Script::new("wm", "open");
        // Two opens: fds 3 and 4 are maybe-open, 5 is not.
        s.call(open_cmd("a"))
            .call(open_cmd("b"))
            .call(OsCommand::Read(Fd(4), 1))
            .call(OsCommand::Read(Fd(5), 1))
            .call(OsCommand::Read(Fd(0), 1));
        let d = lint_script(&s);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.rule == "fd-never-opened"));
        assert_eq!(d[0].step, 3);
        assert_eq!(d[1].step, 4);
    }

    #[test]
    fn fd_state_is_per_process() {
        let mut s = Script::new("pp", "open");
        s.call(open_cmd("f"))
            .create_process(Pid(2), Uid(0), Gid(0))
            .call_as(Pid(2), OsCommand::Read(Fd(3), 1));
        let d = lint_script(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "fd-never-opened");
        assert_eq!(d[0].pid, Pid(2));
    }

    #[test]
    fn dh_lifecycle_rules() {
        let mut s = Script::new("dh", "opendir");
        s.call(OsCommand::Readdir(DirHandleId(1)))
            .call(OsCommand::Opendir("/".into()))
            .call(OsCommand::Closedir(DirHandleId(1)))
            .call(OsCommand::Rewinddir(DirHandleId(1)))
            .call(OsCommand::Closedir(DirHandleId(1)));
        let d = lint_script(&s);
        let rules: Vec<&str> = d.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["dh-never-opened", "use-after-closedir", "double-closedir"]);
    }

    #[test]
    fn zero_byte_write_and_negative_offsets_are_not_doomed_to_ebadf() {
        let mut s = Script::new("loose", "write");
        s.call(OsCommand::Write(Fd(9), Vec::new()))
            .call(OsCommand::Pwrite(Fd(9), b"x".to_vec(), -1))
            .call(OsCommand::Pread(Fd(9), 4, -2));
        let d = lint_script(&s);
        // The zero-byte write is implementation-defined: no diagnostic.
        assert_eq!(d.len(), 2);
        for diag in &d {
            assert_eq!(diag.rule, "fd-never-opened");
            assert!(
                diag.predicted.contains(&transition(
                    if diag.step == 1 { "pwrite" } else { "pread" },
                    "EINVAL"
                )),
                "negative offsets hit EINVAL before the fd check: {diag:?}"
            );
        }
    }

    #[test]
    fn write_on_dirhandle_requires_all_candidates_directory() {
        let mut s = Script::new("wod", "write");
        s.call(OsCommand::Mkdir("d".into(), FileMode::new(0o755)))
            .call(OsCommand::Open("d".into(), OpenFlags::O_RDONLY | OpenFlags::O_DIRECTORY, None))
            .call(OsCommand::Write(Fd(3), b"x".to_vec()));
        let d = lint_script(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "write-on-dirhandle");

        // A non-O_DIRECTORY candidate open makes the write possibly valid.
        let mut s2 = Script::new("wod2", "write");
        s2.call(open_cmd("f"))
            .call(OsCommand::Open("d".into(), OpenFlags::O_RDONLY | OpenFlags::O_DIRECTORY, None))
            .call(OsCommand::Write(Fd(3), b"x".to_vec()));
        assert!(lint_script(&s2).is_empty());
    }

    #[test]
    fn process_liveness_rules() {
        let mut s = Script::new("proc", "os");
        s.call_as(Pid(7), OsCommand::Stat("/".into()))
            .create_process(Pid(2), Uid(0), Gid(0))
            .create_process(Pid(2), Uid(0), Gid(0))
            .destroy_process(Pid(2))
            .call_as(Pid(2), OsCommand::Stat("/".into()))
            .destroy_process(Pid(2))
            .create_process(Pid(2), Uid(0), Gid(0))
            .call_as(Pid(2), OsCommand::Stat("/".into()));
        let d = lint_script(&s);
        assert_eq!(d.iter().filter(|x| x.rule == "dead-process-call").count(), 4);
        // The re-created p2 (after a successful destroy) is live again: the
        // final stat is clean.
        assert!(d.iter().all(|x| x.step != 7));
        // Liveness violations carry no prediction — never dropped by repair.
        assert!(d.iter().all(|x| x.predicted.is_empty()));
    }

    #[test]
    fn path_sanity_warnings() {
        let mut s = Script::new("paths", "path");
        s.call(OsCommand::Stat("".into()))
            .call(OsCommand::Mkdir("n".repeat(300).into(), FileMode::new(0o755)))
            .call(OsCommand::Stat(format!("a/{}", "n".repeat(5000)).into()));
        let d = lint_script(&s);
        let rules: Vec<&str> = d.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["empty-path", "overlong-path", "overlong-path"]);
        assert!(d.iter().all(|x| x.severity == Severity::Warning));
        assert!(is_clean(&d));
    }

    #[test]
    fn repair_drops_only_covered_doomed_steps() {
        let mut s = Script::new("rep", "mixed");
        s.call(open_cmd("f"))
            .call(OsCommand::Read(Fd(9), 4))
            .call(OsCommand::Close(Fd(3)));

        // Nothing covered: the doomed read's keys are novel, keep the script.
        assert_eq!(repair_for_explore(&s, &CoverageMap::new()), RepairOutcome::Clean);

        // Once its keys are covered the doomed step is dropped.
        let mut covered = CoverageMap::new();
        covered.insert(transition("read", "EBADF"));
        covered.insert(branch("read/bad_fd_ebadf"));
        match repair_for_explore(&s, &covered) {
            RepairOutcome::Repaired(r, dropped) => {
                assert_eq!(dropped, 1);
                assert_eq!(r.call_count(), 2);
                assert!(lint_script(&r).is_empty());
            }
            other => panic!("expected repair, got {other:?}"),
        }

        // A script that is nothing but covered doomed steps is rejected.
        let mut all_bad = Script::new("allbad", "read");
        all_bad.call(OsCommand::Read(Fd(9), 4));
        assert_eq!(repair_for_explore(&all_bad, &covered), RepairOutcome::Rejected);
    }

    #[test]
    fn predicted_branches_exist_in_the_registry() {
        // Build a script tripping every fd/dh rule that carries predictions,
        // then check each predicted branch id is a real registry point and
        // each predicted transition uses a declared-envelope errno.
        let registry = sibylfs_core::coverage::registry();
        let mut s = Script::new("all", "mixed");
        s.call(OsCommand::Close(Fd(0)))
            .call(OsCommand::Lseek(Fd(0), 0, sibylfs_core::flags::SeekWhence::Set))
            .call(OsCommand::Read(Fd(0), 1))
            .call(OsCommand::Pread(Fd(0), 1, 0))
            .call(OsCommand::Pread(Fd(0), 1, -1))
            .call(OsCommand::Write(Fd(0), b"x".to_vec()))
            .call(OsCommand::Pwrite(Fd(0), b"x".to_vec(), 0))
            .call(OsCommand::Pwrite(Fd(0), b"x".to_vec(), -1))
            .call(OsCommand::Readdir(DirHandleId(0)))
            .call(OsCommand::Rewinddir(DirHandleId(0)))
            .call(OsCommand::Closedir(DirHandleId(0)))
            .call(OsCommand::Open("d".into(), OpenFlags::O_DIRECTORY, None))
            .call(OsCommand::Write(Fd(3), b"x".to_vec()))
            .call(OsCommand::Pwrite(Fd(3), b"x".to_vec(), 0));
        let diags = lint_script(&s);
        assert!(diags.len() >= 12, "expected a diagnostic per doomed step: {diags:?}");
        for d in &diags {
            for k in &d.predicted {
                match k {
                    CoverageKey::Branch(p) => {
                        assert!(registry.contains(p), "predicted branch {p:?} not in registry");
                    }
                    CoverageKey::Transition { syscall, outcome } => {
                        let env = sibylfs_core::spec_registry::errno_envelope(syscall)
                            .unwrap_or_else(|| panic!("unknown syscall {syscall:?}"));
                        assert!(
                            env.iter().any(|e| e.to_string() == *outcome),
                            "predicted outcome {outcome} not in {syscall}'s declared envelope"
                        );
                    }
                }
            }
        }
    }
}
