//! # Simulated file systems under test
//!
//! The paper evaluates SibylFS by running its test suite against ~40 real
//! OS/file-system configurations. This crate provides the substitute used by
//! the reproduction: a deterministic in-memory kernel/file-system simulation
//! ([`SimOs`]) whose externally visible choices — error-code selection,
//! platform conventions, feature limitations, and the specific defects the
//! paper reports in §7.3 — are controlled by a [`BehaviorProfile`].
//!
//! Because the oracle observes implementations only through the libc-level
//! call/return trace, a simulated implementation that makes the same choices
//! produces the same traces and exercises the same checker code paths as the
//! real systems; see DESIGN.md for the substitution argument.
//!
//! The substitution argument is no longer merely asserted: it is validated
//! *differentially* against the real kernel. `tests/host_differential.rs`
//! executes the quick suite both on [`SimOs`] and on the real host via the
//! `sibylfs_exec::HostFs` chroot-jail backend, checks both trace sets against
//! the same model, and asserts that the host deviates only in an explicit,
//! documented known-divergence list. Several model clauses (strict
//! `O_CREAT|O_EXCL` symlink handling, trailing-slash `ENOTDIR` cases, the
//! `O_CREAT|O_DIRECTORY` envelope) were corrected by exactly this comparison.
//!
//! ```
//! use sibylfs_fsimpl::{configs, SimOs};
//! use sibylfs_core::prelude::*;
//!
//! let mut sim = SimOs::new(configs::by_name("linux/ext4").unwrap());
//! sim.create_process(INITIAL_PID, Uid(0), Gid(0));
//! let ret = sim.call(INITIAL_PID, &OsCommand::Mkdir("/d".into(), FileMode::new(0o777)));
//! assert_eq!(ret, ErrorOrValue::Value(RetValue::None));
//! ```

pub mod behavior;
pub mod configs;
pub mod memfs;
pub mod simos;

pub use behavior::{BehaviorProfile, ReaddirOrder};
pub use memfs::{Ino, MemFs, NodeKind, NodeMeta, SimRes};
pub use simos::{SimDh, SimFd, SimOs, SimProc};
