//! The in-memory inode store used by the simulated file systems.
//!
//! This is a deliberately *independent* implementation from the abstract
//! directory heap of the model crate: it is inode-based, tracks storage
//! usage (so capacity limits and storage leaks can be simulated), and its
//! path resolver makes single deterministic choices rather than describing an
//! envelope.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use sibylfs_core::errno::Errno;
use sibylfs_core::intern::Name;
use sibylfs_core::path::ParsedPath;

/// An inode number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ino(pub u64);

/// Ownership and permission metadata of an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Permission bits (low 12 bits of `mode_t`).
    pub mode: u32,
    /// Owning user.
    pub uid: u32,
    /// Owning group.
    pub gid: u32,
}

/// The type-specific part of an inode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A regular file with its data.
    File {
        /// File contents.
        data: Vec<u8>,
    },
    /// A directory with named entries and a parent pointer.
    Dir {
        /// Interned name → inode of each entry (`.` and `..` are implicit).
        /// Keyed by symbol id like the model's heap; lexicographic listings
        /// go through [`MemFs::entries`].
        entries: BTreeMap<Name, Ino>,
        /// Parent directory (self for the root; `None` once unlinked).
        parent: Option<Ino>,
    },
    /// A symbolic link and its target path, stored pre-parsed so the
    /// simulated resolver splices interned components like the model's.
    Symlink {
        /// The stored target path.
        target: ParsedPath,
    },
}

/// An inode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Type-specific content.
    pub kind: NodeKind,
    /// Ownership and permissions.
    pub meta: NodeMeta,
    /// Hard-link count (directory entries referring to this inode).
    pub nlink: u32,
    /// Insertion sequence number, used for insertion-ordered readdir.
    pub seq: u64,
}

impl Node {
    /// Whether the inode is a directory.
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, NodeKind::Dir { .. })
    }

    /// Whether the inode is a symlink.
    pub fn is_symlink(&self) -> bool {
        matches!(self.kind, NodeKind::Symlink { .. })
    }

    /// The size reported by `stat`.
    pub fn size(&self) -> u64 {
        match &self.kind {
            NodeKind::File { data } => data.len() as u64,
            NodeKind::Dir { .. } => 0,
            NodeKind::Symlink { target } => target.raw_len() as u64,
        }
    }
}

/// The result of deterministic path resolution in the simulated kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimRes {
    /// Resolved to a directory.
    Dir {
        /// The directory inode.
        ino: Ino,
        /// The containing directory and entry name, when the path reached the
        /// directory through an ordinary entry (absent for the root and for
        /// paths ending in `.` or `..`).
        parent: Option<(Ino, Name)>,
    },
    /// Resolved to a non-directory inode (file or unfollowed symlink).
    NonDir {
        /// Containing directory.
        parent: Ino,
        /// Entry name.
        name: Name,
        /// The inode.
        ino: Ino,
        /// Whether the original path had a trailing slash.
        trailing_slash: bool,
    },
    /// Resolved to a missing entry of an existing directory.
    Missing {
        /// The directory that would contain the entry.
        parent: Ino,
        /// The missing name.
        name: Name,
        /// Whether the original path had a trailing slash.
        trailing_slash: bool,
    },
    /// Resolution failed with this errno.
    Error(Errno),
}

/// The in-memory inode store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemFs {
    nodes: BTreeMap<u64, Node>,
    root: Ino,
    next_ino: u64,
    next_seq: u64,
    /// Bytes of data currently accounted against the volume (used to model
    /// capacity limits and the posixovl storage leak).
    pub bytes_used: u64,
}

impl MemFs {
    /// A fresh file system containing only a root directory owned by root.
    pub fn new() -> MemFs {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            0,
            Node {
                kind: NodeKind::Dir { entries: BTreeMap::new(), parent: None },
                meta: NodeMeta { mode: 0o755, uid: 0, gid: 0 },
                nlink: 2,
                seq: 0,
            },
        );
        MemFs { nodes, root: Ino(0), next_ino: 1, next_seq: 1, bytes_used: 0 }
    }

    /// The root inode.
    pub fn root(&self) -> Ino {
        self.root
    }

    /// Access an inode.
    pub fn node(&self, ino: Ino) -> Option<&Node> {
        self.nodes.get(&ino.0)
    }

    /// Access an inode mutably.
    pub fn node_mut(&mut self, ino: Ino) -> Option<&mut Node> {
        self.nodes.get_mut(&ino.0)
    }

    fn alloc(&mut self, node: Node) -> Ino {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        self.nodes.insert(ino.0, node);
        ino
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Look up `name` within directory `dir`.
    pub fn lookup(&self, dir: Ino, name: impl Into<Name>) -> Option<Ino> {
        let name = name.into();
        match &self.node(dir)?.kind {
            NodeKind::Dir { entries, .. } => entries.get(&name).copied(),
            _ => None,
        }
    }

    /// The entry names of a directory in lexicographic order (by name bytes;
    /// the entry map itself is keyed by symbol id, so this sorts at the
    /// boundary — same guarantee as the model heap's `entry_names`).
    pub fn entries(&self, dir: Ino) -> Vec<Name> {
        match self.node(dir).map(|n| &n.kind) {
            Some(NodeKind::Dir { entries, .. }) => {
                // Resolve each symbol once, then sort — one interner read per
                // element rather than per comparison.
                let mut pairs: Vec<(&'static str, Name)> =
                    entries.keys().map(|n| (n.as_str(), *n)).collect();
                pairs.sort_unstable_by_key(|(s, _)| *s);
                pairs.into_iter().map(|(_, n)| n).collect()
            }
            _ => Vec::new(),
        }
    }

    /// The entry names together with the insertion sequence of their inodes.
    pub fn entries_with_seq(&self, dir: Ino) -> Vec<(Name, u64)> {
        match self.node(dir).map(|n| &n.kind) {
            Some(NodeKind::Dir { entries, .. }) => entries
                .iter()
                .map(|(k, v)| (*k, self.node(*v).map(|n| n.seq).unwrap_or(0)))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Whether a directory has no entries.
    pub fn dir_is_empty(&self, dir: Ino) -> bool {
        self.entries(dir).is_empty()
    }

    /// The parent of a directory.
    pub fn parent_of(&self, dir: Ino) -> Option<Ino> {
        match self.node(dir).map(|n| &n.kind) {
            Some(NodeKind::Dir { parent, .. }) => *parent,
            _ => None,
        }
    }

    /// Whether `dir` is reachable from the root (false once its entry has
    /// been removed).
    pub fn is_connected(&self, dir: Ino) -> bool {
        if dir == self.root {
            return true;
        }
        let mut cur = dir;
        let mut fuel = self.nodes.len() + 1;
        while fuel > 0 {
            match self.parent_of(cur) {
                Some(p) if p == self.root => return true,
                Some(p) => cur = p,
                None => return false,
            }
            fuel -= 1;
        }
        false
    }

    /// Whether `ancestor` is the same as or an ancestor of `dir`.
    pub fn is_same_or_ancestor(&self, ancestor: Ino, dir: Ino) -> bool {
        let mut cur = Some(dir);
        let mut fuel = self.nodes.len() + 1;
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            if fuel == 0 {
                return false;
            }
            fuel -= 1;
            cur = self.parent_of(c);
        }
        false
    }

    /// The directory link count (2 + subdirectories), as reported by
    /// configurations that maintain it.
    pub fn dir_nlink(&self, dir: Ino) -> u32 {
        let Some(node) = self.node(dir) else { return 0 };
        let NodeKind::Dir { entries, parent } = &node.kind else { return 0 };
        let base = if parent.is_some() || dir == self.root { 2 } else { 1 };
        let subdirs = entries
            .values()
            .filter(|i| self.node(**i).map(|n| n.is_dir()).unwrap_or(false))
            .count() as u32;
        base + subdirs
    }

    /// Create a directory entry `name` in `parent` for a brand-new node.
    pub fn create(
        &mut self,
        parent: Ino,
        name: impl Into<Name>,
        kind: NodeKind,
        meta: NodeMeta,
    ) -> Option<Ino> {
        let name = name.into();
        if self.lookup(parent, name).is_some() {
            return None;
        }
        let seq = self.next_seq();
        let is_dir = matches!(kind, NodeKind::Dir { .. });
        let ino = self.alloc(Node { kind, meta, nlink: if is_dir { 2 } else { 1 }, seq });
        if is_dir {
            if let Some(Node { kind: NodeKind::Dir { parent: p, .. }, .. }) = self.node_mut(ino) {
                *p = Some(parent);
            }
        }
        match self.node_mut(parent).map(|n| &mut n.kind) {
            Some(NodeKind::Dir { entries, .. }) => {
                entries.insert(name, ino);
            }
            _ => return None,
        }
        Some(ino)
    }

    /// Add a hard link `name -> ino` in `parent`, bumping the link count.
    pub fn add_link(&mut self, parent: Ino, name: impl Into<Name>, ino: Ino) -> bool {
        let name = name.into();
        if self.lookup(parent, name).is_some() || self.node(ino).is_none() {
            return false;
        }
        match self.node_mut(parent).map(|n| &mut n.kind) {
            Some(NodeKind::Dir { entries, .. }) => {
                entries.insert(name, ino);
            }
            _ => return false,
        }
        if let Some(n) = self.node_mut(ino) {
            n.nlink += 1;
        }
        true
    }

    /// Remove the entry `name` from `parent`.
    ///
    /// If `decrement_nlink` is false the link count of the removed inode is
    /// left untouched (the posixovl leak).
    pub fn remove_entry(
        &mut self,
        parent: Ino,
        name: impl Into<Name>,
        decrement_nlink: bool,
    ) -> Option<Ino> {
        let name = name.into();
        let ino = self.lookup(parent, name)?;
        match self.node_mut(parent).map(|n| &mut n.kind) {
            Some(NodeKind::Dir { entries, .. }) => {
                entries.remove(&name);
            }
            _ => return None,
        }
        let is_dir = self.node(ino).map(|n| n.is_dir()).unwrap_or(false);
        if is_dir {
            if let Some(Node { kind: NodeKind::Dir { parent: p, .. }, .. }) = self.node_mut(ino) {
                *p = None;
            }
        } else if decrement_nlink {
            let mut freed = 0u64;
            if let Some(n) = self.node_mut(ino) {
                n.nlink = n.nlink.saturating_sub(1);
                if n.nlink == 0 {
                    if let NodeKind::File { data } = &n.kind {
                        freed = data.len() as u64;
                    }
                }
            }
            self.bytes_used = self.bytes_used.saturating_sub(freed);
        }
        Some(ino)
    }

    /// Move a directory `ino` to live under `new_parent` as `name`.
    pub fn attach_dir(&mut self, new_parent: Ino, name: impl Into<Name>, ino: Ino) -> bool {
        let name = name.into();
        if self.lookup(new_parent, name).is_some() {
            return false;
        }
        match self.node_mut(new_parent).map(|n| &mut n.kind) {
            Some(NodeKind::Dir { entries, .. }) => {
                entries.insert(name, ino);
            }
            _ => return false,
        }
        if let Some(Node { kind: NodeKind::Dir { parent, .. }, .. }) = self.node_mut(ino) {
            *parent = Some(new_parent);
        }
        true
    }

    /// Read up to `count` bytes from a file at `offset`.
    pub fn read(&self, ino: Ino, offset: u64, count: usize) -> Vec<u8> {
        match self.node(ino).map(|n| &n.kind) {
            Some(NodeKind::File { data }) => {
                let start = (offset as usize).min(data.len());
                let end = start.saturating_add(count).min(data.len());
                data[start..end].to_vec()
            }
            _ => Vec::new(),
        }
    }

    /// Write `bytes` to a file at `offset`, updating the storage accounting.
    /// Returns the number of bytes written.
    pub fn write(&mut self, ino: Ino, offset: u64, bytes: &[u8]) -> usize {
        if bytes.is_empty() {
            // A zero-byte write has no effect — in particular it does not
            // zero-fill up to the offset (POSIX: "returns 0 and has no
            // other result"), which also keeps an extreme offset from
            // forcing a huge allocation.
            return 0;
        }
        let mut grown = 0u64;
        let written = match self.node_mut(ino).map(|n| &mut n.kind) {
            Some(NodeKind::File { data }) => {
                let off = offset as usize;
                let before = data.len();
                if data.len() < off {
                    data.resize(off, 0);
                }
                let end = off + bytes.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[off..end].copy_from_slice(bytes);
                grown = (data.len() - before) as u64;
                bytes.len()
            }
            _ => 0,
        };
        self.bytes_used += grown;
        written
    }

    /// The current size of a file.
    pub fn file_size(&self, ino: Ino) -> u64 {
        self.node(ino).map(|n| n.size()).unwrap_or(0)
    }

    /// Truncate (or zero-extend) a file to `len` bytes.
    pub fn truncate(&mut self, ino: Ino, len: u64) -> bool {
        let mut delta_grow = 0u64;
        let mut delta_shrink = 0u64;
        let ok = match self.node_mut(ino).map(|n| &mut n.kind) {
            Some(NodeKind::File { data }) => {
                let before = data.len() as u64;
                data.resize(len as usize, 0);
                if len > before {
                    delta_grow = len - before;
                } else {
                    delta_shrink = before - len;
                }
                true
            }
            _ => false,
        };
        self.bytes_used = self.bytes_used + delta_grow - delta_shrink.min(self.bytes_used);
        ok
    }

    /// The target text of a symlink (render boundary only).
    pub fn symlink_target(&self, ino: Ino) -> Option<&'static str> {
        self.symlink_target_parsed(ino).map(|t| t.as_str())
    }

    /// The pre-parsed target of a symlink: what the resolver splices.
    pub fn symlink_target_parsed(&self, ino: Ino) -> Option<&ParsedPath> {
        match self.node(ino).map(|n| &n.kind) {
            Some(NodeKind::Symlink { target }) => Some(target),
            _ => None,
        }
    }

    /// Deterministic path resolution relative to `cwd`.
    ///
    /// Intermediate symlinks are always followed; the final symlink is
    /// followed only when `follow_last` is true or the path carries a
    /// trailing slash. Returns single concrete errors (`ENOENT`, `ENOTDIR`,
    /// `ELOOP`, `ENAMETOOLONG`), the way a real kernel does.
    pub fn resolve(&self, cwd: Ino, path: &str, follow_last: bool) -> SimRes {
        self.resolve_parsed(cwd, &ParsedPath::parse(path), follow_last, None)
    }

    /// Path resolution over a pre-parsed path, with an optional
    /// search-permission check: `search` is consulted with the metadata of
    /// every directory traversed, and resolution fails with `EACCES` when it
    /// refuses (real kernels check execute permission on every path
    /// component). Shares the model's parse-time `ENAMETOOLONG` enforcement:
    /// the overlong-component index computed when the path was interned is
    /// consulted exactly where a kernel walking the path would notice.
    pub fn resolve_parsed(
        &self,
        cwd: Ino,
        path: &ParsedPath,
        follow_last: bool,
        search: Option<&dyn Fn(&NodeMeta) -> bool>,
    ) -> SimRes {
        if path.is_empty() {
            return SimRes::Error(Errno::ENOENT);
        }
        if path.exceeds_path_max() {
            return SimRes::Error(Errno::ENAMETOOLONG);
        }
        let start = if path.absolute { self.root } else { cwd };
        self.resolve_from(
            start,
            path.components(),
            path.first_overlong(),
            path.trailing_slash,
            follow_last,
            0,
            search,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_from(
        &self,
        start: Ino,
        comps: &[Name],
        overlong_at: Option<usize>,
        trailing: bool,
        follow_last: bool,
        depth: usize,
        search: Option<&dyn Fn(&NodeMeta) -> bool>,
    ) -> SimRes {
        if depth > 40 {
            return SimRes::Error(Errno::ELOOP);
        }
        let mut cur = start;
        let mut idx = 0;
        while idx < comps.len() {
            let comp = comps[idx];
            let is_last = idx + 1 == comps.len();
            if overlong_at == Some(idx) {
                return SimRes::Error(Errno::ENAMETOOLONG);
            }
            if let Some(check) = search {
                if let Some(meta) = self.node(cur).map(|n| n.meta) {
                    if !check(&meta) {
                        return SimRes::Error(Errno::EACCES);
                    }
                }
            }
            if comp == Name::DOT {
                idx += 1;
                continue;
            }
            if comp == Name::DOTDOT {
                if cur == self.root {
                    idx += 1;
                    continue;
                }
                match self.parent_of(cur) {
                    Some(p) => {
                        cur = p;
                        idx += 1;
                        continue;
                    }
                    None => return SimRes::Error(Errno::ENOENT),
                }
            }
            match self.lookup(cur, comp) {
                None => {
                    if is_last {
                        return SimRes::Missing {
                            parent: cur,
                            name: comp,
                            trailing_slash: trailing,
                        };
                    }
                    return SimRes::Error(Errno::ENOENT);
                }
                Some(ino) => {
                    let node = self.node(ino).expect("entry points at a live inode");
                    match &node.kind {
                        NodeKind::Dir { .. } => {
                            if is_last {
                                return SimRes::Dir {
                                    ino,
                                    parent: Some((cur, comp)),
                                };
                            }
                            cur = ino;
                            idx += 1;
                        }
                        NodeKind::Symlink { target } => {
                            let follow = !is_last || follow_last || trailing;
                            if !follow {
                                return SimRes::NonDir {
                                    parent: cur,
                                    name: comp,
                                    ino,
                                    trailing_slash: trailing,
                                };
                            }
                            if target.is_empty() {
                                return SimRes::Error(Errno::ENOENT);
                            }
                            let tstart = if target.absolute { self.root } else { cur };
                            // Shares the model resolver's splice + overlong
                            // re-base, so ENAMETOOLONG placement cannot drift
                            // between sim and model.
                            let (spliced, spliced_overlong, new_trailing) =
                                target.splice_into(comps, idx, overlong_at, trailing);
                            return self.resolve_from(
                                tstart,
                                &spliced,
                                spliced_overlong,
                                new_trailing,
                                follow_last,
                                depth + 1,
                                search,
                            );
                        }
                        NodeKind::File { .. } => {
                            if !is_last {
                                return SimRes::Error(Errno::ENOTDIR);
                            }
                            return SimRes::NonDir {
                                parent: cur,
                                name: comp,
                                ino,
                                trailing_slash: trailing,
                            };
                        }
                    }
                }
            }
        }
        SimRes::Dir { ino: cur, parent: None }
    }
}

impl Default for MemFs {
    fn default() -> Self {
        MemFs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> NodeMeta {
        NodeMeta { mode: 0o755, uid: 0, gid: 0 }
    }

    #[test]
    fn create_lookup_remove_cycle() {
        let mut fs = MemFs::new();
        let root = fs.root();
        let d = fs.create(root, "d", NodeKind::Dir { entries: BTreeMap::new(), parent: None }, meta()).unwrap();
        let f = fs.create(d, "f", NodeKind::File { data: b"abc".to_vec() }, meta()).unwrap();
        assert_eq!(fs.lookup(root, "d"), Some(d));
        assert_eq!(fs.lookup(d, "f"), Some(f));
        assert_eq!(fs.dir_nlink(root), 3);
        assert!(fs.remove_entry(d, "f", true).is_some());
        assert!(fs.lookup(d, "f").is_none());
    }

    #[test]
    fn storage_accounting_tracks_writes_and_unlinks() {
        let mut fs = MemFs::new();
        let root = fs.root();
        let f = fs.create(root, "f", NodeKind::File { data: Vec::new() }, meta()).unwrap();
        assert_eq!(fs.write(f, 0, &[1u8; 100]), 100);
        assert_eq!(fs.bytes_used, 100);
        // Overwrite does not grow the accounting.
        assert_eq!(fs.write(f, 0, &[2u8; 50]), 50);
        assert_eq!(fs.bytes_used, 100);
        fs.remove_entry(root, "f", true);
        assert_eq!(fs.bytes_used, 0);
    }

    #[test]
    fn leaky_remove_keeps_storage_accounted() {
        let mut fs = MemFs::new();
        let root = fs.root();
        let f = fs.create(root, "f", NodeKind::File { data: Vec::new() }, meta()).unwrap();
        fs.write(f, 0, &[1u8; 64]);
        // Simulate the posixovl defect: entry removed without decrementing.
        fs.remove_entry(root, "f", false);
        assert_eq!(fs.bytes_used, 64);
        assert_eq!(fs.node(f).unwrap().nlink, 1);
    }

    #[test]
    fn resolution_modes() {
        let mut fs = MemFs::new();
        let root = fs.root();
        let d = fs.create(root, "d", NodeKind::Dir { entries: BTreeMap::new(), parent: None }, meta()).unwrap();
        let f = fs.create(d, "f", NodeKind::File { data: Vec::new() }, meta()).unwrap();
        fs.create(root, "s", NodeKind::Symlink { target: "d".into() }, meta()).unwrap();
        fs.create(root, "loop", NodeKind::Symlink { target: "loop".into() }, meta()).unwrap();

        assert!(matches!(fs.resolve(root, "/d", true), SimRes::Dir { ino, .. } if ino == d));
        assert!(matches!(fs.resolve(root, "/d/f", true), SimRes::NonDir { ino, .. } if ino == f));
        assert!(matches!(fs.resolve(root, "/d/missing", true), SimRes::Missing { .. }));
        assert_eq!(fs.resolve(root, "/missing/x", true), SimRes::Error(Errno::ENOENT));
        assert_eq!(fs.resolve(root, "/d/f/x", true), SimRes::Error(Errno::ENOTDIR));
        assert!(matches!(fs.resolve(root, "/s", true), SimRes::Dir { ino, .. } if ino == d));
        assert!(matches!(fs.resolve(root, "/s", false), SimRes::NonDir { .. }));
        assert!(matches!(fs.resolve(root, "/s/", false), SimRes::Dir { ino, .. } if ino == d));
        assert_eq!(fs.resolve(root, "/loop", true), SimRes::Error(Errno::ELOOP));
        // Relative resolution from a subdirectory.
        assert!(matches!(fs.resolve(d, "f", true), SimRes::NonDir { .. }));
        assert!(matches!(fs.resolve(d, "..", true), SimRes::Dir { ino, parent: None } if ino == root));
    }

    #[test]
    fn disconnection_is_detected() {
        let mut fs = MemFs::new();
        let root = fs.root();
        let d = fs.create(root, "d", NodeKind::Dir { entries: BTreeMap::new(), parent: None }, meta()).unwrap();
        assert!(fs.is_connected(d));
        fs.remove_entry(root, "d", true);
        assert!(!fs.is_connected(d));
        assert_eq!(fs.parent_of(d), None);
    }
}
