//! Behaviour profiles for the simulated file systems under test.
//!
//! The paper surveys ~40 real system configurations (combinations of OS,
//! file system, libc, and mount options) whose externally visible behaviour
//! differs in the choice of error codes, platform conventions, and outright
//! defects (§7.3). Because the oracle only ever observes the libc-level trace,
//! a simulated implementation that makes the same concrete choices — and has
//! the same bugs — exercises exactly the same checker code paths. Each
//! [`BehaviorProfile`] captures one configuration's choices.

use serde::{Deserialize, Serialize};

use sibylfs_core::errno::Errno;
use sibylfs_core::flavor::Flavor;

/// The order in which `readdir` returns directory entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReaddirOrder {
    /// Lexicographically sorted (e.g. tmpfs-like behaviour).
    Sorted,
    /// Reverse-sorted (stands in for hash-ordered on-disk layouts).
    Reverse,
    /// Insertion order (stands in for log-structured layouts).
    Insertion,
}

/// The externally visible behaviour of one file-system configuration.
///
/// Fields are grouped as: identity, error-code choices, platform conventions,
/// feature limitations, injected defects (each corresponding to a finding in
/// §7.3 of the paper), and mount-option effects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorProfile {
    /// Configuration name, e.g. `"linux/ext4"`.
    pub name: String,
    /// The operating system the configuration runs on (and hence the flavour
    /// of the specification it is expected to conform to).
    pub platform: Flavor,
    /// Free-text description shown in survey reports.
    pub description: String,

    // --- Error-code choices -------------------------------------------------
    /// Errno returned when `unlink` is applied to a directory.
    pub unlink_dir_errno: Errno,
    /// Errno returned when `rename` targets a non-empty directory.
    pub rename_nonempty_errno: Errno,
    /// Errno returned when attempting to rename or remove the root directory.
    pub rename_root_errno: Errno,
    /// Errno returned when a path names an existing file but carries a
    /// trailing slash.
    pub trailing_slash_file_errno: Errno,
    /// Errno returned by `open(O_CREAT)` when the final component is missing
    /// and the path carries a trailing slash.
    pub open_creat_trailing_slash_errno: Errno,

    // --- Platform conventions ----------------------------------------------
    /// Whether `link` follows a symlink source (OS X) or links the symlink
    /// itself (Linux).
    pub link_follows_symlink: bool,
    /// Whether `pwrite` on an `O_APPEND` descriptor ignores the offset and
    /// appends (the Linux convention, §7.3.3).
    pub pwrite_append_ignores_offset: bool,
    /// The mode bits reported for symlinks.
    pub symlink_mode: u32,
    /// Whether a zero-length `write` on a bad descriptor returns 0 rather
    /// than `EBADF`.
    pub zero_write_bad_fd_returns_zero: bool,
    /// `readdir` ordering.
    pub readdir_order: ReaddirOrder,

    // --- Feature limitations -------------------------------------------------
    /// Whether directory link counts are maintained (`false` for Btrfs,
    /// SSHFS, Linux HFS+ — §7.3.2 "Core behaviour").
    pub supports_dir_nlink: bool,
    /// Whether regular-file link counts are maintained (`false` for
    /// SSHFS/SFTP).
    pub supports_file_nlink: bool,
    /// Whether `chmod` is supported (`false` returns `EOPNOTSUPP`, as in the
    /// Ubuntu "Trusty" Linux HFS+ defect, §7.3.4).
    pub chmod_supported: bool,
    /// Errno returned when creating a hard link to a symlink, if the
    /// configuration refuses (Linux HFS+ returns `EPERM`, §7.3.2).
    pub link_to_symlink_errno: Option<Errno>,

    // --- Injected defects (each reproduces a §7.3 finding) ------------------
    /// OS X VFS `pwrite` integer underflow: a negative offset is interpreted
    /// as a huge positive value and the process is killed by `SIGXFSZ`
    /// instead of receiving `EINVAL` (§7.3.4). Simulated as an `EFBIG` error
    /// return, which the oracle flags because only `EINVAL` is allowed.
    pub pwrite_negative_offset_underflow: bool,
    /// OpenZFS-on-Linux 0.6.3: `O_APPEND` descriptors do not seek to the end
    /// before `write`/`pwrite`, overwriting data (§7.3.4).
    pub o_append_ignored: bool,
    /// posixovl/VFAT: certain `rename` patterns fail to decrement the hard
    /// link count, leaking storage until the volume reports `ENOSPC` even
    /// when empty (§7.3.5).
    pub rename_link_count_leak: bool,
    /// FreeBSD: `open(O_CREAT|O_DIRECTORY|O_EXCL)` on a symlink to a
    /// directory returns `ENOTDIR` *and* replaces the symlink with a new
    /// file, violating the invariant that failing calls leave the state
    /// unchanged (§7.3.2 "Invariants").
    pub creat_excl_symlink_replaces: bool,
    /// OpenZFS on OS X: creating a file inside a deleted working directory
    /// succeeds (and in the real system sends the process into an unkillable
    /// spin, Fig. 8). Simulated as an incorrect success where the oracle
    /// requires `ENOENT`.
    pub create_in_deleted_cwd_succeeds: bool,
    /// SSHFS: renaming over a non-empty directory reports `EPERM` (observed
    /// in the paper's worked example, Fig. 4) instead of
    /// `EEXIST`/`ENOTEMPTY`.
    pub rename_nonempty_eperm: bool,

    // --- Mount-option effects (the SSHFS administrator scenario, §7.3.4) ----
    /// Newly created objects are owned by the mount owner (root) regardless
    /// of the calling process.
    pub creation_owner_root: bool,
    /// Permission bits are not enforced at all (SSHFS `allow_other` without
    /// `default_permissions`).
    pub permissions_not_enforced: bool,
    /// The process umask is bitwise-ORed with this value on every creation
    /// (SSHFS without a `umask` mount option: forced 0o022).
    pub forced_umask_or: Option<u32>,
    /// The process umask is ignored entirely (SSHFS with `umask=0000`).
    pub umask_ignored: bool,

    /// Total storage capacity in bytes, if the configuration models a small
    /// volume (used by the posixovl leak scenario); `None` means unlimited.
    pub capacity_bytes: Option<u64>,
}

impl BehaviorProfile {
    /// A well-behaved baseline for the given platform, from which the named
    /// configurations are derived by overriding individual fields.
    pub fn baseline(name: &str, platform: Flavor) -> BehaviorProfile {
        let linux = platform == Flavor::Linux;
        BehaviorProfile {
            name: name.to_string(),
            platform,
            description: String::new(),
            unlink_dir_errno: if linux { Errno::EISDIR } else { Errno::EPERM },
            rename_nonempty_errno: Errno::ENOTEMPTY,
            rename_root_errno: if platform == Flavor::Mac { Errno::EISDIR } else { Errno::EBUSY },
            trailing_slash_file_errno: Errno::ENOTDIR,
            open_creat_trailing_slash_errno: if linux { Errno::EISDIR } else { Errno::ENOENT },
            link_follows_symlink: !linux,
            pwrite_append_ignores_offset: linux,
            symlink_mode: if linux { 0o777 } else { 0o755 },
            zero_write_bad_fd_returns_zero: linux,
            readdir_order: ReaddirOrder::Sorted,
            supports_dir_nlink: true,
            supports_file_nlink: true,
            chmod_supported: true,
            link_to_symlink_errno: None,
            pwrite_negative_offset_underflow: false,
            o_append_ignored: false,
            rename_link_count_leak: false,
            creat_excl_symlink_replaces: false,
            create_in_deleted_cwd_succeeds: false,
            rename_nonempty_eperm: false,
            creation_owner_root: false,
            permissions_not_enforced: false,
            forced_umask_or: None,
            umask_ignored: false,
            capacity_bytes: None,
        }
    }

    /// Set the human-readable description (builder style).
    pub fn describe(mut self, text: &str) -> BehaviorProfile {
        self.description = text.to_string();
        self
    }

    /// Whether this profile contains any injected defect.
    pub fn has_defect(&self) -> bool {
        self.pwrite_negative_offset_underflow
            || self.o_append_ignored
            || self.rename_link_count_leak
            || self.creat_excl_symlink_replaces
            || self.create_in_deleted_cwd_succeeds
            || self.rename_nonempty_eperm
            || !self.chmod_supported
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_platform_conventions() {
        let linux = BehaviorProfile::baseline("linux/test", Flavor::Linux);
        assert_eq!(linux.unlink_dir_errno, Errno::EISDIR);
        assert!(linux.pwrite_append_ignores_offset);
        assert_eq!(linux.symlink_mode, 0o777);
        assert!(!linux.link_follows_symlink);

        let mac = BehaviorProfile::baseline("mac/test", Flavor::Mac);
        assert_eq!(mac.unlink_dir_errno, Errno::EPERM);
        assert!(!mac.pwrite_append_ignores_offset);
        assert_eq!(mac.rename_root_errno, Errno::EISDIR);
        assert!(mac.link_follows_symlink);
    }

    #[test]
    fn baseline_has_no_defects() {
        for flavor in [Flavor::Linux, Flavor::Mac, Flavor::FreeBsd] {
            assert!(!BehaviorProfile::baseline("x", flavor).has_defect());
        }
    }
}
