//! The registry of named file-system configurations surveyed by the
//! reproduction.
//!
//! Each configuration corresponds to one of the OS/file-system/mount-option
//! combinations the paper tested (§7); the defective ones reproduce the
//! specific findings of §7.3. The names follow a `platform/filesystem`
//! convention (with a suffix for mount options or distribution versions).

use sibylfs_core::errno::Errno;
use sibylfs_core::flavor::Flavor;

use crate::behavior::{BehaviorProfile, ReaddirOrder};

/// All registered configurations.
pub fn all_configs() -> Vec<BehaviorProfile> {
    let mut v = Vec::new();

    // --- Linux: the "standard" well-behaved family ---------------------------
    for fs in ["ext2", "ext3", "ext4", "tmpfs", "xfs", "f2fs"] {
        v.push(
            BehaviorProfile::baseline(&format!("linux/{fs}"), Flavor::Linux)
                .describe("standard Linux file system (glibc, kernel 3.19)"),
        );
    }
    // A musl-libc variation of ext4 (identical file-system behaviour; present
    // so the survey covers a libc axis as the paper does).
    v.push(
        BehaviorProfile::baseline("linux/ext4-musl", Flavor::Linux)
            .describe("ext4 with the musl libc"),
    );

    // Btrfs: no directory link counts (§7.3.2 "Core behaviour").
    let mut btrfs = BehaviorProfile::baseline("linux/btrfs", Flavor::Linux)
        .describe("Btrfs: directory link counts are not maintained");
    btrfs.supports_dir_nlink = false;
    btrfs.readdir_order = ReaddirOrder::Insertion;
    v.push(btrfs);

    // MINIX / NILFS2: well-behaved but with different readdir ordering.
    let mut minix = BehaviorProfile::baseline("linux/minix", Flavor::Linux)
        .describe("MINIX fs: insertion-ordered directory listings");
    minix.readdir_order = ReaddirOrder::Insertion;
    v.push(minix);
    let mut nilfs = BehaviorProfile::baseline("linux/nilfs2", Flavor::Linux)
        .describe("NILFS2: log-structured, reverse-ordered directory listings");
    nilfs.readdir_order = ReaddirOrder::Reverse;
    v.push(nilfs);

    // NFS over tmpfs: well-behaved for the scope we test.
    v.push(
        BehaviorProfile::baseline("linux/nfsv3-tmpfs", Flavor::Linux)
            .describe("NFSv3 export of tmpfs"),
    );
    v.push(
        BehaviorProfile::baseline("linux/nfsv4-tmpfs", Flavor::Linux)
            .describe("NFSv4 export of tmpfs"),
    );
    v.push(
        BehaviorProfile::baseline("linux/fusexmp-tmpfs", Flavor::Linux)
            .describe("FUSE pass-through (fusexmp) backed by tmpfs"),
    );
    v.push(
        BehaviorProfile::baseline("linux/bind-tmpfs", Flavor::Linux)
            .describe("bind mount of tmpfs"),
    );
    v.push(
        BehaviorProfile::baseline("linux/overlay-tmpfs-ext4", Flavor::Linux)
            .describe("overlayfs with tmpfs upper and ext4 lower"),
    );
    v.push(
        BehaviorProfile::baseline("linux/aufs-tmpfs-ext4", Flavor::Linux)
            .describe("aufs with tmpfs and ext4 branches"),
    );
    v.push(
        BehaviorProfile::baseline("linux/glusterfs-xfs", Flavor::Linux)
            .describe("GlusterFS single-brick volume on XFS"),
    );

    // Linux HFS+: hard links to symlinks refused, no dir link counts.
    let mut hfs_linux = BehaviorProfile::baseline("linux/hfsplus", Flavor::Linux)
        .describe("HFS+ on Linux: EPERM for hard links to symlinks");
    hfs_linux.link_to_symlink_errno = Some(Errno::EPERM);
    hfs_linux.supports_dir_nlink = false;
    v.push(hfs_linux);

    // Linux HFS+ on Ubuntu Trusty 3.13: chmod unsupported (§7.3.4).
    let mut hfs_trusty = BehaviorProfile::baseline("linux/hfsplus-trusty", Flavor::Linux)
        .describe("HFS+ on Ubuntu Trusty 3.13: chmod returns EOPNOTSUPP");
    hfs_trusty.link_to_symlink_errno = Some(Errno::EPERM);
    hfs_trusty.supports_dir_nlink = false;
    hfs_trusty.chmod_supported = false;
    v.push(hfs_trusty);

    // SSHFS over tmpfs: no link counts, EPERM on rename over non-empty dir,
    // root-owned creations, forced umask (§7.3.4).
    let mut sshfs = BehaviorProfile::baseline("linux/sshfs-tmpfs", Flavor::Linux)
        .describe("SSHFS backed by tmpfs: SFTP protocol limitations");
    sshfs.supports_dir_nlink = false;
    sshfs.supports_file_nlink = false;
    sshfs.rename_nonempty_eperm = true;
    sshfs.creation_owner_root = true;
    sshfs.forced_umask_or = Some(0o022);
    v.push(sshfs);

    // SSHFS mount-option variants for the administrator scenario (§7.3.4).
    let mut sshfs_allow = BehaviorProfile::baseline("linux/sshfs-allow-other", Flavor::Linux)
        .describe("SSHFS with allow_other only: permissions not enforced");
    sshfs_allow.supports_dir_nlink = false;
    sshfs_allow.supports_file_nlink = false;
    sshfs_allow.rename_nonempty_eperm = true;
    sshfs_allow.creation_owner_root = true;
    sshfs_allow.permissions_not_enforced = true;
    sshfs_allow.forced_umask_or = Some(0o022);
    v.push(sshfs_allow);

    let mut sshfs_defperm =
        BehaviorProfile::baseline("linux/sshfs-allow-other-default-permissions", Flavor::Linux)
            .describe("SSHFS with allow_other,default_permissions: permissions enforced, root-owned creations");
    sshfs_defperm.supports_dir_nlink = false;
    sshfs_defperm.supports_file_nlink = false;
    sshfs_defperm.rename_nonempty_eperm = true;
    sshfs_defperm.creation_owner_root = true;
    sshfs_defperm.forced_umask_or = Some(0o022);
    v.push(sshfs_defperm);

    let mut sshfs_umask = BehaviorProfile::baseline("linux/sshfs-umask0000", Flavor::Linux)
        .describe("SSHFS with umask=0000: the process umask is ignored entirely");
    sshfs_umask.supports_dir_nlink = false;
    sshfs_umask.supports_file_nlink = false;
    sshfs_umask.rename_nonempty_eperm = true;
    sshfs_umask.creation_owner_root = true;
    sshfs_umask.umask_ignored = true;
    v.push(sshfs_umask);

    // posixovl over VFAT: the storage leak (§7.3.5), on a small volume.
    let mut posixovl = BehaviorProfile::baseline("linux/posixovl-vfat", Flavor::Linux)
        .describe("posixovl over VFAT: rename leaks hard-link counts and storage");
    posixovl.rename_link_count_leak = true;
    posixovl.capacity_bytes = Some(256 * 1024);
    v.push(posixovl);

    // posixovl over NTFS-3G: same overlay, larger volume, no leak observed.
    v.push(
        BehaviorProfile::baseline("linux/posixovl-ntfs3g", Flavor::Linux)
            .describe("posixovl over NTFS-3G"),
    );

    // OpenZFS on Linux, current and the defective 0.6.3 (§7.3.4).
    v.push(
        BehaviorProfile::baseline("linux/openzfs", Flavor::Linux).describe("OpenZFS on Linux"),
    );
    let mut zfs_old = BehaviorProfile::baseline("linux/openzfs-trusty", Flavor::Linux)
        .describe("OpenZFS 0.6.3 on Ubuntu Trusty: O_APPEND does not seek to end of file");
    zfs_old.o_append_ignored = true;
    v.push(zfs_old);

    // --- OS X -----------------------------------------------------------------
    let mut mac_hfs = BehaviorProfile::baseline("mac/hfsplus", Flavor::Mac)
        .describe("OS X 10.9.5 HFS+: VFS pwrite negative-offset underflow");
    mac_hfs.pwrite_negative_offset_underflow = true;
    v.push(mac_hfs);

    v.push(
        BehaviorProfile::baseline("mac/nfsv3-hfsplus", Flavor::Mac)
            .describe("NFSv3 export of HFS+ on OS X"),
    );
    v.push(
        BehaviorProfile::baseline("mac/fusexmp-hfsplus", Flavor::Mac)
            .describe("FUSE pass-through on OS X"),
    );
    let mut mac_sshfs = BehaviorProfile::baseline("mac/sshfs-hfsplus", Flavor::Mac)
        .describe("SSHFS on OS X backed by HFS+");
    mac_sshfs.supports_file_nlink = false;
    mac_sshfs.rename_nonempty_eperm = true;
    v.push(mac_sshfs);
    v.push(
        BehaviorProfile::baseline("mac/fuse-ext2", Flavor::Mac).describe("fuse-ext2 on OS X"),
    );
    v.push(
        BehaviorProfile::baseline("mac/paragon-extfs", Flavor::Mac)
            .describe("Paragon ExtFS on OS X"),
    );

    // OpenZFS on OS X: the disconnected-directory spin (Fig. 8) plus the VFS
    // pwrite underflow it inherits from the OS X VFS layer.
    let mut mac_zfs = BehaviorProfile::baseline("mac/openzfs", Flavor::Mac)
        .describe("OpenZFS 1.3.0 on OS X 10.9.5: unkillable spin in a deleted cwd");
    mac_zfs.create_in_deleted_cwd_succeeds = true;
    mac_zfs.pwrite_negative_offset_underflow = true;
    v.push(mac_zfs);

    // --- FreeBSD ----------------------------------------------------------------
    let mut ufs = BehaviorProfile::baseline("freebsd/ufs", Flavor::FreeBsd)
        .describe("FreeBSD ufs: O_CREAT|O_EXCL on a symlink replaces it and returns ENOTDIR");
    ufs.creat_excl_symlink_replaces = true;
    v.push(ufs);
    let mut bsd_tmpfs = BehaviorProfile::baseline("freebsd/tmpfs", Flavor::FreeBsd)
        .describe("FreeBSD tmpfs");
    bsd_tmpfs.creat_excl_symlink_replaces = true;
    v.push(bsd_tmpfs);

    v
}

/// Look up a configuration by name.
pub fn by_name(name: &str) -> Option<BehaviorProfile> {
    all_configs().into_iter().find(|c| c.name == name)
}

/// The names of all registered configurations.
pub fn config_names() -> Vec<String> {
    all_configs().into_iter().map(|c| c.name).collect()
}

/// The "reference" well-behaved configuration for each platform, used by
/// quick-start examples and benchmarks.
pub fn reference_for(flavor: Flavor) -> BehaviorProfile {
    match flavor {
        Flavor::Linux | Flavor::Posix => by_name("linux/tmpfs").expect("registered"),
        Flavor::Mac => by_name("mac/hfsplus").expect("registered"),
        Flavor::FreeBsd => by_name("freebsd/tmpfs").expect("registered"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_large_and_unique() {
        let names = config_names();
        assert!(names.len() >= 30, "expected a broad survey, got {}", names.len());
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate configuration names");
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for name in config_names() {
            let c = by_name(&name).unwrap();
            assert_eq!(c.name, name);
            assert!(!c.description.is_empty(), "{name} needs a description");
        }
        assert!(by_name("plan9/fossil").is_none());
    }

    #[test]
    fn defective_configs_are_flagged() {
        for name in [
            "linux/posixovl-vfat",
            "linux/openzfs-trusty",
            "linux/hfsplus-trusty",
            "mac/hfsplus",
            "mac/openzfs",
            "freebsd/ufs",
            "linux/sshfs-tmpfs",
        ] {
            assert!(by_name(name).unwrap().has_defect(), "{name} should report a defect");
        }
        assert!(!by_name("linux/ext4").unwrap().has_defect());
    }

    #[test]
    fn platform_distribution_covers_all_three_operating_systems() {
        let configs = all_configs();
        for flavor in [Flavor::Linux, Flavor::Mac, Flavor::FreeBsd] {
            assert!(configs.iter().any(|c| c.platform == flavor), "missing {flavor}");
        }
    }
}
