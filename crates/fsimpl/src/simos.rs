//! The simulated operating system: processes, descriptors, and the concrete,
//! deterministic implementation of every libc call in the model's scope,
//! parameterised by a [`BehaviorProfile`].
//!
//! Where the specification describes an *envelope* of allowed behaviour, this
//! implementation makes one concrete choice per situation — exactly like a
//! real kernel + file system — and, for the profiles that model the defective
//! configurations of §7.3, deliberately makes the *wrong* choice so that the
//! oracle can flag it.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue, Stat};
use sibylfs_core::errno::Errno;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::intern::Name;
use sibylfs_core::path::ParsedPath;
use sibylfs_core::types::{DirHandleId, Fd, FileKind, Gid, Pid, Uid, MAX_FILE_SIZE};

use crate::behavior::{BehaviorProfile, ReaddirOrder};
use crate::memfs::{Ino, MemFs, NodeKind, NodeMeta, SimRes};

/// A per-process open file descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFd {
    /// The inode the descriptor refers to.
    pub ino: Ino,
    /// Current file offset.
    pub offset: u64,
    /// Open flags.
    pub flags: OpenFlags,
    /// Whether the descriptor is open on a directory.
    pub is_dir: bool,
}

/// A per-process open directory stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimDh {
    /// The directory being listed.
    pub dir: Ino,
    /// The snapshot of entry names (interned), in the order this
    /// configuration returns them; resolved back to text only when a
    /// `readdir` return value is produced.
    pub entries: Vec<Name>,
    /// The position of the next entry to return.
    pub pos: usize,
}

/// Per-process state of the simulated OS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimProc {
    /// Current working directory.
    pub cwd: Ino,
    /// File-creation mask.
    pub umask: u32,
    /// Effective user id.
    pub euid: u32,
    /// Effective group id.
    pub egid: u32,
    /// Open file descriptors.
    pub fds: BTreeMap<i32, SimFd>,
    /// Open directory streams.
    pub dhs: BTreeMap<i32, SimDh>,
    next_fd: i32,
    next_dh: i32,
}

impl SimProc {
    fn new(cwd: Ino, euid: u32, egid: u32) -> SimProc {
        SimProc {
            cwd,
            umask: 0o022,
            euid,
            egid,
            fds: BTreeMap::new(),
            dhs: BTreeMap::new(),
            next_fd: 3,
            next_dh: 1,
        }
    }
}

/// What kind of access a permission check is asking about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Read,
    Write,
    Exec,
}

/// The simulated operating system and file system under test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOs {
    /// The behaviour profile of this configuration.
    pub profile: BehaviorProfile,
    /// The inode store.
    pub fs: MemFs,
    procs: BTreeMap<u32, SimProc>,
    groups: BTreeMap<u32, BTreeSet<u32>>,
}

impl SimOs {
    /// Create a fresh system with the given behaviour profile and no
    /// processes.
    pub fn new(profile: BehaviorProfile) -> SimOs {
        SimOs { profile, fs: MemFs::new(), procs: BTreeMap::new(), groups: BTreeMap::new() }
    }

    /// Create a process with the given credentials (cwd starts at the root).
    pub fn create_process(&mut self, pid: Pid, uid: Uid, gid: Gid) {
        let root = self.fs.root();
        self.procs.insert(pid.0, SimProc::new(root, uid.0, gid.0));
    }

    /// Destroy a process, closing everything it had open.
    pub fn destroy_process(&mut self, pid: Pid) {
        self.procs.remove(&pid.0);
    }

    /// Whether a process exists.
    pub fn has_process(&self, pid: Pid) -> bool {
        self.procs.contains_key(&pid.0)
    }

    /// Access the per-process state (for tests and the executor).
    pub fn proc(&self, pid: Pid) -> Option<&SimProc> {
        self.procs.get(&pid.0)
    }

    fn proc_mut(&mut self, pid: Pid) -> Option<&mut SimProc> {
        self.procs.get_mut(&pid.0)
    }

    fn in_group(&self, uid: u32, gid: u32, proc_egid: u32) -> bool {
        proc_egid == gid || self.groups.get(&gid).map(|s| s.contains(&uid)).unwrap_or(false)
    }

    fn allowed(&self, proc: &SimProc, meta: &NodeMeta, want: Want) -> bool {
        if self.profile.permissions_not_enforced || proc.euid == 0 {
            return true;
        }
        let (r, w, x) = if proc.euid == meta.uid {
            (0o400, 0o200, 0o100)
        } else if self.in_group(proc.euid, meta.gid, proc.egid) {
            (0o040, 0o020, 0o010)
        } else {
            (0o004, 0o002, 0o001)
        };
        let bit = match want {
            Want::Read => r,
            Want::Write => w,
            Want::Exec => x,
        };
        meta.mode & bit == bit
    }

    fn node_meta(&self, ino: Ino) -> NodeMeta {
        self.fs.node(ino).map(|n| n.meta).unwrap_or(NodeMeta { mode: 0, uid: 0, gid: 0 })
    }

    fn check_dir_writable(&self, proc: &SimProc, dir: Ino) -> Result<(), Errno> {
        let meta = self.node_meta(dir);
        if self.allowed(proc, &meta, Want::Write) && self.allowed(proc, &meta, Want::Exec) {
            Ok(())
        } else {
            Err(Errno::EACCES)
        }
    }

    /// The effective mode of a newly created object, after umask and mount
    /// options.
    fn creation_mode(&self, proc: &SimProc, requested: u32) -> u32 {
        let umask = if self.profile.umask_ignored {
            0
        } else if let Some(forced) = self.profile.forced_umask_or {
            proc.umask | forced
        } else {
            proc.umask
        };
        requested & !umask & 0o7777
    }

    /// The owner of newly created objects.
    fn creation_owner(&self, proc: &SimProc) -> (u32, u32) {
        if self.profile.creation_owner_root {
            (0, 0)
        } else {
            (proc.euid, proc.egid)
        }
    }

    fn capacity_exceeded(&self, extra: u64) -> bool {
        match self.profile.capacity_bytes {
            Some(cap) => self.fs.bytes_used.saturating_add(extra) > cap,
            None => false,
        }
    }

    fn stat_of(&self, ino: Ino) -> Stat {
        let node = self.fs.node(ino).expect("stat of a live inode");
        match &node.kind {
            NodeKind::Dir { .. } => Stat {
                kind: FileKind::Directory,
                size: 0,
                nlink: if self.profile.supports_dir_nlink { self.fs.dir_nlink(ino) } else { 1 },
                mode: FileMode::new(node.meta.mode),
                uid: Uid(node.meta.uid),
                gid: Gid(node.meta.gid),
            },
            NodeKind::File { data } => Stat {
                kind: FileKind::Regular,
                size: data.len() as u64,
                nlink: if self.profile.supports_file_nlink { node.nlink } else { 1 },
                mode: FileMode::new(node.meta.mode),
                uid: Uid(node.meta.uid),
                gid: Gid(node.meta.gid),
            },
            NodeKind::Symlink { target } => Stat {
                kind: FileKind::Symlink,
                size: target.raw_len() as u64,
                nlink: if self.profile.supports_file_nlink { node.nlink } else { 1 },
                mode: FileMode::new(self.profile.symlink_mode),
                uid: Uid(node.meta.uid),
                gid: Gid(node.meta.gid),
            },
        }
    }

    fn ordered_entries(&self, dir: Ino) -> Vec<Name> {
        match self.profile.readdir_order {
            ReaddirOrder::Sorted => self.fs.entries(dir),
            ReaddirOrder::Reverse => {
                let mut e = self.fs.entries(dir);
                e.reverse();
                e
            }
            ReaddirOrder::Insertion => {
                let mut e = self.fs.entries_with_seq(dir);
                e.sort_by_key(|(_, seq)| *seq);
                e.into_iter().map(|(n, _)| n).collect()
            }
        }
    }

    /// Execute one libc call on behalf of `pid`, returning what the real
    /// system reports.
    pub fn call(&mut self, pid: Pid, cmd: &OsCommand) -> ErrorOrValue {
        if !self.has_process(pid) {
            return ErrorOrValue::Error(Errno::EINVAL);
        }
        match cmd {
            OsCommand::Mkdir(path, mode) => self.do_mkdir(pid, path, mode.bits()),
            OsCommand::Rmdir(path) => self.do_rmdir(pid, path),
            OsCommand::Chdir(path) => self.do_chdir(pid, path),
            OsCommand::Unlink(path) => self.do_unlink(pid, path),
            OsCommand::Truncate(path, len) => self.do_truncate(pid, path, *len),
            OsCommand::Stat(path) => self.do_stat(pid, path, true),
            OsCommand::Lstat(path) => self.do_stat(pid, path, false),
            OsCommand::Link(src, dst) => self.do_link(pid, src, dst),
            OsCommand::Symlink(target, path) => self.do_symlink(pid, target, path),
            OsCommand::Readlink(path) => self.do_readlink(pid, path),
            OsCommand::Rename(src, dst) => self.do_rename(pid, src, dst),
            OsCommand::Open(path, flags, mode) => self.do_open(pid, path, *flags, *mode),
            OsCommand::Close(fd) => self.do_close(pid, *fd),
            OsCommand::Lseek(fd, off, whence) => self.do_lseek(pid, *fd, *off, *whence),
            OsCommand::Read(fd, count) => self.do_read(pid, *fd, *count, None),
            OsCommand::Pread(fd, count, off) => self.do_read(pid, *fd, *count, Some(*off)),
            OsCommand::Write(fd, data) => self.do_write(pid, *fd, data, None),
            OsCommand::Pwrite(fd, data, off) => self.do_write(pid, *fd, data, Some(*off)),
            OsCommand::Chmod(path, mode) => self.do_chmod(pid, path, mode.bits()),
            OsCommand::Chown(path, uid, gid) => self.do_chown(pid, path, uid.0, gid.0),
            OsCommand::Umask(mask) => self.do_umask(pid, mask.bits()),
            OsCommand::AddUserToGroup(uid, gid) => {
                self.groups.entry(gid.0).or_default().insert(uid.0);
                ErrorOrValue::Value(RetValue::None)
            }
            OsCommand::Opendir(path) => self.do_opendir(pid, path),
            OsCommand::Readdir(dh) => self.do_readdir(pid, *dh),
            OsCommand::Rewinddir(dh) => self.do_rewinddir(pid, *dh),
            OsCommand::Closedir(dh) => self.do_closedir(pid, *dh),
        }
    }

    fn resolve(&self, pid: Pid, path: &ParsedPath, follow_last: bool) -> SimRes {
        let Some(proc) = self.procs.get(&pid.0) else {
            return SimRes::Error(Errno::EINVAL);
        };
        let cwd = proc.cwd;
        if self.profile.permissions_not_enforced || proc.euid == 0 {
            return self.fs.resolve_parsed(cwd, path, follow_last, None);
        }
        let proc = proc.clone();
        let check = |meta: &NodeMeta| self.allowed(&proc, meta, Want::Exec);
        self.fs.resolve_parsed(cwd, path, follow_last, Some(&check))
    }

    // --- directories ---------------------------------------------------------

    fn do_mkdir(&mut self, pid: Pid, path: &ParsedPath, mode: u32) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        match self.resolve(pid, path, false) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Dir { .. } => ErrorOrValue::Error(Errno::EEXIST),
            SimRes::NonDir { .. } => ErrorOrValue::Error(Errno::EEXIST),
            SimRes::Missing { parent, name, .. } => {
                if !self.fs.is_connected(parent) && !self.profile.create_in_deleted_cwd_succeeds {
                    return ErrorOrValue::Error(Errno::ENOENT);
                }
                if let Err(e) = self.check_dir_writable(&proc, parent) {
                    return ErrorOrValue::Error(e);
                }
                let (uid, gid) = self.creation_owner(&proc);
                let meta = NodeMeta { mode: self.creation_mode(&proc, mode), uid, gid };
                self.fs.create(
                    parent,
                    name,
                    NodeKind::Dir { entries: BTreeMap::new(), parent: None },
                    meta,
                );
                ErrorOrValue::Value(RetValue::None)
            }
        }
    }

    fn do_rmdir(&mut self, pid: Pid, path: &ParsedPath) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        if path.last_component() == Some(Name::DOT) {
            return ErrorOrValue::Error(Errno::EINVAL);
        }
        match self.resolve(pid, path, false) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::NonDir { .. } => ErrorOrValue::Error(Errno::ENOTDIR),
            SimRes::Dir { ino, parent } => {
                if ino == self.fs.root() {
                    // Removing the root is always refused with EBUSY (the
                    // OS X EISDIR quirk applies to *renaming* the root only).
                    return ErrorOrValue::Error(Errno::EBUSY);
                }
                let Some((pdir, name)) = parent else {
                    return ErrorOrValue::Error(Errno::EBUSY);
                };
                if !self.fs.dir_is_empty(ino) {
                    return ErrorOrValue::Error(self.profile.rename_nonempty_errno);
                }
                if let Err(e) = self.check_dir_writable(&proc, pdir) {
                    return ErrorOrValue::Error(e);
                }
                self.fs.remove_entry(pdir, name, true);
                ErrorOrValue::Value(RetValue::None)
            }
        }
    }

    fn do_chdir(&mut self, pid: Pid, path: &ParsedPath) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        match self.resolve(pid, path, true) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::NonDir { .. } => ErrorOrValue::Error(Errno::ENOTDIR),
            SimRes::Dir { ino, .. } => {
                let meta = self.node_meta(ino);
                if !self.allowed(&proc, &meta, Want::Exec) {
                    return ErrorOrValue::Error(Errno::EACCES);
                }
                self.proc_mut(pid).expect("process exists").cwd = ino;
                ErrorOrValue::Value(RetValue::None)
            }
        }
    }

    // --- files ---------------------------------------------------------------

    fn do_unlink(&mut self, pid: Pid, path: &ParsedPath) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        match self.resolve(pid, path, false) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { .. } => ErrorOrValue::Error(self.profile.unlink_dir_errno),
            SimRes::NonDir { parent, name, trailing_slash, .. } => {
                if trailing_slash {
                    return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                }
                if let Err(e) = self.check_dir_writable(&proc, parent) {
                    return ErrorOrValue::Error(e);
                }
                self.fs.remove_entry(parent, name, true);
                ErrorOrValue::Value(RetValue::None)
            }
        }
    }

    fn do_truncate(&mut self, pid: Pid, path: &ParsedPath, len: i64) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        if len < 0 {
            return ErrorOrValue::Error(Errno::EINVAL);
        }
        match self.resolve(pid, path, true) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { .. } => ErrorOrValue::Error(Errno::EISDIR),
            SimRes::NonDir { ino, trailing_slash, .. } => {
                if trailing_slash {
                    return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                }
                let meta = self.node_meta(ino);
                if !self.allowed(&proc, &meta, Want::Write) {
                    return ErrorOrValue::Error(Errno::EACCES);
                }
                if len > MAX_FILE_SIZE {
                    // Past the maximum file size (mirrors the model's limit,
                    // like a real fs's s_maxbytes): EFBIG, and the in-memory
                    // store never materializes a fuzzed multi-gigabyte file.
                    return ErrorOrValue::Error(Errno::EFBIG);
                }
                let cur = self.fs.file_size(ino);
                let grow = (len as u64).saturating_sub(cur);
                if self.capacity_exceeded(grow) {
                    return ErrorOrValue::Error(Errno::ENOSPC);
                }
                self.fs.truncate(ino, len as u64);
                ErrorOrValue::Value(RetValue::None)
            }
        }
    }

    fn do_stat(&mut self, pid: Pid, path: &ParsedPath, follow: bool) -> ErrorOrValue {
        match self.resolve(pid, path, follow) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { ino, .. } => {
                ErrorOrValue::Value(RetValue::Stat(Box::new(self.stat_of(ino))))
            }
            SimRes::NonDir { ino, trailing_slash, .. } => {
                let is_symlink = self.fs.node(ino).map(|n| n.is_symlink()).unwrap_or(false);
                if trailing_slash && !is_symlink {
                    return ErrorOrValue::Error(Errno::ENOTDIR);
                }
                ErrorOrValue::Value(RetValue::Stat(Box::new(self.stat_of(ino))))
            }
        }
    }

    // --- links ---------------------------------------------------------------

    fn do_link(&mut self, pid: Pid, src: &ParsedPath, dst: &ParsedPath) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        // Examine the source without following, to apply per-configuration
        // symlink handling.
        let src_nofollow = self.resolve(pid, src, false);
        if let SimRes::NonDir { ino, .. } = &src_nofollow {
            let is_symlink = self.fs.node(*ino).map(|n| n.is_symlink()).unwrap_or(false);
            if is_symlink {
                if let Some(e) = self.profile.link_to_symlink_errno {
                    return ErrorOrValue::Error(e);
                }
            }
        }
        let src_res = if self.profile.link_follows_symlink {
            self.resolve(pid, src, true)
        } else {
            src_nofollow
        };
        let src_ino = match src_res {
            SimRes::Error(e) => return ErrorOrValue::Error(e),
            SimRes::Missing { .. } => return ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { .. } => return ErrorOrValue::Error(Errno::EPERM),
            SimRes::NonDir { ino, trailing_slash, .. } => {
                if trailing_slash {
                    return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                }
                ino
            }
        };
        match self.resolve(pid, dst, false) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Dir { .. } => ErrorOrValue::Error(Errno::EEXIST),
            SimRes::NonDir { trailing_slash, .. } => {
                if trailing_slash {
                    // The Linux quirk surveyed in §7.3.2: the existence check
                    // fires before the trailing slash is noticed.
                    ErrorOrValue::Error(self.profile.trailing_slash_file_errno)
                } else {
                    ErrorOrValue::Error(Errno::EEXIST)
                }
            }
            SimRes::Missing { parent, name, trailing_slash } => {
                if trailing_slash {
                    return ErrorOrValue::Error(Errno::ENOENT);
                }
                if !self.fs.is_connected(parent) {
                    return ErrorOrValue::Error(Errno::ENOENT);
                }
                if let Err(e) = self.check_dir_writable(&proc, parent) {
                    return ErrorOrValue::Error(e);
                }
                self.fs.add_link(parent, name, src_ino);
                ErrorOrValue::Value(RetValue::None)
            }
        }
    }

    fn do_symlink(&mut self, pid: Pid, target: &ParsedPath, path: &ParsedPath) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        match self.resolve(pid, path, false) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Dir { .. } | SimRes::NonDir { .. } => ErrorOrValue::Error(Errno::EEXIST),
            SimRes::Missing { parent, name, trailing_slash } => {
                if trailing_slash || target.is_empty() {
                    return ErrorOrValue::Error(Errno::ENOENT);
                }
                if !self.fs.is_connected(parent) && !self.profile.create_in_deleted_cwd_succeeds {
                    return ErrorOrValue::Error(Errno::ENOENT);
                }
                if let Err(e) = self.check_dir_writable(&proc, parent) {
                    return ErrorOrValue::Error(e);
                }
                let (uid, gid) = self.creation_owner(&proc);
                let meta = NodeMeta { mode: self.profile.symlink_mode, uid, gid };
                self.fs.create(parent, name, NodeKind::Symlink { target: target.clone() }, meta);
                ErrorOrValue::Value(RetValue::None)
            }
        }
    }

    fn do_readlink(&mut self, pid: Pid, path: &ParsedPath) -> ErrorOrValue {
        match self.resolve(pid, path, false) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { .. } => ErrorOrValue::Error(Errno::EINVAL),
            SimRes::NonDir { ino, .. } => match self.fs.symlink_target(ino) {
                Some(t) => ErrorOrValue::Value(RetValue::Path(t.to_string())),
                None => ErrorOrValue::Error(Errno::EINVAL),
            },
        }
    }

    // --- rename ---------------------------------------------------------------

    fn do_rename(&mut self, pid: Pid, src: &ParsedPath, dst: &ParsedPath) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        for p in [src, dst] {
            if p.ends_in_dot() {
                return ErrorOrValue::Error(Errno::EINVAL);
            }
        }
        let src_res = self.resolve(pid, src, false);
        let dst_res = self.resolve(pid, dst, false);

        // Same-object rename is a no-op.
        let src_ino = match &src_res {
            SimRes::Dir { ino, .. } => Some(*ino),
            SimRes::NonDir { ino, .. } => Some(*ino),
            _ => None,
        };
        let dst_ino = match &dst_res {
            SimRes::Dir { ino, .. } => Some(*ino),
            SimRes::NonDir { ino, .. } => Some(*ino),
            _ => None,
        };
        if src_ino.is_some() && src_ino == dst_ino {
            return ErrorOrValue::Value(RetValue::None);
        }

        match src_res {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { ino: sd, parent: sparent } => {
                if sd == self.fs.root() {
                    return ErrorOrValue::Error(self.profile.rename_root_errno);
                }
                let Some((sp, sname)) = sparent else {
                    return ErrorOrValue::Error(Errno::EINVAL);
                };
                match dst_res {
                    SimRes::Error(e) => ErrorOrValue::Error(e),
                    SimRes::NonDir { .. } => ErrorOrValue::Error(Errno::ENOTDIR),
                    SimRes::Dir { ino: dd, parent: dparent } => {
                        if dd == self.fs.root() {
                            return ErrorOrValue::Error(self.profile.rename_root_errno);
                        }
                        if self.fs.is_same_or_ancestor(sd, dd) {
                            return ErrorOrValue::Error(Errno::EINVAL);
                        }
                        if !self.fs.dir_is_empty(dd) {
                            let e = if self.profile.rename_nonempty_eperm {
                                Errno::EPERM
                            } else {
                                self.profile.rename_nonempty_errno
                            };
                            return ErrorOrValue::Error(e);
                        }
                        let Some((dp, dname)) = dparent else {
                            return ErrorOrValue::Error(Errno::EINVAL);
                        };
                        if let Err(e) = self
                            .check_dir_writable(&proc, sp)
                            .and_then(|_| self.check_dir_writable(&proc, dp))
                        {
                            return ErrorOrValue::Error(e);
                        }
                        self.fs.remove_entry(dp, dname, true);
                        self.fs.remove_entry(sp, sname, true);
                        self.fs.attach_dir(dp, dname, sd);
                        ErrorOrValue::Value(RetValue::None)
                    }
                    SimRes::Missing { parent: dp, name: dname, .. } => {
                        if self.fs.is_same_or_ancestor(sd, dp) {
                            return ErrorOrValue::Error(Errno::EINVAL);
                        }
                        // Creating an entry in a deleted directory (e.g. a
                        // removed cwd) fails — the Fig. 8 scenario; found
                        // missing here by the exploration engine.
                        if !self.fs.is_connected(dp)
                            && !self.profile.create_in_deleted_cwd_succeeds
                        {
                            return ErrorOrValue::Error(Errno::ENOENT);
                        }
                        if let Err(e) = self
                            .check_dir_writable(&proc, sp)
                            .and_then(|_| self.check_dir_writable(&proc, dp))
                        {
                            return ErrorOrValue::Error(e);
                        }
                        self.fs.remove_entry(sp, sname, true);
                        self.fs.attach_dir(dp, dname, sd);
                        ErrorOrValue::Value(RetValue::None)
                    }
                }
            }
            SimRes::NonDir { parent: sp, name: sname, ino: sino, trailing_slash } => {
                if trailing_slash {
                    return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                }
                match dst_res {
                    SimRes::Error(e) => ErrorOrValue::Error(e),
                    SimRes::Dir { .. } => ErrorOrValue::Error(Errno::EISDIR),
                    SimRes::NonDir { parent: dp, name: dname, trailing_slash: dts, .. } => {
                        if dts {
                            return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                        }
                        if let Err(e) = self
                            .check_dir_writable(&proc, sp)
                            .and_then(|_| self.check_dir_writable(&proc, dp))
                        {
                            return ErrorOrValue::Error(e);
                        }
                        self.fs.remove_entry(dp, dname, true);
                        self.fs.remove_entry(sp, sname, false);
                        self.fs.add_link(dp, dname, sino);
                        // posixovl/VFAT leak (§7.3.5): the moved file's link
                        // count is left one too high, so a later unlink never
                        // reaches zero and the blocks are never reclaimed.
                        if !self.profile.rename_link_count_leak {
                            if let Some(n) = self.fs.node_mut(sino) {
                                n.nlink = n.nlink.saturating_sub(1);
                            }
                        }
                        ErrorOrValue::Value(RetValue::None)
                    }
                    SimRes::Missing { parent: dp, name: dname, trailing_slash: dts } => {
                        if dts {
                            return ErrorOrValue::Error(Errno::ENOTDIR);
                        }
                        // As above: no new entries in a deleted directory.
                        if !self.fs.is_connected(dp)
                            && !self.profile.create_in_deleted_cwd_succeeds
                        {
                            return ErrorOrValue::Error(Errno::ENOENT);
                        }
                        if let Err(e) = self
                            .check_dir_writable(&proc, sp)
                            .and_then(|_| self.check_dir_writable(&proc, dp))
                        {
                            return ErrorOrValue::Error(e);
                        }
                        self.fs.remove_entry(sp, sname, false);
                        self.fs.add_link(dp, dname, sino);
                        if let Some(n) = self.fs.node_mut(sino) {
                            n.nlink = n.nlink.saturating_sub(1);
                        }
                        ErrorOrValue::Value(RetValue::None)
                    }
                }
            }
        }
    }

    // --- open / close / lseek --------------------------------------------------

    fn do_open(&mut self, pid: Pid, path: &ParsedPath, flags: OpenFlags, mode: Option<FileMode>) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        let Some(access) = flags.access_mode() else {
            return ErrorOrValue::Error(Errno::EINVAL);
        };

        // FreeBSD defect (§7.3.2): O_CREAT|O_EXCL on a symlink replaces the
        // symlink with a new file and reports ENOTDIR.
        if self.profile.creat_excl_symlink_replaces
            && flags.contains(OpenFlags::O_CREAT)
            && flags.contains(OpenFlags::O_EXCL)
        {
            if let SimRes::NonDir { parent, name, ino, .. } = self.resolve(pid, path, false) {
                if self.fs.node(ino).map(|n| n.is_symlink()).unwrap_or(false) {
                    let (uid, gid) = self.creation_owner(&proc);
                    let m = self.creation_mode(&proc, mode.map(|m| m.bits()).unwrap_or(0o666));
                    self.fs.remove_entry(parent, name, true);
                    self.fs.create(
                        parent,
                        name,
                        NodeKind::File { data: Vec::new() },
                        NodeMeta { mode: m, uid, gid },
                    );
                    return ErrorOrValue::Error(Errno::ENOTDIR);
                }
            }
        }

        // With O_CREAT|O_EXCL a final-component symlink is never followed:
        // POSIX requires EEXIST even for a dangling link, and real kernels
        // implement it exactly so.
        let follow = !(flags.contains(OpenFlags::O_NOFOLLOW)
            || (flags.contains(OpenFlags::O_CREAT) && flags.contains(OpenFlags::O_EXCL)));
        match self.resolve(pid, path, follow) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Dir { ino, .. } => {
                if flags.contains(OpenFlags::O_CREAT) && flags.contains(OpenFlags::O_EXCL) {
                    return ErrorOrValue::Error(Errno::EEXIST);
                }
                if access.writable() || flags.contains(OpenFlags::O_TRUNC) {
                    return ErrorOrValue::Error(Errno::EISDIR);
                }
                let meta = self.node_meta(ino);
                if !self.allowed(&proc, &meta, Want::Read) {
                    return ErrorOrValue::Error(Errno::EACCES);
                }
                self.alloc_fd(pid, ino, flags, true)
            }
            SimRes::NonDir { ino, trailing_slash, .. } => {
                let is_symlink = self.fs.node(ino).map(|n| n.is_symlink()).unwrap_or(false);
                if is_symlink {
                    if flags.contains(OpenFlags::O_CREAT) && flags.contains(OpenFlags::O_EXCL) {
                        return ErrorOrValue::Error(Errno::EEXIST);
                    }
                    return ErrorOrValue::Error(Errno::ELOOP);
                }
                if flags.contains(OpenFlags::O_DIRECTORY) {
                    return ErrorOrValue::Error(Errno::ENOTDIR);
                }
                if flags.contains(OpenFlags::O_CREAT) && flags.contains(OpenFlags::O_EXCL) {
                    return ErrorOrValue::Error(Errno::EEXIST);
                }
                if trailing_slash {
                    return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                }
                let meta = self.node_meta(ino);
                if access.readable() && !self.allowed(&proc, &meta, Want::Read) {
                    return ErrorOrValue::Error(Errno::EACCES);
                }
                if access.writable() && !self.allowed(&proc, &meta, Want::Write) {
                    return ErrorOrValue::Error(Errno::EACCES);
                }
                if flags.contains(OpenFlags::O_TRUNC) && access.writable() {
                    self.fs.truncate(ino, 0);
                }
                self.alloc_fd(pid, ino, flags, false)
            }
            SimRes::Missing { parent, name, trailing_slash } => {
                if !flags.contains(OpenFlags::O_CREAT) {
                    return ErrorOrValue::Error(Errno::ENOENT);
                }
                if trailing_slash {
                    return ErrorOrValue::Error(self.profile.open_creat_trailing_slash_errno);
                }
                if !self.fs.is_connected(parent) && !self.profile.create_in_deleted_cwd_succeeds {
                    return ErrorOrValue::Error(Errno::ENOENT);
                }
                if let Err(e) = self.check_dir_writable(&proc, parent) {
                    return ErrorOrValue::Error(e);
                }
                if self.capacity_exceeded(0) {
                    return ErrorOrValue::Error(Errno::ENOSPC);
                }
                let (uid, gid) = self.creation_owner(&proc);
                let m = self.creation_mode(&proc, mode.map(|m| m.bits()).unwrap_or(0o666));
                let Some(ino) = self.fs.create(
                    parent,
                    name,
                    NodeKind::File { data: Vec::new() },
                    NodeMeta { mode: m, uid, gid },
                ) else {
                    return ErrorOrValue::Error(Errno::EEXIST);
                };
                self.alloc_fd(pid, ino, flags, false)
            }
        }
    }

    fn alloc_fd(&mut self, pid: Pid, ino: Ino, flags: OpenFlags, is_dir: bool) -> ErrorOrValue {
        let proc = self.proc_mut(pid).expect("process exists");
        let fd = proc.next_fd;
        proc.next_fd += 1;
        proc.fds.insert(fd, SimFd { ino, offset: 0, flags, is_dir });
        ErrorOrValue::Value(RetValue::Fd(Fd(fd)))
    }

    fn do_close(&mut self, pid: Pid, fd: Fd) -> ErrorOrValue {
        let proc = self.proc_mut(pid).expect("process exists");
        if proc.fds.remove(&fd.0).is_some() {
            ErrorOrValue::Value(RetValue::None)
        } else {
            ErrorOrValue::Error(Errno::EBADF)
        }
    }

    fn do_lseek(&mut self, pid: Pid, fd: Fd, off: i64, whence: SeekWhence) -> ErrorOrValue {
        let Some(entry) = self.procs.get(&pid.0).and_then(|p| p.fds.get(&fd.0)).cloned() else {
            return ErrorOrValue::Error(Errno::EBADF);
        };
        let base = match whence {
            SeekWhence::Set => 0,
            SeekWhence::Cur => entry.offset as i64,
            SeekWhence::End => self.fs.file_size(entry.ino) as i64,
        };
        match base.checked_add(off) {
            None => ErrorOrValue::Error(Errno::EOVERFLOW),
            Some(n) if n < 0 => ErrorOrValue::Error(Errno::EINVAL),
            Some(n) => {
                if let Some(e) = self.proc_mut(pid).and_then(|p| p.fds.get_mut(&fd.0)) {
                    e.offset = n as u64;
                }
                ErrorOrValue::Value(RetValue::Num(n))
            }
        }
    }

    // --- read / write -----------------------------------------------------------

    fn do_read(&mut self, pid: Pid, fd: Fd, count: usize, offset: Option<i64>) -> ErrorOrValue {
        if let Some(off) = offset {
            if off < 0 {
                return ErrorOrValue::Error(Errno::EINVAL);
            }
        }
        let Some(entry) = self.procs.get(&pid.0).and_then(|p| p.fds.get(&fd.0)).cloned() else {
            return ErrorOrValue::Error(Errno::EBADF);
        };
        if entry.is_dir {
            return ErrorOrValue::Error(Errno::EISDIR);
        }
        if !entry.flags.access_mode().map(|m| m.readable()).unwrap_or(false) {
            return ErrorOrValue::Error(Errno::EBADF);
        }
        let pos = offset.map(|o| o as u64).unwrap_or(entry.offset);
        let data = self.fs.read(entry.ino, pos, count);
        if offset.is_none() {
            if let Some(e) = self.proc_mut(pid).and_then(|p| p.fds.get_mut(&fd.0)) {
                e.offset = pos + data.len() as u64;
            }
        }
        ErrorOrValue::Value(RetValue::Bytes(data))
    }

    fn do_write(&mut self, pid: Pid, fd: Fd, data: &[u8], offset: Option<i64>) -> ErrorOrValue {
        let entry = self.procs.get(&pid.0).and_then(|p| p.fds.get(&fd.0)).cloned();
        let Some(entry) = entry else {
            if data.is_empty() && self.profile.zero_write_bad_fd_returns_zero {
                return ErrorOrValue::Value(RetValue::Num(0));
            }
            return ErrorOrValue::Error(Errno::EBADF);
        };
        if let Some(off) = offset {
            if off < 0 {
                // The OS X VFS underflow defect (§7.3.4): the negative offset
                // wraps to a huge unsigned value and the process is killed by
                // SIGXFSZ; we surface that as EFBIG so the oracle (which only
                // allows EINVAL) flags it.
                if self.profile.pwrite_negative_offset_underflow {
                    return ErrorOrValue::Error(Errno::EFBIG);
                }
                return ErrorOrValue::Error(Errno::EINVAL);
            }
        }
        if entry.is_dir || !entry.flags.access_mode().map(|m| m.writable()).unwrap_or(false) {
            return ErrorOrValue::Error(Errno::EBADF);
        }
        let append = entry.flags.contains(OpenFlags::O_APPEND) && !self.profile.o_append_ignored;
        let pos = match offset {
            Some(off) => {
                if append && self.profile.pwrite_append_ignores_offset {
                    self.fs.file_size(entry.ino)
                } else {
                    off as u64
                }
            }
            None => {
                if append {
                    self.fs.file_size(entry.ino)
                } else {
                    entry.offset
                }
            }
        };
        if !data.is_empty() && pos.saturating_add(data.len() as u64) > MAX_FILE_SIZE as u64 {
            // The write would grow the file past the maximum file size
            // (a descriptor seeked to an extreme offset): EFBIG, mirroring
            // the model's envelope. Zero-byte writes return 0 regardless of
            // the offset, as on Linux.
            return ErrorOrValue::Error(Errno::EFBIG);
        }
        let cur = self.fs.file_size(entry.ino);
        let grow = (pos + data.len() as u64).saturating_sub(cur);
        if self.capacity_exceeded(grow) {
            return ErrorOrValue::Error(Errno::ENOSPC);
        }
        let written = self.fs.write(entry.ino, pos, data);
        if offset.is_none() {
            if let Some(e) = self.proc_mut(pid).and_then(|p| p.fds.get_mut(&fd.0)) {
                e.offset = pos + written as u64;
            }
        }
        ErrorOrValue::Value(RetValue::Num(written as i64))
    }

    // --- metadata ---------------------------------------------------------------

    fn do_chmod(&mut self, pid: Pid, path: &ParsedPath, mode: u32) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        if !self.profile.chmod_supported {
            return ErrorOrValue::Error(Errno::EOPNOTSUPP);
        }
        let ino = match self.resolve(pid, path, true) {
            SimRes::Error(e) => return ErrorOrValue::Error(e),
            SimRes::Missing { .. } => return ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { ino, .. } => ino,
            SimRes::NonDir { ino, trailing_slash, .. } => {
                // POSIX path resolution: trailing slash on a non-directory.
                let is_symlink = self.fs.node(ino).map(|n| n.is_symlink()).unwrap_or(false);
                if trailing_slash && !is_symlink {
                    return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                }
                ino
            }
        };
        let meta = self.node_meta(ino);
        if proc.euid != 0 && proc.euid != meta.uid && !self.profile.permissions_not_enforced {
            return ErrorOrValue::Error(Errno::EPERM);
        }
        if let Some(n) = self.fs.node_mut(ino) {
            n.meta.mode = mode & 0o7777;
        }
        ErrorOrValue::Value(RetValue::None)
    }

    fn do_chown(&mut self, pid: Pid, path: &ParsedPath, uid: u32, gid: u32) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        let ino = match self.resolve(pid, path, true) {
            SimRes::Error(e) => return ErrorOrValue::Error(e),
            SimRes::Missing { .. } => return ErrorOrValue::Error(Errno::ENOENT),
            SimRes::Dir { ino, .. } => ino,
            SimRes::NonDir { ino, trailing_slash, .. } => {
                let is_symlink = self.fs.node(ino).map(|n| n.is_symlink()).unwrap_or(false);
                if trailing_slash && !is_symlink {
                    return ErrorOrValue::Error(self.profile.trailing_slash_file_errno);
                }
                ino
            }
        };
        let meta = self.node_meta(ino);
        let permitted = proc.euid == 0
            || self.profile.permissions_not_enforced
            || (proc.euid == meta.uid && uid == meta.uid);
        if !permitted {
            return ErrorOrValue::Error(Errno::EPERM);
        }
        if let Some(n) = self.fs.node_mut(ino) {
            n.meta.uid = uid;
            n.meta.gid = gid;
        }
        ErrorOrValue::Value(RetValue::None)
    }

    fn do_umask(&mut self, pid: Pid, mask: u32) -> ErrorOrValue {
        let proc = self.proc_mut(pid).expect("process exists");
        let old = proc.umask;
        proc.umask = mask & 0o777;
        ErrorOrValue::Value(RetValue::Num(old as i64))
    }

    // --- directory streams --------------------------------------------------------

    fn do_opendir(&mut self, pid: Pid, path: &ParsedPath) -> ErrorOrValue {
        let proc = self.procs[&pid.0].clone();
        match self.resolve(pid, path, true) {
            SimRes::Error(e) => ErrorOrValue::Error(e),
            SimRes::Missing { .. } => ErrorOrValue::Error(Errno::ENOENT),
            SimRes::NonDir { .. } => ErrorOrValue::Error(Errno::ENOTDIR),
            SimRes::Dir { ino, .. } => {
                let meta = self.node_meta(ino);
                if !self.allowed(&proc, &meta, Want::Read) {
                    return ErrorOrValue::Error(Errno::EACCES);
                }
                let entries = self.ordered_entries(ino);
                let p = self.proc_mut(pid).expect("process exists");
                let dh = p.next_dh;
                p.next_dh += 1;
                p.dhs.insert(dh, SimDh { dir: ino, entries, pos: 0 });
                ErrorOrValue::Value(RetValue::DirHandle(DirHandleId(dh)))
            }
        }
    }

    fn do_readdir(&mut self, pid: Pid, dh: DirHandleId) -> ErrorOrValue {
        let proc = self.proc_mut(pid).expect("process exists");
        let Some(stream) = proc.dhs.get_mut(&dh.0) else {
            return ErrorOrValue::Error(Errno::EBADF);
        };
        if stream.pos < stream.entries.len() {
            let name = stream.entries[stream.pos];
            stream.pos += 1;
            ErrorOrValue::Value(RetValue::ReaddirEntry(Some(name.as_str().to_string())))
        } else {
            ErrorOrValue::Value(RetValue::ReaddirEntry(None))
        }
    }

    fn do_rewinddir(&mut self, pid: Pid, dh: DirHandleId) -> ErrorOrValue {
        let dir = match self.procs.get(&pid.0).and_then(|p| p.dhs.get(&dh.0)) {
            Some(s) => s.dir,
            None => return ErrorOrValue::Error(Errno::EBADF),
        };
        let entries = self.ordered_entries(dir);
        if let Some(s) = self.proc_mut(pid).and_then(|p| p.dhs.get_mut(&dh.0)) {
            s.entries = entries;
            s.pos = 0;
        }
        ErrorOrValue::Value(RetValue::None)
    }

    fn do_closedir(&mut self, pid: Pid, dh: DirHandleId) -> ErrorOrValue {
        let proc = self.proc_mut(pid).expect("process exists");
        if proc.dhs.remove(&dh.0).is_some() {
            ErrorOrValue::Value(RetValue::None)
        } else {
            ErrorOrValue::Error(Errno::EBADF)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use sibylfs_core::flavor::Flavor;
    use sibylfs_core::types::INITIAL_PID;

    fn sim(profile: BehaviorProfile) -> SimOs {
        let mut os = SimOs::new(profile);
        os.create_process(INITIAL_PID, Uid(0), Gid(0));
        os
    }

    fn baseline_linux() -> SimOs {
        sim(BehaviorProfile::baseline("linux/test", Flavor::Linux))
    }

    fn value(r: ErrorOrValue) -> RetValue {
        match r {
            ErrorOrValue::Value(v) => v,
            ErrorOrValue::Error(e) => panic!("unexpected error {e}"),
        }
    }

    fn errno(r: ErrorOrValue) -> Errno {
        match r {
            ErrorOrValue::Error(e) => e,
            ErrorOrValue::Value(v) => panic!("unexpected value {v}"),
        }
    }

    #[test]
    fn basic_mkdir_open_write_read_cycle() {
        let mut os = baseline_linux();
        let p = INITIAL_PID;
        value(os.call(p, &OsCommand::Mkdir("/d".into(), FileMode::new(0o777))));
        let fd = match value(os.call(
            p,
            &OsCommand::Open(
                "/d/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                Some(FileMode::new(0o644)),
            ),
        )) {
            RetValue::Fd(fd) => fd,
            other => panic!("unexpected {other}"),
        };
        assert_eq!(fd, Fd(3));
        assert_eq!(value(os.call(p, &OsCommand::Write(fd, b"hello".to_vec()))), RetValue::Num(5));
        value(os.call(p, &OsCommand::Lseek(fd, 0, SeekWhence::Set)));
        assert_eq!(
            value(os.call(p, &OsCommand::Read(fd, 100))),
            RetValue::Bytes(b"hello".to_vec())
        );
        value(os.call(p, &OsCommand::Close(fd)));
        assert_eq!(errno(os.call(p, &OsCommand::Close(fd))), Errno::EBADF);
    }

    #[test]
    fn unlink_dir_errno_follows_profile() {
        let mut linux = baseline_linux();
        value(linux.call(INITIAL_PID, &OsCommand::Mkdir("/d".into(), FileMode::new(0o777))));
        assert_eq!(errno(linux.call(INITIAL_PID, &OsCommand::Unlink("/d".into()))), Errno::EISDIR);

        let mut mac = sim(BehaviorProfile::baseline("mac/test", Flavor::Mac));
        value(mac.call(INITIAL_PID, &OsCommand::Mkdir("/d".into(), FileMode::new(0o777))));
        assert_eq!(errno(mac.call(INITIAL_PID, &OsCommand::Unlink("/d".into()))), Errno::EPERM);
    }

    #[test]
    fn readdir_returns_each_entry_then_end() {
        let mut os = baseline_linux();
        let p = INITIAL_PID;
        value(os.call(p, &OsCommand::Mkdir("/d".into(), FileMode::new(0o777))));
        value(os.call(p, &OsCommand::Mkdir("/d/a".into(), FileMode::new(0o777))));
        value(os.call(p, &OsCommand::Mkdir("/d/b".into(), FileMode::new(0o777))));
        let dh = match value(os.call(p, &OsCommand::Opendir("/d".into()))) {
            RetValue::DirHandle(dh) => dh,
            other => panic!("unexpected {other}"),
        };
        let mut names = Vec::new();
        loop {
            match value(os.call(p, &OsCommand::Readdir(dh))) {
                RetValue::ReaddirEntry(Some(n)) => names.push(n),
                RetValue::ReaddirEntry(None) => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn sshfs_rename_nonempty_reports_eperm() {
        let profile = configs::by_name("linux/sshfs-tmpfs").expect("config exists");
        let mut os = sim(profile);
        let p = INITIAL_PID;
        value(os.call(p, &OsCommand::Mkdir("/emptydir".into(), FileMode::new(0o777))));
        value(os.call(p, &OsCommand::Mkdir("/nonemptydir".into(), FileMode::new(0o777))));
        value(os.call(
            p,
            &OsCommand::Open(
                "/nonemptydir/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o666)),
            ),
        ));
        // The paper's Fig. 4 deviation: SSHFS reports EPERM here.
        assert_eq!(
            errno(os.call(p, &OsCommand::Rename("/emptydir".into(), "/nonemptydir".into()))),
            Errno::EPERM
        );
    }

    #[test]
    fn posixovl_leak_eventually_reports_enospc_on_empty_volume() {
        let profile = configs::by_name("linux/posixovl-vfat").expect("config exists");
        let mut os = sim(profile);
        let p = INITIAL_PID;
        // Repeatedly create a file with data and rename it over another file;
        // the leak keeps the old blocks accounted until the volume fills.
        let mut saw_enospc = false;
        for i in 0..200 {
            let a = format!("/a{i}");
            let b = format!("/b{i}");
            let fd = match os.call(
                p,
                &OsCommand::Open(a.as_str().into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(FileMode::new(0o644))),
            ) {
                ErrorOrValue::Value(RetValue::Fd(fd)) => fd,
                ErrorOrValue::Error(Errno::ENOSPC) => {
                    saw_enospc = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            };
            match os.call(p, &OsCommand::Write(fd, vec![7u8; 4096])) {
                ErrorOrValue::Value(_) => {}
                ErrorOrValue::Error(Errno::ENOSPC) => {
                    saw_enospc = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
            os.call(p, &OsCommand::Close(fd));
            os.call(
                p,
                &OsCommand::Open(b.as_str().into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(FileMode::new(0o644))),
            );
            os.call(p, &OsCommand::Rename(a.into(), b.as_str().into()));
            // Deleting the renamed file should release the space, but the
            // leak keeps it accounted.
            os.call(p, &OsCommand::Unlink(b.into()));
        }
        assert!(saw_enospc, "the storage leak should eventually exhaust the volume");
        // A correct overlay on the same small volume never runs out of space.
        let mut good = BehaviorProfile::baseline("linux/posixovl-fixed", Flavor::Linux);
        good.capacity_bytes = Some(256 * 1024);
        let mut os = sim(good);
        for i in 0..200 {
            let a = format!("/a{i}");
            let b = format!("/b{i}");
            let fd = match value(os.call(
                p,
                &OsCommand::Open(a.as_str().into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(FileMode::new(0o644))),
            )) {
                RetValue::Fd(fd) => fd,
                other => panic!("unexpected {other}"),
            };
            value(os.call(p, &OsCommand::Write(fd, vec![7u8; 4096])));
            value(os.call(p, &OsCommand::Close(fd)));
            value(os.call(
                p,
                &OsCommand::Open(b.as_str().into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(FileMode::new(0o644))),
            ));
            value(os.call(p, &OsCommand::Rename(a.into(), b.as_str().into())));
            value(os.call(p, &OsCommand::Unlink(b.into())));
        }
    }

    #[test]
    fn freebsd_defect_replaces_symlink_and_reports_enotdir() {
        let profile = configs::by_name("freebsd/ufs").expect("config exists");
        let mut os = sim(profile);
        let p = INITIAL_PID;
        value(os.call(p, &OsCommand::Mkdir("/d".into(), FileMode::new(0o777))));
        value(os.call(p, &OsCommand::Symlink("/d".into(), "/s".into())));
        let r = os.call(
            p,
            &OsCommand::Open(
                "/s".into(),
                OpenFlags::O_CREAT | OpenFlags::O_EXCL | OpenFlags::O_DIRECTORY,
                Some(FileMode::new(0o644)),
            ),
        );
        assert_eq!(errno(r), Errno::ENOTDIR);
        // The invariant violation: the symlink has been replaced by a file.
        match value(os.call(p, &OsCommand::Lstat("/s".into()))) {
            RetValue::Stat(s) => assert_eq!(s.kind, FileKind::Regular),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn openzfs_osx_allows_create_in_deleted_cwd() {
        let profile = configs::by_name("mac/openzfs").expect("config exists");
        let mut os = sim(profile);
        let p = INITIAL_PID;
        // The Fig. 8 sequence.
        value(os.call(p, &OsCommand::Mkdir("/deserted".into(), FileMode::new(0o700))));
        value(os.call(p, &OsCommand::Chdir("/deserted".into())));
        value(os.call(p, &OsCommand::Rmdir("/deserted".into())));
        let r = os.call(
            p,
            &OsCommand::Open("party".into(), OpenFlags::O_CREAT | OpenFlags::O_RDONLY, Some(FileMode::new(0o600))),
        );
        assert!(matches!(r, ErrorOrValue::Value(RetValue::Fd(_))), "the defect allows the create");
        // A correct implementation reports ENOENT.
        let good = configs::by_name("mac/hfsplus").expect("config exists");
        let mut os = sim(good);
        value(os.call(p, &OsCommand::Mkdir("/deserted".into(), FileMode::new(0o700))));
        value(os.call(p, &OsCommand::Chdir("/deserted".into())));
        value(os.call(p, &OsCommand::Rmdir("/deserted".into())));
        let r = os.call(
            p,
            &OsCommand::Open("party".into(), OpenFlags::O_CREAT | OpenFlags::O_RDONLY, Some(FileMode::new(0o600))),
        );
        assert_eq!(errno(r), Errno::ENOENT);
    }

    #[test]
    fn mac_pwrite_underflow_defect_reports_wrong_error() {
        let profile = configs::by_name("mac/hfsplus").expect("config exists");
        let mut os = sim(profile);
        let p = INITIAL_PID;
        let fd = match value(os.call(
            p,
            &OsCommand::Open("/f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(FileMode::new(0o644))),
        )) {
            RetValue::Fd(fd) => fd,
            other => panic!("unexpected {other}"),
        };
        // POSIX requires EINVAL; the OS X defect surfaces as EFBIG.
        assert_eq!(errno(os.call(p, &OsCommand::Pwrite(fd, b"x".to_vec(), -1))), Errno::EFBIG);
    }

    #[test]
    fn permissions_enforced_for_ordinary_users() {
        let mut os = baseline_linux();
        let root = INITIAL_PID;
        value(os.call(root, &OsCommand::Mkdir("/private".into(), FileMode::new(0o700))));
        os.create_process(Pid(2), Uid(1000), Gid(1000));
        let r = os.call(Pid(2), &OsCommand::Open("/private/f".into(), OpenFlags::O_CREAT, Some(FileMode::new(0o644))));
        assert_eq!(errno(r), Errno::EACCES);
        // With the SSHFS allow_other profile, permissions are not enforced.
        let profile = configs::by_name("linux/sshfs-allow-other").expect("config exists");
        let mut os = sim(profile);
        value(os.call(root, &OsCommand::Mkdir("/private".into(), FileMode::new(0o700))));
        os.create_process(Pid(2), Uid(1000), Gid(1000));
        let r = os.call(Pid(2), &OsCommand::Open("/private/f".into(), OpenFlags::O_CREAT, Some(FileMode::new(0o644))));
        assert!(matches!(r, ErrorOrValue::Value(_)));
    }

    #[test]
    fn old_hfsplus_chmod_unsupported() {
        let profile = configs::by_name("linux/hfsplus-trusty").expect("config exists");
        let mut os = sim(profile);
        let p = INITIAL_PID;
        value(os.call(p, &OsCommand::Open("/f".into(), OpenFlags::O_CREAT, Some(FileMode::new(0o644)))));
        assert_eq!(
            errno(os.call(p, &OsCommand::Chmod("/f".into(), FileMode::new(0o600)))),
            Errno::EOPNOTSUPP
        );
    }

    #[test]
    fn openzfs_linux_old_ignores_o_append() {
        let profile = configs::by_name("linux/openzfs-trusty").expect("config exists");
        let mut os = sim(profile);
        let p = INITIAL_PID;
        let fd = match value(os.call(
            p,
            &OsCommand::Open(
                "/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR | OpenFlags::O_APPEND,
                Some(FileMode::new(0o644)),
            ),
        )) {
            RetValue::Fd(fd) => fd,
            other => panic!("unexpected {other}"),
        };
        value(os.call(p, &OsCommand::Write(fd, b"AAAA".to_vec())));
        value(os.call(p, &OsCommand::Lseek(fd, 0, SeekWhence::Set)));
        // With the defect, this write lands at offset 0 and corrupts the data
        // instead of appending.
        value(os.call(p, &OsCommand::Write(fd, b"BB".to_vec())));
        value(os.call(p, &OsCommand::Lseek(fd, 0, SeekWhence::Set)));
        assert_eq!(value(os.call(p, &OsCommand::Read(fd, 10))), RetValue::Bytes(b"BBAA".to_vec()));
    }
}
