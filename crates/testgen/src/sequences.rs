//! Hand-written test scripts for behaviour that is inherently sequential:
//! descriptor I/O (`read`/`write`/`pread`/`pwrite`/`lseek`), directory
//! iteration under modification, permissions with multiple processes, and the
//! specific defect scenarios reported in §7.3 of the paper.
//!
//! Because the oracle binds whatever descriptor number the implementation
//! returns, these scripts rely on the conventional allocation order (the
//! first descriptor opened by a fresh process is `(FD 3)`, the first
//! directory handle `(DH 1)`), which both the simulated implementations and
//! real systems follow.

use sibylfs_core::commands::OsCommand;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{DirHandleId, Fd, Gid, Pid, Uid};
use sibylfs_script::Script;

fn s(name: &str, group: &str) -> Script {
    Script::new(format!("{group}___{name}"), group)
}

const FD3: Fd = Fd(3);
const FD4: Fd = Fd(4);
const DH1: DirHandleId = DirHandleId(1);

fn mode(m: u32) -> FileMode {
    FileMode::new(m)
}

/// Sequential I/O scripts: write/read round trips, offsets, append mode,
/// short counts, `pread`/`pwrite`, `lseek` edge cases, `O_TRUNC`.
pub fn io_sequence_scripts() -> Vec<Script> {
    let mut out = Vec::new();

    {
        let mut sc = s("write_then_read_roundtrip", "read");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"hello world".to_vec()))
            .call(OsCommand::Lseek(FD3, 0, SeekWhence::Set))
            .call(OsCommand::Read(FD3, 5))
            .call(OsCommand::Read(FD3, 100))
            .call(OsCommand::Read(FD3, 10))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        let mut sc = s("read_at_eof_returns_empty", "read");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Read(FD3, 16))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        let mut sc = s("read_bad_fd", "read");
        sc.call(OsCommand::Read(Fd(42), 16));
        out.push(sc);
    }
    {
        let mut sc = s("read_write_only_fd", "read");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Read(FD3, 4));
        out.push(sc);
    }
    {
        let mut sc = s("write_read_only_fd", "write");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Open("f".into(), OpenFlags::O_RDONLY, None))
            .call(OsCommand::Write(FD4, b"nope".to_vec()));
        out.push(sc);
    }
    {
        let mut sc = s("write_zero_bytes_bad_fd", "write");
        sc.call(OsCommand::Write(Fd(42), Vec::new()));
        out.push(sc);
    }
    {
        let mut sc = s("sparse_write_via_lseek", "write");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Lseek(FD3, 100, SeekWhence::Set))
            .call(OsCommand::Write(FD3, b"tail".to_vec()))
            .call(OsCommand::Stat("f".into()))
            .call(OsCommand::Lseek(FD3, 0, SeekWhence::Set))
            .call(OsCommand::Read(FD3, 4))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        let mut sc = s("append_mode_appends", "write");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"AAAA".to_vec()))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Open("f".into(), OpenFlags::O_RDWR | OpenFlags::O_APPEND, None))
            .call(OsCommand::Write(FD3, b"BB".to_vec()))
            .call(OsCommand::Lseek(FD3, 0, SeekWhence::Set))
            .call(OsCommand::Read(FD3, 10))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        let mut sc = s("pread_pwrite_do_not_move_offset", "pwrite");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"0123456789".to_vec()))
            .call(OsCommand::Pread(FD3, 4, 2))
            .call(OsCommand::Pwrite(FD3, b"XY".to_vec(), 4))
            .call(OsCommand::Lseek(FD3, 0, SeekWhence::Cur))
            .call(OsCommand::Pread(FD3, 10, 0))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        // §7.3.3: pwrite on an O_APPEND descriptor — POSIX honours the offset,
        // Linux appends.
        let mut sc = s("pwrite_with_o_append", "pwrite");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR | OpenFlags::O_APPEND, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"AAAA".to_vec()))
            .call(OsCommand::Pwrite(FD3, b"BB".to_vec(), 0))
            .call(OsCommand::Pread(FD3, 10, 0))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        // §7.3.4: POSIX requires EINVAL for a negative pwrite offset.
        let mut sc = s("pwrite_negative_offset", "pwrite");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Pwrite(FD3, b"x".to_vec(), -1))
            .call(OsCommand::Pread(FD3, 4, -1))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        let mut sc = s("lseek_whence_and_errors", "lseek");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"0123456789".to_vec()))
            .call(OsCommand::Lseek(FD3, 0, SeekWhence::Set))
            .call(OsCommand::Lseek(FD3, 3, SeekWhence::Cur))
            .call(OsCommand::Lseek(FD3, -2, SeekWhence::End))
            .call(OsCommand::Lseek(FD3, -100, SeekWhence::Set))
            .call(OsCommand::Lseek(Fd(42), 0, SeekWhence::Set))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        let mut sc = s("o_trunc_discards_contents", "open");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"important".to_vec()))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Open("f".into(), OpenFlags::O_RDWR | OpenFlags::O_TRUNC, None))
            .call(OsCommand::Stat("f".into()))
            .call(OsCommand::Close(FD4));
        out.push(sc);
    }
    {
        let mut sc = s("unlinked_file_remains_readable_through_fd", "unlink");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"persist".to_vec()))
            .call(OsCommand::Unlink("f".into()))
            .call(OsCommand::Stat("f".into()))
            .call(OsCommand::Lseek(FD3, 0, SeekWhence::Set))
            .call(OsCommand::Read(FD3, 7))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        let mut sc = s("truncate_then_stat_sizes", "truncate");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"0123456789".to_vec()))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Truncate("f".into(), 4))
            .call(OsCommand::Stat("f".into()))
            .call(OsCommand::Truncate("f".into(), 20))
            .call(OsCommand::Stat("f".into()));
        out.push(sc);
    }
    out
}

/// Directory-iteration scripts, including modification of the directory while
/// a handle is open (the must/may semantics of §3).
pub fn readdir_scripts() -> Vec<Script> {
    let mut out = Vec::new();
    {
        let mut sc = s("list_all_entries", "readdir");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/a".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/b".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/c".into(), mode(0o777)))
            .call(OsCommand::Opendir("d".into()))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Closedir(DH1));
        out.push(sc);
    }
    {
        let mut sc = s("empty_dir_reports_end", "readdir");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Opendir("d".into()))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Closedir(DH1));
        out.push(sc);
    }
    {
        let mut sc = s("entry_removed_while_open", "readdir");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/a".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/b".into(), mode(0o777)))
            .call(OsCommand::Opendir("d".into()))
            .call(OsCommand::Rmdir("d/a".into()))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Closedir(DH1));
        out.push(sc);
    }
    {
        let mut sc = s("entry_added_while_open", "readdir");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/a".into(), mode(0o777)))
            .call(OsCommand::Opendir("d".into()))
            .call(OsCommand::Mkdir("d/b".into(), mode(0o777)))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Closedir(DH1));
        out.push(sc);
    }
    {
        let mut sc = s("rewinddir_resets_stream", "rewinddir");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/a".into(), mode(0o777)))
            .call(OsCommand::Opendir("d".into()))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Mkdir("d/b".into(), mode(0o777)))
            .call(OsCommand::Rewinddir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Readdir(DH1))
            .call(OsCommand::Closedir(DH1));
        out.push(sc);
    }
    {
        let mut sc = s("bad_handle_operations", "closedir");
        sc.call(OsCommand::Readdir(DirHandleId(9)))
            .call(OsCommand::Rewinddir(DirHandleId(9)))
            .call(OsCommand::Closedir(DirHandleId(9)));
        out.push(sc);
    }
    out
}

/// Multi-process scripts exercising ownership and permissions (§6.3 notes
/// that interleaved calls from multiple processes are important precisely for
/// permissions testing).
pub fn permission_scripts() -> Vec<Script> {
    let mut out = Vec::new();
    let user = (Uid(1000), Gid(1000));
    let other = (Uid(2000), Gid(2000));
    {
        let mut sc = s("private_dir_blocks_other_users", "permissions");
        sc.call(OsCommand::Mkdir("private".into(), mode(0o700)))
            .call(OsCommand::Chown("private".into(), user.0, user.1))
            .create_process(Pid(2), other.0, other.1)
            .call_as(Pid(2), OsCommand::Opendir("private".into()))
            .call_as(Pid(2), OsCommand::Open("private/f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call_as(Pid(2), OsCommand::Stat("private/f".into()))
            .destroy_process(Pid(2));
        out.push(sc);
    }
    {
        let mut sc = s("owner_can_use_own_dir", "permissions");
        sc.call(OsCommand::Mkdir("home".into(), mode(0o755)))
            .call(OsCommand::Mkdir("home/user".into(), mode(0o700)))
            .call(OsCommand::Chown("home/user".into(), user.0, user.1))
            .create_process(Pid(2), user.0, user.1)
            .call_as(Pid(2), OsCommand::Open("home/user/f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o600))))
            .call_as(Pid(2), OsCommand::Write(FD3, b"mine".to_vec()))
            .call_as(Pid(2), OsCommand::Close(FD3))
            .call_as(Pid(2), OsCommand::Stat("home/user/f".into()))
            .destroy_process(Pid(2));
        out.push(sc);
    }
    {
        let mut sc = s("group_membership_grants_group_bits", "permissions");
        sc.call(OsCommand::AddUserToGroup(other.0, Gid(500)))
            .call(OsCommand::Mkdir("shared".into(), mode(0o770)))
            .call(OsCommand::Chown("shared".into(), user.0, Gid(500)))
            .create_process(Pid(2), other.0, other.1)
            .call_as(Pid(2), OsCommand::Open("shared/f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o660))))
            .destroy_process(Pid(2))
            .create_process(Pid(3), Uid(3000), Gid(3000))
            .call_as(Pid(3), OsCommand::Open("shared/g".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o660))))
            .destroy_process(Pid(3));
        out.push(sc);
    }
    {
        let mut sc = s("umask_applies_to_creation", "umask");
        sc.call(OsCommand::Umask(mode(0o077)))
            .call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Stat("d".into()))
            .call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o666))))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Stat("f".into()))
            .call(OsCommand::Umask(mode(0o022)));
        out.push(sc);
    }
    {
        let mut sc = s("chmod_then_access_denied", "permissions");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Chown("d".into(), user.0, user.1))
            .call(OsCommand::Chmod("d".into(), mode(0o000)))
            .create_process(Pid(2), other.0, other.1)
            .call_as(Pid(2), OsCommand::Stat("d/x".into()))
            .call_as(Pid(2), OsCommand::Open("d/x".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .destroy_process(Pid(2));
        out.push(sc);
    }
    out
}

/// Scripts that directly target the defect scenarios of §7.3, so that the
/// survey experiment reproduces each finding.
pub fn defect_scenario_scripts() -> Vec<Script> {
    let mut out = Vec::new();
    {
        // The paper's running example (Figs. 2–4): renaming an empty directory
        // onto a non-empty one. SSHFS answers EPERM where only EEXIST or
        // ENOTEMPTY are allowed.
        let mut sc = s("rename_emptydir___nonemptydir", "rename");
        sc.call(OsCommand::Mkdir("emptydir".into(), mode(0o777)))
            .call(OsCommand::Mkdir("nonemptydir".into(), mode(0o777)))
            .call(OsCommand::Open(
                "nonemptydir/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(mode(0o666)),
            ))
            .call(OsCommand::Rename("emptydir".into(), "nonemptydir".into()));
        out.push(sc);
    }
    {
        // Fig. 8: the OpenZFS-on-OS X disconnected-directory scenario.
        let mut sc = s("create_in_deleted_cwd", "open");
        sc.call(OsCommand::Mkdir("deserted".into(), mode(0o700)))
            .call(OsCommand::Chdir("deserted".into()))
            .call(OsCommand::Rmdir("../deserted".into()))
            .call(OsCommand::Open("party".into(), OpenFlags::O_CREAT | OpenFlags::O_RDONLY, Some(mode(0o600))));
        out.push(sc);
    }
    {
        // §7.3.2 Invariants: O_CREAT|O_DIRECTORY|O_EXCL on a symlink to a dir.
        let mut sc = s("creat_excl_directory_on_symlink", "open");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Symlink("d".into(), "s".into()))
            .call(OsCommand::Open("s".into(), OpenFlags::O_CREAT | OpenFlags::O_EXCL | OpenFlags::O_DIRECTORY, Some(mode(0o644))))
            .call(OsCommand::Lstat("s".into()));
        out.push(sc);
    }
    {
        // §7.3.5 posixovl: rename-based hard-link churn.
        let mut sc = s("rename_hard_link_churn", "rename");
        sc.call(OsCommand::Open("a".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, vec![7u8; 1024]))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Link("a".into(), "l".into()))
            .call(OsCommand::Open("b".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Close(FD4))
            .call(OsCommand::Rename("a".into(), "b".into()))
            .call(OsCommand::Stat("b".into()))
            .call(OsCommand::Unlink("b".into()))
            .call(OsCommand::Stat("l".into()));
        out.push(sc);
    }
    {
        // §7.3.4 old Linux HFS+: chmod support.
        let mut sc = s("chmod_supported", "chmod");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Chmod("f".into(), mode(0o600)))
            .call(OsCommand::Stat("f".into()));
        out.push(sc);
    }
    {
        // §7.3.4 OpenZFS 0.6.3: O_APPEND must seek to end before writing.
        let mut sc = s("o_append_seeks_to_end", "write");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR | OpenFlags::O_APPEND, Some(mode(0o644))))
            .call(OsCommand::Write(FD3, b"AAAA".to_vec()))
            .call(OsCommand::Lseek(FD3, 0, SeekWhence::Set))
            .call(OsCommand::Write(FD3, b"BB".to_vec()))
            .call(OsCommand::Pread(FD3, 6, 0))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        // §7.3.2 Core behaviour: directory and file link counts.
        let mut sc = s("link_counts_visible_in_stat", "stat");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Mkdir("d/sub".into(), mode(0o777)))
            .call(OsCommand::Stat("d".into()))
            .call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Link("f".into(), "g".into()))
            .call(OsCommand::Stat("f".into()));
        out.push(sc);
    }
    {
        // §7.3.2: hard link to a symlink (implementation-defined).
        let mut sc = s("hard_link_to_symlink", "link");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Symlink("f".into(), "s".into()))
            .call(OsCommand::Link("s".into(), "l".into()))
            .call(OsCommand::Lstat("l".into()));
        out.push(sc);
    }
    {
        // Symlink permission bits are platform-specific.
        let mut sc = s("symlink_mode_reported_by_lstat", "symlink");
        sc.call(OsCommand::Symlink("anywhere".into(), "s".into()))
            .call(OsCommand::Lstat("s".into()));
        out.push(sc);
    }
    out
}

/// Additional hand-written scripts targeting specification clauses that the
/// combinatorial groups do not reach (long names, symlink edge cases,
/// permission-denied opens and metadata changes, lseek overflow), keeping the
/// model coverage figure close to the paper's 98% (§7.2).
pub fn coverage_gap_scripts() -> Vec<Script> {
    let mut out = Vec::new();
    let user = (Uid(1000), Gid(1000));
    let other = (Uid(2000), Gid(2000));
    {
        // Component name longer than NAME_MAX and a path longer than PATH_MAX.
        let long_name = "n".repeat(300);
        let long_path = format!("/{}", "d/".repeat(2200));
        let mut sc = s("name_and_path_too_long", "stat");
        sc.call(OsCommand::Stat(format!("/{long_name}").into()))
            .call(OsCommand::Mkdir(format!("/{long_name}").into(), mode(0o777)))
            .call(OsCommand::Stat(long_path.into()));
        out.push(sc);
    }
    {
        // A symlink with an empty target cannot be created on Linux, so build
        // the equivalent state through a symlink whose target disappears and
        // then shrink it by re-creating; exercised here via readlink/stat on a
        // symlink chain that ends in an empty-target error from resolution.
        let mut sc = s("symlink_chains_and_empty_target", "symlink");
        sc.call(OsCommand::Symlink("".into(), "empty".into()))
            .call(OsCommand::Symlink("hop2".into(), "hop1".into()))
            .call(OsCommand::Symlink("hop3".into(), "hop2".into()))
            .call(OsCommand::Symlink("target".into(), "hop3".into()))
            .call(OsCommand::Mkdir("target".into(), mode(0o777)))
            .call(OsCommand::Stat("hop1".into()))
            .call(OsCommand::Readlink("hop1".into()));
        out.push(sc);
    }
    {
        // Permission-denied opens: read and write access against a 0o000 file
        // owned by another user.
        let mut sc = s("open_permission_denied", "open");
        sc.call(OsCommand::Open("secret".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o600))))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Chown("secret".into(), user.0, user.1))
            .call(OsCommand::Chmod("secret".into(), mode(0o600)))
            .create_process(Pid(2), other.0, other.1)
            .call_as(Pid(2), OsCommand::Open("secret".into(), OpenFlags::O_RDONLY, None))
            .call_as(Pid(2), OsCommand::Open("secret".into(), OpenFlags::O_WRONLY, None))
            .call_as(Pid(2), OsCommand::Truncate("secret".into(), 4))
            .destroy_process(Pid(2));
        out.push(sc);
    }
    {
        // A directory without read permission: opendir and read-only open fail
        // with EACCES; chdir into a directory without search permission.
        let mut sc = s("dir_permission_denied", "opendir");
        sc.call(OsCommand::Mkdir("vault".into(), mode(0o700)))
            .call(OsCommand::Chown("vault".into(), user.0, user.1))
            .create_process(Pid(2), other.0, other.1)
            .call_as(Pid(2), OsCommand::Opendir("vault".into()))
            .call_as(Pid(2), OsCommand::Open("vault".into(), OpenFlags::O_RDONLY, None))
            .call_as(Pid(2), OsCommand::Chdir("vault".into()))
            .destroy_process(Pid(2));
        out.push(sc);
    }
    {
        // Metadata changes by a non-owner (EPERM), a group change by the
        // owner to a group they do *not* belong to (implementation-defined:
        // Linux refuses), and one to a group they do belong to (must
        // succeed).
        let mut sc = s("chmod_chown_by_non_owner", "chmod");
        sc.call(OsCommand::AddUserToGroup(user.0, Gid(888)))
            .call(OsCommand::Open("theirs".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Chown("theirs".into(), user.0, user.1))
            .create_process(Pid(2), other.0, other.1)
            .call_as(Pid(2), OsCommand::Chmod("theirs".into(), mode(0o777)))
            .call_as(Pid(2), OsCommand::Chown("theirs".into(), other.0, other.1))
            .destroy_process(Pid(2))
            .create_process(Pid(3), user.0, user.1)
            .call_as(Pid(3), OsCommand::Chown("theirs".into(), user.0, Gid(777)))
            .call_as(Pid(3), OsCommand::Chown("theirs".into(), user.0, Gid(888)))
            .destroy_process(Pid(3));
        out.push(sc);
    }
    {
        // lseek overflow and invalid-access-mode open.
        let mut sc = s("lseek_overflow_and_bad_open_flags", "lseek");
        sc.call(OsCommand::Open("f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))))
            .call(OsCommand::Lseek(FD3, i64::MAX, SeekWhence::Set))
            .call(OsCommand::Lseek(FD3, i64::MAX, SeekWhence::Cur))
            .call(OsCommand::Open("g".into(), OpenFlags::O_WRONLY | OpenFlags::O_RDWR | OpenFlags::O_CREAT, Some(mode(0o644))))
            .call(OsCommand::Close(FD3));
        out.push(sc);
    }
    {
        // pread on a descriptor opened on a directory.
        let mut sc = s("pread_directory_fd", "pread");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Opendir("d".into()))
            .call(OsCommand::Open("d".into(), OpenFlags::O_RDONLY, None))
            .call(OsCommand::Pread(FD3, 16, 0))
            .call(OsCommand::Read(FD3, 16));
        out.push(sc);
    }
    {
        // The posixovl/VFAT storage-leak stress (§7.3.5): repeatedly create a
        // data file, rename it over another name, and delete it. On a correct
        // file system the volume never fills; with the leak the hard-link
        // count never reaches zero and the volume reports ENOSPC even though
        // it is effectively empty.
        let mut sc = s("storage_leak_churn", "write");
        let mut fd = 3;
        for i in 0..40 {
            let a = format!("a{i}");
            let b = format!("b{i}");
            sc.call(OsCommand::Open(a.as_str().into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(mode(0o644))));
            sc.call(OsCommand::Write(Fd(fd), vec![b'z'; 8192]));
            sc.call(OsCommand::Close(Fd(fd)));
            fd += 1;
            sc.call(OsCommand::Open(b.as_str().into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))));
            sc.call(OsCommand::Close(Fd(fd)));
            fd += 1;
            sc.call(OsCommand::Rename(a.into(), b.as_str().into()));
            sc.call(OsCommand::Unlink(b.into()));
        }
        out.push(sc);
    }
    out
}

/// The scripts that exposed the six model/simulation gaps found by the
/// real-host differential harness (the previous PR's findings), promoted to
/// named regression fixtures. Each is paired with the specification branch it
/// must exercise, so `tests/model_gap_regressions.rs` can assert both that the
/// behaviour still checks clean *and* that the fixed clause is still the one
/// being hit. The exploration engine also seeds its corpus from these —
/// they are exactly the "known-hard" inputs that once distinguished the model
/// from reality.
pub fn model_gap_scripts() -> Vec<(Script, &'static str)> {
    let mut out = Vec::new();
    {
        // Gap 1: O_CREAT|O_EXCL never follows the final symlink — even a
        // dangling symlink makes open fail with EEXIST instead of creating
        // the target.
        let mut sc = s("gap_creat_excl_dangling_symlink", "open");
        sc.call(OsCommand::Symlink("missing".into(), "s".into())).call(OsCommand::Open(
            "s".into(),
            OpenFlags::O_CREAT | OpenFlags::O_EXCL | OpenFlags::O_WRONLY,
            Some(mode(0o644)),
        ));
        out.push((sc, "open/creat_excl_on_symlink_eexist"));
    }
    {
        // Gap 2: O_CREAT|O_DIRECTORY on a missing path is a may-EINVAL
        // envelope (kernels ≥ 6.x reject the combination).
        let mut sc = s("gap_creat_with_o_directory", "open");
        sc.call(OsCommand::Open(
            "newdir".into(),
            OpenFlags::O_CREAT | OpenFlags::O_DIRECTORY | OpenFlags::O_RDONLY,
            Some(mode(0o755)),
        ));
        out.push((sc, "open/creat_with_o_directory_may_einval"));
    }
    {
        // Gap 3: O_CREAT on an existing regular file named with a trailing
        // slash fails with EISDIR (not ENOTDIR / success).
        let mut sc = s("gap_creat_trailing_slash_existing_file", "open");
        sc.call(OsCommand::Open(
            "f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(mode(0o644)),
        ))
        .call(OsCommand::Close(FD3))
        .call(OsCommand::Open("f/".into(), OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Some(mode(0o644))));
        out.push((sc, "open/creat_trailing_slash_on_existing_file"));
    }
    {
        // Gap 4: chmod/chown of a regular file named with a trailing slash
        // fail with ENOTDIR.
        let mut sc = s("gap_trailing_slash_chmod_chown", "chmod");
        sc.call(OsCommand::Open(
            "f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(mode(0o644)),
        ))
        .call(OsCommand::Close(FD3))
        .call(OsCommand::Chmod("f/".into(), mode(0o600)))
        .call(OsCommand::Chown("f/".into(), Uid(0), Gid(0)));
        out.push((sc, "chmod/trailing_slash_on_file_enotdir"));
    }
    {
        // Gap 5: rmdir/unlink of `symlink/` (symlink-to-directory with a
        // trailing slash) is a may-ENOTDIR envelope.
        let mut sc = s("gap_symlink_trailing_slash_rmdir_unlink", "rmdir");
        sc.call(OsCommand::Mkdir("d".into(), mode(0o777)))
            .call(OsCommand::Symlink("d".into(), "s".into()))
            .call(OsCommand::Rmdir("s/".into()))
            .call(OsCommand::Unlink("s/".into()));
        out.push((sc, "common/symlink_with_trailing_slash_may_enotdir"));
    }
    {
        // Gap 6: a non-root owner may change a file's group only to a group
        // they belong to; changing it to a non-member group is an
        // implementation-defined envelope (Linux refuses with EPERM).
        let owner = (Uid(1000), Gid(1000));
        let mut sc = s("gap_chown_group_membership_envelope", "chown");
        sc.call(OsCommand::AddUserToGroup(owner.0, Gid(888)))
            .call(OsCommand::Open(
                "f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(mode(0o644)),
            ))
            .call(OsCommand::Close(FD3))
            .call(OsCommand::Chown("f".into(), owner.0, owner.1))
            .create_process(Pid(2), owner.0, owner.1)
            .call_as(Pid(2), OsCommand::Chown("f".into(), owner.0, Gid(888)))
            .call_as(Pid(2), OsCommand::Chown("f".into(), owner.0, Gid(777)))
            .destroy_process(Pid(2));
        out.push((sc, "chown/owner_changes_group_to_member_group"));
    }
    {
        // Gap 7 — found *by the exploration engine itself* (seed 42, worker 1,
        // iteration 60, shrunk to one call): rmdir of a path that ends in
        // ".." but whose prefix fails to resolve returns the resolution
        // error (ENOENT here), because real kernels resolve before rejecting
        // the trailing "..". The model's envelope now admits both orders.
        let mut sc = s("gap_rmdir_dotdot_after_failed_resolution", "rmdir");
        sc.call(OsCommand::Rmdir("../deserted/..".into()));
        out.push((sc, "rmdir/path_ends_in_dotdot_resolution_error"));
    }
    {
        // Gap 8 — also found by the exploration engine (as a crash, not a
        // verdict): a write after lseek to an extreme offset drove the eager
        // in-memory file stores into an i64::MAX-byte allocation. The model
        // and the simulation now agree on an EFBIG maximum-file-size
        // envelope (MAX_FILE_SIZE), as POSIX specifies and real kernels do
        // at s_maxbytes.
        // Only the pwrite spelling rides in the suite: a plain write after
        // lseek past the cap succeeds on a real kernel (whose limit is far
        // above the modelled one) and would dirty the host differential
        // harness, so that spelling is pinned sim-only in
        // `tests/model_gap_regressions.rs`. The offset stays 8 below
        // i64::MAX so `offset + count` cannot overflow. On a disk-backed
        // jail Linux answers the same EFBIG the model requires; on the
        // tmpfs jails the pooled executor prefers, s_maxbytes is i64::MAX
        // and the pwrite succeeds — a documented known divergence in
        // `tests/host_differential.rs`.
        let mut sc = s("gap_pwrite_beyond_file_size_limit", "pwrite");
        sc.call(OsCommand::Open(
            "f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_RDWR,
            Some(mode(0o644)),
        ))
        .call(OsCommand::Pwrite(FD3, b"boom".to_vec(), i64::MAX - 8));
        out.push((sc, "pwrite/beyond_file_size_limit_efbig"));
    }
    {
        // Gap 9 — found by the exploration engine: on Linux, pwrite to an
        // O_APPEND descriptor sends the data to EOF but must NOT move the
        // file offset (pwrite never does); the model used to advance it, so
        // a subsequent read wrongly expected EOF instead of the appended
        // bytes.
        let mut sc = s("gap_pwrite_append_keeps_offset", "pwrite");
        sc.call(OsCommand::Open(
            "f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_RDWR | OpenFlags::O_APPEND,
            Some(mode(0o644)),
        ))
        .call(OsCommand::Pwrite(FD3, b"appended".to_vec(), 0))
        .call(OsCommand::Read(FD3, 8))
        .call(OsCommand::Close(FD3));
        out.push((sc, "pwrite/append_overrides_offset_linux_convention"));
    }
    {
        // Gap 10 — found by the exploration engine: rename with an absolute
        // source and a destination that resolves inside a *deleted* working
        // directory must fail with ENOENT (the Fig. 8 disconnected-cwd rule);
        // the simulation's rename was the one entry-creating operation
        // missing the check and quietly attached the entry to the dead
        // directory.
        let mut sc = s("gap_rename_into_deleted_cwd", "rename");
        sc.call(OsCommand::Open(
            "a".into(),
            OpenFlags::O_CREAT | OpenFlags::O_RDWR,
            Some(mode(0o644)),
        ))
        .call(OsCommand::Mkdir("deserted".into(), mode(0o700)))
        .call(OsCommand::Chdir("deserted".into()))
        .call(OsCommand::Rmdir("../deserted".into()))
        .call(OsCommand::Rename("/a".into(), "b".into()));
        out.push((sc, "common/create_in_disconnected_dir_enoent"));
    }
    {
        // Gap 8b: the truncate spelling of the same limit.
        let mut sc = s("gap_truncate_beyond_file_size_limit", "truncate");
        sc.call(OsCommand::Open(
            "f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(mode(0o644)),
        ))
        .call(OsCommand::Close(FD3))
        .call(OsCommand::Truncate("f".into(), i64::MAX));
        out.push((sc, "truncate/length_beyond_file_size_limit"));
    }
    {
        // Gap 11 — the ENAMETOOLONG envelope, enforced at the name interner:
        // a component longer than NAME_MAX (255 bytes) must fail with
        // ENAMETOOLONG in the model, the simulation, and on the real kernel
        // alike, while a component of exactly NAME_MAX is legal. The
        // overlong-component index is computed once, when the path is parsed
        // and its components interned, and both resolvers consult it at the
        // position a kernel walking the path would notice — so an overlong
        // component *behind* a failing prefix still reports the prefix error
        // (the `open` below reports ENAMETOOLONG for the first component,
        // never ENOENT for the second). Asserted against the real kernel by
        // the host differential suite, which runs every gap fixture.
        let long = "n".repeat(256);
        let edge = "e".repeat(255);
        let mut sc = s("gap_component_longer_than_name_max", "mkdir");
        sc.call(OsCommand::Mkdir(format!("/{long}").into(), mode(0o777)))
            .call(OsCommand::Stat(format!("/{long}").into()))
            .call(OsCommand::Open(
                format!("/{long}/f").into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(mode(0o644)),
            ))
            .call(OsCommand::Mkdir(format!("/{edge}").into(), mode(0o777)))
            .call(OsCommand::Rmdir(format!("/{edge}").into()));
        out.push((sc, "path/name_too_long"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_handwritten_scripts_have_unique_names_and_calls() {
        let mut all = Vec::new();
        all.extend(io_sequence_scripts());
        all.extend(readdir_scripts());
        all.extend(permission_scripts());
        all.extend(defect_scenario_scripts());
        all.extend(coverage_gap_scripts());
        all.extend(model_gap_scripts().into_iter().map(|(sc, _)| sc));
        assert!(all.len() >= 36);
        let names: BTreeSet<_> = all.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), all.len());
        for sc in &all {
            assert!(sc.call_count() >= 1, "{}", sc.name);
        }
    }

    #[test]
    fn scripts_round_trip_through_the_text_format() {
        for sc in io_sequence_scripts().iter().chain(permission_scripts().iter()) {
            let text = sibylfs_script::render_script(sc);
            let parsed = sibylfs_script::parse_script(&text).unwrap();
            assert_eq!(&parsed, sc, "{}", sc.name);
        }
    }
}
