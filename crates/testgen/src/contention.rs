//! Fxmark-style multi-process contention families.
//!
//! Filesystem-concurrency benchmarks (fxmark and its descendants) organise
//! microbenchmarks by *sharing level*: every process hammering one shared
//! object (high contention), or each process working on a private object
//! under a shared parent (low contention). The same axis is exactly what
//! stresses the checker's τ-closure: `n` calls in flight expand to every
//! interleaving unless the closure can prove they commute. These families
//! reproduce that axis in script and trace form:
//!
//! - **drbh** — data read, block, high contention: every process `pread`s
//!   the same block of one shared file, with a writer round mixed in.
//! - **drbl** — data read, block, low contention: every process `pread`s a
//!   block of its own private file.
//! - **create/unlink storm** — every process repeatedly creates and unlinks
//!   its own entry in one shared directory.
//! - **rename storm** — every process flips its own file between two names
//!   in one shared directory (`rename` defeats commutativity analysis by
//!   design, so this family exercises the exact-dedup safety net).
//!
//! Each family scales along `processes × ops_per_process`.
//!
//! The *script* builders emit ordinary sequential scripts (every call paired
//! with its return), suitable for the executors and the linter. The *trace*
//! builders emit the concurrent form the checker sees from a multi-process
//! capture: per round, every process's call is issued before any return
//! arrives, so `n` calls are in flight when the first return is matched.

use sibylfs_core::commands::{ErrorOrValue, OsCommand, OsLabel, RetValue};
use sibylfs_core::flags::{FileMode, OpenFlags};
use sibylfs_core::types::{Fd, Gid, Pid, Uid, INITIAL_PID};
use sibylfs_script::{Script, Trace};

/// The `processes × ops` scaling knob shared by every family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionOptions {
    /// Number of concurrent processes (including the initial process).
    pub processes: u32,
    /// Operations performed by each process.
    pub ops_per_process: usize,
}

impl ContentionOptions {
    /// A contention workload with the given scale.
    pub fn new(processes: u32, ops_per_process: usize) -> ContentionOptions {
        ContentionOptions { processes, ops_per_process: ops_per_process.max(1) }
    }

    fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        (1..=self.processes.max(1)).map(Pid)
    }

    fn tag(&self) -> String {
        format!("p{}_n{}", self.processes.max(1), self.ops_per_process)
    }
}

/// Bytes read or written per operation.
const BLOCK: usize = 8;

fn block_of(byte: u8) -> Vec<u8> {
    vec![byte; BLOCK]
}

/// The distinct per-process data block (so a misattributed read cannot
/// accidentally match).
fn proc_block(pid: Pid) -> Vec<u8> {
    block_of(b'a' + (pid.0 % 26) as u8)
}

fn private_file(pid: Pid) -> String {
    format!("/f{}", pid.0)
}

fn storm_file(pid: Pid) -> String {
    format!("/shared/f{}", pid.0)
}

fn rename_file(pid: Pid, flip: bool) -> String {
    format!("/shared/r{}_{}", pid.0, if flip { "b" } else { "a" })
}

const SHARED: &str = "/shared";
const SHARED_FILE: &str = "/shared_file";

/// All four families at the given scale, in script (sequential) form.
pub fn contention_scripts(opts: ContentionOptions) -> Vec<Script> {
    vec![
        drbh_script(opts),
        drbl_script(opts),
        create_unlink_storm_script(opts),
        rename_storm_script(opts),
    ]
}

/// All four families at the given scale, in concurrent trace form.
pub fn contention_traces(opts: ContentionOptions) -> Vec<Trace> {
    vec![
        drbh_trace(opts),
        drbl_trace(opts),
        create_unlink_storm_trace(opts),
        rename_storm_trace(opts),
    ]
}

fn new_script(family: &str, opts: ContentionOptions) -> Script {
    Script::new(format!("contention___{family}_{}", opts.tag()), "contention")
}

fn spawn_procs(script: &mut Script, opts: ContentionOptions) {
    for pid in opts.pids() {
        if pid != INITIAL_PID {
            script.create_process(pid, Uid(0), Gid(0));
        }
    }
}

/// Shared-file read contention: one process writes a shared file, then every
/// process opens it and repeatedly `pread`s the same block, with one
/// overlapping writer round in the middle.
pub fn drbh_script(opts: ContentionOptions) -> Script {
    let mut s = new_script("drbh", opts);
    s.call(OsCommand::Open(
        SHARED_FILE.into(),
        OpenFlags::O_CREAT | OpenFlags::O_RDWR,
        Some(FileMode::new(0o644)),
    ));
    s.call(OsCommand::Write(Fd(3), block_of(b'x')));
    s.call(OsCommand::Close(Fd(3)));
    spawn_procs(&mut s, opts);
    for pid in opts.pids() {
        let flags =
            if pid == INITIAL_PID { OpenFlags::O_RDWR } else { OpenFlags::O_RDONLY };
        s.call_as(pid, OsCommand::Open(SHARED_FILE.into(), flags, None));
    }
    for op in 0..opts.ops_per_process {
        for pid in opts.pids() {
            if pid == INITIAL_PID && op == opts.ops_per_process / 2 {
                // The writer round: read-write contention on the shared block.
                s.call_as(pid, OsCommand::Pwrite(Fd(3), block_of(b'Z'), 0));
            } else {
                s.call_as(pid, OsCommand::Pread(Fd(3), BLOCK, 0));
            }
        }
    }
    for pid in opts.pids() {
        s.call_as(pid, OsCommand::Close(Fd(3)));
    }
    s
}

/// Private-file read contention: every process creates, fills and repeatedly
/// `pread`s its own file. No two operations touch the same object, so the
/// whole workload commutes.
pub fn drbl_script(opts: ContentionOptions) -> Script {
    let mut s = new_script("drbl", opts);
    spawn_procs(&mut s, opts);
    for pid in opts.pids() {
        s.call_as(
            pid,
            OsCommand::Open(
                private_file(pid).as_str().into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                Some(FileMode::new(0o644)),
            ),
        );
        s.call_as(pid, OsCommand::Write(Fd(3), proc_block(pid)));
    }
    for _ in 0..opts.ops_per_process {
        for pid in opts.pids() {
            s.call_as(pid, OsCommand::Pread(Fd(3), BLOCK, 0));
        }
    }
    for pid in opts.pids() {
        s.call_as(pid, OsCommand::Close(Fd(3)));
    }
    s
}

/// Same-directory create/unlink storm: every process repeatedly creates and
/// unlinks its own entry in one shared directory.
pub fn create_unlink_storm_script(opts: ContentionOptions) -> Script {
    let mut s = new_script("create_unlink_storm", opts);
    s.call(OsCommand::Mkdir(SHARED.into(), FileMode::new(0o777)));
    spawn_procs(&mut s, opts);
    for _ in 0..opts.ops_per_process {
        for pid in opts.pids() {
            s.call_as(
                pid,
                OsCommand::Open(
                    storm_file(pid).as_str().into(),
                    OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                    Some(FileMode::new(0o644)),
                ),
            );
        }
        for pid in opts.pids() {
            s.call_as(pid, OsCommand::Close(Fd(3)));
        }
        for pid in opts.pids() {
            s.call_as(pid, OsCommand::Unlink(storm_file(pid).as_str().into()));
        }
    }
    s
}

/// Same-directory rename storm: every process flips its own file between two
/// names. `rename` is treated as non-commuting by the footprint analysis, so
/// this family runs with POR effectively disabled.
pub fn rename_storm_script(opts: ContentionOptions) -> Script {
    let mut s = new_script("rename_storm", opts);
    s.call(OsCommand::Mkdir(SHARED.into(), FileMode::new(0o777)));
    for pid in opts.pids() {
        s.call(OsCommand::Open(
            rename_file(pid, false).as_str().into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(FileMode::new(0o644)),
        ));
        s.call(OsCommand::Close(Fd(3)));
    }
    spawn_procs(&mut s, opts);
    for op in 0..opts.ops_per_process {
        let flip = op % 2 == 0;
        for pid in opts.pids() {
            s.call_as(
                pid,
                OsCommand::Rename(
                    rename_file(pid, !flip).as_str().into(),
                    rename_file(pid, flip).as_str().into(),
                ),
            );
        }
    }
    s
}

/// Trace-building helper: issue every call of the round, then deliver every
/// return, so all calls are in flight when the first return is matched.
fn round(trace: &mut Trace, steps: &[(Pid, OsCommand, ErrorOrValue)]) {
    for (pid, cmd, _) in steps {
        trace.push_label(OsLabel::Call(*pid, cmd.clone()));
    }
    for (pid, _, ret) in steps {
        trace.push_label(OsLabel::Return(*pid, ret.clone()));
    }
}

fn new_trace(family: &str, opts: ContentionOptions) -> Trace {
    let mut t = Trace::new(format!("contention___{family}_{}", opts.tag()), "contention");
    for pid in opts.pids() {
        if pid != INITIAL_PID {
            t.push_label(OsLabel::Create(pid, Uid(0), Gid(0)));
        }
    }
    t
}

fn ok(v: RetValue) -> ErrorOrValue {
    ErrorOrValue::Value(v)
}

/// Concurrent form of [`drbh_script`]. The writer round's returns are
/// ordered readers-first: reads snapshot the file at their τ step while
/// writes apply their data when the return is matched, so every read that
/// returns before the write sees the old block.
pub fn drbh_trace(opts: ContentionOptions) -> Trace {
    let mut t = new_trace("drbh", opts);
    t.push_call_return(
        INITIAL_PID,
        OsCommand::Open(
            SHARED_FILE.into(),
            OpenFlags::O_CREAT | OpenFlags::O_RDWR,
            Some(FileMode::new(0o644)),
        ),
        ok(RetValue::Fd(Fd(3))),
    );
    t.push_call_return(
        INITIAL_PID,
        OsCommand::Write(Fd(3), block_of(b'x')),
        ok(RetValue::Num(BLOCK as i64)),
    );
    t.push_call_return(INITIAL_PID, OsCommand::Close(Fd(3)), ok(RetValue::None));
    let open_round: Vec<_> = opts
        .pids()
        .map(|pid| {
            let flags =
                if pid == INITIAL_PID { OpenFlags::O_RDWR } else { OpenFlags::O_RDONLY };
            (pid, OsCommand::Open(SHARED_FILE.into(), flags, None), ok(RetValue::Fd(Fd(3))))
        })
        .collect();
    round(&mut t, &open_round);
    let writer_op = opts.ops_per_process / 2;
    let mut block = block_of(b'x');
    for op in 0..opts.ops_per_process {
        let mut steps: Vec<_> = opts
            .pids()
            .filter(|pid| !(*pid == INITIAL_PID && op == writer_op))
            .map(|pid| {
                (pid, OsCommand::Pread(Fd(3), BLOCK, 0), ok(RetValue::Bytes(block.clone())))
            })
            .collect();
        if op == writer_op {
            // Writer last: its data lands only when its return is matched.
            block = block_of(b'Z');
            steps.push((
                INITIAL_PID,
                OsCommand::Pwrite(Fd(3), block.clone(), 0),
                ok(RetValue::Num(BLOCK as i64)),
            ));
        }
        round(&mut t, &steps);
    }
    let close_round: Vec<_> = opts
        .pids()
        .map(|pid| (pid, OsCommand::Close(Fd(3)), ok(RetValue::None)))
        .collect();
    round(&mut t, &close_round);
    t
}

/// Concurrent form of [`drbl_script`].
pub fn drbl_trace(opts: ContentionOptions) -> Trace {
    let mut t = new_trace("drbl", opts);
    let open_round: Vec<_> = opts
        .pids()
        .map(|pid| {
            (
                pid,
                OsCommand::Open(
                    private_file(pid).as_str().into(),
                    OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                    Some(FileMode::new(0o644)),
                ),
                ok(RetValue::Fd(Fd(3))),
            )
        })
        .collect();
    round(&mut t, &open_round);
    let write_round: Vec<_> = opts
        .pids()
        .map(|pid| {
            (pid, OsCommand::Write(Fd(3), proc_block(pid)), ok(RetValue::Num(BLOCK as i64)))
        })
        .collect();
    round(&mut t, &write_round);
    for _ in 0..opts.ops_per_process {
        let read_round: Vec<_> = opts
            .pids()
            .map(|pid| {
                (pid, OsCommand::Pread(Fd(3), BLOCK, 0), ok(RetValue::Bytes(proc_block(pid))))
            })
            .collect();
        round(&mut t, &read_round);
    }
    let close_round: Vec<_> = opts
        .pids()
        .map(|pid| (pid, OsCommand::Close(Fd(3)), ok(RetValue::None)))
        .collect();
    round(&mut t, &close_round);
    t
}

/// Concurrent form of [`create_unlink_storm_script`].
pub fn create_unlink_storm_trace(opts: ContentionOptions) -> Trace {
    let mut t = new_trace("create_unlink_storm", opts);
    t.push_call_return(
        INITIAL_PID,
        OsCommand::Mkdir(SHARED.into(), FileMode::new(0o777)),
        ok(RetValue::None),
    );
    for _ in 0..opts.ops_per_process {
        let create_round: Vec<_> = opts
            .pids()
            .map(|pid| {
                (
                    pid,
                    OsCommand::Open(
                        storm_file(pid).as_str().into(),
                        OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                        Some(FileMode::new(0o644)),
                    ),
                    ok(RetValue::Fd(Fd(3))),
                )
            })
            .collect();
        round(&mut t, &create_round);
        let close_round: Vec<_> = opts
            .pids()
            .map(|pid| (pid, OsCommand::Close(Fd(3)), ok(RetValue::None)))
            .collect();
        round(&mut t, &close_round);
        let unlink_round: Vec<_> = opts
            .pids()
            .map(|pid| {
                (pid, OsCommand::Unlink(storm_file(pid).as_str().into()), ok(RetValue::None))
            })
            .collect();
        round(&mut t, &unlink_round);
    }
    t
}

/// Concurrent form of [`rename_storm_script`].
pub fn rename_storm_trace(opts: ContentionOptions) -> Trace {
    let mut t = new_trace("rename_storm", opts);
    t.push_call_return(
        INITIAL_PID,
        OsCommand::Mkdir(SHARED.into(), FileMode::new(0o777)),
        ok(RetValue::None),
    );
    for pid in opts.pids() {
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Open(
                rename_file(pid, false).as_str().into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o644)),
            ),
            ok(RetValue::Fd(Fd(3))),
        );
        t.push_call_return(INITIAL_PID, OsCommand::Close(Fd(3)), ok(RetValue::None));
    }
    for op in 0..opts.ops_per_process {
        let flip = op % 2 == 0;
        let rename_round: Vec<_> = opts
            .pids()
            .map(|pid| {
                (
                    pid,
                    OsCommand::Rename(
                        rename_file(pid, !flip).as_str().into(),
                        rename_file(pid, flip).as_str().into(),
                    ),
                    ok(RetValue::None),
                )
            })
            .collect();
        round(&mut t, &rename_round);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ContentionOptions {
        ContentionOptions::new(3, 2)
    }

    #[test]
    fn families_scale_with_the_knob() {
        let small = contention_scripts(ContentionOptions::new(2, 1));
        let large = contention_scripts(ContentionOptions::new(4, 3));
        assert_eq!(small.len(), large.len());
        for (s, l) in small.iter().zip(&large) {
            assert!(s.call_count() < l.call_count(), "{} did not scale", s.name);
        }
    }

    #[test]
    fn script_and_trace_families_share_names() {
        let scripts = contention_scripts(opts());
        let traces = contention_traces(opts());
        assert_eq!(scripts.len(), traces.len());
        for (s, t) in scripts.iter().zip(&traces) {
            assert_eq!(s.name, t.name);
            assert_eq!(t.group, "contention");
        }
    }

    #[test]
    fn traces_overlap_calls_within_a_round() {
        for t in contention_traces(opts()) {
            let mut in_flight = 0usize;
            let mut max_in_flight = 0usize;
            for label in t.labels() {
                match label {
                    OsLabel::Call(..) => {
                        in_flight += 1;
                        max_in_flight = max_in_flight.max(in_flight);
                    }
                    OsLabel::Return(..) => in_flight -= 1,
                    _ => {}
                }
            }
            assert_eq!(in_flight, 0, "{}: unbalanced calls/returns", t.name);
            assert!(
                max_in_flight >= 3,
                "{}: expected 3 overlapping calls, saw {max_in_flight}",
                t.name
            );
        }
    }
}
