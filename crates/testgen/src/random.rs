//! Randomised test generation.
//!
//! §8 of the paper notes that, given an executable oracle, randomised testing
//! becomes a low-cost complement to the combinatorial suite: there is no need
//! to predict the outcome of a random call sequence, because the oracle
//! decides conformance after the fact. This module produces reproducible
//! (seeded) random call sequences over a small name universe so that calls
//! frequently collide on the same objects.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sibylfs_core::commands::OsCommand;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{DirHandleId, Fd};
use sibylfs_script::Script;

/// Options for random sequence generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomOptions {
    /// RNG seed (sequences are fully determined by the seed).
    pub seed: u64,
    /// Number of scripts to generate.
    pub scripts: usize,
    /// Number of calls per script.
    pub calls_per_script: usize,
}

impl Default for RandomOptions {
    fn default() -> Self {
        RandomOptions { seed: 0x5157_1BF5, scripts: 100, calls_per_script: 30 }
    }
}

const NAMES: &[&str] = &["a", "b", "c", "d", "e", "dir1", "dir2", "s1", "s2", "deep"];

fn random_path(rng: &mut StdRng) -> String {
    let depth = rng.gen_range(1..=3);
    let mut parts = Vec::new();
    for _ in 0..depth {
        parts.push(*NAMES.choose(rng).expect("non-empty"));
    }
    let mut p = parts.join("/");
    if rng.gen_bool(0.2) {
        p = format!("/{p}");
    }
    if rng.gen_bool(0.15) {
        p.push('/');
    }
    p
}

fn random_command(rng: &mut StdRng) -> OsCommand {
    let fd = Fd(rng.gen_range(3..6));
    let dh = DirHandleId(rng.gen_range(1..3));
    match rng.gen_range(0..18) {
        0 => OsCommand::Mkdir(random_path(rng), FileMode::new(0o777)),
        1 => OsCommand::Rmdir(random_path(rng)),
        2 => {
            let mut flags = match rng.gen_range(0..3) {
                0 => OpenFlags::O_RDONLY,
                1 => OpenFlags::O_WRONLY,
                _ => OpenFlags::O_RDWR,
            };
            if rng.gen_bool(0.5) {
                flags = flags | OpenFlags::O_CREAT;
            }
            if rng.gen_bool(0.2) {
                flags = flags | OpenFlags::O_EXCL;
            }
            if rng.gen_bool(0.2) {
                flags = flags | OpenFlags::O_APPEND;
            }
            if rng.gen_bool(0.2) {
                flags = flags | OpenFlags::O_TRUNC;
            }
            OsCommand::Open(random_path(rng), flags, Some(FileMode::new(0o644)))
        }
        3 => OsCommand::Close(fd),
        4 => OsCommand::Write(fd, vec![b'x'; rng.gen_range(0..32)]),
        5 => OsCommand::Read(fd, rng.gen_range(0..64)),
        6 => OsCommand::Pwrite(fd, vec![b'y'; rng.gen_range(0..16)], rng.gen_range(-1..32)),
        7 => OsCommand::Pread(fd, rng.gen_range(0..32), rng.gen_range(-1..32)),
        8 => OsCommand::Lseek(
            fd,
            rng.gen_range(-8..64),
            *[SeekWhence::Set, SeekWhence::Cur, SeekWhence::End].choose(rng).expect("non-empty"),
        ),
        9 => OsCommand::Rename(random_path(rng), random_path(rng)),
        10 => OsCommand::Link(random_path(rng), random_path(rng)),
        11 => OsCommand::Symlink(random_path(rng), random_path(rng)),
        12 => OsCommand::Unlink(random_path(rng)),
        13 => OsCommand::Stat(random_path(rng)),
        14 => OsCommand::Lstat(random_path(rng)),
        15 => OsCommand::Opendir(random_path(rng)),
        16 => OsCommand::Readdir(dh),
        _ => OsCommand::Truncate(random_path(rng), rng.gen_range(-1..128)),
    }
}

/// Generate seeded random call-sequence scripts.
pub fn random_scripts(opts: RandomOptions) -> Vec<Script> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut out = Vec::with_capacity(opts.scripts);
    for i in 0..opts.scripts {
        let mut s = Script::new(format!("random___seq_{i:05}"), "random");
        for _ in 0..opts.calls_per_script {
            s.call(random_command(&mut rng));
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = random_scripts(RandomOptions { seed: 7, scripts: 5, calls_per_script: 10 });
        let b = random_scripts(RandomOptions { seed: 7, scripts: 5, calls_per_script: 10 });
        let c = random_scripts(RandomOptions { seed: 8, scripts: 5, calls_per_script: 10 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|s| s.call_count() == 10));
    }

    #[test]
    fn random_scripts_round_trip_through_text() {
        for s in random_scripts(RandomOptions { seed: 42, scripts: 10, calls_per_script: 20 }) {
            let text = sibylfs_script::render_script(&s);
            let parsed = sibylfs_script::parse_script(&text).unwrap();
            assert_eq!(parsed, s);
        }
    }
}
