//! Randomised test generation.
//!
//! §8 of the paper notes that, given an executable oracle, randomised testing
//! becomes a low-cost complement to the combinatorial suite: there is no need
//! to predict the outcome of a random call sequence, because the oracle
//! decides conformance after the fact. This module produces reproducible
//! (seeded) random call sequences over a small name universe so that calls
//! frequently collide on the same objects.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sibylfs_core::commands::OsCommand;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{DirHandleId, Fd};
use sibylfs_script::Script;

/// Options for random sequence generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomOptions {
    /// RNG seed (sequences are fully determined by the seed).
    pub seed: u64,
    /// Number of scripts to generate.
    pub scripts: usize,
    /// Number of calls per script.
    pub calls_per_script: usize,
}

impl Default for RandomOptions {
    fn default() -> Self {
        RandomOptions { seed: 0x5157_1BF5, scripts: 100, calls_per_script: 30 }
    }
}

/// Derive an independent child seed from a base seed and an index
/// (SplitMix64 over the pair), so that every generated artefact — each random
/// script, each exploration worker, each mutation — owns a seed of its own
/// that is a pure function of the one user-supplied seed. Replaying any single
/// artefact never requires replaying the whole run.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    // SplitMix64 finalizer over the combined state; the odd multiplier mixes
    // the index in so that (seed, 0), (seed, 1), … are decorrelated.
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The name given to the random script at `index`, with its own derived seed
/// embedded (`random___seq_00007_sDEADBEEF…`). Because the name is printed in
/// the `# Test` header of every rendered script, every generated-corpus file
/// carries the seed that regenerates it bit-for-bit (see
/// [`script_seed_from_name`] and [`random_script_with_seed`]).
pub fn random_script_name(base_seed: u64, index: usize) -> String {
    format!("random___seq_{index:05}_s{:016x}", split_seed(base_seed, index as u64))
}

/// Recover the embedded per-script seed from a name produced by
/// [`random_script_name`].
pub fn script_seed_from_name(name: &str) -> Option<u64> {
    let hex = name.rsplit("_s").next()?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Generate the single random script owned by `seed`: the replay entry point
/// for a seed recovered from a corpus header.
pub fn random_script_with_seed(name: impl Into<String>, seed: u64, calls: usize) -> Script {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Script::new(name, "random");
    for _ in 0..calls {
        s.call(random_command(&mut rng));
    }
    s
}

const NAMES: &[&str] = &["a", "b", "c", "d", "e", "dir1", "dir2", "s1", "s2", "deep"];

fn random_path(rng: &mut StdRng) -> String {
    let depth = rng.gen_range(1..=3);
    let mut parts = Vec::new();
    for _ in 0..depth {
        parts.push(*NAMES.choose(rng).expect("non-empty"));
    }
    let mut p = parts.join("/");
    if rng.gen_bool(0.2) {
        p = format!("/{p}");
    }
    if rng.gen_bool(0.15) {
        p.push('/');
    }
    p
}

/// One random libc call over the small colliding name universe. Public so the
/// exploration engine's mutator can insert fresh calls from the same
/// distribution.
pub fn random_command(rng: &mut StdRng) -> OsCommand {
    let fd = Fd(rng.gen_range(3..6));
    let dh = DirHandleId(rng.gen_range(1..3));
    match rng.gen_range(0..18) {
        0 => OsCommand::Mkdir(random_path(rng).into(), FileMode::new(0o777)),
        1 => OsCommand::Rmdir(random_path(rng).into()),
        2 => {
            let mut flags = match rng.gen_range(0..3) {
                0 => OpenFlags::O_RDONLY,
                1 => OpenFlags::O_WRONLY,
                _ => OpenFlags::O_RDWR,
            };
            if rng.gen_bool(0.5) {
                flags = flags | OpenFlags::O_CREAT;
            }
            if rng.gen_bool(0.2) {
                flags = flags | OpenFlags::O_EXCL;
            }
            if rng.gen_bool(0.2) {
                flags = flags | OpenFlags::O_APPEND;
            }
            if rng.gen_bool(0.2) {
                flags = flags | OpenFlags::O_TRUNC;
            }
            OsCommand::Open(random_path(rng).into(), flags, Some(FileMode::new(0o644)))
        }
        3 => OsCommand::Close(fd),
        4 => OsCommand::Write(fd, vec![b'x'; rng.gen_range(0..32)]),
        5 => OsCommand::Read(fd, rng.gen_range(0..64)),
        6 => OsCommand::Pwrite(fd, vec![b'y'; rng.gen_range(0..16)], rng.gen_range(-1..32)),
        7 => OsCommand::Pread(fd, rng.gen_range(0..32), rng.gen_range(-1..32)),
        8 => OsCommand::Lseek(
            fd,
            rng.gen_range(-8..64),
            *[SeekWhence::Set, SeekWhence::Cur, SeekWhence::End].choose(rng).expect("non-empty"),
        ),
        9 => OsCommand::Rename(random_path(rng).into(), random_path(rng).into()),
        10 => OsCommand::Link(random_path(rng).into(), random_path(rng).into()),
        11 => OsCommand::Symlink(random_path(rng).into(), random_path(rng).into()),
        12 => OsCommand::Unlink(random_path(rng).into()),
        13 => OsCommand::Stat(random_path(rng).into()),
        14 => OsCommand::Lstat(random_path(rng).into()),
        15 => OsCommand::Opendir(random_path(rng).into()),
        16 => OsCommand::Readdir(dh),
        _ => OsCommand::Truncate(random_path(rng).into(), rng.gen_range(-1..128)),
    }
}

/// Generate seeded random call-sequence scripts.
///
/// All randomness derives from the single `opts.seed` through [`split_seed`]:
/// script `i` is generated by its own RNG seeded with `split_seed(seed, i)`,
/// and that per-script seed is embedded in the script name (and hence in the
/// `# Test` header of every corpus file), so any one script can be replayed
/// bit-for-bit without regenerating the rest of the corpus.
pub fn random_scripts(opts: RandomOptions) -> Vec<Script> {
    let mut out = Vec::with_capacity(opts.scripts);
    for i in 0..opts.scripts {
        let name = random_script_name(opts.seed, i);
        let seed = split_seed(opts.seed, i as u64);
        out.push(random_script_with_seed(name, seed, opts.calls_per_script));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = random_scripts(RandomOptions { seed: 7, scripts: 5, calls_per_script: 10 });
        let b = random_scripts(RandomOptions { seed: 7, scripts: 5, calls_per_script: 10 });
        let c = random_scripts(RandomOptions { seed: 8, scripts: 5, calls_per_script: 10 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|s| s.call_count() == 10));
    }

    #[test]
    fn every_script_replays_from_the_seed_in_its_own_header() {
        let opts = RandomOptions { seed: 0xC0FF_EE00, scripts: 8, calls_per_script: 12 };
        for script in random_scripts(opts) {
            // The rendered corpus file's `# Test` header carries the name…
            let text = sibylfs_script::render_script(&script);
            assert!(text.contains(&format!("# Test {}", script.name)), "{text}");
            // …and the name carries the per-script seed, from which the
            // script regenerates bit-for-bit in isolation.
            let seed = script_seed_from_name(&script.name)
                .unwrap_or_else(|| panic!("no seed in name {:?}", script.name));
            let replayed =
                random_script_with_seed(script.name.clone(), seed, opts.calls_per_script);
            assert_eq!(replayed, script);
        }
    }

    #[test]
    fn split_seed_is_deterministic_and_decorrelated() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
        // Neighbouring indices and neighbouring seeds give unrelated streams.
        let distinct: std::collections::BTreeSet<u64> = (0..64)
            .map(|i| split_seed(42, i))
            .chain((100..164).map(|s| split_seed(s, 0)))
            .collect();
        assert_eq!(distinct.len(), 128);
        assert!(script_seed_from_name("random___seq_00001_sdeadbeefdeadbeef").is_some());
        assert!(script_seed_from_name("rename___rename_emptydir___nonemptydir").is_none());
    }

    #[test]
    fn random_scripts_round_trip_through_text() {
        for s in random_scripts(RandomOptions { seed: 42, scripts: 10, calls_per_script: 20 }) {
            let text = sibylfs_script::render_script(&s);
            let parsed = sibylfs_script::parse_script(&text).unwrap();
            assert_eq!(parsed, s);
        }
    }
}
