//! Combinatorial generation of single-call tests: one-path commands, two-path
//! commands, and the `open` flag sweep.

use sibylfs_core::commands::OsCommand;
use sibylfs_core::flags::{FileMode, OpenFlags};
use sibylfs_script::Script;

use crate::fixture::{path_token, script_with_fixture, PATH_POOL};

/// Generate the tests for commands that take a single path argument.
///
/// Each pool path is combined with every relevant argument variation of the
/// command (modes for `mkdir`/`chmod`, lengths for `truncate`, …).
pub fn single_path_scripts() -> Vec<Script> {
    let mut out = Vec::new();
    for p in PATH_POOL {
        let tok = path_token(p.path);
        let path = p.path;

        for (case, cmd) in [
            ("stat", OsCommand::Stat(path.into())),
            ("lstat", OsCommand::Lstat(path.into())),
            ("unlink", OsCommand::Unlink(path.into())),
            ("rmdir", OsCommand::Rmdir(path.into())),
            ("opendir", OsCommand::Opendir(path.into())),
            ("readlink", OsCommand::Readlink(path.into())),
            ("chdir", OsCommand::Chdir(path.into())),
        ] {
            let mut s = script_with_fixture(case, &tok);
            s.call(cmd);
            out.push(s);
        }

        for mode in [0o777u32, 0o700, 0o000] {
            let mut s = script_with_fixture("mkdir", &format!("{tok}___mode{mode:o}"));
            s.call(OsCommand::Mkdir(path.into(), FileMode::new(mode)));
            out.push(s);
        }
        for mode in [0o644u32, 0o000] {
            let mut s = script_with_fixture("chmod", &format!("{tok}___mode{mode:o}"));
            s.call(OsCommand::Chmod(path.into(), FileMode::new(mode)));
            out.push(s);
        }
        for len in [0i64, 17, -1] {
            let mut s = script_with_fixture("truncate", &format!("{tok}___len{len}"));
            s.call(OsCommand::Truncate(path.into(), len));
            out.push(s);
        }
        {
            let mut s = script_with_fixture("chown", &tok);
            s.call(OsCommand::Chown(
                path.into(),
                sibylfs_core::types::Uid(1000),
                sibylfs_core::types::Gid(1000),
            ));
            out.push(s);
        }
    }
    out
}

/// Generate the tests for commands that take two path arguments
/// (`rename`, `link`, `symlink`), covering all pairs of pool paths.
///
/// Pair-level properties (equal paths, different names for the same file,
/// one path a prefix of the other) are covered because the pool contains
/// hard-link aliases and nested paths.
pub fn two_path_scripts() -> Vec<Script> {
    let mut out = Vec::new();
    for a in PATH_POOL {
        for b in PATH_POOL {
            let ta = path_token(a.path);
            let tb = path_token(b.path);
            let case = format!("{ta}___{tb}");

            let mut s = script_with_fixture("rename", &case);
            s.call(OsCommand::Rename(a.path.into(), b.path.into()));
            out.push(s);

            let mut s = script_with_fixture("link", &case);
            s.call(OsCommand::Link(a.path.into(), b.path.into()));
            out.push(s);

            let mut s = script_with_fixture("symlink", &case);
            s.call(OsCommand::Symlink(a.path.into(), b.path.into()));
            out.push(s);
        }
    }
    out
}

/// The access-mode portion of the `open` flag sweep.
const ACCESS_MODES: &[(&str, OpenFlags)] = &[
    ("rdonly", OpenFlags::O_RDONLY),
    ("wronly", OpenFlags::O_WRONLY),
    ("rdwr", OpenFlags::O_RDWR),
];

/// The optional flags swept combinatorially for `open` (one argument of
/// `open` is a bitfield, giving it by far the largest test group, §6.1).
const OPTIONAL_FLAGS: &[(&str, OpenFlags)] = &[
    ("creat", OpenFlags::O_CREAT),
    ("excl", OpenFlags::O_EXCL),
    ("trunc", OpenFlags::O_TRUNC),
    ("append", OpenFlags::O_APPEND),
    ("directory", OpenFlags::O_DIRECTORY),
    ("nofollow", OpenFlags::O_NOFOLLOW),
];

/// Generate the `open` tests: every pool path × every access mode × every
/// subset of the optional flags.
pub fn open_scripts() -> Vec<Script> {
    let mut out = Vec::new();
    let subsets = 1usize << OPTIONAL_FLAGS.len();
    for p in PATH_POOL {
        let tok = path_token(p.path);
        for (aname, aflag) in ACCESS_MODES {
            for subset in 0..subsets {
                let mut flags = *aflag;
                let mut names = vec![*aname];
                for (i, (fname, fflag)) in OPTIONAL_FLAGS.iter().enumerate() {
                    if subset & (1 << i) != 0 {
                        flags = flags | *fflag;
                        names.push(*fname);
                    }
                }
                let case = format!("{tok}___{}", names.join("_"));
                let mut s = script_with_fixture("open", &case);
                let mode = if flags.contains(OpenFlags::O_CREAT) {
                    Some(FileMode::new(0o644))
                } else {
                    None
                };
                s.call(OsCommand::Open(p.path.into(), flags, mode));
                out.push(s);
            }
        }
    }
    out
}

/// A reduced `open` sweep (a handful of representative flag combinations per
/// path) used by the quick suite.
pub fn open_scripts_quick() -> Vec<Script> {
    let combos: &[(&str, OpenFlags)] = &[
        ("rdonly", OpenFlags::O_RDONLY),
        ("creat_wronly", OpenFlags::O_CREAT | OpenFlags::O_WRONLY),
        ("creat_excl_wronly", OpenFlags::O_CREAT | OpenFlags::O_EXCL | OpenFlags::O_WRONLY),
        ("trunc_rdwr", OpenFlags::O_TRUNC | OpenFlags::O_RDWR),
        ("directory_rdonly", OpenFlags::O_DIRECTORY),
        ("nofollow_rdonly", OpenFlags::O_NOFOLLOW),
        (
            "creat_excl_directory",
            OpenFlags::O_CREAT | OpenFlags::O_EXCL | OpenFlags::O_DIRECTORY,
        ),
        ("append_wronly", OpenFlags::O_APPEND | OpenFlags::O_WRONLY),
    ];
    let mut out = Vec::new();
    for p in PATH_POOL {
        let tok = path_token(p.path);
        for (cname, flags) in combos {
            let mut s = script_with_fixture("open", &format!("{tok}___{cname}"));
            let mode = if flags.contains(OpenFlags::O_CREAT) {
                Some(FileMode::new(0o644))
            } else {
                None
            };
            s.call(OsCommand::Open(p.path.into(), *flags, mode));
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_path_counts_scale_with_pool_and_variants() {
        let scripts = single_path_scripts();
        // 7 plain commands + 3 mkdir + 2 chmod + 3 truncate + 1 chown = 16 per path.
        assert_eq!(scripts.len(), PATH_POOL.len() * 16);
        let names: BTreeSet<_> = scripts.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), scripts.len(), "script names must be unique");
    }

    #[test]
    fn two_path_commands_cover_all_pairs() {
        let scripts = two_path_scripts();
        assert_eq!(scripts.len(), PATH_POOL.len() * PATH_POOL.len() * 3);
        // The paper's motivating case is present: renaming one path onto
        // another where both are directories.
        assert!(scripts.iter().any(|s| s.name.starts_with("rename___empty_dir___nonempty_dir")));
    }

    #[test]
    fn open_sweep_covers_flag_space() {
        let scripts = open_scripts();
        assert_eq!(scripts.len(), PATH_POOL.len() * 3 * 64);
        let quick = open_scripts_quick();
        assert!(quick.len() < scripts.len() / 10);
    }

    #[test]
    fn every_generated_script_has_exactly_one_test_call_after_the_fixture() {
        let fixture_calls = script_with_fixture("x", "y").call_count();
        for s in single_path_scripts().iter().chain(open_scripts_quick().iter()) {
            assert_eq!(s.call_count(), fixture_calls + 1, "{}", s.name);
        }
    }
}
