//! The standard fixture state and the path pool used by the combinatorial
//! generator.
//!
//! Equivalence partitioning (§6.1) is over *properties* of paths and of the
//! file-system state they are interpreted in: whether the path is empty, a
//! single slash, has a trailing slash, how many leading slashes it has, what
//! it resolves to (file, directory, symlink, nonexistent entry, resolution
//! error), whether the directory it names is empty, and whether it contains a
//! symlink component. Every generated test first builds one standard fixture
//! containing at least one representative object for each class, then issues
//! the command under test with paths drawn from the pool.

use serde::{Deserialize, Serialize};

use sibylfs_core::commands::OsCommand;
use sibylfs_core::flags::{FileMode, OpenFlags};
use sibylfs_script::Script;

/// What a pool path resolves to within the standard fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PathClass {
    /// An existing regular file.
    File,
    /// An existing empty directory.
    EmptyDir,
    /// An existing non-empty directory.
    NonEmptyDir,
    /// A symlink to a regular file.
    SymlinkToFile,
    /// A symlink to a directory.
    SymlinkToDir,
    /// A symlink whose target does not exist.
    BrokenSymlink,
    /// A symlink that points at itself.
    SymlinkLoop,
    /// A missing entry in an existing directory.
    Missing,
    /// A path whose resolution fails (missing intermediate, file used as a
    /// directory, …).
    ResolutionError,
    /// The root directory (or `.`/`..` forms of it).
    Root,
    /// The empty string.
    Empty,
}

/// One entry of the path pool: the literal path plus its classification and
/// syntactic properties.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolPath {
    /// The path as written in generated scripts.
    pub path: &'static str,
    /// What it resolves to in the standard fixture.
    pub class: PathClass,
    /// Whether it ends with a slash.
    pub trailing_slash: bool,
    /// Number of leading slashes.
    pub leading_slashes: usize,
    /// Whether a symlink occurs in a non-final component.
    pub symlink_component: bool,
}

const fn pool(
    path: &'static str,
    class: PathClass,
    trailing_slash: bool,
    leading_slashes: usize,
    symlink_component: bool,
) -> PoolPath {
    PoolPath { path, class, trailing_slash, leading_slashes, symlink_component }
}

/// The standard path pool. Every logically possible combination of the
/// partitioning properties has at least one representative (and the
/// impossible combinations — e.g. an empty path with a trailing slash — have
/// none, by construction).
pub const PATH_POOL: &[PoolPath] = &[
    pool("", PathClass::Empty, false, 0, false),
    pool("/", PathClass::Root, false, 1, false),
    pool(".", PathClass::Root, false, 0, false),
    pool("..", PathClass::Root, false, 0, false),
    pool("f.txt", PathClass::File, false, 0, false),
    pool("/f.txt", PathClass::File, false, 1, false),
    pool("//f.txt", PathClass::File, false, 2, false),
    pool("///f.txt", PathClass::File, false, 3, false),
    pool("f.txt/", PathClass::File, true, 0, false),
    pool("hardlink_f", PathClass::File, false, 0, false),
    pool("nonempty_dir/f1", PathClass::File, false, 0, false),
    pool("empty_dir", PathClass::EmptyDir, false, 0, false),
    pool("empty_dir/", PathClass::EmptyDir, true, 0, false),
    pool("/empty_dir", PathClass::EmptyDir, false, 1, false),
    pool("nonempty_dir", PathClass::NonEmptyDir, false, 0, false),
    pool("nonempty_dir/", PathClass::NonEmptyDir, true, 0, false),
    pool("empty_dir/.", PathClass::Root, false, 0, false),
    pool("nonempty_dir/..", PathClass::Root, false, 0, false),
    pool("s_file", PathClass::SymlinkToFile, false, 0, false),
    pool("s_file/", PathClass::SymlinkToFile, true, 0, false),
    pool("s_dir", PathClass::SymlinkToDir, false, 0, false),
    pool("s_dir/", PathClass::SymlinkToDir, true, 0, false),
    pool("s_dir/f1", PathClass::File, false, 0, true),
    pool("s_broken", PathClass::BrokenSymlink, false, 0, false),
    pool("s_loop", PathClass::SymlinkLoop, false, 0, false),
    pool("s_loop/x", PathClass::ResolutionError, false, 0, true),
    pool("nonexist", PathClass::Missing, false, 0, false),
    pool("nonexist/", PathClass::Missing, true, 0, false),
    pool("/nonexist", PathClass::Missing, false, 1, false),
    pool("empty_dir/nonexist", PathClass::Missing, false, 0, false),
    pool("nonexist_dir/nonexist", PathClass::ResolutionError, false, 0, false),
    pool("f.txt/under_file", PathClass::ResolutionError, false, 0, false),
];

/// The fixture objects referenced by [`PATH_POOL`]. The symlink `s_dir`
/// points at `nonempty_dir` so that `s_dir/f1` resolves through a symlink
/// component.
pub fn fixture_preamble(script: &mut Script) {
    let mode_dir = FileMode::new(0o777);
    let mode_file = FileMode::new(0o644);
    script
        .call(OsCommand::Mkdir("empty_dir".into(), mode_dir))
        .call(OsCommand::Mkdir("nonempty_dir".into(), mode_dir))
        .call(OsCommand::Open(
            "nonempty_dir/f1".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(mode_file),
        ))
        .call(OsCommand::Open(
            "f.txt".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(mode_file),
        ))
        .call(OsCommand::Link("f.txt".into(), "hardlink_f".into()))
        .call(OsCommand::Symlink("f.txt".into(), "s_file".into()))
        .call(OsCommand::Symlink("nonempty_dir".into(), "s_dir".into()))
        .call(OsCommand::Symlink("no_such_target".into(), "s_broken".into()))
        .call(OsCommand::Symlink("s_loop".into(), "s_loop".into()));
}

/// A fresh script containing the standard fixture, named
/// `<group>___<case>`.
pub fn script_with_fixture(group: &str, case: &str) -> Script {
    let mut s = Script::new(format!("{group}___{case}"), group);
    fixture_preamble(&mut s);
    s
}

/// Sanitise a path for use inside a script name.
pub fn path_token(p: &str) -> String {
    if p.is_empty() {
        return "EMPTY".to_string();
    }
    p.chars()
        .map(|c| match c {
            '/' => 'S',
            '.' => 'D',
            c if c.is_ascii_alphanumeric() || c == '_' => c,
            _ => 'X',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn pool_paths_are_unique() {
        let set: BTreeSet<&str> = PATH_POOL.iter().map(|p| p.path).collect();
        assert_eq!(set.len(), PATH_POOL.len());
    }

    #[test]
    fn pool_covers_every_class() {
        let classes: BTreeSet<_> = PATH_POOL.iter().map(|p| p.class).collect();
        for c in [
            PathClass::File,
            PathClass::EmptyDir,
            PathClass::NonEmptyDir,
            PathClass::SymlinkToFile,
            PathClass::SymlinkToDir,
            PathClass::BrokenSymlink,
            PathClass::SymlinkLoop,
            PathClass::Missing,
            PathClass::ResolutionError,
            PathClass::Root,
            PathClass::Empty,
        ] {
            assert!(classes.contains(&c), "no pool path of class {c:?}");
        }
    }

    #[test]
    fn pool_covers_syntactic_properties() {
        assert!(PATH_POOL.iter().any(|p| p.trailing_slash));
        assert!(PATH_POOL.iter().any(|p| p.leading_slashes >= 3));
        assert!(PATH_POOL.iter().any(|p| p.symlink_component));
        // The impossible combination "empty path with trailing slash" must not
        // appear.
        assert!(!PATH_POOL.iter().any(|p| p.class == PathClass::Empty && p.trailing_slash));
    }

    #[test]
    fn trailing_slash_flag_matches_path_text() {
        for p in PATH_POOL {
            assert_eq!(p.path.len() > 1 && p.path.ends_with('/'), p.trailing_slash, "{}", p.path);
            assert_eq!(
                p.path.chars().take_while(|c| *c == '/').count(),
                p.leading_slashes,
                "{}",
                p.path
            );
        }
    }

    #[test]
    fn fixture_preamble_is_well_formed() {
        let s = script_with_fixture("stat", "case");
        assert_eq!(s.group, "stat");
        assert!(s.call_count() >= 9);
    }

    #[test]
    fn path_tokens_are_identifier_like() {
        for p in PATH_POOL {
            let t = path_token(p.path);
            assert!(!t.is_empty());
            assert!(t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'), "{t}");
        }
    }
}
