//! Deterministic script families for driving the oracle server under load.
//!
//! The serve load generator wants a stream of scripts that (a) check cleanly
//! against the model when executed on a well-behaved backend, so a verdict
//! mismatch in a load test always means a real bug and never a flaky input,
//! (b) exercise the expensive checker paths (path resolution, fd tables,
//! multiprocess τ-closure), and (c) draw path components from a small fixed
//! pool so a steady-state load run does not grow the process-wide interner.
//!
//! Families are indexed, not random: `loadgen_scripts` with the same options
//! always returns byte-identical scripts, which is what lets the CI smoke job
//! assert server verdicts are bit-identical to batch checking.

use sibylfs_core::commands::OsCommand;
use sibylfs_core::flags::{FileMode, OpenFlags, SeekWhence};
use sibylfs_core::types::{Fd, Gid, Pid, Uid};
use sibylfs_script::Script;

use crate::contention::{self, ContentionOptions};

/// Options for [`loadgen_scripts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenOptions {
    /// Total number of scripts to generate (families are cycled).
    pub scripts: usize,
    /// Rough per-script operation count knob (chain lengths scale with it).
    pub ops_per_script: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions { scripts: 64, ops_per_script: 8 }
    }
}

const FD3: Fd = Fd(3);

fn mode(bits: u32) -> FileMode {
    FileMode::new(bits)
}

/// A metadata-churn script: mkdir/stat/chmod/rmdir over a fixed directory set.
fn metadata_churn(i: usize, ops: usize) -> Script {
    let mut sc = Script::new(format!("loadgen___meta_churn_{i}"), "loadgen");
    let dirs = ["wa", "wb", "wc", "wd"];
    for k in 0..ops {
        let d = dirs[(i + k) % dirs.len()];
        sc.call(OsCommand::Mkdir(d.into(), mode(0o755)))
            .call(OsCommand::Stat(d.into()))
            .call(OsCommand::Chmod(d.into(), mode(0o700)))
            .call(OsCommand::Rmdir(d.into()));
    }
    sc
}

/// A descriptor I/O script: create, write, seek, read back, truncate, unlink.
fn io_roundtrip(i: usize, ops: usize) -> Script {
    let mut sc = Script::new(format!("loadgen___io_roundtrip_{i}"), "loadgen");
    sc.call(OsCommand::Open(
        "io".into(),
        OpenFlags::O_CREAT | OpenFlags::O_RDWR,
        Some(mode(0o644)),
    ));
    for k in 0..ops {
        let chunk = [b'a' + ((i + k) % 26) as u8; 16].to_vec();
        sc.call(OsCommand::Write(FD3, chunk))
            .call(OsCommand::Pread(FD3, 8, (k * 4) as i64));
    }
    sc.call(OsCommand::Lseek(FD3, 0, SeekWhence::Set))
        .call(OsCommand::Read(FD3, 64))
        .call(OsCommand::Close(FD3))
        .call(OsCommand::Truncate("io".into(), 4))
        .call(OsCommand::Unlink("io".into()));
    sc
}

/// A rename-chain script: one file pushed through a cycle of names.
fn rename_chain(i: usize, ops: usize) -> Script {
    let mut sc = Script::new(format!("loadgen___rename_chain_{i}"), "loadgen");
    let names = ["ra", "rb", "rc"];
    sc.call(OsCommand::Open(
        names[i % names.len()].into(),
        OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
        Some(mode(0o644)),
    ))
    .call(OsCommand::Close(FD3));
    for k in 0..ops {
        let from = names[(i + k) % names.len()];
        let to = names[(i + k + 1) % names.len()];
        sc.call(OsCommand::Rename(from.into(), to.into()))
            .call(OsCommand::Stat(to.into()));
    }
    sc.call(OsCommand::Unlink(names[(i + ops) % names.len()].into()));
    sc
}

/// A symlink-walk script: stat and open through a two-link chain.
fn symlink_walk(i: usize, ops: usize) -> Script {
    let mut sc = Script::new(format!("loadgen___symlink_walk_{i}"), "loadgen");
    sc.call(OsCommand::Mkdir("sd".into(), mode(0o755)))
        .call(OsCommand::Open(
            "sd/target".into(),
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Some(mode(0o644)),
        ))
        .call(OsCommand::Close(FD3))
        .call(OsCommand::Symlink("sd/target".into(), "l1".into()))
        .call(OsCommand::Symlink("l1".into(), "l2".into()));
    for _ in 0..ops {
        sc.call(OsCommand::Stat("l2".into()))
            .call(OsCommand::Lstat("l1".into()))
            .call(OsCommand::Readlink("l2".into()));
    }
    sc
}

/// A deep-path script: nested mkdir, then stats through the whole chain.
fn deep_paths(i: usize, ops: usize) -> Script {
    let mut sc = Script::new(format!("loadgen___deep_paths_{i}"), "loadgen");
    let depth = 2 + (ops % 4);
    let mut path = String::from("d0");
    sc.call(OsCommand::Mkdir(path.as_str().into(), mode(0o755)));
    for level in 1..depth {
        path.push_str(&format!("/d{level}"));
        sc.call(OsCommand::Mkdir(path.as_str().into(), mode(0o755)));
    }
    for _ in 0..ops {
        sc.call(OsCommand::Stat(path.as_str().into()));
    }
    sc
}

/// A multiprocess permissions script: a second unprivileged process probing a
/// root-owned tree, forcing the checker through its per-process machinery.
fn multiproc_probe(i: usize, ops: usize) -> Script {
    let mut sc = Script::new(format!("loadgen___multiproc_probe_{i}"), "loadgen");
    sc.call(OsCommand::AddUserToGroup(Uid(1000), Gid(1000)))
        .call(OsCommand::Mkdir("shared".into(), mode(0o755)))
        .create_process(Pid(2), Uid(1000), Gid(1000));
    for k in 0..ops {
        if (i + k).is_multiple_of(2) {
            sc.call_as(Pid(2), OsCommand::Stat("shared".into()));
        } else {
            sc.call_as(Pid(2), OsCommand::Mkdir("shared/p2".into(), mode(0o755)))
                .call_as(Pid(2), OsCommand::Rmdir("shared/p2".into()));
        }
    }
    sc.destroy_process(Pid(2));
    sc
}

/// Generate a deterministic load-generation suite, cycling the families.
pub fn loadgen_scripts(opts: LoadgenOptions) -> Vec<Script> {
    let builders: &[fn(usize, usize) -> Script] = &[
        metadata_churn,
        io_roundtrip,
        rename_chain,
        symlink_walk,
        deep_paths,
        multiproc_probe,
    ];
    let ops = opts.ops_per_script.max(1);
    let mut out = Vec::with_capacity(opts.scripts);
    for i in 0..opts.scripts {
        out.push(builders[i % builders.len()](i / builders.len(), ops));
    }
    // Sprinkle in the fxmark-style contention families so server load also
    // exercises the POR-reduced concurrent τ-closure.
    if opts.scripts >= builders.len() {
        out.extend(contention::contention_scripts(ContentionOptions::new(3, 2)));
        out.truncate(opts.scripts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadgen_suite_is_deterministic_and_sized() {
        let a = loadgen_scripts(LoadgenOptions::default());
        let b = loadgen_scripts(LoadgenOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.len(), LoadgenOptions::default().scripts);
        let names: std::collections::BTreeSet<_> = a.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), a.len(), "script names must be unique");
    }

    #[test]
    fn families_are_all_represented() {
        let suite = loadgen_scripts(LoadgenOptions { scripts: 12, ops_per_script: 3 });
        for family in ["meta_churn", "io_roundtrip", "rename_chain", "symlink_walk", "deep_paths", "multiproc_probe"] {
            assert!(
                suite.iter().any(|s| s.name.contains(family)),
                "family {family} missing"
            );
        }
    }
}
