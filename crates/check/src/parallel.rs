//! Parallel checking of whole trace sets.
//!
//! Traces are independent of one another, so the suite can be partitioned
//! across worker threads for linear speedup — the property the paper exploits
//! to check 20 000 traces in about a minute on a four-core machine (§3, §7.1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use sibylfs_core::flavor::SpecConfig;
use sibylfs_script::Trace;

use crate::checker::{check_trace, CheckOptions, CheckedTrace};

/// Aggregate statistics for a suite-checking run (reported by §7.1/§7.2
/// experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SuiteCheckStats {
    /// Number of traces checked.
    pub traces: usize,
    /// Number of traces accepted by the model.
    pub accepted: usize,
    /// Total number of deviations across all traces.
    pub deviations: usize,
    /// Wall-clock time spent checking, in seconds.
    pub elapsed_secs: f64,
    /// Checking throughput in traces per second.
    pub traces_per_sec: f64,
    /// Number of worker threads used.
    pub workers: usize,
}

impl SuiteCheckStats {
    /// Aggregate a result set checked over `elapsed` wall-clock time. Public
    /// so pipelined callers (which drive a [`CheckerPool`](crate::CheckerPool)
    /// themselves) can report the same statistics.
    pub fn from_results(
        results: &[CheckedTrace],
        elapsed: Duration,
        workers: usize,
    ) -> SuiteCheckStats {
        let traces = results.len();
        let accepted = results.iter().filter(|r| r.accepted).count();
        let deviations = results.iter().map(|r| r.deviations.len()).sum();
        let elapsed_secs = elapsed.as_secs_f64();
        SuiteCheckStats {
            traces,
            accepted,
            deviations,
            elapsed_secs,
            traces_per_sec: if elapsed_secs > 0.0 { traces as f64 / elapsed_secs } else { 0.0 },
            workers,
        }
    }
}

/// Check a set of traces using `workers` threads, preserving input order.
pub fn check_traces_parallel(
    cfg: &SpecConfig,
    traces: &[Trace],
    opts: CheckOptions,
    workers: usize,
) -> (Vec<CheckedTrace>, SuiteCheckStats) {
    let workers = workers.max(1);
    let start = Instant::now();
    let results: Vec<CheckedTrace> = if workers == 1 || traces.len() < 2 {
        traces.iter().map(|t| check_trace(cfg, t, opts)).collect()
    } else {
        // Workers claim traces one at a time from a shared atomic index
        // (work stealing), so skewed trace lengths — a few long traces amid
        // thousands of short ones — never leave workers idle the way a static
        // partition would.
        let next_idx = AtomicUsize::new(0);
        let mut slots: Vec<Option<CheckedTrace>> = vec![None; traces.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..workers {
                let cfg = *cfg;
                let traces = &traces;
                let next_idx = &next_idx;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let idx = next_idx.fetch_add(1, Ordering::Relaxed);
                        if idx >= traces.len() {
                            break;
                        }
                        out.push((idx, check_trace(&cfg, &traces[idx], opts)));
                    }
                    out
                }));
            }
            for h in handles {
                // Propagate a worker panic with its original payload instead
                // of wrapping it in a second panic here.
                let batch = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                for (idx, checked) in batch {
                    slots[idx] = Some(checked);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| match s {
                Some(checked) => checked,
                // Each index is claimed by exactly one worker via the shared
                // counter and written before the worker exits.
                None => unreachable!("every slot filled"),
            })
            .collect()
    };
    let stats = SuiteCheckStats::from_results(&results, start.elapsed(), workers);
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::{ErrorOrValue, OsCommand, RetValue};
    use sibylfs_core::errno::Errno;
    use sibylfs_core::flags::FileMode;
    use sibylfs_core::flavor::Flavor;
    use sibylfs_core::types::INITIAL_PID;

    fn make_trace(i: usize, bad: bool) -> Trace {
        let mut t = Trace::new(format!("trace_{i}"), "mkdir");
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Mkdir(format!("/d{i}").into(), FileMode::new(0o777)),
            ErrorOrValue::Value(RetValue::None),
        );
        if bad {
            t.push_call_return(
                INITIAL_PID,
                OsCommand::Rmdir(format!("/d{i}").into()),
                ErrorOrValue::Error(Errno::EPERM),
            );
        }
        t
    }

    #[test]
    fn parallel_results_match_sequential_and_preserve_order() {
        let cfg = SpecConfig::standard(Flavor::Linux);
        let traces: Vec<Trace> = (0..40).map(|i| make_trace(i, i % 5 == 0)).collect();
        let (seq, _) = check_traces_parallel(&cfg, &traces, CheckOptions::default(), 1);
        let (par, stats) = check_traces_parallel(&cfg, &traces, CheckOptions::default(), 4);
        assert_eq!(seq, par);
        assert_eq!(stats.traces, 40);
        assert_eq!(stats.accepted, 32);
        assert_eq!(stats.deviations, 8);
        assert_eq!(stats.workers, 4);
        assert!(stats.traces_per_sec > 0.0);
        for (i, r) in par.iter().enumerate() {
            assert_eq!(r.name, format!("trace_{i}"));
        }
    }

    #[test]
    fn empty_suite_is_fine() {
        let cfg = SpecConfig::standard(Flavor::Posix);
        let (results, stats) = check_traces_parallel(&cfg, &[], CheckOptions::default(), 8);
        assert!(results.is_empty());
        assert_eq!(stats.traces, 0);
        assert_eq!(stats.accepted, 0);
    }
}
