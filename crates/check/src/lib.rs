//! # SibylFS trace checker
//!
//! The executable test oracle: given a recorded trace of libc calls and
//! returns, decide whether it is allowed by the model (Fig. 1, "SibylFS").
//!
//! The checker maintains the set of model states the real system might be in,
//! applying the transition function to every state for every label and taking
//! the union (§5). Internal nondeterminism is resolved when observed values
//! arrive, so no search or constraint solving is ever needed (§3); an empty
//! state set means the step is not allowed, in which case the checker emits a
//! diagnostic listing the allowed return values and continues from a recovered
//! state (Fig. 4).

// Panicking escape hatches are banned from the shipped library: a model or
// checker that aborts on unexpected input is useless as an oracle. Tests may
// still unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checker;
pub mod parallel;
pub mod pool;
pub mod render;

pub use checker::{
    check_trace, check_trace_with_coverage, CheckOptions, CheckedStep, CheckedTrace, Deviation,
    StepLabel,
    StepKind, StepVerdict,
};
pub use parallel::{check_traces_parallel, SuiteCheckStats};
pub use pool::CheckerPool;
pub use render::{
    render_checked_trace, render_diagnostic_block, render_parse_error, DiagnosticBlock,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::OsCommand;
    use sibylfs_core::flags::{FileMode, OpenFlags};
    use sibylfs_core::flavor::{Flavor, SpecConfig};
    use sibylfs_exec::{execute_script, ExecOptions};
    use sibylfs_fsimpl::configs;
    use sibylfs_script::Script;

    /// End-to-end smoke test mirroring the paper's Figs. 2–4: generate the
    /// rename script, execute it on SSHFS, check it, and observe the EPERM
    /// deviation with the EEXIST/ENOTEMPTY diagnostic.
    #[test]
    fn fig2_to_fig4_round_trip() {
        let mut s = Script::new("rename___rename_emptydir___nonemptydir", "rename");
        s.call(OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777)))
            .call(OsCommand::Mkdir("nonemptydir".into(), FileMode::new(0o777)))
            .call(OsCommand::Open(
                "nonemptydir/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Some(FileMode::new(0o666)),
            ))
            .call(OsCommand::Rename("emptydir".into(), "nonemptydir".into()));

        // A well-behaved Linux file system conforms.
        let good = execute_script(&configs::by_name("linux/ext4").unwrap(), &s, ExecOptions::default());
        let checked = check_trace(&SpecConfig::standard(Flavor::Linux), &good, CheckOptions::default());
        assert!(checked.accepted, "ext4 trace should be accepted: {:?}", checked.deviations);

        // SSHFS returns EPERM, which the model rejects with the Fig. 4 message.
        let bad = execute_script(&configs::by_name("linux/sshfs-tmpfs").unwrap(), &s, ExecOptions::default());
        let checked = check_trace(&SpecConfig::standard(Flavor::Linux), &bad, CheckOptions::default());
        assert!(!checked.accepted);
        assert_eq!(checked.deviations.len(), 1);
        let d = &checked.deviations[0];
        assert_eq!(d.function, "rename");
        assert_eq!(d.observed, "EPERM");
        assert!(d.allowed.contains(&"EEXIST".to_string()));
        assert!(d.allowed.contains(&"ENOTEMPTY".to_string()));
        let rendered = render_checked_trace(&checked);
        assert!(rendered.contains("allowed are only"), "rendered:\n{rendered}");
    }
}
