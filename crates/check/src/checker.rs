//! The core trace-checking algorithm.

use serde::{Deserialize, Serialize};

use sibylfs_core::commands::{ErrorOrValue, OsCommand, OsLabel};
use sibylfs_core::coverage::{self, CoverageKey, CoverageMap};
use sibylfs_core::flavor::SpecConfig;
use sibylfs_core::footprint::return_effect_of;
use sibylfs_core::obs;
use sibylfs_core::os::state_set::StateSet;
use sibylfs_core::os::trans::{
    allowed_returns, default_completion, os_trans_into, tau_close_with_sleeps, SleepSet,
};
use sibylfs_core::os::{OsState, ProcRunState};
use sibylfs_core::types::{Pid, INITIAL_PID};
use sibylfs_script::Trace;

/// Options controlling a checking run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckOptions {
    /// Whether the initial process is assumed to run with root privileges
    /// (must match how the trace was produced).
    pub root_user: bool,
    /// A safety bound on the tracked state-set size; exceeding it truncates
    /// the set and records an explicit deviation (the check is lossy from
    /// that point on, so it must never be reported as clean). The
    /// specification's careful treatment of nondeterminism keeps real sets
    /// tiny (§3), so hitting this bound indicates a checker bug.
    pub max_states: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { root_user: true, max_states: 4096 }
    }
}

/// The label a checked step corresponds to, kept structurally: the checker's
/// inner loop no longer renders labels to text (that cost is paid only at the
/// output boundary, via `Display`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepLabel {
    /// A label observed in the trace.
    Observed(OsLabel),
    /// A step synthesised by the checker itself (e.g. the state-set safety
    /// bound being hit), described by fixed text.
    Synthetic(&'static str),
}

impl std::fmt::Display for StepLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepLabel::Observed(label) => label.fmt(f),
            StepLabel::Synthetic(text) => f.write_str(text),
        }
    }
}

/// The kind of label a checked step corresponds to, recorded structurally so
/// consumers never have to parse the rendered label text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StepKind {
    /// An `OS_CALL` label.
    Call,
    /// An `OS_RETURN` label.
    Return,
    /// An internal τ label.
    Tau,
    /// A process-creation label.
    Create,
    /// A process-destruction label.
    Destroy,
    /// A step synthesised by the checker itself (e.g. the state-set safety
    /// bound being hit), not present in the original trace.
    Internal,
}

impl StepKind {
    fn of_label(label: &OsLabel) -> StepKind {
        match label {
            OsLabel::Call(..) => StepKind::Call,
            OsLabel::Return(..) => StepKind::Return,
            OsLabel::Tau => StepKind::Tau,
            OsLabel::Create(..) => StepKind::Create,
            OsLabel::Destroy(..) => StepKind::Destroy,
        }
    }
}

/// The verdict on a single trace step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepVerdict {
    /// The step is allowed by the model.
    Ok,
    /// The step is not allowed; the checker recovered and continued.
    Deviation {
        /// What the real system returned (or did).
        observed: String,
        /// What the model would have allowed at this point.
        allowed: Vec<String>,
        /// The completion the checker assumed in order to continue.
        continued_with: Option<String>,
    },
    /// The tracked state set exceeded [`CheckOptions::max_states`] and was
    /// truncated: the remainder of the check is lossy (states the real system
    /// might be in were dropped), so the trace cannot be reported clean.
    StateSetBounded {
        /// How many states were tracked when the bound was hit.
        tracked: usize,
        /// The configured bound the set was truncated to.
        bound: usize,
    },
}

/// A checked trace step: the original label plus the verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckedStep {
    /// Line number in the original trace.
    pub lineno: usize,
    /// The label that was checked (structural; render with `Display`).
    pub label: StepLabel,
    /// The structural kind of the label.
    pub kind: StepKind,
    /// The verdict.
    pub verdict: StepVerdict,
    /// Size of the tracked state set after this step (residual
    /// nondeterminism at this point of the trace).
    pub states_tracked: usize,
}

/// A deviation record extracted from a checked trace, used by the survey and
/// acceptance reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deviation {
    /// Line number of the offending return in the trace.
    pub lineno: usize,
    /// The libc function involved.
    pub function: String,
    /// The full call (rendered), for context.
    pub call: String,
    /// What the implementation returned (rendered).
    pub observed: String,
    /// What the specification allowed (rendered).
    pub allowed: Vec<String>,
}

/// The result of checking one trace against the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckedTrace {
    /// The script/trace name.
    pub name: String,
    /// The libc function group of the originating script.
    pub group: String,
    /// Whether every step was allowed by the model.
    pub accepted: bool,
    /// Per-step verdicts.
    pub steps: Vec<CheckedStep>,
    /// The deviations found (empty iff `accepted`).
    pub deviations: Vec<Deviation>,
    /// The largest state set tracked while checking (a measure of residual
    /// nondeterminism; reported by the checker-internals benchmark).
    pub max_states_tracked: usize,
}

impl CheckedTrace {
    /// The number of `OS_CALL` steps checked.
    pub fn calls_checked(&self) -> usize {
        self.steps.iter().filter(|s| s.kind == StepKind::Call).count()
    }
}

/// Check a single trace against the model configured by `cfg`.
pub fn check_trace(cfg: &SpecConfig, trace: &Trace, opts: CheckOptions) -> CheckedTrace {
    let _span = obs::span("check", "check_trace");
    let started = std::time::Instant::now();
    // Dedup hits are tallied locally per trace and flushed once below: the
    // insert path is too hot for shared atomics (see `StateSet::take_dedup_hits`).
    let mut dedup_hits: u64 = 0;
    let init_cfg = SpecConfig { root_user: opts.root_user, ..*cfg };
    let mut states =
        StateSet::singleton(OsState::initial_with_process(&init_cfg, INITIAL_PID));
    // Per-state sleep sets, parallel to `states` (see `trans::SleepSet`).
    // All-empty unless POR is active; empty sleep sets make every POR branch
    // below a no-op, so Off mode follows the exact pre-POR code path.
    let mut sleeps: Vec<SleepSet> = vec![SleepSet::new()];
    let mut steps = Vec::new();
    let mut deviations = Vec::new();
    let mut max_states = states.len();
    // The last call made by each process, for diagnostics.
    let mut last_call: Vec<(Pid, OsCommand)> = Vec::new();

    for step in &trace.steps {
        let label = &step.label;
        if let OsLabel::Call(pid, cmd) = label.clone() {
            last_call.retain(|(p, _)| *p != pid);
            last_call.push((pid, cmd));
        }

        let (next, next_sleeps, verdict) = apply_label(cfg, states, sleeps, label);
        match &verdict {
            StepVerdict::Ok => {}
            // Only the bound-handling block below constructs this variant.
            StepVerdict::StateSetBounded { .. } => {
                unreachable!("apply_label never returns StateSetBounded")
            }
            StepVerdict::Deviation { observed, allowed, .. } => {
                let (function, call) = label
                    .pid()
                    .and_then(|pid| last_call.iter().find(|(p, _)| *p == pid))
                    .map(|(_, c)| (c.name().to_string(), c.to_string()))
                    .unwrap_or_else(|| ("<unknown>".to_string(), String::new()));
                deviations.push(Deviation {
                    lineno: step.lineno,
                    function,
                    call,
                    observed: observed.clone(),
                    allowed: allowed.clone(),
                });
            }
        }
        states = next;
        sleeps = next_sleeps;
        dedup_hits += states.take_dedup_hits();
        max_states = max_states.max(states.len());
        steps.push(CheckedStep {
            lineno: step.lineno,
            label: StepLabel::Observed(label.clone()),
            kind: StepKind::of_label(label),
            verdict,
            states_tracked: states.len(),
        });
        if states.len() > opts.max_states {
            // The remainder of the check is lossy: record it loudly so the
            // trace is never reported clean.
            let tracked = states.len();
            obs::m::CHECK_TRUNCATIONS_TOTAL.inc();
            states.truncate(opts.max_states);
            sleeps.truncate(opts.max_states);
            // Truncation may have dropped the sibling states that justified a
            // survivor's sleep entries; wake everything to stay sound.
            for s in &mut sleeps {
                s.clear();
            }
            deviations.push(Deviation {
                lineno: step.lineno,
                function: "<checker>".to_string(),
                call: "<state-set safety bound>".to_string(),
                observed: format!("{tracked} states tracked"),
                allowed: vec![format!(
                    "at most {} states (CheckOptions::max_states)",
                    opts.max_states
                )],
            });
            steps.push(CheckedStep {
                lineno: step.lineno,
                label: StepLabel::Synthetic("<state-set safety bound exceeded; set truncated>"),
                kind: StepKind::Internal,
                verdict: StepVerdict::StateSetBounded { tracked, bound: opts.max_states },
                states_tracked: states.len(),
            });
        }
        if states.is_empty() {
            // Unrecoverable (should not happen: recovery always yields at
            // least one state); restart from a fresh state to keep going.
            states =
                StateSet::singleton(OsState::initial_with_process(&init_cfg, INITIAL_PID));
            sleeps = vec![SleepSet::new()];
        }
    }

    obs::m::CHECK_TRACES_TOTAL.inc();
    obs::m::CHECK_DEVIATIONS_TOTAL.add(deviations.len() as u64);
    obs::m::STATE_DEDUP_HITS_TOTAL.add(dedup_hits);
    obs::m::CHECK_TRACE_NS.record_duration(started.elapsed());

    CheckedTrace {
        name: trace.name.clone(),
        group: trace.group.clone(),
        accepted: deviations.is_empty(),
        steps,
        deviations,
        max_states_tracked: max_states,
    }
}

/// Check a trace and record the model coverage exercised while doing so.
///
/// Coverage has two key families (see [`sibylfs_core::coverage`]): the
/// specification branches (`spec_point`s) evaluated during this check,
/// collected through the thread-scoped collector so concurrent exploration
/// workers do not pollute each other, and the `(syscall, outcome)` transitions
/// observed in the trace itself. Checking runs entirely on the calling
/// thread, which is what makes the scoped collection sound.
pub fn check_trace_with_coverage(
    cfg: &SpecConfig,
    trace: &Trace,
    opts: CheckOptions,
) -> (CheckedTrace, CoverageMap) {
    coverage::scoped_begin();
    let checked = check_trace(cfg, trace, opts);
    let mut map = CoverageMap::new();
    for point in coverage::scoped_end() {
        map.insert(CoverageKey::Branch(point));
    }
    // Pair each return with the call in flight for its process.
    let mut pending: Vec<(Pid, &'static str)> = Vec::new();
    for step in &trace.steps {
        match &step.label {
            OsLabel::Call(pid, cmd) => {
                pending.retain(|(p, _)| p != pid);
                pending.push((*pid, cmd.name()));
            }
            OsLabel::Return(pid, ret) => {
                if let Some(pos) = pending.iter().position(|(p, _)| p == pid) {
                    let (_, syscall) = pending.remove(pos);
                    map.insert(CoverageKey::Transition {
                        syscall: syscall.to_string(),
                        outcome: coverage::outcome_name(ret),
                    });
                }
            }
            _ => {}
        }
    }
    (checked, map)
}

/// Apply one label to the tracked state set, producing the next set, its
/// per-state sleep sets, and the verdict for this step. Takes the set by
/// value: conformant paths hand back the transition union, deviation paths
/// hand back a recovered set (or the input set unchanged).
fn apply_label(
    cfg: &SpecConfig,
    mut states: StateSet,
    mut sleeps: Vec<SleepSet>,
    label: &OsLabel,
) -> (StateSet, Vec<SleepSet>, StepVerdict) {
    sleeps.resize(states.len(), SleepSet::new());
    match label {
        OsLabel::Call(..) | OsLabel::Create(..) | OsLabel::Destroy(..) => {
            // These labels never touch the filesystem or a sleeping process
            // (a sleeping process is mid-call, so `Call`/`Destroy` on it are
            // rejected by the transition function), so successors inherit
            // their source state's sleep set unchanged.
            let (next, next_sleeps) = union_trans(cfg, &states, &sleeps, label);
            if next.is_empty() {
                // e.g. a call from an unknown process, or a call while one is
                // already in flight: recover by ignoring the label.
                let verdict = StepVerdict::Deviation {
                    observed: label.to_string(),
                    allowed: vec!["<no such transition from any tracked state>".to_string()],
                    continued_with: None,
                };
                (states, sleeps, verdict)
            } else {
                (next, next_sleeps, StepVerdict::Ok)
            }
        }
        OsLabel::Tau => {
            tau_close_with_sleeps(cfg, &mut states, &mut sleeps);
            (states, sleeps, StepVerdict::Ok)
        }
        OsLabel::Return(pid, observed) => {
            // Close under internal steps so calls from other processes may be
            // processed in any order before this return is matched.
            tau_close_with_sleeps(cfg, &mut states, &mut sleeps);
            let (next, next_sleeps) = union_returns(cfg, &states, &sleeps, *pid, label);
            if !next.is_empty() {
                return (next, next_sleeps, StepVerdict::Ok);
            }
            // Non-conformant: collect the allowed returns for diagnostics and
            // continue from the model's own completions (Fig. 4).
            let mut allowed: Vec<String> = Vec::new();
            for st in &states {
                for a in allowed_returns(st, *pid) {
                    if !allowed.contains(&a) {
                        allowed.push(a);
                    }
                }
            }
            let mut recovered = StateSet::new();
            let mut continued_with = None;
            for st in &states {
                if let Some((value, next_st)) = default_completion(st, *pid) {
                    if continued_with.is_none() {
                        continued_with = Some(value.to_string());
                    }
                    recovered.insert(next_st);
                }
            }
            if recovered.is_empty() {
                // Last resort: mark the process ready again in every state so
                // subsequent steps can still be checked.
                for st in &states {
                    let mut st = st.clone();
                    if let Some(p) = st.proc_mut(*pid) {
                        p.run_state = ProcRunState::Ready;
                    }
                    recovered.insert(st);
                }
            }
            let verdict = StepVerdict::Deviation {
                observed: render_observed(observed),
                allowed,
                continued_with,
            };
            // Recovery synthesises states the POR bookkeeping knows nothing
            // about; wake everything rather than carry stale sleep entries.
            let recovered_sleeps = vec![SleepSet::new(); recovered.len()];
            (recovered, recovered_sleeps, verdict)
        }
    }
}

fn render_observed(v: &ErrorOrValue) -> String {
    v.to_string()
}

/// Insert each successor into `out`, giving fresh states a copy of the source
/// state's sleep set. A successor reached from several sources may only sleep
/// what every source lets it sleep, so duplicates intersect (by pid).
/// Successors are consumed by value — cloning would reset their cached
/// fingerprints and make `insert_full` recompute them.
fn merge_successors(
    out: &mut StateSet,
    out_sleeps: &mut Vec<SleepSet>,
    succs: StateSet,
    sleep: &SleepSet,
) {
    for succ in succs {
        let (j, fresh) = out.insert_full(succ);
        if fresh {
            out_sleeps.push(sleep.clone());
        } else {
            out_sleeps[j].retain(|(q, _)| sleep.iter().any(|(q2, _)| q2 == q));
        }
    }
}

/// The union of `os_trans` over every tracked state, with sleep inheritance.
/// The per-state scratch set preserves the same overall insertion order as a
/// shared sink, so Off-mode results are identical to the pre-POR checker.
fn union_trans(
    cfg: &SpecConfig,
    states: &StateSet,
    sleeps: &[SleepSet],
    label: &OsLabel,
) -> (StateSet, Vec<SleepSet>) {
    let mut out = StateSet::new();
    let mut out_sleeps: Vec<SleepSet> = Vec::new();
    static EMPTY: SleepSet = SleepSet::new();
    for (i, st) in states.iter().enumerate() {
        let mut tmp = StateSet::new();
        os_trans_into(cfg, st, label, &mut tmp);
        if tmp.is_empty() {
            continue;
        }
        merge_successors(&mut out, &mut out_sleeps, tmp, sleeps.get(i).unwrap_or(&EMPTY));
    }
    (out, out_sleeps)
}

/// The union of the `Return(pid, _)` transition over every tracked state.
///
/// Two POR rules live here. A state where `pid` sleeps is skipped outright:
/// by the sleep-set invariant the interleaving that processes `pid`'s call
/// first is represented by a sibling state, and matching the return here
/// would resurrect the pruned orderings. And a return can have effects the
/// τ step did not (a `write` applies its data at return time), so surviving
/// sleep entries are woken unless they commute with the return's effect
/// footprint.
fn union_returns(
    cfg: &SpecConfig,
    states: &StateSet,
    sleeps: &[SleepSet],
    pid: Pid,
    label: &OsLabel,
) -> (StateSet, Vec<SleepSet>) {
    let mut out = StateSet::new();
    let mut out_sleeps: Vec<SleepSet> = Vec::new();
    for (i, st) in states.iter().enumerate() {
        let src = sleeps.get(i);
        if src.is_some_and(|s| s.iter().any(|(q, _)| *q == pid)) {
            continue;
        }
        let mut tmp = StateSet::new();
        os_trans_into(cfg, st, label, &mut tmp);
        if tmp.is_empty() {
            continue;
        }
        let mut inherited = src.cloned().unwrap_or_default();
        if !inherited.is_empty() {
            if let Some(eff) = return_effect_of(cfg, st, pid) {
                inherited.retain(|(_, qfp)| eff.commutes(qfp));
            }
        }
        merge_successors(&mut out, &mut out_sleeps, tmp, &inherited);
    }
    (out, out_sleeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::commands::{OsCommand, RetValue};
    use sibylfs_core::errno::Errno;
    use sibylfs_core::flags::{FileMode, OpenFlags};
    use sibylfs_core::flavor::Flavor;
    use sibylfs_core::types::Fd;

    fn cfg() -> SpecConfig {
        SpecConfig::standard(Flavor::Linux)
    }

    fn trace_of(pairs: Vec<(OsCommand, ErrorOrValue)>) -> Trace {
        let mut t = Trace::new("test", "test");
        for (cmd, ret) in pairs {
            t.push_call_return(INITIAL_PID, cmd, ret);
        }
        t
    }

    #[test]
    fn conformant_trace_is_accepted() {
        let t = trace_of(vec![
            (OsCommand::Mkdir("/d".into(), FileMode::new(0o777)), ErrorOrValue::Value(RetValue::None)),
            (OsCommand::Stat("/missing".into()), ErrorOrValue::Error(Errno::ENOENT)),
            (
                OsCommand::Open("/d/f".into(), OpenFlags::O_CREAT | OpenFlags::O_RDWR, Some(FileMode::new(0o644))),
                ErrorOrValue::Value(RetValue::Fd(Fd(3))),
            ),
            (OsCommand::Write(Fd(3), b"hello".to_vec()), ErrorOrValue::Value(RetValue::Num(5))),
            (OsCommand::Close(Fd(3)), ErrorOrValue::Value(RetValue::None)),
        ]);
        let checked = check_trace(&cfg(), &t, CheckOptions::default());
        assert!(checked.accepted, "{:?}", checked.deviations);
        assert_eq!(checked.calls_checked(), 5);
        assert!(checked.max_states_tracked >= 1);
    }

    #[test]
    fn wrong_errno_is_flagged_with_diagnostics_and_checking_continues() {
        let t = trace_of(vec![
            (OsCommand::Mkdir("/d".into(), FileMode::new(0o777)), ErrorOrValue::Value(RetValue::None)),
            // EPERM is not allowed for a plain mkdir of a fresh directory…
            (OsCommand::Mkdir("/e".into(), FileMode::new(0o777)), ErrorOrValue::Error(Errno::EPERM)),
            // …but checking continues: the recovered state has /e created, so
            // this stat of /e must be accepted.
            (OsCommand::Rmdir("/e".into()), ErrorOrValue::Value(RetValue::None)),
        ]);
        let checked = check_trace(&cfg(), &t, CheckOptions::default());
        assert!(!checked.accepted);
        assert_eq!(checked.deviations.len(), 1);
        assert_eq!(checked.deviations[0].function, "mkdir");
        assert_eq!(checked.deviations[0].observed, "EPERM");
        // The third call is checked against the recovered (successful) state.
        assert!(matches!(checked.steps[5].verdict, StepVerdict::Ok));
    }

    #[test]
    fn wrong_success_value_is_flagged() {
        let t = trace_of(vec![
            // umask returns the *previous* mask (0o022), not the new one.
            (OsCommand::Umask(FileMode::new(0o077)), ErrorOrValue::Value(RetValue::Num(0o077))),
        ]);
        let checked = check_trace(&cfg(), &t, CheckOptions::default());
        assert!(!checked.accepted);
        assert!(checked.deviations[0].allowed.iter().any(|a| a.contains("18")));
    }

    #[test]
    fn flavor_differences_change_acceptance() {
        // unlink of a directory returning EISDIR: fine on Linux, a deviation
        // under the OS X model.
        let t = trace_of(vec![
            (OsCommand::Mkdir("/d".into(), FileMode::new(0o777)), ErrorOrValue::Value(RetValue::None)),
            (OsCommand::Unlink("/d".into()), ErrorOrValue::Error(Errno::EISDIR)),
        ]);
        let linux = check_trace(&SpecConfig::standard(Flavor::Linux), &t, CheckOptions::default());
        assert!(linux.accepted);
        let mac = check_trace(&SpecConfig::standard(Flavor::Mac), &t, CheckOptions::default());
        assert!(!mac.accepted);
        // The POSIX envelope accepts both.
        let posix = check_trace(&SpecConfig::standard(Flavor::Posix), &t, CheckOptions::default());
        assert!(posix.accepted);
    }

    #[test]
    fn multi_process_returns_in_either_order_are_accepted() {
        let mut t = Trace::new("concurrency", "concurrency");
        t.push_label(OsLabel::Create(Pid(2), sibylfs_core::types::Uid(0), sibylfs_core::types::Gid(0)));
        // Both calls are issued before either returns; returns arrive in the
        // opposite order from the calls.
        t.push_label(OsLabel::Call(INITIAL_PID, OsCommand::Mkdir("/a".into(), FileMode::new(0o777))));
        t.push_label(OsLabel::Call(Pid(2), OsCommand::Mkdir("/b".into(), FileMode::new(0o777))));
        t.push_label(OsLabel::Return(Pid(2), ErrorOrValue::Value(RetValue::None)));
        t.push_label(OsLabel::Return(INITIAL_PID, ErrorOrValue::Value(RetValue::None)));
        t.push_label(OsLabel::Call(INITIAL_PID, OsCommand::Stat("/b".into())));
        let checked = check_trace(&cfg(), &t, CheckOptions::default());
        // The stat call has no return in the trace; that is fine.
        assert!(checked.accepted, "{:?}", checked.deviations);
    }

    #[test]
    fn hitting_the_max_states_bound_is_reported_not_silent() {
        // Two processes with calls in flight: resolving the second return
        // τ-closes over both calls, leaving more than one tracked state.
        let mut t = Trace::new("bound", "bound");
        t.push_label(OsLabel::Create(
            Pid(2),
            sibylfs_core::types::Uid(0),
            sibylfs_core::types::Gid(0),
        ));
        t.push_label(OsLabel::Call(
            INITIAL_PID,
            OsCommand::Mkdir("/a".into(), FileMode::new(0o777)),
        ));
        t.push_label(OsLabel::Call(Pid(2), OsCommand::Mkdir("/b".into(), FileMode::new(0o777))));
        t.push_label(OsLabel::Return(Pid(2), ErrorOrValue::Value(RetValue::None)));

        // With a generous bound the trace is clean.
        let clean = check_trace(&cfg(), &t, CheckOptions::default());
        assert!(clean.accepted);
        assert!(clean.max_states_tracked > 1);

        // With the bound forced below the tracked set size, the truncation is
        // recorded as an explicit deviation and a dedicated step verdict —
        // a lossy check must never be reported clean.
        let bounded =
            check_trace(&cfg(), &t, CheckOptions { root_user: true, max_states: 1 });
        assert!(!bounded.accepted);
        assert!(bounded
            .steps
            .iter()
            .any(|s| matches!(s.verdict, StepVerdict::StateSetBounded { .. })
                && s.kind == StepKind::Internal));
        assert!(bounded.deviations.iter().any(|d| d.function == "<checker>"));
    }

    #[test]
    fn checking_with_coverage_records_branches_and_transitions() {
        let t = trace_of(vec![
            (
                OsCommand::Mkdir("/d".into(), FileMode::new(0o777)),
                ErrorOrValue::Value(RetValue::None),
            ),
            (OsCommand::Mkdir("/d".into(), FileMode::new(0o777)), ErrorOrValue::Error(Errno::EEXIST)),
            (OsCommand::Stat("/missing".into()), ErrorOrValue::Error(Errno::ENOENT)),
        ]);
        let (checked, cov) = check_trace_with_coverage(&cfg(), &t, CheckOptions::default());
        assert!(checked.accepted, "{:?}", checked.deviations);
        assert!(cov.contains(&CoverageKey::Transition {
            syscall: "mkdir".into(),
            outcome: "ok/none".into()
        }));
        assert!(cov.contains(&CoverageKey::Transition {
            syscall: "mkdir".into(),
            outcome: "EEXIST".into()
        }));
        assert!(cov.contains(&CoverageKey::Transition {
            syscall: "stat".into(),
            outcome: "ENOENT".into()
        }));
        // Specification branches were attributed to this check.
        assert!(cov.branch_points().iter().any(|p| p.starts_with("mkdir/")));
        assert!(cov.branch_points().iter().any(|p| p.starts_with("stat/")));
        // The same trace re-checked yields the same coverage (determinism).
        let (_, cov2) = check_trace_with_coverage(&cfg(), &t, CheckOptions::default());
        assert_eq!(cov, cov2);
    }

    #[test]
    fn readdir_wrong_entry_is_flagged() {
        let mut t = Trace::new("readdir", "readdir");
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Mkdir("/d".into(), FileMode::new(0o777)),
            ErrorOrValue::Value(RetValue::None),
        );
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Mkdir("/d/a".into(), FileMode::new(0o777)),
            ErrorOrValue::Value(RetValue::None),
        );
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Opendir("/d".into()),
            ErrorOrValue::Value(RetValue::DirHandle(sibylfs_core::types::DirHandleId(1))),
        );
        // The implementation claims an entry that does not exist.
        t.push_call_return(
            INITIAL_PID,
            OsCommand::Readdir(sibylfs_core::types::DirHandleId(1)),
            ErrorOrValue::Value(RetValue::ReaddirEntry(Some("ghost".into()))),
        );
        let checked = check_trace(&cfg(), &t, CheckOptions::default());
        assert!(!checked.accepted);
        assert!(checked.deviations[0].allowed.iter().any(|a| a.contains('a')));
    }
}
