//! Rendering of checked traces in the style of Fig. 4 of the paper.

use std::fmt::Write as _;

use crate::checker::{CheckedTrace, StepVerdict};

/// A structural diagnostic in the shape of the paper's Fig. 4 annotations: a
/// severity, the line it anchors to, a one-line title, and follow-up notes.
/// Shared between the trace checker's deviation rendering and the static
/// linter's reports so every tool's findings read the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticBlock {
    /// 1-based line the diagnostic anchors to.
    pub lineno: usize,
    /// Severity label, e.g. `"Error"` or `"Warning"`.
    pub severity: &'static str,
    /// The headline of the block.
    pub title: String,
    /// Additional `# `-prefixed lines.
    pub notes: Vec<String>,
}

/// Append a diagnostic block in the Fig. 4 comment style:
///
/// ```text
/// # Error: 6: EPERM
/// # unexpected results: EPERM
/// ```
pub fn render_diagnostic_block(out: &mut String, block: &DiagnosticBlock) {
    let _ = writeln!(out, "# {}: {}: {}", block.severity, block.lineno, block.title);
    for note in &block.notes {
        let _ = writeln!(out, "# {note}");
    }
}

/// Render a checked trace as text. Conformant steps appear as in the original
/// trace; non-conformant steps are annotated with the diagnostic block of
/// Fig. 4.
pub fn render_checked_trace(checked: &CheckedTrace) -> String {
    let mut out = String::new();
    out.push_str("@type checked-trace\n");
    let _ = writeln!(out, "# Test {}", checked.name);
    let _ = writeln!(
        out,
        "# Verdict: {}",
        if checked.accepted { "accepted" } else { "NOT accepted" }
    );
    for step in &checked.steps {
        match &step.verdict {
            StepVerdict::Ok => {
                let _ = writeln!(out, "{}", step.label);
            }
            StepVerdict::Deviation { observed, allowed, continued_with } => {
                let mut notes = vec![
                    format!("unexpected results: {observed}"),
                    format!("allowed are only: {}", allowed.join(", ")),
                ];
                if let Some(c) = continued_with {
                    notes.push(format!("continuing with {c}"));
                }
                render_diagnostic_block(
                    &mut out,
                    &DiagnosticBlock {
                        lineno: step.lineno,
                        severity: "Error",
                        title: observed.clone(),
                        notes,
                    },
                );
            }
            StepVerdict::StateSetBounded { tracked, bound } => {
                render_diagnostic_block(
                    &mut out,
                    &DiagnosticBlock {
                        lineno: step.lineno,
                        severity: "Error",
                        title: format!(
                            "state set exceeded the safety bound ({tracked} states tracked, bound {bound}); the set was truncated and the rest of this check is lossy"
                        ),
                        notes: Vec::new(),
                    },
                );
            }
        }
    }
    out
}

/// Render a [`sibylfs_script::ParseError`] through the same diagnostic block
/// shape as checker deviations and lint findings, so a server client (or a CLI
/// user) gets a locatable error in the one format every tool emits:
///
/// ```text
/// @type parse-error
/// # Test badfile.txt
/// # Error: 3: cannot parse: uid out of range: -5
/// # at badfile.txt line 3, column 17
/// ```
pub fn render_parse_error(source_name: &str, err: &sibylfs_script::ParseError) -> String {
    let mut out = String::new();
    out.push_str("@type parse-error\n");
    let _ = writeln!(out, "# Test {source_name}");
    render_diagnostic_block(
        &mut out,
        &DiagnosticBlock {
            lineno: err.line,
            severity: "Error",
            title: format!("cannot parse: {}", err.message),
            notes: vec![format!("at {source_name} line {}, column {}", err.line, err.col)],
        },
    );
    out
}

/// A one-line summary used in suite listings.
pub fn summarize_checked_trace(checked: &CheckedTrace) -> String {
    if checked.accepted {
        format!("PASS {}", checked.name)
    } else {
        format!(
            "FAIL {} ({} deviation{})",
            checked.name,
            checked.deviations.len(),
            if checked.deviations.len() == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckedStep, Deviation, StepKind, StepLabel};

    fn sample() -> CheckedTrace {
        CheckedTrace {
            name: "rename___case".into(),
            group: "rename".into(),
            accepted: false,
            steps: vec![
                CheckedStep {
                    lineno: 1,
                    label: StepLabel::Synthetic("p1: call mkdir \"d\" 0o777"),
                    kind: StepKind::Call,
                    verdict: StepVerdict::Ok,
                    states_tracked: 1,
                },
                CheckedStep {
                    lineno: 6,
                    label: StepLabel::Synthetic("p1: return EPERM"),
                    kind: StepKind::Return,
                    verdict: StepVerdict::Deviation {
                        observed: "EPERM".into(),
                        allowed: vec!["EEXIST".into(), "ENOTEMPTY".into()],
                        continued_with: Some("EEXIST".into()),
                    },
                    states_tracked: 1,
                },
            ],
            deviations: vec![Deviation {
                lineno: 6,
                function: "rename".into(),
                call: "rename \"emptydir\" \"nonemptydir\"".into(),
                observed: "EPERM".into(),
                allowed: vec!["EEXIST".into(), "ENOTEMPTY".into()],
            }],
            max_states_tracked: 2,
        }
    }

    #[test]
    fn rendering_matches_fig4_shape() {
        let text = render_checked_trace(&sample());
        assert!(text.contains("# Error: 6: EPERM"));
        assert!(text.contains("# unexpected results: EPERM"));
        assert!(text.contains("# allowed are only: EEXIST, ENOTEMPTY"));
        assert!(text.contains("# continuing with EEXIST"));
    }

    #[test]
    fn summary_lines() {
        let mut t = sample();
        assert!(summarize_checked_trace(&t).starts_with("FAIL"));
        t.accepted = true;
        assert!(summarize_checked_trace(&t).starts_with("PASS"));
    }
}
