//! Rendering of checked traces in the style of Fig. 4 of the paper.

use std::fmt::Write as _;

use crate::checker::{CheckedTrace, StepVerdict};

/// Render a checked trace as text. Conformant steps appear as in the original
/// trace; non-conformant steps are annotated with the diagnostic block of
/// Fig. 4.
pub fn render_checked_trace(checked: &CheckedTrace) -> String {
    let mut out = String::new();
    out.push_str("@type checked-trace\n");
    let _ = writeln!(out, "# Test {}", checked.name);
    let _ = writeln!(
        out,
        "# Verdict: {}",
        if checked.accepted { "accepted" } else { "NOT accepted" }
    );
    for step in &checked.steps {
        match &step.verdict {
            StepVerdict::Ok => {
                let _ = writeln!(out, "{}", step.label);
            }
            StepVerdict::Deviation { observed, allowed, continued_with } => {
                let _ = writeln!(out, "# Error: {}: {}", step.lineno, observed);
                let _ = writeln!(out, "# unexpected results: {}", observed);
                let _ = writeln!(out, "# allowed are only: {}", allowed.join(", "));
                if let Some(c) = continued_with {
                    let _ = writeln!(out, "# continuing with {}", c);
                }
            }
            StepVerdict::StateSetBounded { tracked, bound } => {
                let _ = writeln!(
                    out,
                    "# Error: {}: state set exceeded the safety bound ({} states tracked, bound {}); the set was truncated and the rest of this check is lossy",
                    step.lineno, tracked, bound
                );
            }
        }
    }
    out
}

/// A one-line summary used in suite listings.
pub fn summarize_checked_trace(checked: &CheckedTrace) -> String {
    if checked.accepted {
        format!("PASS {}", checked.name)
    } else {
        format!(
            "FAIL {} ({} deviation{})",
            checked.name,
            checked.deviations.len(),
            if checked.deviations.len() == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckedStep, Deviation, StepKind, StepLabel};

    fn sample() -> CheckedTrace {
        CheckedTrace {
            name: "rename___case".into(),
            group: "rename".into(),
            accepted: false,
            steps: vec![
                CheckedStep {
                    lineno: 1,
                    label: StepLabel::Synthetic("p1: call mkdir \"d\" 0o777"),
                    kind: StepKind::Call,
                    verdict: StepVerdict::Ok,
                    states_tracked: 1,
                },
                CheckedStep {
                    lineno: 6,
                    label: StepLabel::Synthetic("p1: return EPERM"),
                    kind: StepKind::Return,
                    verdict: StepVerdict::Deviation {
                        observed: "EPERM".into(),
                        allowed: vec!["EEXIST".into(), "ENOTEMPTY".into()],
                        continued_with: Some("EEXIST".into()),
                    },
                    states_tracked: 1,
                },
            ],
            deviations: vec![Deviation {
                lineno: 6,
                function: "rename".into(),
                call: "rename \"emptydir\" \"nonemptydir\"".into(),
                observed: "EPERM".into(),
                allowed: vec!["EEXIST".into(), "ENOTEMPTY".into()],
            }],
            max_states_tracked: 2,
        }
    }

    #[test]
    fn rendering_matches_fig4_shape() {
        let text = render_checked_trace(&sample());
        assert!(text.contains("# Error: 6: EPERM"));
        assert!(text.contains("# unexpected results: EPERM"));
        assert!(text.contains("# allowed are only: EEXIST, ENOTEMPTY"));
        assert!(text.contains("# continuing with EEXIST"));
    }

    #[test]
    fn summary_lines() {
        let mut t = sample();
        assert!(summarize_checked_trace(&t).starts_with("FAIL"));
        t.accepted = true;
        assert!(summarize_checked_trace(&t).starts_with("PASS"));
    }
}
