//! A persistent checker worker pool for long-lived processes.
//!
//! [`check_traces_parallel`](crate::parallel::check_traces_parallel) spawns a
//! scoped thread team per suite, which is the right shape for a batch CLI but
//! wrong for a server: a long-lived process wants its worker threads created
//! once and fed jobs from many concurrent sessions, so checking stays batched
//! across clients and thread churn never shows up in tail latency.
//!
//! [`CheckerPool`] owns N worker threads for the life of the pool. Jobs carry
//! the trace, the spec config, the check options, and a completion callback;
//! callbacks run on worker threads, so they should hand results off (e.g.
//! into a session's reply queue) rather than do heavy work inline.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sibylfs_core::flavor::SpecConfig;
use sibylfs_core::obs;
use sibylfs_script::Trace;

use crate::checker::{check_trace, CheckOptions, CheckedTrace};

/// One unit of work: check `trace` against `cfg` and hand the result to `done`.
struct Job {
    cfg: SpecConfig,
    trace: Trace,
    opts: CheckOptions,
    done: Box<dyn FnOnce(CheckedTrace) + Send>,
    /// When the job entered the queue; queue wait = pickup − this.
    submitted_at: Instant,
}

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A fixed-size pool of persistent checker threads with a shared FIFO queue.
pub struct CheckerPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl CheckerPool {
    /// Spawn a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> CheckerPool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sibylfs-check-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|e| panic!("failed to spawn checker worker: {e}"));
        obs::m::POOL_WORKERS.add(handles.len() as i64);
        CheckerPool { inner, workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        lock(&self.inner.state).queue.len()
    }

    /// Enqueue one trace for checking. `done` runs on a worker thread once
    /// the verdict is ready; jobs complete in whatever order workers finish,
    /// so callers needing ordered replies must sequence on their side.
    pub fn submit(
        &self,
        cfg: SpecConfig,
        trace: Trace,
        opts: CheckOptions,
        done: impl FnOnce(CheckedTrace) + Send + 'static,
    ) {
        let job = Job {
            cfg,
            trace,
            opts,
            done: Box::new(done),
            submitted_at: Instant::now(),
        };
        let mut st = lock(&self.inner.state);
        st.queue.push_back(job);
        obs::m::POOL_JOBS_TOTAL.inc();
        obs::m::POOL_QUEUE_DEPTH.inc();
        drop(st);
        self.inner.work_ready.notify_one();
    }

    /// Check a batch of traces and block until all verdicts are in, returned
    /// in input order. Convenience wrapper over [`submit`](Self::submit) for
    /// callers with batch shape (tests, the remote-check CLI path).
    pub fn check_batch(
        &self,
        cfg: &SpecConfig,
        traces: Vec<Trace>,
        opts: CheckOptions,
    ) -> Vec<CheckedTrace> {
        // Filled slots keep input order no matter how workers interleave;
        // the usize counts completions so the waiter knows when to wake.
        type BatchSlots = (Vec<Option<CheckedTrace>>, usize);
        let total = traces.len();
        let results: Arc<(Mutex<BatchSlots>, Condvar)> = Arc::new((
            Mutex::new(((0..total).map(|_| None).collect(), 0)),
            Condvar::new(),
        ));
        for (i, trace) in traces.into_iter().enumerate() {
            let results = Arc::clone(&results);
            self.submit(*cfg, trace, opts, move |checked| {
                let (slots, all_done) = &*results;
                let mut guard = lock(slots);
                guard.0[i] = Some(checked);
                guard.1 += 1;
                if guard.1 == total {
                    all_done.notify_all();
                }
            });
        }
        let (slots, all_done) = &*results;
        let mut guard = lock(slots);
        while guard.1 < total {
            guard = all_done.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        guard.0.drain(..).flatten().collect()
    }
}

impl Drop for CheckerPool {
    fn drop(&mut self) {
        let workers = self.workers.len() as i64;
        lock(&self.inner.state).shutdown = true;
        self.inner.work_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        obs::m::POOL_WORKERS.add(-workers);
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut st = lock(&inner.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = inner.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        obs::m::POOL_QUEUE_DEPTH.dec();
        obs::m::POOL_JOB_WAIT_NS.record_duration(job.submitted_at.elapsed());
        let run_started = Instant::now();
        // A panicking job — whether the check itself or its callback — must
        // not take the worker down with it: the pool outlives any one
        // session's bugs. Metrics are relaxed atomics, so the unwinding path
        // cannot poison them; the panic is tallied and the worker moves on.
        let run = std::panic::AssertUnwindSafe(move || {
            let _span = obs::span("pool", "pool_job");
            let checked = check_trace(&job.cfg, &job.trace, job.opts);
            (job.done)(checked);
        });
        let outcome = std::panic::catch_unwind(run);
        let busy = run_started.elapsed();
        obs::m::POOL_JOB_RUN_NS.record_duration(busy);
        obs::m::POOL_BUSY_NS_TOTAL.add(u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX));
        if outcome.is_err() {
            obs::m::POOL_JOBS_PANICKED.inc();
        }
    }
}

/// Lock a mutex, riding through poisoning: a panicking callback must not
/// wedge every other session's checking.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibylfs_core::flavor::{Flavor, SpecConfig};
    use sibylfs_exec::{execute_script, ExecOptions};
    use sibylfs_fsimpl::configs;
    use sibylfs_testgen::{generate_suite, SuiteOptions};

    fn quick_traces() -> Vec<Trace> {
        let profile = configs::by_name("linux/ext4").unwrap();
        generate_suite(SuiteOptions::quick())
            .iter()
            .map(|s| execute_script(&profile, s, ExecOptions::default()))
            .collect()
    }

    #[test]
    fn batch_matches_direct_checking() {
        let cfg = SpecConfig::standard(Flavor::Linux);
        let traces = quick_traces();
        let direct: Vec<CheckedTrace> = traces
            .iter()
            .map(|t| check_trace(&cfg, t, CheckOptions::default()))
            .collect();
        let pool = CheckerPool::new(4);
        let pooled = pool.check_batch(&cfg, traces, CheckOptions::default());
        assert_eq!(direct.len(), pooled.len());
        for (d, p) in direct.iter().zip(&pooled) {
            assert_eq!(d.name, p.name, "order must be preserved");
            assert_eq!(d.accepted, p.accepted);
            assert_eq!(d.deviations.len(), p.deviations.len());
        }
    }

    #[test]
    fn callbacks_fire_once_per_submit() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cfg = SpecConfig::standard(Flavor::Linux);
        let traces = quick_traces();
        let n = traces.len();
        let fired = Arc::new(AtomicUsize::new(0));
        let pool = CheckerPool::new(2);
        for t in traces {
            let fired = Arc::clone(&fired);
            pool.submit(cfg, t, CheckOptions::default(), move |_| {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drop joins workers, draining the queue first
        assert_eq!(fired.load(Ordering::SeqCst), n);
    }

    #[test]
    fn pool_survives_a_panicking_callback() {
        let cfg = SpecConfig::standard(Flavor::Linux);
        let traces = quick_traces();
        let panicked0 = obs::m::POOL_JOBS_PANICKED.get();
        let pool = CheckerPool::new(2);
        let first = traces[0].clone();
        pool.submit(cfg, first, CheckOptions::default(), |_| {
            panic!("hostile callback");
        });
        // Subsequent batches still complete even though one worker died mid-job.
        let pooled = pool.check_batch(&cfg, traces, CheckOptions::default());
        assert!(!pooled.is_empty());
        // The panic is tallied, and the metrics registry is not poisoned by
        // the unwinding path: a snapshot still renders.
        assert!(
            obs::m::POOL_JOBS_PANICKED.get() > panicked0,
            "a panicking job must increment sibylfs_pool_jobs_panicked"
        );
        let snap = obs::snapshot();
        assert!(snap.counter("sibylfs_pool_jobs_panicked").unwrap() > panicked0);
        assert!(snap.render().contains("sibylfs_pool_jobs_panicked"));
    }

    /// Load test for the pool's observability: stack jobs behind a blocked
    /// worker so the queue-depth gauge must rise, release it, and verify the
    /// queue drains and both latency histograms saw every job. All assertions
    /// are on deltas or monotone values — the registry is process-global and
    /// the other pool tests run concurrently in this binary.
    #[test]
    fn pool_load_populates_queue_gauge_and_latency_histograms() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;

        let cfg = SpecConfig::standard(Flavor::Linux);
        let traces = quick_traces();
        let stacked = traces.len().min(16);
        let total = stacked + 1;

        let jobs0 = obs::m::POOL_JOBS_TOTAL.get();
        let wait0 = obs::m::POOL_JOB_WAIT_NS.count();
        let run0 = obs::m::POOL_JOB_RUN_NS.count();
        let busy0 = obs::m::POOL_BUSY_NS_TOTAL.get();

        // One worker, so every job after the first must queue behind it.
        let pool = CheckerPool::new(1);
        let fired = Arc::new(AtomicUsize::new(0));
        let (release, blocked) = mpsc::channel::<()>();
        {
            let fired = Arc::clone(&fired);
            pool.submit(cfg, traces[0].clone(), CheckOptions::default(), move |_| {
                blocked.recv().expect("release signal");
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        for t in traces.into_iter().skip(1).take(stacked) {
            let fired = Arc::clone(&fired);
            pool.submit(cfg, t, CheckOptions::default(), move |_| {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(
            obs::m::POOL_QUEUE_DEPTH.high_water() >= stacked as i64,
            "queue gauge high-water {} after stacking {stacked} jobs behind a blocked worker",
            obs::m::POOL_QUEUE_DEPTH.high_water()
        );
        assert_eq!(obs::m::POOL_JOBS_TOTAL.get() - jobs0, total as u64);

        release.send(()).expect("worker is waiting");
        while fired.load(Ordering::SeqCst) < total {
            std::thread::yield_now();
        }
        assert_eq!(pool.queued(), 0, "the queue must drain once the worker is released");
        drop(pool);

        assert!(
            obs::m::POOL_JOB_WAIT_NS.count() - wait0 >= total as u64,
            "every job records a queue-wait sample"
        );
        assert!(
            obs::m::POOL_JOB_RUN_NS.count() - run0 >= total as u64,
            "every job records a run-time sample"
        );
        assert!(obs::m::POOL_BUSY_NS_TOTAL.get() > busy0, "busy time must accumulate");
        let stat = obs::m::POOL_JOB_WAIT_NS.stat();
        assert!(stat.p50 <= stat.p95 && stat.p95 <= stat.p99, "quantiles are ordered");
    }
}
