//! Pin: observability is passive. Turning span tracing and metrics on must
//! not change a single verdict byte — the checker's instrumentation reads
//! clocks and bumps relaxed counters, but never participates in the search.
//!
//! The whole quick suite plus the model-gap scripts (the inputs known to
//! reach the hardest states) are executed once, then checked twice — tracing
//! off, tracing on — and every rendered verdict is compared byte for byte.

use sibylfs_check::{check_trace, render_checked_trace, CheckOptions};
use sibylfs_core::flavor::{Flavor, SpecConfig};
use sibylfs_core::obs;
use sibylfs_exec::{execute_script, ExecOptions};
use sibylfs_fsimpl::configs;
use sibylfs_testgen::{generate_suite, sequences, SuiteOptions};

#[test]
fn verdicts_are_byte_identical_with_tracing_on() {
    let profile = configs::by_name("linux/ext4").expect("registered config");
    let cfg = SpecConfig::standard(Flavor::Linux);
    let mut scripts = generate_suite(SuiteOptions::quick());
    scripts.extend(sequences::model_gap_scripts().into_iter().map(|(s, _)| s));
    let traces: Vec<_> = scripts
        .iter()
        .map(|s| execute_script(&profile, s, ExecOptions::default()))
        .collect();

    let render_all = || -> Vec<String> {
        traces
            .iter()
            .map(|t| render_checked_trace(&check_trace(&cfg, t, CheckOptions::default())))
            .collect()
    };

    assert!(!obs::tracing_enabled(), "tracing must default to off");
    let off = render_all();
    obs::set_tracing(true);
    let on = render_all();
    obs::set_tracing(false);

    assert_eq!(off.len(), on.len());
    for (name, (a, b)) in scripts.iter().map(|s| &s.name).zip(off.iter().zip(&on)) {
        assert_eq!(a, b, "verdict for {name} changed when tracing was switched on");
    }

    // The traced pass must actually have recorded something — a vacuous
    // equivalence (tracing silently broken) proves nothing.
    let spans = obs::drain_spans();
    assert!(
        spans.iter().filter(|s| s.name == "check_trace").count() >= traces.len(),
        "the traced pass recorded only {} check_trace span(s) for {} traces",
        spans.iter().filter(|s| s.name == "check_trace").count(),
        traces.len()
    );
    // And the metrics side saw the work too.
    let snap = obs::snapshot();
    let checked = snap.counter("sibylfs_check_traces_total").expect("counter registered");
    assert!(
        checked >= 2 * traces.len() as u64,
        "check_traces_total={checked} after two passes over {} traces",
        traces.len()
    );
}
