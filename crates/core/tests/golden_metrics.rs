//! Golden fixture for the `@type metrics-v1` text exposition.
//!
//! The exposition format is a wire contract three ways at once: the serve
//! wire protocol carries it, the HTTP `/metrics` endpoint serves it, and
//! `sibylfs_loadgen` parses it back. A literal snapshot (no process-global
//! registry state, so the rendering is deterministic) is rendered and pinned;
//! regenerate after an intentional format change with:
//!
//! ```text
//! SIBYLFS_REGEN_GOLDEN=1 cargo test -p sibylfs_core --test golden_metrics
//! ```

use std::fs;
use std::path::PathBuf;

use sibylfs_core::obs::{MetricEntry, MetricsSnapshot, METRICS_V1_HEADER};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_v1.expected")
}

/// A snapshot exercising every entry kind and the edge values the parser has
/// to keep exact (zero, negative gauges, u64::MAX saturation).
fn sample() -> MetricsSnapshot {
    MetricsSnapshot {
        entries: vec![
            MetricEntry::Counter { name: "sibylfs_check_traces_total".to_string(), value: 400 },
            MetricEntry::Counter { name: "sibylfs_obs_spans_dropped_total".to_string(), value: 0 },
            MetricEntry::Gauge {
                name: "sibylfs_pool_queue_depth".to_string(),
                value: 0,
                high_water: 17,
            },
            MetricEntry::Gauge {
                name: "sibylfs_serve_inflight".to_string(),
                value: -1,
                high_water: 9,
            },
            MetricEntry::Histogram {
                name: "sibylfs_check_trace_ns".to_string(),
                count: 400,
                sum: 52_131_009,
                p50: 65_535,
                p95: 131_071,
                p99: u64::MAX,
                buckets: vec![(0, 3), (16, 387), (63, 10)],
            },
            // No buckets= field: the optional raw-distribution export must
            // stay absent (not render as an empty `buckets=`) so pre-bucket
            // producers round-trip byte-identically.
            MetricEntry::Histogram {
                name: "sibylfs_exec_script_ns".to_string(),
                count: 0,
                sum: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                buckets: vec![],
            },
        ],
    }
}

#[test]
fn exposition_matches_golden_and_round_trips() {
    let snap = sample();
    let rendered = snap.render();
    assert!(rendered.starts_with(METRICS_V1_HEADER), "missing version header:\n{rendered}");

    if std::env::var_os("SIBYLFS_REGEN_GOLDEN").is_some() {
        fs::create_dir_all(fixture_path().parent().unwrap()).expect("create golden dir");
        fs::write(fixture_path(), &rendered).expect("write golden fixture");
    } else {
        let expected = fs::read_to_string(fixture_path()).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}\nregenerate with SIBYLFS_REGEN_GOLDEN=1",
                fixture_path().display()
            )
        });
        assert_eq!(
            rendered, expected,
            "metrics-v1 exposition drifted from its golden file; this format is a wire \
             contract (serve protocol, /metrics HTTP, loadgen scraping) — regenerate with \
             SIBYLFS_REGEN_GOLDEN=1 only if every consumer moves with it"
        );
    }

    // parse() is the exact inverse of render() — what loadgen relies on.
    let parsed = MetricsSnapshot::parse(&rendered).expect("golden text parses");
    assert_eq!(parsed, snap, "render → parse must round-trip exactly");
}

#[test]
fn parse_rejects_unversioned_and_malformed_text() {
    assert!(MetricsSnapshot::parse("counter x 1\n").is_err(), "missing header must fail");
    let bad_kind = format!("{METRICS_V1_HEADER}\nthermometer x 1\n");
    assert!(MetricsSnapshot::parse(&bad_kind).is_err(), "unknown kind must fail");
}
