//! Labels of the SibylFS labelled transition system.
//!
//! The model observes a file system at the libc interface. Every observable
//! event is an [`OsLabel`]: a process calling a libc function
//! ([`OsLabel::Call`]), a value being returned ([`OsLabel::Return`]), process
//! creation and destruction, and the internal τ step. A trace is a sequence of
//! labels (§5 "POSIX API module").

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::errno::Errno;
use crate::flags::{FileMode, OpenFlags, SeekWhence};
use crate::path::ParsedPath;
use crate::types::{DirHandleId, Fd, FileKind, Gid, Pid, Uid};

/// A single libc file-system call together with its arguments
/// (the `ty_os_command` of the Lem model).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsCommand {
    /// `chdir(path)`
    Chdir(ParsedPath),
    /// `chmod(path, mode)`
    Chmod(ParsedPath, FileMode),
    /// `chown(path, uid, gid)`
    Chown(ParsedPath, Uid, Gid),
    /// `close(fd)`
    Close(Fd),
    /// `closedir(dh)`
    Closedir(DirHandleId),
    /// `link(src, dst)`
    Link(ParsedPath, ParsedPath),
    /// `lseek(fd, offset, whence)`
    Lseek(Fd, i64, SeekWhence),
    /// `lstat(path)`
    Lstat(ParsedPath),
    /// `mkdir(path, mode)`
    Mkdir(ParsedPath, FileMode),
    /// `open(path, flags, mode)`; `mode` is only meaningful with `O_CREAT`.
    Open(ParsedPath, OpenFlags, Option<FileMode>),
    /// `opendir(path)`
    Opendir(ParsedPath),
    /// `pread(fd, count, offset)`
    Pread(Fd, usize, i64),
    /// `pwrite(fd, data, offset)`
    Pwrite(Fd, Vec<u8>, i64),
    /// `read(fd, count)`
    Read(Fd, usize),
    /// `readdir(dh)`
    Readdir(DirHandleId),
    /// `readlink(path)`
    Readlink(ParsedPath),
    /// `rename(src, dst)`
    Rename(ParsedPath, ParsedPath),
    /// `rewinddir(dh)`
    Rewinddir(DirHandleId),
    /// `rmdir(path)`
    Rmdir(ParsedPath),
    /// `stat(path)`
    Stat(ParsedPath),
    /// `symlink(target, linkpath)` — the target is also stored pre-parsed,
    /// since it ends up spliced by the resolver once the link is followed.
    Symlink(ParsedPath, ParsedPath),
    /// `truncate(path, length)`
    Truncate(ParsedPath, i64),
    /// `umask(mask)` — returns the previous mask.
    Umask(FileMode),
    /// `unlink(path)`
    Unlink(ParsedPath),
    /// `write(fd, data)`
    Write(Fd, Vec<u8>),
    /// Administrative command used by test scripts to populate the
    /// user/group table (the harness's equivalent of `useradd -G`).
    AddUserToGroup(Uid, Gid),
}

impl OsCommand {
    /// The libc function name of the command (used to group tests and
    /// aggregate survey results).
    pub fn name(&self) -> &'static str {
        match self {
            OsCommand::Chdir(..) => "chdir",
            OsCommand::Chmod(..) => "chmod",
            OsCommand::Chown(..) => "chown",
            OsCommand::Close(..) => "close",
            OsCommand::Closedir(..) => "closedir",
            OsCommand::Link(..) => "link",
            OsCommand::Lseek(..) => "lseek",
            OsCommand::Lstat(..) => "lstat",
            OsCommand::Mkdir(..) => "mkdir",
            OsCommand::Open(..) => "open",
            OsCommand::Opendir(..) => "opendir",
            OsCommand::Pread(..) => "pread",
            OsCommand::Pwrite(..) => "pwrite",
            OsCommand::Read(..) => "read",
            OsCommand::Readdir(..) => "readdir",
            OsCommand::Readlink(..) => "readlink",
            OsCommand::Rename(..) => "rename",
            OsCommand::Rewinddir(..) => "rewinddir",
            OsCommand::Rmdir(..) => "rmdir",
            OsCommand::Stat(..) => "stat",
            OsCommand::Symlink(..) => "symlink",
            OsCommand::Truncate(..) => "truncate",
            OsCommand::Umask(..) => "umask",
            OsCommand::Unlink(..) => "unlink",
            OsCommand::Write(..) => "write",
            OsCommand::AddUserToGroup(..) => "add_user_to_group",
        }
    }

    /// All libc function names the model covers (excluding the administrative
    /// harness command), in alphabetical order. Used by the test generator and
    /// the coverage/acceptance reports.
    pub const FUNCTION_NAMES: &'static [&'static str] = &[
        "chdir", "chmod", "chown", "close", "closedir", "link", "lseek", "lstat", "mkdir", "open",
        "opendir", "pread", "pwrite", "read", "readdir", "readlink", "rename", "rewinddir",
        "rmdir", "stat", "symlink", "truncate", "umask", "unlink", "write",
    ];

    /// The path arguments mentioned by the command, in order.
    pub fn paths(&self) -> Vec<&ParsedPath> {
        match self {
            OsCommand::Chdir(p)
            | OsCommand::Chmod(p, _)
            | OsCommand::Chown(p, _, _)
            | OsCommand::Lstat(p)
            | OsCommand::Mkdir(p, _)
            | OsCommand::Open(p, _, _)
            | OsCommand::Opendir(p)
            | OsCommand::Readlink(p)
            | OsCommand::Rmdir(p)
            | OsCommand::Stat(p)
            | OsCommand::Truncate(p, _)
            | OsCommand::Unlink(p) => vec![p],
            OsCommand::Link(a, b) | OsCommand::Rename(a, b) => vec![a, b],
            OsCommand::Symlink(_, p) => vec![p],
            _ => vec![],
        }
    }
}

impl fmt::Display for OsCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsCommand::Chdir(p) => write!(f, "chdir {p}"),
            OsCommand::Chmod(p, m) => write!(f, "chmod {p} {m}"),
            OsCommand::Chown(p, u, g) => write!(f, "chown {p} {} {}", u.0, g.0),
            OsCommand::Close(fd) => write!(f, "close (FD {})", fd.0),
            OsCommand::Closedir(dh) => write!(f, "closedir (DH {})", dh.0),
            OsCommand::Link(a, b) => write!(f, "link {a} {b}"),
            OsCommand::Lseek(fd, off, w) => write!(f, "lseek (FD {}) {off} {w}", fd.0),
            OsCommand::Lstat(p) => write!(f, "lstat {p}"),
            OsCommand::Mkdir(p, m) => write!(f, "mkdir {p} {m}"),
            OsCommand::Open(p, flags, Some(m)) => write!(f, "open {p} {flags} {m}"),
            OsCommand::Open(p, flags, None) => write!(f, "open {p} {flags}"),
            OsCommand::Opendir(p) => write!(f, "opendir {p}"),
            OsCommand::Pread(fd, n, off) => write!(f, "pread (FD {}) {n} {off}", fd.0),
            OsCommand::Pwrite(fd, data, off) => {
                write!(f, "pwrite (FD {}) {:?} {off}", fd.0, String::from_utf8_lossy(data))
            }
            OsCommand::Read(fd, n) => write!(f, "read (FD {}) {n}", fd.0),
            OsCommand::Readdir(dh) => write!(f, "readdir (DH {})", dh.0),
            OsCommand::Readlink(p) => write!(f, "readlink {p}"),
            OsCommand::Rename(a, b) => write!(f, "rename {a} {b}"),
            OsCommand::Rewinddir(dh) => write!(f, "rewinddir (DH {})", dh.0),
            OsCommand::Rmdir(p) => write!(f, "rmdir {p}"),
            OsCommand::Stat(p) => write!(f, "stat {p}"),
            OsCommand::Symlink(t, p) => write!(f, "symlink {t} {p}"),
            OsCommand::Truncate(p, len) => write!(f, "truncate {p} {len}"),
            OsCommand::Umask(m) => write!(f, "umask {m}"),
            OsCommand::Unlink(p) => write!(f, "unlink {p}"),
            OsCommand::Write(fd, data) => {
                write!(f, "write (FD {}) {:?}", fd.0, String::from_utf8_lossy(data))
            }
            OsCommand::AddUserToGroup(u, g) => write!(f, "add_user_to_group {} {}", u.0, g.0),
        }
    }
}

/// The subset of `struct stat` fields tracked by the model.
///
/// Device and inode numbers are implementation details and are not part of
/// the abstract state; timestamps are tracked separately by the timestamps
/// trait and are not compared by default (§1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Stat {
    /// The kind of object (regular file, directory, symlink).
    pub kind: FileKind,
    /// Size in bytes; for symlinks, the length of the target path.
    pub size: u64,
    /// Link count.
    pub nlink: u32,
    /// Permission bits.
    pub mode: FileMode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
}

impl fmt::Display for Stat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{kind={}; size={}; nlink={}; mode={}; uid={}; gid={}}}",
            self.kind, self.size, self.nlink, self.mode, self.uid.0, self.gid.0
        )
    }
}

/// A successful return value from a libc call.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RetValue {
    /// The call succeeded and returns nothing of interest (`RV_none`).
    None,
    /// A numeric return (byte counts, offsets, previous umask).
    Num(i64),
    /// The bytes returned by `read`/`pread`.
    Bytes(Vec<u8>),
    /// A `stat` structure.
    Stat(Box<Stat>),
    /// A newly allocated file descriptor.
    Fd(Fd),
    /// A newly allocated directory handle.
    DirHandle(DirHandleId),
    /// One entry returned by `readdir`, or `None` for end-of-directory.
    ReaddirEntry(Option<String>),
    /// The target path returned by `readlink`.
    Path(String),
}

impl fmt::Display for RetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetValue::None => write!(f, "RV_none"),
            RetValue::Num(n) => write!(f, "RV_num({n})"),
            RetValue::Bytes(b) => write!(f, "RV_bytes({:?})", String::from_utf8_lossy(b)),
            RetValue::Stat(st) => write!(f, "RV_stat {st}"),
            RetValue::Fd(fd) => write!(f, "RV_fd({})", fd.0),
            RetValue::DirHandle(dh) => write!(f, "RV_dh({})", dh.0),
            RetValue::ReaddirEntry(Some(name)) => write!(f, "RV_readdir({name:?})"),
            RetValue::ReaddirEntry(None) => write!(f, "RV_readdir_end"),
            RetValue::Path(p) => write!(f, "RV_path({p:?})"),
        }
    }
}

/// Either an error or a successful return value: what an `OS_RETURN` label
/// carries back to the calling process.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ErrorOrValue {
    /// The call failed with the given errno.
    Error(Errno),
    /// The call succeeded with the given value.
    Value(RetValue),
}

impl ErrorOrValue {
    /// Convenience constructor for a successful void return.
    pub fn ok_none() -> ErrorOrValue {
        ErrorOrValue::Value(RetValue::None)
    }

    /// Whether this is an error return.
    pub fn is_error(&self) -> bool {
        matches!(self, ErrorOrValue::Error(_))
    }

    /// The errno, if this is an error return.
    pub fn as_error(&self) -> Option<Errno> {
        match self {
            ErrorOrValue::Error(e) => Some(*e),
            ErrorOrValue::Value(_) => None,
        }
    }
}

impl fmt::Display for ErrorOrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorOrValue::Error(e) => write!(f, "{e}"),
            ErrorOrValue::Value(v) => write!(f, "{v}"),
        }
    }
}

/// A label of the SibylFS labelled transition system (the `os_label` type of
/// the Lem model, §5).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsLabel {
    /// Process `pid` invokes a libc call.
    Call(Pid, OsCommand),
    /// A value (or error) is returned to process `pid`.
    Return(Pid, ErrorOrValue),
    /// A new process is created with the given pid, user and group.
    Create(Pid, Uid, Gid),
    /// A process is destroyed.
    Destroy(Pid),
    /// An internal transition: the OS/file system processes a pending call.
    Tau,
}

impl OsLabel {
    /// The process the label concerns, if any (τ concerns none).
    pub fn pid(&self) -> Option<Pid> {
        match self {
            OsLabel::Call(pid, _) | OsLabel::Return(pid, _) | OsLabel::Create(pid, _, _)
            | OsLabel::Destroy(pid) => Some(*pid),
            OsLabel::Tau => None,
        }
    }
}

impl fmt::Display for OsLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsLabel::Call(pid, cmd) => write!(f, "{pid}: call {cmd}"),
            OsLabel::Return(pid, rv) => write!(f, "{pid}: return {rv}"),
            OsLabel::Create(pid, uid, gid) => write!(f, "create {pid} {} {}", uid.0, gid.0),
            OsLabel::Destroy(pid) => write!(f, "destroy {pid}"),
            OsLabel::Tau => write!(f, "tau"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_names_cover_function_list() {
        // Every function name in FUNCTION_NAMES corresponds to a constructible command.
        let samples: Vec<OsCommand> = vec![
            OsCommand::Chdir("/".into()),
            OsCommand::Chmod("/f".into(), FileMode::new(0o644)),
            OsCommand::Chown("/f".into(), Uid(1), Gid(1)),
            OsCommand::Close(Fd(3)),
            OsCommand::Closedir(DirHandleId(1)),
            OsCommand::Link("/a".into(), "/b".into()),
            OsCommand::Lseek(Fd(3), 0, SeekWhence::Set),
            OsCommand::Lstat("/f".into()),
            OsCommand::Mkdir("/d".into(), FileMode::new(0o777)),
            OsCommand::Open("/f".into(), OpenFlags::O_CREAT, Some(FileMode::new(0o666))),
            OsCommand::Opendir("/d".into()),
            OsCommand::Pread(Fd(3), 10, 0),
            OsCommand::Pwrite(Fd(3), b"x".to_vec(), 0),
            OsCommand::Read(Fd(3), 10),
            OsCommand::Readdir(DirHandleId(1)),
            OsCommand::Readlink("/s".into()),
            OsCommand::Rename("/a".into(), "/b".into()),
            OsCommand::Rewinddir(DirHandleId(1)),
            OsCommand::Rmdir("/d".into()),
            OsCommand::Stat("/f".into()),
            OsCommand::Symlink("/t".into(), "/s".into()),
            OsCommand::Truncate("/f".into(), 0),
            OsCommand::Umask(FileMode::new(0o022)),
            OsCommand::Unlink("/f".into()),
            OsCommand::Write(Fd(3), b"x".to_vec()),
        ];
        let mut names: Vec<&str> = samples.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let mut expected = OsCommand::FUNCTION_NAMES.to_vec();
        expected.sort_unstable();
        assert_eq!(names, expected);
    }

    #[test]
    fn paths_extraction() {
        let texts: Vec<&str> = OsCommand::Rename("/a".into(), "/b".into())
            .paths()
            .iter()
            .map(|p| p.as_str())
            .collect();
        assert_eq!(texts, vec!["/a", "/b"]);
        let texts: Vec<&str> = OsCommand::Symlink("target".into(), "/s".into())
            .paths()
            .iter()
            .map(|p| p.as_str())
            .collect();
        assert_eq!(texts, vec!["/s"]);
        assert!(OsCommand::Close(Fd(1)).paths().is_empty());
    }

    #[test]
    fn display_forms_are_parsable_looking() {
        let c = OsCommand::Mkdir("emptydir".into(), FileMode::new(0o777));
        assert_eq!(c.to_string(), "mkdir \"emptydir\" 0o777");
        let l = OsLabel::Call(Pid(1), c);
        assert!(l.to_string().starts_with("p1: call mkdir"));
    }

    #[test]
    fn error_or_value_accessors() {
        let e = ErrorOrValue::Error(Errno::ENOENT);
        assert!(e.is_error());
        assert_eq!(e.as_error(), Some(Errno::ENOENT));
        let v = ErrorOrValue::ok_none();
        assert!(!v.is_error());
        assert_eq!(v.as_error(), None);
    }

    #[test]
    fn label_pid() {
        assert_eq!(OsLabel::Tau.pid(), None);
        assert_eq!(OsLabel::Destroy(Pid(4)).pid(), Some(Pid(4)));
    }
}
