//! Specification coverage instrumentation.
//!
//! The paper measures test-suite quality as *statement coverage of the model*
//! (§7.2): the proportion of specification clauses exercised when checking a
//! test run. We reproduce this by annotating the model with named *spec
//! points* — one per distinct behavioural clause (error case, success case,
//! platform-specific branch) — and recording which points are hit while
//! checking traces.
//!
//! The registry of all spec points is declared explicitly in
//! [`crate::spec_registry`] together with each syscall's errno envelope; a
//! scan of the embedded model source (every `spec_point("…")` occurrence in
//! the `fs_ops` and `os` modules) double-checks that the declaration never
//! drifts out of sync with the specification code — see
//! [`scanned_registry`] and the `sibylfs audit` static pass.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use parking_lot::Mutex;

use serde::{Deserialize, Serialize};

use crate::commands::{ErrorOrValue, RetValue};

static COLLECTOR: Mutex<Option<BTreeSet<String>>> = Mutex::new(None);

thread_local! {
    /// Per-thread scoped collector, used by the exploration engine to
    /// attribute specification branches to the single script being checked on
    /// this thread while many worker threads run concurrently (the global
    /// collector would mix their hits together).
    static SCOPED: RefCell<Option<BTreeSet<String>>> = const { RefCell::new(None) };
}

/// Record that the named specification clause has been evaluated.
///
/// This is a no-op unless collection has been enabled with [`enable`] (global)
/// or [`scoped_begin`] (this thread), so the cost in normal checking is one
/// thread-local check plus a single mutex-protected check.
pub fn spec_point(name: &str) {
    SCOPED.with(|tl| {
        if let Some(set) = tl.borrow_mut().as_mut() {
            if !set.contains(name) {
                set.insert(name.to_string());
            }
        }
    });
    let mut guard = COLLECTOR.lock();
    if let Some(set) = guard.as_mut() {
        if !set.contains(name) {
            set.insert(name.to_string());
        }
    }
}

/// Start collecting spec points on *this thread only*. Any previously scoped
/// points on this thread are cleared. Collection is per-thread, so checking
/// must happen on the same thread that called this.
pub fn scoped_begin() {
    SCOPED.with(|tl| *tl.borrow_mut() = Some(BTreeSet::new()));
}

/// Stop the thread-scoped collection and return the points hit on this thread
/// since [`scoped_begin`].
pub fn scoped_end() -> BTreeSet<String> {
    SCOPED.with(|tl| tl.borrow_mut().take().unwrap_or_default())
}

/// Start collecting coverage. Any previously collected points are cleared.
pub fn enable() {
    *COLLECTOR.lock() = Some(BTreeSet::new());
}

/// Stop collecting coverage and return the set of points hit.
pub fn disable() -> BTreeSet<String> {
    COLLECTOR.lock().take().unwrap_or_default()
}

/// The set of points hit so far (empty if collection is disabled).
pub fn snapshot() -> BTreeSet<String> {
    COLLECTOR.lock().clone().unwrap_or_default()
}

/// Whether collection is currently enabled.
pub fn is_enabled() -> bool {
    COLLECTOR.lock().is_some()
}

/// The embedded model sources scanned by the spec-consistency audit.
///
/// `flavor.rs` carries no spec points but holds the per-flavour errno tables,
/// which the audit follows when computing what a syscall rule can emit.
const MODEL_SOURCES: &[(&str, &str)] = &[
    ("fs_ops/mod.rs", include_str!("fs_ops/mod.rs")),
    ("fs_ops/dirs.rs", include_str!("fs_ops/dirs.rs")),
    ("fs_ops/files.rs", include_str!("fs_ops/files.rs")),
    ("fs_ops/links.rs", include_str!("fs_ops/links.rs")),
    ("fs_ops/rename.rs", include_str!("fs_ops/rename.rs")),
    ("fs_ops/open.rs", include_str!("fs_ops/open.rs")),
    ("fs_ops/io.rs", include_str!("fs_ops/io.rs")),
    ("fs_ops/meta_ops.rs", include_str!("fs_ops/meta_ops.rs")),
    ("fs_ops/dir_handles.rs", include_str!("fs_ops/dir_handles.rs")),
    ("path/mod.rs", include_str!("path/mod.rs")),
    ("os/trans.rs", include_str!("os/trans.rs")),
    ("flavor.rs", include_str!("flavor.rs")),
];

/// The embedded model sources, for static analysis (the `sibylfs_analyze`
/// audit parses these to cross-check the declared registry against what the
/// specification text actually contains and can emit).
pub fn model_sources() -> &'static [(&'static str, &'static str)] {
    MODEL_SOURCES
}

/// All specification points of the model: the declared registry.
///
/// Until the spec-consistency audit existed this was derived by scanning the
/// model source for `spec_point("…")` literals; it is now the explicit list
/// in [`crate::spec_registry`], and the audit (plus a unit test below) checks
/// that the declaration and the source never drift apart.
pub fn registry() -> BTreeSet<String> {
    crate::spec_registry::declared_points().iter().map(|p| p.to_string()).collect()
}

/// All `spec_point("…")` literals present in the embedded model sources.
///
/// This is the old ad-hoc derivation of the registry, kept as the
/// cross-check: [`registry`] (the declaration) must equal this scan, which
/// the audit and the `declared_registry_matches_source_scan` test enforce.
pub fn scanned_registry() -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (_file, src) in MODEL_SOURCES {
        for occurrence in src.split("spec_point(\"").skip(1) {
            if let Some(end) = occurrence.find('"') {
                out.insert(occurrence[..end].to_string());
            }
        }
    }
    out
}

/// Per-module counts of spec points, used by the model-size report. Sources
/// without any spec points (errno tables and the like) are omitted.
pub fn registry_by_module() -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (file, src) in MODEL_SOURCES {
        let count = src.matches("spec_point(\"").count();
        if count > 0 {
            out.push((file.to_string(), count));
        }
    }
    out
}

/// A simple coverage summary: points hit, total points, percentage.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSummary {
    /// Spec points exercised.
    pub hit: usize,
    /// Total spec points in the model.
    pub total: usize,
    /// Names of points never exercised.
    pub missed: Vec<String>,
}

impl CoverageSummary {
    /// Build a summary from a set of hit points.
    pub fn from_hits(hits: &BTreeSet<String>) -> CoverageSummary {
        let reg = registry();
        let missed: Vec<String> = reg.difference(hits).cloned().collect();
        CoverageSummary { hit: reg.intersection(hits).count(), total: reg.len(), missed }
    }

    /// Coverage percentage (0–100).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            self.hit as f64 * 100.0 / self.total as f64
        }
    }
}

/// One point of model coverage, as tracked by the exploration engine.
///
/// The key space is the cross product the tentpole asks for — (syscall kind,
/// outcome/errno) transitions actually observed in traces, plus the
/// nondeterministic branch ids of the specification itself (the `spec_point`
/// names, which are exactly the model's behavioural branches).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoverageKey {
    /// A specification branch evaluated while checking (`spec_point` name).
    Branch(String),
    /// A `(syscall, outcome)` pair observed in a checked trace; `outcome` is
    /// an errno name or an `ok/<kind>` success tag (see [`outcome_name`]).
    Transition {
        /// The libc function (from `OsCommand::name`).
        syscall: String,
        /// The observed outcome.
        outcome: String,
    },
}

/// The canonical short name of an observed return value, used as the
/// `outcome` component of [`CoverageKey::Transition`]: the errno name for
/// errors, an `ok/<kind>` tag for successes (payloads are deliberately
/// ignored so the key space stays small).
pub fn outcome_name(ret: &ErrorOrValue) -> String {
    match ret {
        ErrorOrValue::Error(e) => e.to_string(),
        ErrorOrValue::Value(v) => match v {
            RetValue::None => "ok/none".to_string(),
            RetValue::Num(..) => "ok/num".to_string(),
            RetValue::Bytes(..) => "ok/bytes".to_string(),
            RetValue::Stat(..) => "ok/stat".to_string(),
            RetValue::Fd(..) => "ok/fd".to_string(),
            RetValue::DirHandle(..) => "ok/dh".to_string(),
            RetValue::ReaddirEntry(Some(..)) => "ok/readdir".to_string(),
            RetValue::ReaddirEntry(None) => "ok/readdir_end".to_string(),
            RetValue::Path(..) => "ok/path".to_string(),
        },
    }
}

/// A cheap, mergeable, serializable set of [`CoverageKey`]s — the feedback
/// signal of the exploration engine.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoverageMap {
    keys: BTreeSet<CoverageKey>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Insert one key; `true` if it was new.
    pub fn insert(&mut self, key: CoverageKey) -> bool {
        self.keys.insert(key)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &CoverageKey) -> bool {
        self.keys.contains(key)
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no key has been recorded.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Merge another map in, returning how many of its keys were new here.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let before = self.keys.len();
        self.keys.extend(other.keys.iter().cloned());
        self.keys.len() - before
    }

    /// The keys of `self` that are *not* in `other` — the novelty signal that
    /// decides whether a script earns a corpus slot.
    pub fn novel_versus(&self, other: &CoverageMap) -> Vec<CoverageKey> {
        self.keys.difference(&other.keys).cloned().collect()
    }

    /// Iterate over all keys in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &CoverageKey> {
        self.keys.iter()
    }

    /// The specification-branch subset as a plain point set.
    pub fn branch_points(&self) -> BTreeSet<String> {
        self.keys
            .iter()
            .filter_map(|k| match k {
                CoverageKey::Branch(p) => Some(p.clone()),
                CoverageKey::Transition { .. } => None,
            })
            .collect()
    }

    /// Branch coverage against the spec-point registry (the headline number).
    pub fn branch_summary(&self) -> CoverageSummary {
        CoverageSummary::from_hits(&self.branch_points())
    }

    /// The number of `(syscall, outcome)` transitions observed.
    pub fn transition_count(&self) -> usize {
        self.keys.iter().filter(|k| matches!(k, CoverageKey::Transition { .. })).count()
    }

    /// Observed outcomes grouped per syscall — the errno-envelope table of the
    /// final exploration report.
    pub fn per_syscall_outcomes(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for k in &self.keys {
            if let CoverageKey::Transition { syscall, outcome } = k {
                out.entry(syscall.clone()).or_default().insert(outcome.clone());
            }
        }
        out
    }

    /// Serialize to the stable line-oriented text format (`branch <point>` /
    /// `transition <syscall> <outcome>`, sorted). Inverse of [`CoverageMap::parse`].
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for k in &self.keys {
            match k {
                CoverageKey::Branch(p) => {
                    out.push_str("branch ");
                    out.push_str(p);
                }
                CoverageKey::Transition { syscall, outcome } => {
                    out.push_str("transition ");
                    out.push_str(syscall);
                    out.push(' ');
                    out.push_str(outcome);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parse the text produced by [`CoverageMap::serialize`]. Lines starting
    /// with `#` and blank lines are ignored.
    pub fn parse(text: &str) -> Result<CoverageMap, String> {
        let mut map = CoverageMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("branch") => {
                    let p = parts.next().ok_or_else(|| {
                        format!("line {}: branch key without a point name", idx + 1)
                    })?;
                    map.insert(CoverageKey::Branch(p.to_string()));
                }
                Some("transition") => {
                    let syscall = parts.next().ok_or_else(|| {
                        format!("line {}: transition key without a syscall", idx + 1)
                    })?;
                    let outcome = parts.next().ok_or_else(|| {
                        format!("line {}: transition key without an outcome", idx + 1)
                    })?;
                    map.insert(CoverageKey::Transition {
                        syscall: syscall.to_string(),
                        outcome: outcome.to_string(),
                    });
                }
                Some(other) => {
                    return Err(format!("line {}: unknown coverage-key kind {other:?}", idx + 1))
                }
                None => unreachable!("blank lines are skipped above"),
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_round_trip() {
        enable();
        assert!(is_enabled());
        spec_point("test/point_a");
        spec_point("test/point_b");
        spec_point("test/point_a");
        let hits = disable();
        assert!(hits.contains("test/point_a"));
        assert!(hits.contains("test/point_b"));
        assert!(!is_enabled());
        // Disabled collection ignores hits.
        spec_point("test/point_c");
        assert!(snapshot().is_empty());
    }

    #[test]
    fn registry_is_nonempty_and_namespaced() {
        let reg = registry();
        assert!(reg.len() > 100, "expected a substantial number of spec points, got {}", reg.len());
        // Every point is of the form "<function>/<clause>".
        for p in &reg {
            assert!(p.contains('/'), "spec point {p:?} is not namespaced");
        }
    }

    #[test]
    fn declared_registry_matches_source_scan() {
        let declared = registry();
        let scanned = scanned_registry();
        let missing: Vec<_> = scanned.difference(&declared).collect();
        let stale: Vec<_> = declared.difference(&scanned).collect();
        assert!(
            missing.is_empty() && stale.is_empty(),
            "spec_registry drifted from the model source; \
             unregistered: {missing:?}, stale: {stale:?}"
        );
    }

    #[test]
    fn scoped_collection_is_per_thread_and_composes_with_global() {
        enable();
        scoped_begin();
        spec_point("test/scoped_a");
        // A point hit on another thread lands in the global collector but not
        // in this thread's scoped set.
        std::thread::scope(|s| {
            s.spawn(|| spec_point("test/other_thread")).join().unwrap();
        });
        let scoped = scoped_end();
        let global = disable();
        assert!(scoped.contains("test/scoped_a"));
        assert!(!scoped.contains("test/other_thread"));
        assert!(global.contains("test/scoped_a"));
        assert!(global.contains("test/other_thread"));
        // After scoped_end, scoped collection is off again.
        spec_point("test/late");
        assert!(scoped_end().is_empty());
    }

    #[test]
    fn coverage_map_set_merge_and_novelty() {
        let mut a = CoverageMap::new();
        assert!(a.insert(CoverageKey::Branch("open/success".into())));
        assert!(!a.insert(CoverageKey::Branch("open/success".into())));
        assert!(a.insert(CoverageKey::Transition {
            syscall: "open".into(),
            outcome: "EEXIST".into()
        }));
        let mut b = CoverageMap::new();
        b.insert(CoverageKey::Branch("open/success".into()));
        b.insert(CoverageKey::Branch("mkdir/success".into()));
        let novel = b.novel_versus(&a);
        assert_eq!(novel, vec![CoverageKey::Branch("mkdir/success".into())]);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.transition_count(), 1);
        assert_eq!(a.branch_points().len(), 2);
        let env = a.per_syscall_outcomes();
        assert!(env["open"].contains("EEXIST"));
    }

    #[test]
    fn coverage_map_serialization_round_trips() {
        let mut m = CoverageMap::new();
        m.insert(CoverageKey::Branch("rename/success".into()));
        m.insert(CoverageKey::Transition { syscall: "rename".into(), outcome: "ENOTEMPTY".into() });
        m.insert(CoverageKey::Transition { syscall: "read".into(), outcome: "ok/bytes".into() });
        let text = m.serialize();
        assert!(text.contains("branch rename/success\n"));
        assert!(text.contains("transition rename ENOTEMPTY\n"));
        let parsed = CoverageMap::parse(&text).unwrap();
        assert_eq!(parsed, m);
        // Comments and blank lines are tolerated; junk is not.
        let commented = format!("# header\n\n{text}");
        assert_eq!(CoverageMap::parse(&commented).unwrap(), m);
        assert!(CoverageMap::parse("mystery open").is_err());
        assert!(CoverageMap::parse("transition open").is_err());
    }

    #[test]
    fn outcome_names_are_compact() {
        use crate::errno::Errno;
        use crate::types::Fd;
        assert_eq!(outcome_name(&ErrorOrValue::Error(Errno::ENOENT)), "ENOENT");
        assert_eq!(outcome_name(&ErrorOrValue::Value(RetValue::None)), "ok/none");
        assert_eq!(outcome_name(&ErrorOrValue::Value(RetValue::Fd(Fd(3)))), "ok/fd");
        assert_eq!(
            outcome_name(&ErrorOrValue::Value(RetValue::ReaddirEntry(None))),
            "ok/readdir_end"
        );
    }

    #[test]
    fn summary_percent() {
        let mut hits = BTreeSet::new();
        for p in registry().into_iter().take(10) {
            hits.insert(p);
        }
        let s = CoverageSummary::from_hits(&hits);
        assert_eq!(s.hit, 10);
        assert!(s.percent() > 0.0 && s.percent() <= 100.0);
    }
}
