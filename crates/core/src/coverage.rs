//! Specification coverage instrumentation.
//!
//! The paper measures test-suite quality as *statement coverage of the model*
//! (§7.2): the proportion of specification clauses exercised when checking a
//! test run. We reproduce this by annotating the model with named *spec
//! points* — one per distinct behavioural clause (error case, success case,
//! platform-specific branch) — and recording which points are hit while
//! checking traces.
//!
//! The registry of all spec points is derived from the model source itself
//! (every `spec_point("…")` occurrence in the `fs_ops` and `os` modules), so
//! the universe used as the denominator can never drift out of sync with the
//! specification code.

use std::collections::BTreeSet;

use parking_lot::Mutex;

static COLLECTOR: Mutex<Option<BTreeSet<String>>> = Mutex::new(None);

/// Record that the named specification clause has been evaluated.
///
/// This is a no-op unless collection has been enabled with [`enable`], so the
/// cost in normal checking is a single mutex-protected check.
pub fn spec_point(name: &str) {
    let mut guard = COLLECTOR.lock();
    if let Some(set) = guard.as_mut() {
        if !set.contains(name) {
            set.insert(name.to_string());
        }
    }
}

/// Start collecting coverage. Any previously collected points are cleared.
pub fn enable() {
    *COLLECTOR.lock() = Some(BTreeSet::new());
}

/// Stop collecting coverage and return the set of points hit.
pub fn disable() -> BTreeSet<String> {
    COLLECTOR.lock().take().unwrap_or_default()
}

/// The set of points hit so far (empty if collection is disabled).
pub fn snapshot() -> BTreeSet<String> {
    COLLECTOR.lock().clone().unwrap_or_default()
}

/// Whether collection is currently enabled.
pub fn is_enabled() -> bool {
    COLLECTOR.lock().is_some()
}

/// The embedded model sources that are scanned for spec points.
const MODEL_SOURCES: &[(&str, &str)] = &[
    ("fs_ops/mod.rs", include_str!("fs_ops/mod.rs")),
    ("fs_ops/dirs.rs", include_str!("fs_ops/dirs.rs")),
    ("fs_ops/files.rs", include_str!("fs_ops/files.rs")),
    ("fs_ops/links.rs", include_str!("fs_ops/links.rs")),
    ("fs_ops/rename.rs", include_str!("fs_ops/rename.rs")),
    ("fs_ops/open.rs", include_str!("fs_ops/open.rs")),
    ("fs_ops/io.rs", include_str!("fs_ops/io.rs")),
    ("fs_ops/meta_ops.rs", include_str!("fs_ops/meta_ops.rs")),
    ("fs_ops/dir_handles.rs", include_str!("fs_ops/dir_handles.rs")),
    ("path/mod.rs", include_str!("path/mod.rs")),
    ("os/trans.rs", include_str!("os/trans.rs")),
];

/// All specification points present in the model source, grouped nowhere:
/// just the sorted list of unique point names.
///
/// The scan looks for string literals passed to `spec_point(`; this keeps the
/// coverage denominator mechanically in sync with the specification text, in
/// the spirit of the paper's per-line annotations.
pub fn registry() -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (_file, src) in MODEL_SOURCES {
        for occurrence in src.split("spec_point(\"").skip(1) {
            if let Some(end) = occurrence.find('"') {
                out.insert(occurrence[..end].to_string());
            }
        }
    }
    out
}

/// Per-module counts of spec points, used by the model-size report.
pub fn registry_by_module() -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (file, src) in MODEL_SOURCES {
        let count = src.matches("spec_point(\"").count();
        out.push((file.to_string(), count));
    }
    out
}

/// A simple coverage summary: points hit, total points, percentage.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSummary {
    /// Spec points exercised.
    pub hit: usize,
    /// Total spec points in the model.
    pub total: usize,
    /// Names of points never exercised.
    pub missed: Vec<String>,
}

impl CoverageSummary {
    /// Build a summary from a set of hit points.
    pub fn from_hits(hits: &BTreeSet<String>) -> CoverageSummary {
        let reg = registry();
        let missed: Vec<String> = reg.difference(hits).cloned().collect();
        CoverageSummary { hit: reg.intersection(hits).count(), total: reg.len(), missed }
    }

    /// Coverage percentage (0–100).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            self.hit as f64 * 100.0 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_round_trip() {
        enable();
        assert!(is_enabled());
        spec_point("test/point_a");
        spec_point("test/point_b");
        spec_point("test/point_a");
        let hits = disable();
        assert!(hits.contains("test/point_a"));
        assert!(hits.contains("test/point_b"));
        assert!(!is_enabled());
        // Disabled collection ignores hits.
        spec_point("test/point_c");
        assert!(snapshot().is_empty());
    }

    #[test]
    fn registry_is_nonempty_and_namespaced() {
        let reg = registry();
        assert!(reg.len() > 100, "expected a substantial number of spec points, got {}", reg.len());
        // Every point is of the form "<function>/<clause>".
        for p in &reg {
            assert!(p.contains('/'), "spec point {p:?} is not namespaced");
        }
    }

    #[test]
    fn summary_percent() {
        let mut hits = BTreeSet::new();
        for p in registry().into_iter().take(10) {
            hits.insert(p);
        }
        let s = CoverageSummary::from_hits(&hits);
        assert_eq!(s.hit, 10);
        assert!(s.percent() > 0.0 && s.percent() <= 100.0);
    }
}
