//! Declared registry of specification points and per-syscall errno envelopes.
//!
//! The coverage denominator used throughout the workspace (`coverage::registry`)
//! and the errno envelope each syscall specification is allowed to emit are
//! *declared* here, rather than derived by scanning the model source at run
//! time. The `sibylfs audit` static pass (crate `sibylfs_analyze`) and a unit
//! test in [`crate::coverage`] cross-check the declaration against the model
//! text in both directions:
//!
//! * every `spec_point("…")` literal in the model must appear in
//!   [`declared_points`] (else it is *unregistered*), and every declared point
//!   must appear in the model (else it is *stale*);
//! * every `Errno` a syscall's rule can reach — transitively, through the
//!   shared `SpecCtx` checks, path resolution, and the per-flavour errno
//!   tables — must be declared in that syscall's [`SyscallSpec::errnos`]
//!   envelope (else it is *undeclared*), and every declared errno must be
//!   reachable (else it is *dead spec surface*).
//!
//! Keeping the declaration explicit makes envelope changes show up in review
//! as a diff of this file instead of silently widening the model.

use crate::errno::Errno;

use Errno::*;

/// The declared static description of one syscall specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallSpec {
    /// The model-side name, which is also the spec-point prefix (`"stat"`
    /// covers both the `stat` and `lstat` commands).
    pub name: &'static str,
    /// The entry function in `fs_ops` implementing the specification.
    pub entry: &'static str,
    /// The `OsCommand::name()`s dispatched to this specification.
    pub commands: &'static [&'static str],
    /// Every errno any rule of this specification can emit, for any flavour
    /// and any trait configuration.
    pub errnos: &'static [Errno],
}

/// The declared syscall table, one entry per `spec_*` function in `fs_ops`.
pub static SYSCALLS: &[SyscallSpec] = &[
    SyscallSpec {
        name: "chdir",
        entry: "spec_chdir",
        commands: &["chdir"],
        errnos: &[EACCES, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "chmod",
        entry: "spec_chmod",
        commands: &["chmod"],
        errnos: &[EACCES, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR, EPERM],
    },
    SyscallSpec {
        name: "chown",
        entry: "spec_chown",
        commands: &["chown"],
        errnos: &[EACCES, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR, EPERM],
    },
    SyscallSpec {
        name: "close",
        entry: "spec_close",
        commands: &["close"],
        errnos: &[EBADF],
    },
    SyscallSpec {
        name: "closedir",
        entry: "spec_closedir",
        commands: &["closedir"],
        errnos: &[EBADF],
    },
    SyscallSpec {
        name: "link",
        entry: "spec_link",
        commands: &["link"],
        errnos: &[EACCES, EEXIST, ELOOP, EMLINK, ENAMETOOLONG, ENOENT, ENOTDIR, EPERM],
    },
    SyscallSpec {
        name: "lseek",
        entry: "spec_lseek",
        commands: &["lseek"],
        errnos: &[EBADF, EINVAL, EOVERFLOW],
    },
    SyscallSpec {
        name: "mkdir",
        entry: "spec_mkdir",
        commands: &["mkdir"],
        errnos: &[EACCES, EEXIST, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "open",
        entry: "spec_open",
        commands: &["open"],
        errnos: &[EACCES, EEXIST, EINVAL, EISDIR, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "opendir",
        entry: "spec_opendir",
        commands: &["opendir"],
        errnos: &[EACCES, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "pread",
        entry: "spec_pread",
        commands: &["pread"],
        errnos: &[EBADF, EINVAL, EISDIR],
    },
    SyscallSpec {
        name: "pwrite",
        entry: "spec_pwrite",
        commands: &["pwrite"],
        errnos: &[EBADF, EFBIG, EINVAL],
    },
    SyscallSpec {
        name: "read",
        entry: "spec_read",
        commands: &["read"],
        errnos: &[EBADF, EISDIR],
    },
    SyscallSpec {
        name: "readdir",
        entry: "spec_readdir",
        commands: &["readdir"],
        errnos: &[EBADF],
    },
    SyscallSpec {
        name: "readlink",
        entry: "spec_readlink",
        commands: &["readlink"],
        errnos: &[EACCES, EINVAL, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "rename",
        entry: "spec_rename",
        commands: &["rename"],
        errnos: &[EACCES, EBUSY, EEXIST, EINVAL, EISDIR, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR, ENOTEMPTY],
    },
    SyscallSpec {
        name: "rewinddir",
        entry: "spec_rewinddir",
        commands: &["rewinddir"],
        errnos: &[EBADF],
    },
    SyscallSpec {
        name: "rmdir",
        entry: "spec_rmdir",
        commands: &["rmdir"],
        errnos: &[EACCES, EBUSY, EEXIST, EINVAL, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR, ENOTEMPTY],
    },
    SyscallSpec {
        name: "stat",
        entry: "spec_stat",
        commands: &["stat", "lstat"],
        errnos: &[EACCES, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "symlink",
        entry: "spec_symlink",
        commands: &["symlink"],
        errnos: &[EACCES, EEXIST, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "truncate",
        entry: "spec_truncate",
        commands: &["truncate"],
        errnos: &[EACCES, EEXIST, EFBIG, EINVAL, EISDIR, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR],
    },
    SyscallSpec {
        name: "umask",
        entry: "spec_umask",
        commands: &["umask"],
        errnos: &[EINVAL],
    },
    SyscallSpec {
        name: "unlink",
        entry: "spec_unlink",
        commands: &["unlink"],
        errnos: &[EACCES, EEXIST, EISDIR, ELOOP, ENAMETOOLONG, ENOENT, ENOTDIR, EPERM],
    },
    SyscallSpec {
        name: "write",
        entry: "spec_write",
        commands: &["write"],
        errnos: &[EBADF, EFBIG],
    },
    SyscallSpec {
        name: "add_user_to_group",
        entry: "spec_add_user_to_group",
        commands: &["add_user_to_group"],
        errnos: &[],
    },
];

/// Spec-point prefixes that are not syscall names: shared helper clauses
/// (`common/`), the path resolver (`path/`), and the process-lifecycle layer
/// (`os/`).
pub static SHARED_PREFIXES: &[&str] = &["common", "path", "os"];

/// Every declared specification point, sorted and unique. This is the
/// coverage denominator; see the module docs for the invariants the audit
/// enforces over it.
pub static POINTS: &[&str] = &[
    "add_user_to_group/success",
    "chdir/resolution_error",
    "chdir/search_permission_denied_eacces",
    "chdir/success",
    "chdir/target_is_file_enotdir",
    "chdir/target_missing_enoent",
    "chmod/caller_not_owner_eperm",
    "chmod/resolution_error",
    "chmod/success",
    "chmod/target_is_directory",
    "chmod/target_is_file",
    "chmod/target_missing_enoent",
    "chmod/trailing_slash_on_file_enotdir",
    "chown/caller_not_permitted_eperm",
    "chown/owner_changes_group_to_member_group",
    "chown/owner_changes_group_to_nonmember_group",
    "chown/resolution_error",
    "chown/success",
    "chown/superuser_allowed",
    "chown/target_missing_enoent",
    "chown/trailing_slash_on_file_enotdir",
    "close/bad_fd_ebadf",
    "close/success",
    "closedir/bad_handle_ebadf",
    "closedir/success",
    "common/create_in_disconnected_dir_enoent",
    "common/parent_dir_not_writable_eacces",
    "common/symlink_with_trailing_slash_may_enotdir",
    "common/trailing_slash_on_file",
    "link/destination_exists_dir_eexist",
    "link/destination_exists_eexist",
    "link/destination_missing_with_trailing_slash_enoent",
    "link/destination_resolution_error",
    "link/destination_trailing_slash",
    "link/link_count_exhausted_emlink",
    "link/source_is_directory_eperm",
    "link/source_missing_enoent",
    "link/source_resolution_error",
    "link/source_symlink_behaviour_impl_defined",
    "link/source_symlink_followed",
    "link/source_symlink_linked_directly",
    "link/success",
    "lseek/bad_fd_ebadf",
    "lseek/negative_result_einval",
    "lseek/offset_overflow_eoverflow",
    "lseek/success",
    "mkdir/create_new_directory",
    "mkdir/resolution_error",
    "mkdir/success",
    "mkdir/target_is_existing_dir_eexist",
    "mkdir/target_is_existing_file_eexist",
    "mkdir/target_is_file_with_trailing_slash",
    "open/creat_excl_does_not_follow_final_symlink",
    "open/creat_excl_on_existing_dir_eexist",
    "open/creat_excl_on_existing_file_eexist",
    "open/creat_excl_on_symlink_eexist",
    "open/creat_trailing_slash_on_existing_file",
    "open/creat_with_o_directory_may_einval",
    "open/creat_with_trailing_slash",
    "open/create_new_file_success",
    "open/directory_read_only_success",
    "open/directory_read_permission_eacces",
    "open/existing_file_success",
    "open/existing_file_truncated",
    "open/file_read_permission_eacces",
    "open/file_write_permission_eacces",
    "open/invalid_access_mode_einval",
    "open/missing_without_creat_enoent",
    "open/nofollow_on_symlink_eloop",
    "open/o_directory_on_file_enotdir",
    "open/o_trunc_with_rdonly_unspecified",
    "open/resolution_error",
    "open/trailing_slash_on_file",
    "open/truncate_directory_eisdir",
    "open/write_access_on_directory_eisdir",
    "opendir/read_permission_denied_eacces",
    "opendir/resolution_error",
    "opendir/success",
    "opendir/target_is_file_enotdir",
    "opendir/target_missing_enoent",
    "os/call_accepted",
    "os/call_from_unknown_pid_rejected",
    "os/call_while_blocked_rejected",
    "os/create_existing_pid_rejected",
    "os/create_process",
    "os/destroy_busy_pid_rejected",
    "os/destroy_process",
    "os/destroy_unknown_pid_rejected",
    "os/return_without_call_rejected",
    "path/dot_component",
    "path/dotdot_component",
    "path/dotdot_of_disconnected_dir",
    "path/eloop",
    "path/empty_path_enoent",
    "path/empty_symlink_target",
    "path/final_symlink_not_followed",
    "path/intermediate_component_missing",
    "path/intermediate_component_not_a_dir",
    "path/last_component_missing",
    "path/name_too_long",
    "path/path_too_long",
    "path/resolved_to_dir",
    "path/resolved_to_file",
    "path/resolved_to_start_dir",
    "path/search_permission_denied",
    "path/symlink_followed",
    "pread/bad_fd_ebadf",
    "pread/fd_not_open_for_reading_ebadf",
    "pread/fd_refers_to_directory_eisdir",
    "pread/negative_offset_einval",
    "pread/success",
    "pwrite/append_overrides_offset_linux_convention",
    "pwrite/at_explicit_offset",
    "pwrite/bad_fd_ebadf",
    "pwrite/beyond_file_size_limit_efbig",
    "pwrite/fd_not_open_for_writing_ebadf",
    "pwrite/negative_offset_einval",
    "pwrite/success",
    "pwrite/zero_bytes_to_bad_fd_impl_defined",
    "read/bad_fd_ebadf",
    "read/fd_not_open_for_reading_ebadf",
    "read/fd_refers_to_directory_eisdir",
    "read/success",
    "readdir/bad_handle_ebadf",
    "readdir/success",
    "readlink/resolution_error",
    "readlink/success",
    "readlink/target_is_directory_einval",
    "readlink/target_missing_enoent",
    "readlink/target_not_a_symlink_einval",
    "rename/destination_dir_not_empty",
    "rename/destination_dir_without_parent_entry",
    "rename/destination_inside_source_einval",
    "rename/destination_is_root",
    "rename/destination_parent_inside_source_einval",
    "rename/destination_resolution_error",
    "rename/dir_over_file_enotdir",
    "rename/dir_replaces_empty_dir_success",
    "rename/dir_to_new_name_success",
    "rename/file_destination_resolution_error",
    "rename/file_destination_trailing_slash",
    "rename/file_over_dir_eisdir",
    "rename/file_replaces_file_success",
    "rename/file_to_missing_name_with_trailing_slash",
    "rename/file_to_new_name_success",
    "rename/path_ends_in_dot_einval",
    "rename/same_dir_noop",
    "rename/same_file_noop",
    "rename/source_dir_without_parent_entry",
    "rename/source_is_root",
    "rename/source_missing_enoent",
    "rename/source_resolution_error",
    "rewinddir/bad_handle_ebadf",
    "rewinddir/success",
    "rmdir/directory_not_empty",
    "rmdir/no_parent_entry_einval",
    "rmdir/path_ends_in_dot_einval",
    "rmdir/path_ends_in_dotdot",
    "rmdir/path_ends_in_dotdot_resolution_error",
    "rmdir/remove_root_directory",
    "rmdir/resolution_error",
    "rmdir/success",
    "rmdir/target_is_file_enotdir",
    "rmdir/target_missing_enoent",
    "stat/regular_file",
    "stat/resolution_error",
    "stat/symlink_mode_platform_specific",
    "stat/target_is_directory",
    "stat/target_missing_enoent",
    "stat/trailing_slash_on_file_enotdir",
    "symlink/empty_target_enoent",
    "symlink/linkpath_trailing_slash",
    "symlink/resolution_error",
    "symlink/success",
    "symlink/target_name_exists_dir_eexist",
    "symlink/target_name_exists_eexist",
    "truncate/length_beyond_file_size_limit",
    "truncate/negative_length_einval",
    "truncate/no_write_permission_eacces",
    "truncate/resolution_error",
    "truncate/success",
    "truncate/target_is_directory_eisdir",
    "truncate/target_missing_enoent",
    "truncate/trailing_slash_on_file",
    "umask/success",
    "unlink/resolution_error",
    "unlink/success",
    "unlink/target_is_directory",
    "unlink/target_is_symlink",
    "unlink/target_missing_enoent",
    "unlink/trailing_slash_on_file",
    "write/append_mode",
    "write/at_current_offset",
    "write/bad_fd_ebadf",
    "write/beyond_file_size_limit_efbig",
    "write/fd_not_open_for_writing_ebadf",
    "write/success",
    "write/zero_bytes_to_bad_fd_impl_defined",
];

/// The declared spec-point list (the coverage denominator).
pub fn declared_points() -> &'static [&'static str] {
    POINTS
}

/// Look up a syscall's declared spec by its model name *or* by any of its
/// `OsCommand` names (so `"lstat"` finds the `stat` entry).
pub fn syscall_spec(name: &str) -> Option<&'static SyscallSpec> {
    SYSCALLS.iter().find(|s| s.name == name || s.commands.contains(&name))
}

/// The declared errno envelope of a syscall, if it is a known syscall.
pub fn errno_envelope(name: &str) -> Option<&'static [Errno]> {
    syscall_spec(name).map(|s| s.errnos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_sorted_unique_and_prefixed() {
        for w in POINTS.windows(2) {
            assert!(w[0] < w[1], "POINTS not sorted/unique at {:?}", w);
        }
        for p in POINTS {
            let prefix = p.split('/').next().unwrap_or("");
            assert!(
                syscall_spec(prefix).is_some() || SHARED_PREFIXES.contains(&prefix),
                "spec point {p:?} has no known syscall or shared prefix"
            );
        }
    }

    #[test]
    fn lookup_covers_aliases() {
        assert_eq!(syscall_spec("lstat").map(|s| s.name), Some("stat"));
        assert_eq!(syscall_spec("stat").map(|s| s.name), Some("stat"));
        assert!(syscall_spec("nonesuch").is_none());
    }

    #[test]
    fn envelopes_are_sorted_unique_and_nonempty() {
        for s in SYSCALLS {
            // add_user_to_group is a pure model-state update and never errors.
            assert!(
                !s.errnos.is_empty() || s.name == "add_user_to_group",
                "{} has an empty errno envelope",
                s.name
            );
            for w in s.errnos.windows(2) {
                assert!(w[0] < w[1], "{} envelope not sorted/unique at {:?}", s.name, w);
            }
        }
    }
}
