//! Model parameterisation: platform flavours and trait configuration.
//!
//! SibylFS is not a single specification but a family: the POSIX envelope plus
//! per-platform variants (Linux, OS X, FreeBSD) capturing real-world behaviour,
//! and "traits" (permissions, timestamps) that can be mixed in or left out
//! (§1 contribution 2, §4 "Traits").

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::errno::Errno;
use crate::flags::FileMode;

/// The platform whose behaviour the model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Flavor {
    /// The POSIX envelope: the union of behaviour the standard allows.
    Posix,
    /// Linux (VFS + glibc conventions, LSB where it diverges from POSIX).
    Linux,
    /// OS X / Darwin.
    Mac,
    /// FreeBSD.
    FreeBsd,
}

impl Flavor {
    /// All flavours supported by the model.
    pub const ALL: &'static [Flavor] = &[Flavor::Posix, Flavor::Linux, Flavor::Mac, Flavor::FreeBsd];

    /// Short lower-case name, used in command lines and reports.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Posix => "posix",
            Flavor::Linux => "linux",
            Flavor::Mac => "mac",
            Flavor::FreeBsd => "freebsd",
        }
    }

    /// Whether this flavour is the loose POSIX envelope.
    ///
    /// The POSIX flavour accepts the union of platform behaviours wherever
    /// POSIX leaves the choice unspecified or implementation-defined.
    pub fn is_posix(self) -> bool {
        matches!(self, Flavor::Posix)
    }

    /// The errno(s) allowed when `unlink` is applied to a directory.
    ///
    /// POSIX specifies `EPERM` (and says the call "may" fail with `EISDIR` on
    /// some systems); the LSB and Linux return `EISDIR`; OS X and FreeBSD
    /// follow POSIX and return `EPERM` (§7.3.2 "Error codes").
    pub fn unlink_dir_errors(self) -> &'static [Errno] {
        match self {
            Flavor::Posix => &[Errno::EPERM, Errno::EISDIR],
            Flavor::Linux => &[Errno::EISDIR],
            Flavor::Mac => &[Errno::EPERM],
            Flavor::FreeBsd => &[Errno::EPERM],
        }
    }

    /// The errno(s) allowed when attempting to rename the root directory.
    ///
    /// POSIX allows `EBUSY` or `EINVAL`; OS X returns `EISDIR` instead
    /// (§7.3.2 "Error codes").
    pub fn rename_root_errors(self) -> &'static [Errno] {
        match self {
            Flavor::Posix => &[Errno::EBUSY, Errno::EINVAL],
            Flavor::Linux => &[Errno::EBUSY, Errno::EINVAL],
            Flavor::Mac => &[Errno::EISDIR, Errno::EINVAL, Errno::EBUSY],
            Flavor::FreeBsd => &[Errno::EBUSY, Errno::EINVAL],
        }
    }

    /// The errno(s) allowed when removing the root directory with `rmdir`.
    pub fn rmdir_root_errors(self) -> &'static [Errno] {
        match self {
            Flavor::Posix => &[Errno::EBUSY, Errno::EINVAL, Errno::ENOTEMPTY, Errno::EACCES],
            Flavor::Linux => &[Errno::EBUSY, Errno::ENOTEMPTY],
            Flavor::Mac => &[Errno::EBUSY, Errno::EINVAL],
            Flavor::FreeBsd => &[Errno::EBUSY, Errno::EINVAL],
        }
    }

    /// Errors allowed when a path names an existing non-directory file but
    /// carries a trailing slash (e.g. `link /dir/ /f.txt/`).
    ///
    /// POSIX intends `ENOTDIR`; Linux sometimes resolves such paths and
    /// reports a later error such as `EEXIST` (§7.3.2 "Path resolution").
    pub fn trailing_slash_on_file_errors(self) -> &'static [Errno] {
        match self {
            Flavor::Posix => &[Errno::ENOTDIR],
            Flavor::Linux => &[Errno::ENOTDIR, Errno::EEXIST],
            Flavor::Mac => &[Errno::ENOTDIR],
            Flavor::FreeBsd => &[Errno::ENOTDIR],
        }
    }

    /// Whether `link(2)` follows a symlink given as the source path.
    ///
    /// POSIX makes this implementation-defined. Linux links the symlink
    /// itself; OS X follows the symlink and links its target.
    pub fn link_follows_symlink(self) -> LinkSymlinkBehavior {
        match self {
            Flavor::Posix => LinkSymlinkBehavior::Either,
            Flavor::Linux => LinkSymlinkBehavior::LinkSymlink,
            Flavor::Mac => LinkSymlinkBehavior::FollowSymlink,
            Flavor::FreeBsd => LinkSymlinkBehavior::FollowSymlink,
        }
    }

    /// Whether `pwrite` on a descriptor opened with `O_APPEND` writes at the
    /// supplied offset (POSIX) or appends to the end of the file (a
    /// long-standing Linux convention, §7.3.3).
    pub fn pwrite_append_ignores_offset(self) -> bool {
        matches!(self, Flavor::Linux)
    }

    /// The permission bits reported for symbolic links.
    ///
    /// Symlink permissions are implementation-defined: Linux reports 0o777,
    /// OS X and FreeBSD report 0o755 by default (§7.2 "trace acceptance").
    /// `None` means any mode is accepted (POSIX envelope).
    pub fn symlink_default_mode(self) -> Option<FileMode> {
        match self {
            Flavor::Posix => None,
            Flavor::Linux => Some(FileMode::new(0o777)),
            Flavor::Mac => Some(FileMode::new(0o755)),
            Flavor::FreeBsd => Some(FileMode::new(0o755)),
        }
    }

    /// Whether a `write` of zero bytes on a bad file descriptor may return 0
    /// instead of `EBADF` (implementation-defined; observed on Linux).
    pub fn zero_write_on_bad_fd_may_succeed(self) -> bool {
        matches!(self, Flavor::Posix | Flavor::Linux)
    }

    /// Errors allowed by `open` with `O_CREAT` when the path has a trailing
    /// slash and the final component does not exist.
    pub fn open_creat_trailing_slash_errors(self) -> &'static [Errno] {
        match self {
            Flavor::Posix => &[Errno::EISDIR, Errno::ENOENT, Errno::ENOTDIR],
            Flavor::Linux => &[Errno::EISDIR],
            Flavor::Mac => &[Errno::ENOENT, Errno::EISDIR],
            Flavor::FreeBsd => &[Errno::ENOENT, Errno::EISDIR],
        }
    }
}

/// How `link` treats a symlink source (see [`Flavor::link_follows_symlink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSymlinkBehavior {
    /// The new name becomes a hard link to the symlink itself (Linux).
    LinkSymlink,
    /// The symlink is followed and the new name links to its target (OS X).
    FollowSymlink,
    /// Either behaviour is allowed (the POSIX envelope).
    Either,
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown flavour name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFlavorError(pub String);

impl fmt::Display for ParseFlavorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown flavor: {} (expected posix|linux|mac|freebsd)", self.0)
    }
}

impl std::error::Error for ParseFlavorError {}

impl FromStr for Flavor {
    type Err = ParseFlavorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "posix" => Ok(Flavor::Posix),
            "linux" => Ok(Flavor::Linux),
            "mac" | "osx" | "os_x" | "darwin" => Ok(Flavor::Mac),
            "freebsd" | "bsd" => Ok(Flavor::FreeBsd),
            other => Err(ParseFlavorError(other.to_string())),
        }
    }
}

/// Whether the checker's τ-closure applies footprint-based partial-order
/// reduction (see `crates/core/DESIGN_POR.md`).
///
/// Under `Footprint` (the default), the closure explores one representative
/// interleaving per commutativity class of in-flight calls, using sleep sets
/// keyed off per-call [`crate::footprint::Footprint`]s; verdicts are
/// unchanged, but the tracked state count for concurrent traces drops from
/// factorial to near-linear. `Off` enumerates every interleaving, exactly as
/// the paper's checker does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PorMode {
    /// Enumerate every interleaving of in-flight calls.
    Off,
    /// Skip interleavings whose next-step pairs provably commute.
    Footprint,
}

impl FromStr for PorMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(PorMode::Off),
            "on" | "footprint" => Ok(PorMode::Footprint),
            other => Err(format!("unknown POR mode: {other} (expected on|off)")),
        }
    }
}

/// Complete configuration of the specification used for checking.
///
/// Combines a [`Flavor`] with the optional traits described in §4 and the
/// checking parameters described in §2 ("various flags control further
/// checking parameters, such as whether the initial process runs with root
/// privileges").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecConfig {
    /// Which platform variant of the model to use.
    pub flavor: Flavor,
    /// Whether the permissions trait is mixed in. When `false`, all objects
    /// are accessible to all users and permission errors never arise.
    pub permissions: bool,
    /// Whether the timestamps trait is mixed in. When `false` (the default,
    /// matching the paper's testing), timestamp fields are tracked internally
    /// but never checked against observations.
    pub timestamps: bool,
    /// Whether the initial process runs with root privileges.
    pub root_user: bool,
    /// Whether the τ-closure applies partial-order reduction. Purely a
    /// checker-performance knob: verdicts are identical in both modes (the
    /// POR equivalence suite enforces this).
    pub por: PorMode,
}

impl SpecConfig {
    /// The configuration used for the bulk of the paper's testing: a given
    /// flavour, permissions on, timestamps off, initial process root.
    pub fn standard(flavor: Flavor) -> SpecConfig {
        SpecConfig {
            flavor,
            permissions: true,
            timestamps: false,
            root_user: true,
            por: PorMode::Footprint,
        }
    }

    /// "Core without permissions": permission information is ignored and all
    /// files are accessible by all users (§4 "Traits").
    pub fn without_permissions(flavor: Flavor) -> SpecConfig {
        SpecConfig { permissions: false, ..SpecConfig::standard(flavor) }
    }

    /// A configuration whose initial process is an unprivileged user, used by
    /// the permission-focused test groups.
    pub fn unprivileged(flavor: Flavor) -> SpecConfig {
        SpecConfig { root_user: false, ..SpecConfig::standard(flavor) }
    }

    /// This configuration with the given POR mode.
    pub fn with_por(self, por: PorMode) -> SpecConfig {
        SpecConfig { por, ..self }
    }
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig::standard(Flavor::Posix)
    }
}

impl fmt::Display for SpecConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            self.flavor,
            if self.permissions { "" } else { ",no-perms" },
            if self.timestamps { ",timestamps" } else { "" },
            if self.root_user { "" } else { ",non-root" },
        )?;
        if self.por == PorMode::Off {
            write!(f, ",no-por")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_parse_round_trip() {
        for f in Flavor::ALL {
            assert_eq!(f.name().parse::<Flavor>().unwrap(), *f);
        }
        assert_eq!("osx".parse::<Flavor>().unwrap(), Flavor::Mac);
        assert!("plan9".parse::<Flavor>().is_err());
    }

    #[test]
    fn posix_envelope_is_loosest_for_unlink_dir() {
        let posix = Flavor::Posix.unlink_dir_errors();
        for f in [Flavor::Linux, Flavor::Mac, Flavor::FreeBsd] {
            for e in f.unlink_dir_errors() {
                assert!(posix.contains(e), "POSIX envelope must contain {e} from {f}");
            }
        }
    }

    #[test]
    fn linux_pwrite_convention() {
        assert!(Flavor::Linux.pwrite_append_ignores_offset());
        assert!(!Flavor::Posix.pwrite_append_ignores_offset());
        assert!(!Flavor::Mac.pwrite_append_ignores_offset());
    }

    #[test]
    fn standard_config_display() {
        let cfg = SpecConfig::standard(Flavor::Linux);
        assert_eq!(cfg.to_string(), "linux");
        let cfg = SpecConfig::unprivileged(Flavor::Mac);
        assert!(cfg.to_string().contains("non-root"));
    }

    #[test]
    fn symlink_modes() {
        assert_eq!(Flavor::Linux.symlink_default_mode(), Some(FileMode::new(0o777)));
        assert_eq!(Flavor::Mac.symlink_default_mode(), Some(FileMode::new(0o755)));
        assert_eq!(Flavor::Posix.symlink_default_mode(), None);
    }
}
