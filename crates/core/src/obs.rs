//! # Process-wide observability: metrics and span tracing
//!
//! Two facilities, both designed to be free when off and cheap when on:
//!
//! * **Metrics** — a static registry of relaxed-atomic [`Counter`]s,
//!   [`Gauge`]s (with high-water marks), and log2-bucketed [`Histogram`]s
//!   (with p50/p95/p99 readout). Every metric is a `static` declared in
//!   [`m`], so instrumented call sites pay a handful of relaxed atomic ops
//!   and zero lookups, locks, or allocation. [`snapshot`] samples the whole
//!   registry into a [`MetricsSnapshot`], which renders to (and parses from)
//!   the versioned `@type metrics-v1` text exposition shared by
//!   `sibylfs serve --metrics-addr`, the serve wire protocol's metrics
//!   response, and `sibylfs check --timings`.
//!
//! * **Span tracing** — named timed spans recorded into per-thread buffers
//!   behind a process-global [`AtomicBool`]. When tracing is off, [`span`]
//!   is a single relaxed load returning `None`. When on, each completed
//!   span is pushed onto the calling thread's buffer (one uncontended mutex
//!   per thread; buffers are registered globally so [`drain_spans`] can
//!   collect from every thread). Drained spans serialize as Chrome
//!   trace-event JSON, viewable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`.
//!
//! See `crates/core/DESIGN_OBS.md` for the memory-ordering and buffering
//! rationale.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Lock a mutex, riding through poisoning: observability must never wedge
/// or abort the process it is observing.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// A monotonically increasing event count. All operations are relaxed
/// atomics: counters order nothing, they only tally.
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// An instantaneous level (queue depth, corpus size, inflight requests)
/// that also remembers the highest value it ever reached.
pub struct Gauge {
    cur: AtomicI64,
    hwm: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge { cur: AtomicI64::new(0), hwm: AtomicI64::new(0) }
    }

    /// Set the level outright (and bump the high-water mark if needed).
    #[inline]
    pub fn set(&self, v: i64) {
        self.cur.store(v, Relaxed);
        self.hwm.fetch_max(v, Relaxed);
    }

    /// Adjust the level by a signed delta, returning the new level.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        let new = self.cur.fetch_add(delta, Relaxed) + delta;
        self.hwm.fetch_max(new, Relaxed);
        new
    }

    #[inline]
    pub fn inc(&self) -> i64 {
        self.add(1)
    }

    #[inline]
    pub fn dec(&self) -> i64 {
        self.add(-1)
    }

    pub fn get(&self) -> i64 {
        self.cur.load(Relaxed)
    }

    pub fn high_water(&self) -> i64 {
        self.hwm.load(Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds the value 0,
/// bucket `i` (1 ≤ i ≤ 62) holds values in `[2^(i-1), 2^i)`, and bucket 63
/// holds everything from `2^62` up.
pub const HIST_BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples (typically nanoseconds) with
/// power-of-two buckets. Recording is two relaxed `fetch_add`s; quantile
/// readout walks the 64 buckets and reports the upper bound of the bucket
/// containing the requested rank, so quantiles are upper estimates with
/// factor-of-two resolution — plenty for spotting tail shifts.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Upper bound (inclusive) of bucket `i`; used as the quantile estimate.
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= HIST_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Record a duration in nanoseconds (saturating on the cast).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Snapshot this histogram's aggregate state. Bucket loads are not a
    /// consistent cut across concurrent writers; for observability that
    /// tearing is acceptable by design.
    pub fn stat(&self) -> HistStat {
        let mut counts = [0u64; HIST_BUCKETS];
        let mut total = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            counts[i] = b.load(Relaxed);
            total += counts[i];
        }
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the requested quantile, 1-based, clamped into range.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_upper(i);
                }
            }
            Self::bucket_upper(HIST_BUCKETS - 1)
        };
        HistStat {
            count: total,
            sum: self.sum.load(Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sparse `(bucket index, count)` pairs for every non-empty bucket, in
    /// index order. This is the raw log2 distribution behind the `buckets=`
    /// field of the metrics-v1 exposition: external tooling can recompute
    /// arbitrary quantiles or draw latency heatmaps from it. Subject to the
    /// same benign tearing as [`Histogram::stat`].
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Relaxed);
                (c != 0).then_some((i, c))
            })
            .collect()
    }

    /// Inclusive upper bound of log2 bucket `i` (the quantile estimate for
    /// samples landing there). Exposed so bucket-export consumers can map
    /// indices back to value ranges.
    pub fn bucket_bound(i: usize) -> u64 {
        Self::bucket_upper(i)
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Aggregate readout of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistStat {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

// ---------------------------------------------------------------------------
// The static registry
// ---------------------------------------------------------------------------

/// A reference to one registered metric, tagged by kind.
pub enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl MetricRef {
    fn sample(&self, name: &str) -> MetricEntry {
        match self {
            MetricRef::Counter(c) => MetricEntry::Counter { name: name.to_string(), value: c.get() },
            MetricRef::Gauge(g) => MetricEntry::Gauge {
                name: name.to_string(),
                value: g.get(),
                high_water: g.high_water(),
            },
            MetricRef::Histogram(h) => {
                let s = h.stat();
                MetricEntry::Histogram {
                    name: name.to_string(),
                    count: s.count,
                    sum: s.sum,
                    p50: s.p50,
                    p95: s.p95,
                    p99: s.p99,
                    buckets: h.nonzero_buckets(),
                }
            }
        }
    }
}

macro_rules! registry {
    ($($kind:ident $ident:ident => $name:literal;)*) => {
        /// Every process-global metric, as `static`s: instrumented call
        /// sites reference these directly, so the hot path never performs
        /// a name lookup.
        pub mod m {
            use super::{Counter, Gauge, Histogram};
            $(pub static $ident: $kind = $kind::new();)*
        }
        /// The full registry: `(exposition name, handle)` per metric.
        pub static REGISTRY: &[(&str, MetricRef)] = &[
            $(($name, MetricRef::$kind(&m::$ident)),)*
        ];
    };
}

registry! {
    // Checker.
    Counter CHECK_TRACES_TOTAL => "sibylfs_check_traces_total";
    Counter CHECK_DEVIATIONS_TOTAL => "sibylfs_check_deviations_total";
    Counter CHECK_TRUNCATIONS_TOTAL => "sibylfs_check_truncations_total";
    Counter STATE_DEDUP_HITS_TOTAL => "sibylfs_state_dedup_hits_total";
    Counter TAU_STATES_EXPANDED_TOTAL => "sibylfs_tau_states_expanded_total";
    Counter TAU_SLEEP_PRUNED_TOTAL => "sibylfs_tau_sleep_pruned_total";
    Histogram CHECK_TRACE_NS => "sibylfs_check_trace_ns";

    // Checker pool.
    Gauge POOL_QUEUE_DEPTH => "sibylfs_pool_queue_depth";
    Gauge POOL_WORKERS => "sibylfs_pool_workers";
    Counter POOL_JOBS_TOTAL => "sibylfs_pool_jobs_total";
    Counter POOL_JOBS_PANICKED => "sibylfs_pool_jobs_panicked";
    Counter POOL_BUSY_NS_TOTAL => "sibylfs_pool_busy_ns_total";
    Histogram POOL_JOB_WAIT_NS => "sibylfs_pool_job_wait_ns";
    Histogram POOL_JOB_RUN_NS => "sibylfs_pool_job_run_ns";

    // Serve path.
    Counter SERVE_REQUESTS_TOTAL => "sibylfs_serve_requests_total";
    Counter SERVE_ERRORS_TOTAL => "sibylfs_serve_errors_total";
    Counter SERVE_BYTES_IN_TOTAL => "sibylfs_serve_bytes_in_total";
    Counter SERVE_BYTES_OUT_TOTAL => "sibylfs_serve_bytes_out_total";
    Counter SERVE_SESSIONS_OPENED_TOTAL => "sibylfs_serve_sessions_opened_total";
    Counter SERVE_SESSIONS_KILLED_TOTAL => "sibylfs_serve_sessions_killed_total";
    Gauge SERVE_INFLIGHT => "sibylfs_serve_inflight";
    Gauge SERVE_REORDER_DEPTH => "sibylfs_serve_reorder_depth";
    Histogram SERVE_REQUEST_NS => "sibylfs_serve_request_ns";

    // Explore.
    Counter EXPLORE_ITERATIONS_TOTAL => "sibylfs_explore_iterations_total";
    Counter EXPLORE_NOVEL_TOTAL => "sibylfs_explore_novel_total";
    Counter EXPLORE_DIVERGENCES_TOTAL => "sibylfs_explore_divergences_total";
    Counter EXPLORE_EXEC_ERRORS_TOTAL => "sibylfs_explore_exec_errors_total";
    Counter EXPLORE_LINT_REJECTED_TOTAL => "sibylfs_explore_lint_rejected_total";
    Counter EXPLORE_LINT_REPAIRED_TOTAL => "sibylfs_explore_lint_repaired_total";
    Gauge EXPLORE_CORPUS_SIZE => "sibylfs_explore_corpus_size";
    Counter MUT_INSERT_TOTAL => "sibylfs_explore_mut_insert_total";
    Counter MUT_SPLICE_TOTAL => "sibylfs_explore_mut_splice_total";
    Counter MUT_PERTURB_TOTAL => "sibylfs_explore_mut_perturb_total";
    Counter MUT_DELETE_TOTAL => "sibylfs_explore_mut_delete_total";
    Counter MUT_DUPLICATE_TOTAL => "sibylfs_explore_mut_duplicate_total";
    Counter MUT_SWAP_TOTAL => "sibylfs_explore_mut_swap_total";
    Counter MUT_INTERLEAVE_TOTAL => "sibylfs_explore_mut_interleave_total";

    // Executor.
    Counter EXEC_SCRIPTS_TOTAL => "sibylfs_exec_scripts_total";
    Histogram EXEC_SCRIPT_NS => "sibylfs_exec_script_ns";

    // Execution pipeline (ExecPipeline + pooled host workers).
    Gauge EXEC_PIPE_QUEUE_DEPTH => "sibylfs_exec_pipe_queue_depth";
    Gauge EXEC_PIPE_REORDER_DEPTH => "sibylfs_exec_pipe_reorder_depth";
    Gauge EXEC_PIPE_WORKERS => "sibylfs_exec_pipe_workers";
    Counter EXEC_PIPE_SCRIPTS_TOTAL => "sibylfs_exec_pipe_scripts_total";
    Counter EXEC_PIPE_BUSY_NS_TOTAL => "sibylfs_exec_pipe_busy_ns_total";
    Counter EXEC_JAIL_RESETS_TOTAL => "sibylfs_exec_jail_resets_total";
    Counter EXEC_COLD_FORKS_TOTAL => "sibylfs_exec_cold_forks_total";
    Counter EXEC_WORKER_RESPAWNS_TOTAL => "sibylfs_exec_worker_respawns_total";

    // Observability itself.
    Counter OBS_SPANS_DROPPED_TOTAL => "sibylfs_obs_spans_dropped_total";
}

/// Sample every registered metric into a sorted, self-describing snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let mut entries: Vec<MetricEntry> =
        REGISTRY.iter().map(|(name, r)| r.sample(name)).collect();
    entries.sort_by(|a, b| a.name().cmp(b.name()));
    MetricsSnapshot { entries }
}

// ---------------------------------------------------------------------------
// MetricsSnapshot and the metrics-v1 text exposition
// ---------------------------------------------------------------------------

/// Header line of the versioned text exposition, matching the repo's
/// `@type audit-report` / `@type lint-report` convention.
pub const METRICS_V1_HEADER: &str = "@type metrics-v1";

/// One sampled metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricEntry {
    Counter { name: String, value: u64 },
    Gauge { name: String, value: i64, high_water: i64 },
    Histogram {
        name: String,
        count: u64,
        sum: u64,
        p50: u64,
        p95: u64,
        p99: u64,
        /// Sparse `(log2 bucket index, count)` pairs, index-ascending.
        /// Optional on the wire (`buckets=`): older producers omit it, and
        /// a parse without the field yields an empty vec.
        buckets: Vec<(usize, u64)>,
    },
}

impl MetricEntry {
    pub fn name(&self) -> &str {
        match self {
            MetricEntry::Counter { name, .. }
            | MetricEntry::Gauge { name, .. }
            | MetricEntry::Histogram { name, .. } => name,
        }
    }
}

/// A point-in-time sample of the metrics registry, independent of the
/// process that produced it (it round-trips through the text exposition,
/// which is how `sibylfs_loadgen` scrapes a server).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match e {
            MetricEntry::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
    }

    /// `(current, high_water)` for a gauge.
    pub fn gauge(&self, name: &str) -> Option<(i64, i64)> {
        self.entries.iter().find_map(|e| match e {
            MetricEntry::Gauge { name: n, value, high_water } if n == name => {
                Some((*value, *high_water))
            }
            _ => None,
        })
    }

    /// Drop entries that never fired (zero counters, zero-valued gauges with
    /// a zero high-water mark, empty histograms). A batch `--timings` table
    /// prints only the subsystems the run actually exercised.
    pub fn retain_nonzero(&mut self) {
        self.entries.retain(|e| match e {
            MetricEntry::Counter { value, .. } => *value != 0,
            MetricEntry::Gauge { value, high_water, .. } => *value != 0 || *high_water != 0,
            MetricEntry::Histogram { count, .. } => *count != 0,
        });
    }

    pub fn histogram(&self, name: &str) -> Option<HistStat> {
        self.entries.iter().find_map(|e| match e {
            MetricEntry::Histogram { name: n, count, sum, p50, p95, p99, .. } if n == name => {
                Some(HistStat { count: *count, sum: *sum, p50: *p50, p95: *p95, p99: *p99 })
            }
            _ => None,
        })
    }

    /// Raw log2 bucket pairs for a histogram, if the exposition carried the
    /// optional `buckets=` field (empty vec otherwise).
    pub fn histogram_buckets(&self, name: &str) -> Option<&[(usize, u64)]> {
        self.entries.iter().find_map(|e| match e {
            MetricEntry::Histogram { name: n, buckets, .. } if n == name => {
                Some(buckets.as_slice())
            }
            _ => None,
        })
    }

    /// Render the versioned text exposition:
    ///
    /// ```text
    /// @type metrics-v1
    /// counter sibylfs_check_traces_total 400
    /// gauge sibylfs_pool_queue_depth 0 hwm=17
    /// histogram sibylfs_check_trace_ns count=400 sum=52131 p50=65535 p95=131071 p99=262143
    /// ```
    ///
    /// One metric per line, sorted by name, Prometheus-style plain text;
    /// [`MetricsSnapshot::parse`] is the exact inverse.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 * (1 + self.entries.len()));
        out.push_str(METRICS_V1_HEADER);
        out.push('\n');
        for e in &self.entries {
            match e {
                MetricEntry::Counter { name, value } => {
                    out.push_str(&format!("counter {name} {value}\n"));
                }
                MetricEntry::Gauge { name, value, high_water } => {
                    out.push_str(&format!("gauge {name} {value} hwm={high_water}\n"));
                }
                MetricEntry::Histogram { name, count, sum, p50, p95, p99, buckets } => {
                    out.push_str(&format!(
                        "histogram {name} count={count} sum={sum} p50={p50} p95={p95} p99={p99}"
                    ));
                    // Raw log2 distribution, sparse `index:count` pairs. The
                    // field is optional so pre-bucket consumers keep parsing.
                    if !buckets.is_empty() {
                        out.push_str(" buckets=");
                        for (j, (i, c)) in buckets.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!("{i}:{c}"));
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parse a metrics-v1 text exposition back into a snapshot. Blank lines
    /// and `#` comments are skipped; unknown line kinds are an error, so
    /// format drift is caught rather than silently dropped.
    pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == METRICS_V1_HEADER => {}
            other => {
                return Err(format!(
                    "metrics-v1: expected header {METRICS_V1_HEADER:?}, got {other:?}"
                ))
            }
        }
        let mut entries = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let kind = parts.next().unwrap_or_default();
            let name = parts
                .next()
                .ok_or_else(|| format!("metrics-v1 line {}: missing name", i + 2))?
                .to_string();
            let fields: Vec<&str> = parts.collect();
            let field = |key: &str| -> Result<u64, String> {
                fields
                    .iter()
                    .find_map(|f| f.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
                    .ok_or_else(|| format!("metrics-v1 line {}: missing {key}=", i + 2))?
                    .parse::<u64>()
                    .map_err(|e| format!("metrics-v1 line {}: bad {key}: {e}", i + 2))
            };
            let entry = match kind {
                "counter" => MetricEntry::Counter {
                    value: fields
                        .first()
                        .ok_or_else(|| format!("metrics-v1 line {}: missing value", i + 2))?
                        .parse::<u64>()
                        .map_err(|e| format!("metrics-v1 line {}: bad value: {e}", i + 2))?,
                    name,
                },
                "gauge" => {
                    let value = fields
                        .first()
                        .ok_or_else(|| format!("metrics-v1 line {}: missing value", i + 2))?
                        .parse::<i64>()
                        .map_err(|e| format!("metrics-v1 line {}: bad value: {e}", i + 2))?;
                    let high_water = fields
                        .iter()
                        .find_map(|f| f.strip_prefix("hwm="))
                        .ok_or_else(|| format!("metrics-v1 line {}: missing hwm=", i + 2))?
                        .parse::<i64>()
                        .map_err(|e| format!("metrics-v1 line {}: bad hwm: {e}", i + 2))?;
                    MetricEntry::Gauge { name, value, high_water }
                }
                "histogram" => {
                    // `buckets=` is optional (sparse `index:count` pairs);
                    // absence parses as an empty distribution.
                    let buckets = match fields
                        .iter()
                        .find_map(|f| f.strip_prefix("buckets="))
                    {
                        None | Some("") => Vec::new(),
                        Some(spec) => spec
                            .split(',')
                            .map(|pair| {
                                let (idx, cnt) = pair.split_once(':').ok_or_else(|| {
                                    format!(
                                        "metrics-v1 line {}: bad buckets pair {pair:?}",
                                        i + 2
                                    )
                                })?;
                                let idx = idx.parse::<usize>().map_err(|e| {
                                    format!("metrics-v1 line {}: bad bucket index: {e}", i + 2)
                                })?;
                                if idx >= HIST_BUCKETS {
                                    return Err(format!(
                                        "metrics-v1 line {}: bucket index {idx} out of range",
                                        i + 2
                                    ));
                                }
                                let cnt = cnt.parse::<u64>().map_err(|e| {
                                    format!("metrics-v1 line {}: bad bucket count: {e}", i + 2)
                                })?;
                                Ok((idx, cnt))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    };
                    MetricEntry::Histogram {
                        count: field("count")?,
                        sum: field("sum")?,
                        p50: field("p50")?,
                        p95: field("p95")?,
                        p99: field("p99")?,
                        buckets,
                        name,
                    }
                }
                other => {
                    return Err(format!("metrics-v1 line {}: unknown kind {other:?}", i + 2))
                }
            };
            entries.push(entry);
        }
        Ok(MetricsSnapshot { entries })
    }
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

/// One completed span: a named, categorized interval on one thread.
/// Timestamps are nanoseconds since the process trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    pub cat: &'static str,
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub tid: u64,
}

static TRACING_ON: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static SPAN_COUNT: AtomicU64 = AtomicU64::new(0);
static SPAN_SINKS: Mutex<Vec<Arc<Mutex<Vec<SpanEvent>>>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Hard cap on buffered (undrained) spans process-wide, so a long traced
/// `serve` run cannot grow without bound between drains. Spans past the cap
/// are counted in `sibylfs_obs_spans_dropped_total` and discarded.
pub const SPAN_BUFFER_CAP: u64 = 1 << 20;

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// This thread's `(tid, buffer)`. The buffer is registered globally on
    /// first use so `drain_spans` can reach it; the `Arc` keeps it alive
    /// (and drainable) after the thread exits.
    static LOCAL_SPANS: (u64, Arc<Mutex<Vec<SpanEvent>>>) = {
        let tid = NEXT_TID.fetch_add(1, Relaxed);
        let buf = Arc::new(Mutex::new(Vec::new()));
        lock(&SPAN_SINKS).push(Arc::clone(&buf));
        (tid, buf)
    };
}

/// Turn span recording on or off process-wide.
pub fn set_tracing(on: bool) {
    // Pin the epoch before the first span can start, so timestamps are
    // always non-negative offsets from it.
    if on {
        let _ = epoch();
    }
    TRACING_ON.store(on, Relaxed);
}

pub fn tracing_enabled() -> bool {
    TRACING_ON.load(Relaxed)
}

/// An in-flight span; records itself on drop.
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start: Instant,
}

/// Begin a span. When tracing is off this is one relaxed load and returns
/// `None` — call sites hold the `Option` in a `_span` binding and pay
/// nothing else.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Option<SpanGuard> {
    if !TRACING_ON.load(Relaxed) {
        return None;
    }
    Some(SpanGuard { name, cat, start: Instant::now() })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        // Saturates to zero if the epoch was pinned after `start` (cannot
        // happen via `set_tracing`, but belt and braces).
        let ts = self.start.saturating_duration_since(epoch());
        if SPAN_COUNT.fetch_add(1, Relaxed) >= SPAN_BUFFER_CAP {
            m::OBS_SPANS_DROPPED_TOTAL.inc();
            return;
        }
        let ev = |tid: u64| SpanEvent {
            name: self.name,
            cat: self.cat,
            ts_ns: u64::try_from(ts.as_nanos()).unwrap_or(u64::MAX),
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            tid,
        };
        // `try_with`: a span finishing during thread teardown (after TLS
        // destruction) is silently dropped rather than aborting.
        let pushed = LOCAL_SPANS
            .try_with(|(tid, buf)| lock(buf).push(ev(*tid)))
            .is_ok();
        if !pushed {
            m::OBS_SPANS_DROPPED_TOTAL.inc();
        }
    }
}

/// Collect and clear every thread's span buffer. Events are returned in
/// timestamp order.
pub fn drain_spans() -> Vec<SpanEvent> {
    let sinks = lock(&SPAN_SINKS);
    let mut out = Vec::new();
    for buf in sinks.iter() {
        out.append(&mut lock(buf));
    }
    drop(sinks);
    SPAN_COUNT.store(0, Relaxed);
    out.sort_by_key(|e| (e.ts_ns, e.tid));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize spans as Chrome trace-event JSON (the `traceEvents` array of
/// complete `"ph":"X"` events, timestamps in microseconds). Open the file
/// in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn render_chrome_trace(events: &[SpanEvent]) -> String {
    let pid = std::process::id();
    let mut out = String::with_capacity(96 * (2 + events.len()));
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":{},\"tid\":{}}}",
            json_escape(e.name),
            json_escape(e.cat),
            e.ts_ns / 1000,
            e.ts_ns % 1000,
            e.dur_ns / 1000,
            e.dur_ns % 1000,
            pid,
            e.tid,
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Drain all buffered spans and write them to `path` as Chrome trace-event
/// JSON. Returns the number of events written.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let events = drain_spans();
    std::fs::write(path, render_chrome_trace(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        c.add(0);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        assert_eq!(g.inc(), 1);
        assert_eq!(g.add(4), 5);
        assert_eq!(g.dec(), 4);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.stat(), HistStat { count: 0, sum: 0, p50: 0, p95: 0, p99: 0 });
        // 90 fast samples at 100ns, 10 slow at 1ms: p50 lands in the fast
        // bucket, p95/p99 in the slow one.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.stat();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 10 * 1_000_000);
        assert_eq!(s.p50, 127, "100 falls in [64,128)");
        assert_eq!(s.p95, (1u64 << 20) - 1, "1e6 falls in [2^19,2^20)");
        assert_eq!(s.p99, s.p95);
        // Edge buckets.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn snapshot_renders_and_parses_round_trip() {
        let snap = MetricsSnapshot {
            entries: vec![
                MetricEntry::Counter { name: "sibylfs_check_traces_total".into(), value: 400 },
                MetricEntry::Gauge {
                    name: "sibylfs_pool_queue_depth".into(),
                    value: 0,
                    high_water: 17,
                },
                MetricEntry::Histogram {
                    name: "sibylfs_check_trace_ns".into(),
                    count: 400,
                    sum: 52_131,
                    p50: 65_535,
                    p95: 131_071,
                    p99: 262_143,
                    buckets: vec![(16, 390), (18, 10)],
                },
            ],
        };
        let text = snap.render();
        assert!(text.starts_with("@type metrics-v1\n"), "versioned header first: {text}");
        assert!(text.contains(" buckets=16:390,18:10"), "sparse bucket export: {text}");
        let back = MetricsSnapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("sibylfs_check_traces_total"), Some(400));
        assert_eq!(back.gauge("sibylfs_pool_queue_depth"), Some((0, 17)));
        assert_eq!(back.histogram("sibylfs_check_trace_ns").unwrap().p95, 131_071);
        assert_eq!(
            back.histogram_buckets("sibylfs_check_trace_ns"),
            Some(&[(16usize, 390u64), (18, 10)][..])
        );
    }

    #[test]
    fn histogram_buckets_field_is_optional_and_validated() {
        // A line without buckets= parses to an empty distribution, and an
        // empty distribution renders without the field — exact round-trip
        // with pre-bucket producers.
        let old = "@type metrics-v1\nhistogram h count=1 sum=2 p50=3 p95=3 p99=3\n";
        let parsed = MetricsSnapshot::parse(old).unwrap();
        assert_eq!(parsed.histogram_buckets("h"), Some(&[][..]));
        assert_eq!(parsed.render(), old);

        // Malformed pairs and out-of-range indices are rejected, not dropped.
        for bad in ["buckets=7", "buckets=a:1", "buckets=7:x", "buckets=64:1"] {
            let line =
                format!("@type metrics-v1\nhistogram h count=1 sum=2 p50=3 p95=3 p99=3 {bad}\n");
            assert!(MetricsSnapshot::parse(&line).is_err(), "must reject {bad}");
        }
    }

    #[test]
    fn parse_rejects_missing_header_and_unknown_kinds() {
        assert!(MetricsSnapshot::parse("counter x 1\n").is_err());
        assert!(MetricsSnapshot::parse("@type metrics-v1\nsummary x 1\n").is_err());
        // Comments and blank lines are fine.
        let ok = MetricsSnapshot::parse("@type metrics-v1\n\n# comment\ncounter x 1\n").unwrap();
        assert_eq!(ok.counter("x"), Some(1));
    }

    #[test]
    fn global_snapshot_is_sorted_and_covers_the_registry() {
        let snap = snapshot();
        assert_eq!(snap.entries.len(), REGISTRY.len());
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be sorted by metric name");
        // Round-trips through the exposition.
        let back = MetricsSnapshot::parse(&snap.render()).unwrap();
        assert_eq!(back.entries.len(), snap.entries.len());
    }

    #[test]
    fn spans_record_only_when_enabled_and_serialize_as_chrome_json() {
        // Drain anything earlier tests in this process left behind.
        let _ = drain_spans();
        assert!(span("t", "off").is_none(), "tracing starts disabled");

        set_tracing(true);
        {
            let _outer = span("test", "outer");
            let _inner = span("test", "inner");
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::spawn(|| {
            let _s = span("test", "worker");
        })
        .join()
        .unwrap();
        set_tracing(false);

        let events = drain_spans();
        assert!(events.iter().any(|e| e.name == "outer"));
        assert!(events.iter().any(|e| e.name == "inner"));
        assert!(events.iter().any(|e| e.name == "worker"), "other threads drain too");
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert!(outer.dur_ns >= 1_000_000, "slept 1ms inside the span");

        let json = render_chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.trim_end().ends_with("]}"));
        // Second drain is empty.
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
