//! The transition function of the labelled transition system:
//! `os_trans : state → label → finite set of states` (§5).
//!
//! Nondeterminism is represented exactly as described in §3: a call first
//! moves the process into `InCall`, a τ step processes the call and leaves a
//! *pending return* (an error set, an exact value, or a constrained family of
//! values), and the `OS_RETURN` label resolves the nondeterminism against the
//! observed value. No backtracking search is ever required.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::commands::{ErrorOrValue, OsCommand, OsLabel, RetValue};
use crate::coverage::spec_point;
use crate::footprint::{footprint_of, Footprint};
use crate::intern::Name;
use crate::errno::Errno;
use crate::flavor::{PorMode, SpecConfig};
use crate::fs_ops;
use crate::obs;
use crate::os::state_set::StateSet;
use crate::os::{FidTarget, OsState, Pending, PerProcessState, ProcRunState, WriteAt};
use crate::types::{DirHandleId, Fd, Pid};

/// The sleep set attached to one tracked state: processes whose in-flight
/// call has already been explored from an earlier interleaving that this
/// state commutes with, paired with that call's [`Footprint`].
///
/// Invariant (the classic sleep-set invariant, extended across checker
/// labels): for every `(q, fp)` in a state's sleep set, every behaviour
/// reachable by processing `q`'s call *first* from this state is
/// observationally represented by some other tracked state. Processing `q`
/// from here — by τ or by `q`'s return label — can therefore be skipped.
/// The footprint is kept so later transitions can *wake* `q` (drop it from
/// the sleep set) when they stop commuting with it.
pub type SleepSet = Vec<(Pid, Arc<Footprint>)>;

/// Whether footprint-based POR is active under this configuration.
///
/// The timestamps trait writes the global logical clock into every object a
/// call touches, so no two calls commute and the closure falls back to full
/// expansion.
pub fn por_active(cfg: &SpecConfig) -> bool {
    cfg.por == PorMode::Footprint && !cfg.timestamps
}

/// Apply one label to one state, emitting every allowed next state into `out`.
///
/// Emitting nothing means the label is not allowed from this state. The sink
/// is a deduplicating [`StateSet`], so callers can union the transitions of a
/// whole state set by reusing one sink across calls — the checker's inner
/// loop — without materialising intermediate `Vec<OsState>`s.
pub fn os_trans_into(cfg: &SpecConfig, st: &OsState, label: &OsLabel, out: &mut StateSet) {
    match label {
        OsLabel::Create(pid, uid, gid) => {
            if st.procs.contains_key(pid) {
                spec_point("os/create_existing_pid_rejected");
                return;
            }
            spec_point("os/create_process");
            let mut new_st = st.clone();
            let root = new_st.heap.root();
            new_st.procs.insert(*pid, Arc::new(PerProcessState::new(root, *uid, *gid)));
            out.insert(new_st);
        }
        OsLabel::Destroy(pid) => {
            let Some(proc) = st.procs.get(pid) else {
                spec_point("os/destroy_unknown_pid_rejected");
                return;
            };
            if !matches!(proc.run_state, ProcRunState::Ready) {
                // A process cannot be destroyed in the middle of a call.
                spec_point("os/destroy_busy_pid_rejected");
                return;
            }
            spec_point("os/destroy_process");
            let mut new_st = st.clone();
            if let Some(p) = new_st.procs.remove(pid) {
                for fid in p.fds.values() {
                    new_st.fids.remove(fid);
                }
            }
            out.insert(new_st);
        }
        OsLabel::Call(pid, cmd) => {
            let Some(proc) = st.procs.get(pid) else {
                spec_point("os/call_from_unknown_pid_rejected");
                return;
            };
            if !matches!(proc.run_state, ProcRunState::Ready) {
                // The process is blocked until its previous call returns.
                spec_point("os/call_while_blocked_rejected");
                return;
            }
            spec_point("os/call_accepted");
            let mut new_st = st.clone();
            if let Some(p) = new_st.proc_mut(*pid) {
                p.run_state = ProcRunState::InCall(cmd.clone());
            }
            out.insert(new_st);
        }
        OsLabel::Tau => expand_calls_into(cfg, st, out),
        OsLabel::Return(pid, value) => {
            let Some(proc) = st.procs.get(pid) else {
                return;
            };
            match &proc.run_state {
                ProcRunState::Pending(pending) => {
                    if let Some(next) = match_pending(cfg, st, *pid, pending, value) {
                        out.insert(next);
                    }
                }
                ProcRunState::InCall(_) => {
                    // Process the call (an implicit τ) and then match.
                    let mut mids = StateSet::new();
                    process_call_into(cfg, st, *pid, &mut mids);
                    for mid in &mids {
                        // The call expansion never removes the process.
                        let Some(proc) = mid.procs.get(pid) else { continue };
                        if let ProcRunState::Pending(p) = &proc.run_state {
                            if let Some(next) = match_pending(cfg, mid, *pid, p, value) {
                                out.insert(next);
                            }
                        }
                    }
                }
                ProcRunState::Ready => {
                    spec_point("os/return_without_call_rejected");
                }
            }
        }
    }
}

/// Apply one label to one state, returning every allowed next state.
///
/// An empty result means the label is not allowed from this state. Thin
/// wrapper over [`os_trans_into`] for callers that want an owned vector.
pub fn os_trans(cfg: &SpecConfig, st: &OsState, label: &OsLabel) -> Vec<OsState> {
    let mut out = StateSet::new();
    os_trans_into(cfg, st, label, &mut out);
    out.into_states()
}

/// One τ step: for every process currently in a call, process that call and
/// emit the states with its pending return installed. The union over all
/// processes models the scheduler's freedom to pick any of them.
pub fn expand_calls_into(cfg: &SpecConfig, st: &OsState, out: &mut StateSet) {
    for (pid, proc) in &st.procs {
        if matches!(proc.run_state, ProcRunState::InCall(_)) {
            process_call_into(cfg, st, *pid, out);
        }
    }
}

/// Vector-returning wrapper over [`expand_calls_into`].
pub fn expand_calls(cfg: &SpecConfig, st: &OsState) -> Vec<OsState> {
    let mut out = StateSet::new();
    expand_calls_into(cfg, st, &mut out);
    out.into_states()
}

/// Close a state set under internal (τ) steps, in place: afterwards the set
/// contains every state reachable from a member by any sequence of internal
/// steps, including the original members. Used by the trace checker before
/// matching an `OS_RETURN` when multiple processes have calls in flight.
pub fn tau_close(cfg: &SpecConfig, states: &mut StateSet) {
    let mut sleeps = vec![SleepSet::new(); states.len()];
    tau_close_with_sleeps(cfg, states, &mut sleeps);
}

/// Full τ-closure sweep without partial-order reduction.
///
/// The set grows only at the tail (inserts dedup against everything seen),
/// so a single index sweep visits every member exactly once; each expansion
/// strictly reduces the number of `InCall` processes, bounding the chains
/// appended per original state.
fn tau_close_sweep(cfg: &SpecConfig, states: &mut StateSet) {
    let mut i = 0;
    while i < states.len() {
        let Some(st) = states.get(i) else { break };
        let st = st.clone();
        expand_calls_into(cfg, &st, states);
        i += 1;
    }
}

/// Whether the closure can take the non-POR fast path: no state carries a
/// sleep entry and no state has two calls in flight. τ steps never move a
/// process *into* `InCall`, so the ≤1-in-flight invariant is preserved by
/// the sweep itself and only needs checking on the initial members. This
/// keeps the single-process hot path byte-identical to the plain sweep.
fn closure_is_sequential(states: &StateSet, sleeps: &[SleepSet]) -> bool {
    sleeps.iter().all(|s| s.is_empty())
        && states.iter().all(|st| {
            st.procs
                .values()
                .filter(|p| matches!(p.run_state, ProcRunState::InCall(_)))
                .count()
                <= 1
        })
}

/// Close a state set under τ steps while maintaining per-state sleep sets
/// (`sleeps[i]` belongs to `states.get(i)`; missing entries are treated as
/// empty and the vector is kept in sync with the set).
///
/// With POR active this is a sleep-set exploration: from each state the
/// in-flight calls are processed in ascending pid order, and each successor's
/// sleep set records the earlier-processed calls its own call commutes with
/// (per [`Footprint::commutes`]). A sleeping process is never expanded — the
/// interleaving that runs it first was already explored from a sibling — so
/// commuting calls contribute one interleaving order instead of all `n!`.
/// When a successor is already tracked, its sleep set is intersected with the
/// new path's (a state reached two ways may only sleep what both ways may
/// skip) and it is re-explored if that intersection woke anything. The
/// deduplicating [`StateSet`] remains the exact safety net: POR only prunes
/// τ orderings, never invents states.
pub fn tau_close_with_sleeps(cfg: &SpecConfig, states: &mut StateSet, sleeps: &mut Vec<SleepSet>) {
    // Expansion/pruning tallies are kept in locals and flushed to the global
    // registry once per closure call: the loop below is the checker's hottest
    // path, and per-insert shared atomics would ping-pong cache lines across
    // pool workers.
    let len_before = states.len();
    sleeps.resize(states.len(), SleepSet::new());
    if !por_active(cfg) || closure_is_sequential(states, sleeps) {
        tau_close_sweep(cfg, states);
        sleeps.resize(states.len(), SleepSet::new());
        obs::m::TAU_STATES_EXPANDED_TOTAL.add((states.len() - len_before) as u64);
        return;
    }
    let mut sleep_pruned: u64 = 0;

    // `known[i]` caches footprints of calls in flight in `states[i]`: when a
    // step with footprint `f` produces a successor, the cached footprints of
    // calls `f` commutes with remain valid there (commutation means the step
    // invalidated none of their recorded reads — the same stability argument
    // the sleep sets rest on), so they are inherited instead of recomputed.
    let mut known: Vec<SleepSet> = vec![SleepSet::new(); states.len()];
    let mut queue: VecDeque<u32> = (0..states.len() as u32).collect();
    while let Some(i) = queue.pop_front() {
        let Some(st) = states.get(i as usize) else { continue };
        let st = st.clone();
        let cur_sleep = sleeps[i as usize].clone();
        let mut in_flight: u64 = 0;
        let awake: Vec<Pid> = st
            .procs
            .iter()
            .filter(|(pid, p)| {
                let in_call = matches!(p.run_state, ProcRunState::InCall(_));
                if in_call {
                    in_flight += 1;
                }
                in_call && !cur_sleep.iter().any(|(q, _)| q == *pid)
            })
            .map(|(pid, _)| *pid)
            .collect();
        // Each in-flight call skipped here is an expansion the sleep set
        // saved us (the interleaving running it first was explored from a
        // sibling).
        sleep_pruned += in_flight - awake.len() as u64;
        if awake.is_empty() {
            continue;
        }
        // `acc` is the sleep set handed to each successor in turn: the
        // transitions already explored from this state (inherited sleepers
        // plus earlier awake pids), to be filtered down to those that
        // commute with the successor's own transition.
        let mut acc = cur_sleep;
        for (k, &pid) in awake.iter().enumerate() {
            // The footprint only matters if some successor will have to
            // decide whether to sleep on this call: either `acc` is
            // non-empty (we must test commutation against it) or a later
            // awake pid will have this call in its `acc`.
            let need_fp = !acc.is_empty() || k + 1 < awake.len();
            let fp: Option<Arc<Footprint>> = if need_fp {
                if let Some(cached) =
                    known[i as usize].iter().find(|(q, _)| *q == pid).map(|(_, f)| f.clone())
                {
                    Some(cached)
                } else {
                    match st.procs.get(&pid).map(|p| &p.run_state) {
                        Some(ProcRunState::InCall(cmd)) => {
                            let f = Arc::new(footprint_of(cfg, &st, pid, cmd));
                            known[i as usize].push((pid, f.clone()));
                            Some(f)
                        }
                        _ => None,
                    }
                }
            } else {
                None
            };
            let (succ_sleep, succ_known): (SleepSet, SleepSet) = match &fp {
                Some(fp) => (
                    acc.iter().filter(|(_, qfp)| fp.commutes(qfp)).cloned().collect(),
                    known[i as usize]
                        .iter()
                        .filter(|(q, qfp)| *q != pid && fp.commutes(qfp))
                        .cloned()
                        .collect(),
                ),
                None => (SleepSet::new(), SleepSet::new()),
            };
            // Successors go straight into the main set — no scratch set, and
            // each is fingerprinted exactly once, at this insert.
            process_call_sink(cfg, &st, pid, &mut |succ| {
                let (j, fresh) = states.insert_full(succ);
                if fresh {
                    sleeps.push(succ_sleep.clone());
                    known.push(succ_known.clone());
                    queue.push_back(j as u32);
                } else {
                    // Reached again along a different path: the state may
                    // only sleep what every path allows it to sleep. (The
                    // footprint cache needs no such intersection — a cached
                    // footprint is a fact about the state, sound however the
                    // state was reached — so the existing entries stand.)
                    let before = sleeps[j].len();
                    sleeps[j].retain(|(q, _)| succ_sleep.iter().any(|(q2, _)| q2 == q));
                    if sleeps[j].len() < before {
                        queue.push_back(j as u32);
                    }
                }
            });
            if let Some(fp) = fp {
                acc.push((pid, fp));
            }
        }
    }
    obs::m::TAU_STATES_EXPANDED_TOTAL.add((states.len() - len_before) as u64);
    obs::m::TAU_SLEEP_PRUNED_TOTAL.add(sleep_pruned);
}

/// The τ-closure of a slice of states. Thin wrapper over [`tau_close`] for
/// callers working with vectors.
pub fn tau_closure(cfg: &SpecConfig, states: &[OsState]) -> Vec<OsState> {
    let mut set: StateSet = states.iter().cloned().collect();
    tau_close(cfg, &mut set);
    set.into_states()
}

/// Process the call a single process has in flight, handing each state with
/// its pending return installed (one state for the error envelope, one per
/// success branch, one for "special" behaviour) to `sink`. Generic over the
/// sink so the POR closure can insert straight into its main set without a
/// scratch `StateSet` per expansion.
fn process_call_sink(cfg: &SpecConfig, st: &OsState, pid: Pid, sink: &mut impl FnMut(OsState)) {
    let Some(proc) = st.procs.get(&pid) else { return };
    let ProcRunState::InCall(cmd) = proc.run_state.clone() else { return };
    let outcome = fs_ops::dispatch(cfg, st, pid, &cmd);
    if !outcome.errors.is_empty() {
        let mut err_st = st.clone();
        if let Some(p) = err_st.proc_mut(pid) {
            p.run_state = ProcRunState::Pending(Pending::Errors(outcome.errors.clone()));
        }
        sink(err_st);
    }
    if !outcome.must_fail {
        for (succ_st, pending) in outcome.successes {
            let mut s = succ_st;
            if let Some(p) = s.proc_mut(pid) {
                p.run_state = ProcRunState::Pending(pending);
            }
            sink(s);
        }
    }
    if let Some(kind) = outcome.special {
        let mut sp_st = st.clone();
        if let Some(p) = sp_st.proc_mut(pid) {
            p.run_state = ProcRunState::Pending(Pending::Special(kind));
        }
        sink(sp_st);
    }
}

/// [`process_call_sink`] inserting into a [`StateSet`].
pub fn process_call_into(cfg: &SpecConfig, st: &OsState, pid: Pid, out: &mut StateSet) {
    process_call_sink(cfg, st, pid, &mut |s| {
        out.insert(s);
    });
}

/// Vector-returning wrapper over [`process_call_into`].
pub fn process_call(cfg: &SpecConfig, st: &OsState, pid: Pid) -> Vec<OsState> {
    let mut out = StateSet::new();
    process_call_into(cfg, st, pid, &mut out);
    out.into_states()
}

/// Check an observed return value against a pending constraint and, when it
/// matches, apply its state update and mark the process ready again.
pub fn match_pending(
    cfg: &SpecConfig,
    st: &OsState,
    pid: Pid,
    pending: &Pending,
    observed: &ErrorOrValue,
) -> Option<OsState> {
    let _ = cfg;
    let mut new_st = st.clone();
    let matched = match (pending, observed) {
        (Pending::Errors(allowed), ErrorOrValue::Error(e)) => allowed.contains(e),
        (Pending::Errors(_), ErrorOrValue::Value(_)) => false,
        (Pending::Value(v), ErrorOrValue::Value(ov)) => v == ov,
        (Pending::Value(_), ErrorOrValue::Error(_)) => false,
        (
            Pending::StatValue { expected, check_mode, check_owner },
            ErrorOrValue::Value(RetValue::Stat(observed_stat)),
        ) => {
            let s = observed_stat.as_ref();
            s.kind == expected.kind
                && s.size == expected.size
                && s.nlink == expected.nlink
                && (!check_mode || s.mode == expected.mode)
                && (!check_owner || (s.uid == expected.uid && s.gid == expected.gid))
        }
        (Pending::StatValue { .. }, _) => false,
        (Pending::NewFd { fid }, ErrorOrValue::Value(RetValue::Fd(fd))) => {
            if fd.0 < 0 {
                false
            } else {
                let proc = new_st.proc_mut(pid)?;
                if proc.fds.contains_key(fd) {
                    false
                } else {
                    proc.fds.insert(*fd, *fid);
                    true
                }
            }
        }
        (Pending::NewFd { .. }, _) => false,
        (Pending::NewDirHandle { handle }, ErrorOrValue::Value(RetValue::DirHandle(dh))) => {
            if dh.0 < 0 {
                false
            } else {
                let proc = new_st.proc_mut(pid)?;
                if proc.dir_handles.contains_key(dh) {
                    false
                } else {
                    proc.dir_handles.insert(*dh, handle.clone());
                    true
                }
            }
        }
        (Pending::NewDirHandle { .. }, _) => false,
        (Pending::ReadData { fd, data }, ErrorOrValue::Value(RetValue::Bytes(observed_bytes))) => {
            let is_prefix = observed_bytes.len() <= data.len()
                && observed_bytes[..] == data[..observed_bytes.len()];
            // A read may return fewer bytes than requested, but returns zero
            // bytes only at end-of-file.
            let nonempty_ok = data.is_empty() || !observed_bytes.is_empty();
            if is_prefix && nonempty_ok {
                if let Some(fd) = fd {
                    if let Some(fid) = new_st.procs.get(&pid).and_then(|p| p.fds.get(fd)).copied()
                    {
                        if let Some(f) = new_st.fids.get_mut(&fid) {
                            f.offset += observed_bytes.len() as u64;
                        }
                    }
                }
                true
            } else {
                false
            }
        }
        (Pending::ReadData { .. }, _) => false,
        (Pending::WriteData { fd, data, at }, ErrorOrValue::Value(RetValue::Num(count))) => {
            let count = *count;
            let valid = if data.is_empty() {
                count == 0
            } else {
                count >= 1 && (count as usize) <= data.len()
            };
            if !valid {
                false
            } else {
                apply_write(&mut new_st, pid, *fd, data, *at, count as usize);
                true
            }
        }
        (Pending::WriteData { .. }, _) => false,
        (Pending::ReaddirEntry { dh }, ErrorOrValue::Value(RetValue::ReaddirEntry(entry))) => {
            let proc = new_st.proc_mut(pid)?;
            let handle = proc.dir_handles.get_mut(dh)?;
            match entry {
                // The observed name arrives as text; probing (not interning)
                // keeps foreign observation strings out of the table — a name
                // that was never interned cannot be a candidate.
                Some(name) => match Name::lookup(name) {
                    Some(sym) if handle.candidates().contains(&sym) => {
                        handle.note_returned(sym);
                        true
                    }
                    _ => false,
                },
                None => handle.may_finish(),
            }
        }
        (Pending::ReaddirEntry { .. }, _) => false,
        // Undefined/unspecified behaviour: any observation is accepted.
        (Pending::Special(_), _) => true,
    };
    if !matched {
        return None;
    }
    if let Some(p) = new_st.proc_mut(pid) {
        p.run_state = ProcRunState::Ready;
    }
    Some(new_st)
}

/// Apply the observed prefix of a pending write to the file behind `fd`.
fn apply_write(st: &mut OsState, pid: Pid, fd: Fd, data: &[u8], at: WriteAt, count: usize) {
    let Some(fid) = st.procs.get(&pid).and_then(|p| p.fds.get(&fd)).copied() else { return };
    let Some(fid_state) = st.fids.get(&fid) else { return };
    let FidTarget::File(file) = fid_state.target else { return };
    let prefix = &data[..count];
    match at {
        WriteAt::Offset(off) => {
            st.heap.write_bytes(file, off, prefix);
            if let Some(f) = st.fids.get_mut(&fid) {
                f.offset = off + count as u64;
            }
        }
        WriteAt::Append => {
            let end = st.heap.file_size(file);
            st.heap.write_bytes(file, end, prefix);
            if let Some(f) = st.fids.get_mut(&fid) {
                f.offset = end + count as u64;
            }
        }
        WriteAt::AppendKeepOffset => {
            let end = st.heap.file_size(file);
            st.heap.write_bytes(file, end, prefix);
        }
        WriteAt::KeepOffset(off) => {
            st.heap.write_bytes(file, off, prefix);
        }
    }
}

/// Human-readable descriptions of the return values a pending constraint
/// allows — used for checker diagnostics ("allowed are only: …").
pub fn describe_pending(st: &OsState, pid: Pid, pending: &Pending) -> Vec<String> {
    match pending {
        Pending::Errors(errs) => errs.iter().map(|e| e.to_string()).collect(),
        Pending::Value(v) => vec![v.to_string()],
        Pending::StatValue { expected, check_mode, check_owner } => {
            let mut s = format!("RV_stat {expected}");
            if !check_mode {
                s.push_str(" (any mode)");
            }
            if !check_owner {
                s.push_str(" (any owner)");
            }
            vec![s]
        }
        Pending::NewFd { .. } => vec!["RV_fd(<any unused non-negative fd>)".to_string()],
        Pending::NewDirHandle { .. } => {
            vec!["RV_dh(<any unused non-negative handle>)".to_string()]
        }
        Pending::ReadData { data, .. } => {
            vec![format!(
                "RV_bytes(<non-empty prefix of {:?}, up to {} bytes>)",
                String::from_utf8_lossy(data),
                data.len()
            )]
        }
        Pending::WriteData { data, .. } => {
            if data.is_empty() {
                vec!["RV_num(0)".to_string()]
            } else {
                vec![format!("RV_num(1..={})", data.len())]
            }
        }
        Pending::ReaddirEntry { dh } => {
            let mut out = Vec::new();
            if let Some(handle) = st.procs.get(&pid).and_then(|p| p.dir_handles.get(dh)) {
                // Resolve symbols to text only here, at the diagnostics
                // boundary, and sort lexicographically so the rendered
                // "allowed" list is deterministic and human-ordered.
                let mut names: Vec<&'static str> =
                    handle.candidates().iter().map(|n| n.as_str()).collect();
                names.sort_unstable();
                for c in names {
                    out.push(format!("RV_readdir({c:?})"));
                }
                if handle.may_finish() {
                    out.push("RV_readdir_end".to_string());
                }
            }
            if out.is_empty() {
                out.push("RV_readdir_end".to_string());
            }
            out
        }
        Pending::Special(kind) => vec![format!("<any value: {kind:?} behaviour>")],
    }
}

/// The set of return values allowed for `pid` from a set of states (used by
/// the checker for diagnostics after τ-closure).
pub fn allowed_returns(st: &OsState, pid: Pid) -> Vec<String> {
    match st.procs.get(&pid).map(|p| &p.run_state) {
        Some(ProcRunState::Pending(p)) => describe_pending(st, pid, p),
        _ => Vec::new(),
    }
}

/// A canonical completion for a pending call, used by the checker to continue
/// after a non-conformant step ("continuing with EEXIST, ENOTEMPTY").
pub fn default_completion(st: &OsState, pid: Pid) -> Option<(ErrorOrValue, OsState)> {
    let proc = st.procs.get(&pid)?;
    let ProcRunState::Pending(pending) = &proc.run_state else { return None };
    let value = match pending {
        Pending::Errors(errs) => ErrorOrValue::Error(*errs.iter().next()?),
        Pending::Value(v) => ErrorOrValue::Value(v.clone()),
        Pending::StatValue { expected, .. } => {
            ErrorOrValue::Value(RetValue::Stat(Box::new(*expected)))
        }
        Pending::NewFd { .. } => {
            let fd = (0..).map(Fd).find(|fd| !proc.fds.contains_key(fd))?;
            ErrorOrValue::Value(RetValue::Fd(fd))
        }
        Pending::NewDirHandle { .. } => {
            let dh = (0..).map(DirHandleId).find(|dh| !proc.dir_handles.contains_key(dh))?;
            ErrorOrValue::Value(RetValue::DirHandle(dh))
        }
        Pending::ReadData { data, .. } => ErrorOrValue::Value(RetValue::Bytes(data.clone())),
        Pending::WriteData { data, .. } => {
            ErrorOrValue::Value(RetValue::Num(data.len() as i64))
        }
        Pending::ReaddirEntry { dh } => {
            let handle = proc.dir_handles.get(dh)?;
            // Lexicographically-first must entry: matches the pre-intern
            // behaviour (string-keyed sets iterated in byte order).
            match handle.must.iter().min_by_key(|n| n.as_str()) {
                Some(name) => {
                    ErrorOrValue::Value(RetValue::ReaddirEntry(Some(name.as_str().to_string())))
                }
                None => ErrorOrValue::Value(RetValue::ReaddirEntry(None)),
            }
        }
        Pending::Special(_) => ErrorOrValue::Value(RetValue::None),
    };
    let next = match_pending(&SpecConfig::default(), st, pid, &pending.clone(), &value)?;
    Some((value, next))
}

/// Convenience: the label a script line corresponds to when the call is made.
pub fn call_label(pid: Pid, cmd: OsCommand) -> OsLabel {
    OsLabel::Call(pid, cmd)
}

/// Convenience: the label for an observed return.
pub fn return_label(pid: Pid, value: ErrorOrValue) -> OsLabel {
    OsLabel::Return(pid, value)
}

/// Convenience: the label for an observed error return.
pub fn error_label(pid: Pid, errno: Errno) -> OsLabel {
    OsLabel::Return(pid, ErrorOrValue::Error(errno))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::{FileMode, OpenFlags};
    use crate::flavor::Flavor;
    use crate::types::INITIAL_PID;

    fn cfg() -> SpecConfig {
        SpecConfig::standard(Flavor::Linux)
    }

    fn initial() -> OsState {
        OsState::initial_with_process(&cfg(), INITIAL_PID)
    }

    /// Drive one call/return pair through os_trans, asserting it is accepted.
    fn step(cfg: &SpecConfig, st: &OsState, cmd: OsCommand, ret: ErrorOrValue) -> Vec<OsState> {
        let called = os_trans(cfg, st, &OsLabel::Call(INITIAL_PID, cmd));
        assert_eq!(called.len(), 1);
        os_trans(cfg, &called[0], &OsLabel::Return(INITIAL_PID, ret))
    }

    #[test]
    fn call_then_matching_return_is_accepted() {
        let cfg = cfg();
        let st = initial();
        let next = step(
            &cfg,
            &st,
            OsCommand::Mkdir("/d".into(), FileMode::new(0o777)),
            ErrorOrValue::Value(RetValue::None),
        );
        assert_eq!(next.len(), 1);
        assert!(next[0].heap.lookup(next[0].heap.root(), "d").is_some());
    }

    #[test]
    fn non_allowed_error_is_rejected() {
        let cfg = cfg();
        let st = initial();
        // mkdir in an empty root cannot return EPERM.
        let next = step(
            &cfg,
            &st,
            OsCommand::Mkdir("/d".into(), FileMode::new(0o777)),
            ErrorOrValue::Error(Errno::EPERM),
        );
        assert!(next.is_empty());
    }

    #[test]
    fn allowed_error_from_envelope_is_accepted_and_leaves_state_unchanged() {
        let cfg = cfg();
        let st = initial();
        let next = step(
            &cfg,
            &st,
            OsCommand::Mkdir("/missing/d".into(), FileMode::new(0o777)),
            ErrorOrValue::Error(Errno::ENOENT),
        );
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].heap, st.heap);
    }

    #[test]
    fn open_binds_whatever_fd_the_implementation_chose() {
        let cfg = cfg();
        let st = initial();
        let cmd = OsCommand::Open(
            "/f".into(),
            OpenFlags::O_CREAT | OpenFlags::O_RDWR,
            Some(FileMode::new(0o644)),
        );
        for fd in [3, 17, 0] {
            let next = step(&cfg, &st, cmd.clone(), ErrorOrValue::Value(RetValue::Fd(Fd(fd))));
            assert_eq!(next.len(), 1, "fd {fd} should be accepted");
            assert!(next[0].fd_entry(INITIAL_PID, Fd(fd)).is_some());
        }
        // A negative fd is never accepted.
        let next = step(&cfg, &st, cmd, ErrorOrValue::Value(RetValue::Fd(Fd(-1))));
        assert!(next.is_empty());
    }

    #[test]
    fn write_short_count_is_accepted_and_applied() {
        let cfg = cfg();
        let st = initial();
        let opened = step(
            &cfg,
            &st,
            OsCommand::Open(
                "/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                Some(FileMode::new(0o644)),
            ),
            ErrorOrValue::Value(RetValue::Fd(Fd(3))),
        );
        let st = opened.into_iter().next().unwrap();
        // The implementation reports a short write of 3 of 5 bytes.
        let next = step(
            &cfg,
            &st,
            OsCommand::Write(Fd(3), b"hello".to_vec()),
            ErrorOrValue::Value(RetValue::Num(3)),
        );
        assert_eq!(next.len(), 1);
        let st = &next[0];
        let f = match st.heap.lookup(st.heap.root(), "f").unwrap() {
            crate::state::Entry::File(f) => f,
            _ => panic!(),
        };
        assert_eq!(st.heap.read_bytes(f, 0, 10), b"hel");
        // A count larger than requested is rejected.
        let next = step(
            &cfg,
            st,
            OsCommand::Write(Fd(3), b"xy".to_vec()),
            ErrorOrValue::Value(RetValue::Num(5)),
        );
        assert!(next.is_empty());
    }

    #[test]
    fn read_accepts_prefixes_only() {
        let cfg = cfg();
        let st = initial();
        let st = step(
            &cfg,
            &st,
            OsCommand::Open(
                "/f".into(),
                OpenFlags::O_CREAT | OpenFlags::O_RDWR,
                Some(FileMode::new(0o644)),
            ),
            ErrorOrValue::Value(RetValue::Fd(Fd(3))),
        )
        .remove(0);
        let st = step(
            &cfg,
            &st,
            OsCommand::Write(Fd(3), b"abcdef".to_vec()),
            ErrorOrValue::Value(RetValue::Num(6)),
        )
        .remove(0);
        let st = step(
            &cfg,
            &st,
            OsCommand::Lseek(Fd(3), 0, crate::flags::SeekWhence::Set),
            ErrorOrValue::Value(RetValue::Num(0)),
        )
        .remove(0);
        // A strict prefix is fine.
        let ok = step(
            &cfg,
            &st,
            OsCommand::Read(Fd(3), 6),
            ErrorOrValue::Value(RetValue::Bytes(b"abc".to_vec())),
        );
        assert_eq!(ok.len(), 1);
        // Wrong data is rejected.
        let bad = step(
            &cfg,
            &st,
            OsCommand::Read(Fd(3), 6),
            ErrorOrValue::Value(RetValue::Bytes(b"abX".to_vec())),
        );
        assert!(bad.is_empty());
        // An empty read while data is available is rejected.
        let bad = step(
            &cfg,
            &st,
            OsCommand::Read(Fd(3), 6),
            ErrorOrValue::Value(RetValue::Bytes(Vec::new())),
        );
        assert!(bad.is_empty());
    }

    #[test]
    fn readdir_respects_must_and_may_sets() {
        let cfg = cfg();
        let st = initial();
        let st = step(
            &cfg,
            &st,
            OsCommand::Mkdir("/d".into(), FileMode::new(0o777)),
            ErrorOrValue::Value(RetValue::None),
        )
        .remove(0);
        let st = step(
            &cfg,
            &st,
            OsCommand::Mkdir("/d/a".into(), FileMode::new(0o777)),
            ErrorOrValue::Value(RetValue::None),
        )
        .remove(0);
        let st = step(
            &cfg,
            &st,
            OsCommand::Opendir("/d".into()),
            ErrorOrValue::Value(RetValue::DirHandle(DirHandleId(1))),
        )
        .remove(0);
        // End-of-dir is not allowed while "a" is still unreturned.
        let bad = step(
            &cfg,
            &st,
            OsCommand::Readdir(DirHandleId(1)),
            ErrorOrValue::Value(RetValue::ReaddirEntry(None)),
        );
        assert!(bad.is_empty());
        // Returning "a" is allowed; afterwards end-of-dir is allowed and "a"
        // may not be returned a second time.
        let st = step(
            &cfg,
            &st,
            OsCommand::Readdir(DirHandleId(1)),
            ErrorOrValue::Value(RetValue::ReaddirEntry(Some("a".to_string()))),
        )
        .remove(0);
        let again = step(
            &cfg,
            &st,
            OsCommand::Readdir(DirHandleId(1)),
            ErrorOrValue::Value(RetValue::ReaddirEntry(Some("a".to_string()))),
        );
        assert!(again.is_empty());
        let done = step(
            &cfg,
            &st,
            OsCommand::Readdir(DirHandleId(1)),
            ErrorOrValue::Value(RetValue::ReaddirEntry(None)),
        );
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn concurrent_calls_from_two_processes_interleave() {
        let cfg = cfg();
        let st = initial();
        // Create a second process.
        let st = os_trans(&cfg, &st, &OsLabel::Create(Pid(2), crate::types::Uid(0), crate::types::Gid(0)))
            .remove(0);
        // Both processes issue calls before either returns.
        let st = os_trans(
            &cfg,
            &st,
            &OsLabel::Call(INITIAL_PID, OsCommand::Mkdir("/a".into(), FileMode::new(0o777))),
        )
        .remove(0);
        let st = os_trans(
            &cfg,
            &st,
            &OsLabel::Call(Pid(2), OsCommand::Mkdir("/b".into(), FileMode::new(0o777))),
        )
        .remove(0);
        // Returns can arrive in either order.
        let st = os_trans(
            &cfg,
            &st,
            &OsLabel::Return(Pid(2), ErrorOrValue::Value(RetValue::None)),
        );
        assert!(!st.is_empty());
        let st = os_trans(
            &cfg,
            &st[0],
            &OsLabel::Return(INITIAL_PID, ErrorOrValue::Value(RetValue::None)),
        );
        assert_eq!(st.len(), 1);
        let root = st[0].heap.root();
        assert!(st[0].heap.lookup(root, "a").is_some());
        assert!(st[0].heap.lookup(root, "b").is_some());
    }

    #[test]
    fn tau_closure_reaches_pending_states() {
        let cfg = cfg();
        let st = initial();
        let st = os_trans(
            &cfg,
            &st,
            &OsLabel::Call(INITIAL_PID, OsCommand::Stat("/".into())),
        )
        .remove(0);
        let closed = tau_closure(&cfg, &[st]);
        // Original InCall state plus at least one Pending state.
        assert!(closed.len() >= 2);
        assert!(closed.iter().any(|s| matches!(
            s.procs[&INITIAL_PID].run_state,
            ProcRunState::Pending(_)
        )));
    }

    #[test]
    fn default_completion_resolves_error_and_success_pendings() {
        let cfg = cfg();
        let st = initial();
        let st = os_trans(
            &cfg,
            &st,
            &OsLabel::Call(INITIAL_PID, OsCommand::Rmdir("/missing".into())),
        )
        .remove(0);
        let pendings = expand_calls(&cfg, &st);
        assert!(!pendings.is_empty());
        let (value, next) = default_completion(&pendings[0], INITIAL_PID).unwrap();
        assert!(matches!(value, ErrorOrValue::Error(_)));
        assert!(matches!(next.procs[&INITIAL_PID].run_state, ProcRunState::Ready));
    }

    #[test]
    fn describe_pending_produces_diagnostics() {
        let cfg = cfg();
        let st = initial();
        let st = os_trans(
            &cfg,
            &st,
            &OsLabel::Call(INITIAL_PID, OsCommand::Rmdir("/missing".into())),
        )
        .remove(0);
        let pendings = expand_calls(&cfg, &st);
        let descriptions = allowed_returns(&pendings[0], INITIAL_PID);
        assert!(descriptions.iter().any(|d| d.contains("ENOENT")));
    }

    #[test]
    fn process_lifecycle_labels() {
        let cfg = cfg();
        let st = initial();
        // Creating an existing pid is rejected.
        assert!(os_trans(&cfg, &st, &OsLabel::Create(INITIAL_PID, crate::types::Uid(0), crate::types::Gid(0))).is_empty());
        // Destroying an unknown pid is rejected.
        assert!(os_trans(&cfg, &st, &OsLabel::Destroy(Pid(9))).is_empty());
        // Create then destroy a second process.
        let st = os_trans(&cfg, &st, &OsLabel::Create(Pid(2), crate::types::Uid(7), crate::types::Gid(7)))
            .remove(0);
        assert!(st.procs.contains_key(&Pid(2)));
        let st = os_trans(&cfg, &st, &OsLabel::Destroy(Pid(2))).remove(0);
        assert!(!st.procs.contains_key(&Pid(2)));
    }

    /// A state with `pids` all in flight on the given calls.
    fn state_with_calls(cfg: &SpecConfig, calls: &[(Pid, OsCommand)]) -> OsState {
        let mut st = initial();
        for (pid, cmd) in calls {
            if *pid != INITIAL_PID {
                st = os_trans(
                    cfg,
                    &st,
                    &OsLabel::Create(*pid, crate::types::Uid(0), crate::types::Gid(0)),
                )
                .remove(0);
            }
            st = os_trans(cfg, &st, &OsLabel::Call(*pid, cmd.clone())).remove(0);
        }
        st
    }

    #[test]
    fn por_closure_prunes_commuting_interleavings() {
        let calls = [
            (INITIAL_PID, OsCommand::Mkdir("/a".into(), FileMode::new(0o777))),
            (Pid(2), OsCommand::Mkdir("/b".into(), FileMode::new(0o777))),
            (Pid(3), OsCommand::Mkdir("/c".into(), FileMode::new(0o777))),
        ];
        let on = cfg();
        let off = on.with_por(PorMode::Off);
        let st = state_with_calls(&on, &calls);

        let mut full: StateSet = StateSet::singleton(st.clone());
        tau_close(&off, &mut full);
        let mut reduced = StateSet::singleton(st);
        let mut sleeps = vec![SleepSet::new()];
        tau_close_with_sleeps(&on, &mut reduced, &mut sleeps);

        // Distinct creation orders allocate distinct heap refs, so the full
        // closure keeps one state per interleaving prefix; POR keeps one
        // representative order for the all-commuting calls.
        assert!(
            reduced.len() < full.len(),
            "POR did not prune: {} vs {}",
            reduced.len(),
            full.len()
        );
        assert_eq!(sleeps.len(), reduced.len());
        // The pruned states are exactly the re-orderings: every reduced state
        // is observationally present in the full closure.
        let full_fps: Vec<u64> = crate::footprint::obs_fingerprints(full.iter());
        for st in &reduced {
            let fp = crate::footprint::obs_fingerprint(st);
            assert!(full_fps.binary_search(&fp).is_ok());
        }
    }

    #[test]
    fn por_closure_fully_expands_conflicting_calls() {
        // Both processes create the *same* entry: the calls race and must be
        // explored in both orders under POR too.
        let calls = [
            (INITIAL_PID, OsCommand::Mkdir("/a".into(), FileMode::new(0o777))),
            (Pid(2), OsCommand::Mkdir("/a".into(), FileMode::new(0o777))),
        ];
        let on = cfg();
        let off = on.with_por(PorMode::Off);
        let st = state_with_calls(&on, &calls);

        let mut full = StateSet::singleton(st.clone());
        tau_close(&off, &mut full);
        let mut reduced = StateSet::singleton(st);
        tau_close(&on, &mut reduced);

        let full_fps = crate::footprint::obs_fingerprints(full.iter());
        let reduced_fps = crate::footprint::obs_fingerprints(reduced.iter());
        assert_eq!(full_fps, reduced_fps);
    }

    #[test]
    fn por_is_inert_for_a_single_process() {
        let on = cfg();
        let off = on.with_por(PorMode::Off);
        let calls = [(INITIAL_PID, OsCommand::Mkdir("/a".into(), FileMode::new(0o777)))];
        let st = state_with_calls(&on, &calls);
        let mut a = StateSet::singleton(st.clone());
        tau_close(&on, &mut a);
        let mut b = StateSet::singleton(st);
        tau_close(&off, &mut b);
        assert_eq!(a.states(), b.states());
    }
}
