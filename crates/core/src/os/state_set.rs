//! Deduplicating sets of model states.
//!
//! The checker tracks the set of states the real system might be in (§5).
//! The specification's treatment of nondeterminism keeps these sets tiny
//! (§3), but they are rebuilt for every trace step, so insertion and
//! membership testing sit squarely on the hot path. A [`StateSet`] dedups on
//! insert using each state's cached 64-bit [fingerprint](crate::os::OsState::fingerprint):
//! the fingerprint is looked up in a hash index and only states whose
//! fingerprints collide are compared structurally, so the common case is one
//! hash computation and one table probe instead of the O(n²) full structural
//! comparisons a `Vec::contains`-based set performs.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::os::OsState;

// The FxHash hasher now lives in `crate::fxhash` (it is shared with the name
// interner); re-exported here so existing `os::state_set::FxHasher64` paths
// keep working.
pub use crate::fxhash::FxHasher64;

/// The index maps fingerprints to positions in the insertion-ordered state
/// vector; fingerprints are already uniformly mixed, so the index hashes them
/// with [`FxHasher64`] rather than SipHash.
type FingerprintIndex = HashMap<u64, Vec<u32>, BuildHasherDefault<FxHasher64>>;

/// An insertion-ordered set of [`OsState`]s deduplicated by fingerprint.
///
/// Equal states (structural equality) are stored once. Fingerprint collisions
/// between unequal states are resolved with a structural comparison, so the
/// set is exact, not probabilistic. Iteration yields states in first-insertion
/// order, which keeps checker diagnostics and recovery deterministic.
#[derive(Debug, Default, Clone)]
pub struct StateSet {
    states: Vec<OsState>,
    index: FingerprintIndex,
    // Inserts that found an equal state already present. A plain (non-atomic)
    // local tally: the insert path is too hot for shared atomics, so the
    // checker drains this into the global registry once per step via
    // `take_dedup_hits`.
    dedup_hits: u64,
}

impl StateSet {
    /// An empty set.
    pub fn new() -> StateSet {
        StateSet::default()
    }

    /// A set containing exactly `st`.
    pub fn singleton(st: OsState) -> StateSet {
        let mut set = StateSet::new();
        set.insert(st);
        set
    }

    /// Insert a state, returning `true` if it was not already present.
    pub fn insert(&mut self, st: OsState) -> bool {
        self.insert_full(st).1
    }

    /// Insert a state, returning its position in insertion order and whether
    /// it was newly inserted (`false` when an equal state was already present
    /// — the returned index is then the existing state's). Used by the POR
    /// layer, which keeps per-state sleep sets parallel to the state vector.
    pub fn insert_full(&mut self, st: OsState) -> (usize, bool) {
        let fp = st.fingerprint();
        let slot = self.index.entry(fp).or_default();
        if let Some(&i) = slot.iter().find(|&&i| self.states[i as usize] == st) {
            self.dedup_hits += 1;
            return (i as usize, false);
        }
        let idx = self.states.len();
        slot.push(idx as u32);
        self.states.push(st);
        (idx, true)
    }

    /// Remove every state, keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.states.clear();
        self.index.clear();
    }

    /// Whether an equal state is already present.
    pub fn contains(&self, st: &OsState) -> bool {
        match self.index.get(&st.fingerprint()) {
            Some(slot) => slot.iter().any(|&i| &self.states[i as usize] == st),
            None => false,
        }
    }

    /// Number of distinct states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states in insertion order.
    pub fn states(&self) -> &[OsState] {
        &self.states
    }

    /// The state at `idx` (insertion order).
    pub fn get(&self, idx: usize) -> Option<&OsState> {
        self.states.get(idx)
    }

    /// Iterate over the states in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, OsState> {
        self.states.iter()
    }

    /// Keep only the first `n` states (used by the checker's `max_states`
    /// safety bound). A no-op when the set is already small enough.
    pub fn truncate(&mut self, n: usize) {
        if self.states.len() <= n {
            return;
        }
        self.states.truncate(n);
        for slot in self.index.values_mut() {
            slot.retain(|&i| (i as usize) < n);
        }
        self.index.retain(|_, slot| !slot.is_empty());
    }

    /// Consume the set, yielding the states in insertion order.
    pub fn into_states(self) -> Vec<OsState> {
        self.states
    }

    /// Take (and reset) the count of inserts deduplicated against an
    /// already-present equal state since the last call. The checker flushes
    /// this into `obs::m::STATE_DEDUP_HITS_TOTAL` at step granularity.
    pub fn take_dedup_hits(&mut self) -> u64 {
        std::mem::take(&mut self.dedup_hits)
    }
}

impl Extend<OsState> for StateSet {
    fn extend<T: IntoIterator<Item = OsState>>(&mut self, iter: T) {
        for st in iter {
            self.insert(st);
        }
    }
}

impl FromIterator<OsState> for StateSet {
    fn from_iter<T: IntoIterator<Item = OsState>>(iter: T) -> StateSet {
        let mut set = StateSet::new();
        set.extend(iter);
        set
    }
}

impl From<Vec<OsState>> for StateSet {
    fn from(states: Vec<OsState>) -> StateSet {
        states.into_iter().collect()
    }
}

impl IntoIterator for StateSet {
    type Item = OsState;
    type IntoIter = std::vec::IntoIter<OsState>;

    fn into_iter(self) -> Self::IntoIter {
        self.states.into_iter()
    }
}

impl<'a> IntoIterator for &'a StateSet {
    type Item = &'a OsState;
    type IntoIter = std::slice::Iter<'a, OsState>;

    fn into_iter(self) -> Self::IntoIter {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{Flavor, SpecConfig};
    use crate::types::{Pid, INITIAL_PID};
    use std::hash::Hasher;

    fn initial() -> OsState {
        OsState::initial_with_process(&SpecConfig::standard(Flavor::Linux), INITIAL_PID)
    }

    #[test]
    fn insert_dedups_equal_states() {
        let mut set = StateSet::new();
        assert!(set.insert(initial()));
        assert!(!set.insert(initial()));
        assert_eq!(set.len(), 1);
        assert!(set.contains(&initial()));
    }

    #[test]
    fn distinct_states_are_kept_in_insertion_order() {
        let mut set = StateSet::new();
        let a = initial();
        let mut b = initial();
        b.heap.tick();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(set.insert(a.clone()));
        assert!(set.insert(b.clone()));
        assert_eq!(set.len(), 2);
        assert_eq!(set.states()[0], a);
        assert_eq!(set.states()[1], b);
    }

    #[test]
    fn truncate_drops_states_and_index_entries() {
        let mut set = StateSet::new();
        let mut st = initial();
        for _ in 0..4 {
            set.insert(st.clone());
            st.heap.tick();
        }
        assert_eq!(set.len(), 4);
        let survivor = set.states()[1].clone();
        let dropped = set.states()[3].clone();
        set.truncate(2);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&survivor));
        assert!(!set.contains(&dropped));
        // A dropped state can be re-inserted.
        assert!(set.insert(dropped));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn fingerprint_is_stable_across_clones() {
        let st = initial();
        let fp = st.fingerprint();
        assert_eq!(st.clone().fingerprint(), fp);
        assert_eq!(initial().fingerprint(), fp);
        assert_ne!(fp, 0, "0 is reserved for 'not yet computed'");
    }

    #[test]
    fn states_differing_only_in_pid_table_are_distinct() {
        let cfg = SpecConfig::standard(Flavor::Linux);
        let a = OsState::initial_with_process(&cfg, INITIAL_PID);
        let b = OsState::initial_with_process(&cfg, Pid(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut set = StateSet::new();
        set.insert(a);
        set.insert(b);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn fx_hasher_handles_tail_bytes() {
        fn hash_of(bytes: &[u8]) -> u64 {
            let mut h = FxHasher64::default();
            h.write(bytes);
            h.finish()
        }
        assert_ne!(hash_of(b"abc"), hash_of(b"abd"));
        assert_ne!(hash_of(b"abc"), hash_of(b"abc\0"));
        assert_ne!(hash_of(b"12345678"), hash_of(b"123456789"));
        assert_eq!(hash_of(b"abc"), hash_of(b"abc"));
    }
}
