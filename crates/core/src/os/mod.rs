//! The POSIX API module (Fig. 5): processes, file descriptors, directory
//! handles, and the top-level operating-system state of the model.
//!
//! This module defines the *states* of the labelled transition system; the
//! transition function itself lives in [`trans`].

pub mod state_set;
pub mod trans;

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::commands::{OsCommand, RetValue, Stat};
use crate::errno::Errno;
use crate::flags::{FileMode, OpenFlags};
use crate::flavor::SpecConfig;
use crate::intern::Name;
use crate::perms::{Creds, GroupTable};
use crate::state::{DirHeap, DirRef, FileRef};
use crate::types::{DirHandleId, Fd, Fid, Gid, Pid, Uid};

/// What an open file description refers to: `open` can open directories as
/// well as regular files (reads on a directory descriptor then fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FidTarget {
    /// A regular file or symlink object.
    File(FileRef),
    /// A directory.
    Dir(DirRef),
}

/// An OS-level open file description (the `fid_state` of the Lem model).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FidState {
    /// The object the description refers to.
    pub target: FidTarget,
    /// The current file offset.
    pub offset: u64,
    /// The flags the file was opened with (access mode, `O_APPEND`, …).
    pub flags: OpenFlags,
}

impl FidState {
    /// The file reference, if the description is for a non-directory file.
    pub fn file(&self) -> Option<FileRef> {
        match self.target {
            FidTarget::File(f) => Some(f),
            FidTarget::Dir(_) => None,
        }
    }
}

/// The state of an open directory handle.
///
/// `readdir` nondeterminism is handled with explicit *must*/*may* sets (§3
/// "Directory listing nondeterminism"): entries in `must` have to be returned
/// exactly once before end-of-directory may be reported; entries in `may` may
/// or may not be returned (they were added or removed while the handle was
/// open); `returned` records what has already been handed out so nothing is
/// returned twice.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirHandleState {
    /// The directory being listed.
    pub dir: DirRef,
    /// Entries that must still be returned (interned name symbols).
    pub must: BTreeSet<Name>,
    /// Entries that may be returned.
    pub may: BTreeSet<Name>,
    /// Entries already returned.
    pub returned: BTreeSet<Name>,
}

impl DirHandleState {
    /// A handle freshly opened on `dir` whose current entries are `entries`.
    pub fn open(dir: DirRef, entries: impl IntoIterator<Item = Name>) -> DirHandleState {
        DirHandleState {
            dir,
            must: entries.into_iter().collect(),
            may: BTreeSet::new(),
            returned: BTreeSet::new(),
        }
    }

    /// Record that `name` was removed from the directory while this handle is
    /// open: if it had not yet been returned it may (but need not) still be
    /// returned.
    pub fn note_removed(&mut self, name: Name) {
        if self.must.remove(&name) {
            self.may.insert(name);
        }
        // If it was already returned it stays returned; if it was already in
        // `may` it stays there.
    }

    /// Record that `name` was added to the directory while this handle is
    /// open: it may (but need not) be returned by subsequent reads.
    pub fn note_added(&mut self, name: Name) {
        if !self.must.contains(&name) {
            self.may.insert(name);
        }
    }

    /// Record that `name` was returned by `readdir`.
    pub fn note_returned(&mut self, name: Name) {
        self.must.remove(&name);
        self.may.remove(&name);
        self.returned.insert(name);
    }

    /// Whether end-of-directory may be reported now.
    pub fn may_finish(&self) -> bool {
        self.must.is_empty()
    }

    /// The set of entries that may be returned by the next `readdir`.
    pub fn candidates(&self) -> BTreeSet<Name> {
        self.must.union(&self.may).copied().collect()
    }
}

/// POSIX "special" behaviour classes (§1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpecialKind {
    /// Undefined behaviour: the arguments were invalid according to POSIX.
    Undefined,
    /// Unspecified behaviour: valid arguments, but POSIX does not say what
    /// happens.
    Unspecified,
    /// Implementation-defined behaviour.
    ImplDefined,
}

/// How a pending write applies its data when the observed byte count arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteAt {
    /// Write at the given offset and advance the descriptor offset past the
    /// written bytes (plain `write`).
    Offset(u64),
    /// Write at end of file and advance the offset (`O_APPEND` semantics).
    Append,
    /// Write at end of file but leave the descriptor offset unchanged: the
    /// Linux convention for `pwrite` on an `O_APPEND` descriptor, which
    /// redirects the data to EOF yet — `pwrite` never moves the offset —
    /// keeps the descriptor where it was (found by the exploration engine:
    /// a subsequent `read` sees the appended bytes, not EOF).
    AppendKeepOffset,
    /// Write at the given offset but leave the descriptor offset unchanged
    /// (`pwrite`).
    KeepOffset(u64),
}

/// The constraint on the value a pending call is allowed to return, together
/// with enough information to update the state once the value is observed.
///
/// Error returns never change the state (the POSIX invariant), so a single
/// [`Pending::Errors`] branch represents every allowed error at once; success
/// branches either carry an exact value or a constrained family of values
/// (short reads/writes, readdir entries, newly allocated descriptors) that is
/// resolved when the real system's choice is observed — the strategy of §3.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pending {
    /// The call must fail with one of these errors.
    Errors(BTreeSet<Errno>),
    /// The call succeeds with exactly this value.
    Value(RetValue),
    /// The call returns a `stat` structure; mode/ownership comparison is
    /// configurable so the POSIX envelope can leave symlink modes loose.
    StatValue {
        /// The expected structure.
        expected: Stat,
        /// Whether the mode bits must match exactly.
        check_mode: bool,
        /// Whether uid/gid must match exactly.
        check_owner: bool,
    },
    /// `open` succeeded: any not-yet-used non-negative descriptor is allowed;
    /// on observation the descriptor is bound to this description.
    NewFd {
        /// The file description to bind.
        fid: Fid,
    },
    /// `opendir` succeeded: any unused handle id is allowed.
    NewDirHandle {
        /// The handle state to bind.
        handle: DirHandleState,
    },
    /// `read`/`pread` succeeded: any prefix of `data` may be returned
    /// (non-empty if `data` is non-empty).
    ReadData {
        /// The descriptor whose offset advances (None for `pread`).
        fd: Option<Fd>,
        /// The bytes available at the read position.
        data: Vec<u8>,
    },
    /// `write`/`pwrite` succeeded: any count `1..=data.len()` may be reported
    /// (or 0 when `data` is empty); the reported prefix is applied to the file.
    WriteData {
        /// The descriptor written through.
        fd: Fd,
        /// The bytes the process asked to write.
        data: Vec<u8>,
        /// Where the write lands.
        at: WriteAt,
    },
    /// `readdir` succeeded: the allowed entries are drawn from the handle's
    /// must/may sets, or end-of-directory if every `must` entry has been
    /// returned.
    ReaddirEntry {
        /// The handle being read.
        dh: DirHandleId,
    },
    /// The behaviour is undefined/unspecified/implementation-defined: any
    /// return is accepted.
    Special(SpecialKind),
}

/// The run state of a process.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcRunState {
    /// The process is not in a libc call.
    Ready,
    /// The process has made a call that the OS has not yet processed.
    InCall(OsCommand),
    /// The OS has processed the call; the return value is constrained by the
    /// `Pending`.
    Pending(Pending),
}

/// Per-process state tracked by the operating system
/// (the `per_process_state` of the Lem model).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PerProcessState {
    /// Current working directory.
    pub cwd: DirRef,
    /// Per-process file descriptor table, mapping descriptors to OS-level
    /// file descriptions.
    pub fds: BTreeMap<Fd, Fid>,
    /// Open directory handles.
    pub dir_handles: BTreeMap<DirHandleId, DirHandleState>,
    /// The file-creation mask.
    pub umask: FileMode,
    /// Effective user id.
    pub euid: Uid,
    /// Effective group id.
    pub egid: Gid,
    /// Whether the process is idle, in a call, or awaiting a return.
    pub run_state: ProcRunState,
}

impl PerProcessState {
    /// A fresh process with the given credentials whose cwd is `cwd`.
    pub fn new(cwd: DirRef, euid: Uid, egid: Gid) -> PerProcessState {
        PerProcessState {
            cwd,
            fds: BTreeMap::new(),
            dir_handles: BTreeMap::new(),
            umask: FileMode::new(0o022),
            euid,
            egid,
            run_state: ProcRunState::Ready,
        }
    }
}

/// A lazily computed 64-bit structural fingerprint, memoised per state.
///
/// `0` means "not yet computed" (computed fingerprints are remapped away from
/// zero). The cache is deliberately *reset* on clone: the transition engine
/// always clones a state before mutating it, so a state whose fingerprint has
/// been observed is never mutated in place and the cached value can never go
/// stale, while the fresh clone recomputes after its mutations.
#[derive(Default)]
struct FingerprintCell(AtomicU64);

impl FingerprintCell {
    fn get(&self) -> Option<u64> {
        match self.0.load(Ordering::Relaxed) {
            0 => None,
            fp => Some(fp),
        }
    }

    fn set(&self, fp: u64) {
        self.0.store(fp, Ordering::Relaxed);
    }

    fn invalidate(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for FingerprintCell {
    fn clone(&self) -> FingerprintCell {
        FingerprintCell::default()
    }
}

impl std::fmt::Debug for FingerprintCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.get() {
            Some(fp) => write!(f, "{fp:#018x}"),
            None => f.write_str("<uncomputed>"),
        }
    }
}

/// The top-level state of the model: the `ty_os_state` of the Lem model.
///
/// Branching transitions clone the whole state, so the heavyweight components
/// — the directory heap's object maps and each per-process table — sit behind
/// [`Arc`]s with copy-on-write mutation (`Arc::make_mut`): a clone shares all
/// unmodified structure and only the pieces a branch actually touches are
/// copied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OsState {
    /// Directory structure and file contents.
    pub heap: DirHeap,
    /// OS-level open file descriptions (`oss_fid_table`).
    pub fids: BTreeMap<Fid, FidState>,
    /// Group membership (`oss_group_table`).
    pub groups: GroupTable,
    /// Per-process state (`oss_pid_table`). The table entries are shared
    /// copy-on-write between branches; mutate through [`OsState::proc_mut`].
    pub procs: BTreeMap<Pid, Arc<PerProcessState>>,
    next_fid: u64,
    fingerprint: FingerprintCell,
}

impl PartialEq for OsState {
    fn eq(&self, other: &OsState) -> bool {
        // The fingerprint cache is excluded: it is derived data.
        self.next_fid == other.next_fid
            && self.heap == other.heap
            && self.fids == other.fids
            && self.groups == other.groups
            && self.procs == other.procs
    }
}

impl Eq for OsState {}

impl Hash for OsState {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.heap.hash(state);
        self.fids.hash(state);
        self.groups.hash(state);
        self.procs.hash(state);
        self.next_fid.hash(state);
    }
}

impl OsState {
    /// The initial state: an empty file system and no processes.
    pub fn initial() -> OsState {
        OsState {
            heap: DirHeap::empty(),
            fids: BTreeMap::new(),
            groups: GroupTable::new(),
            procs: BTreeMap::new(),
            next_fid: 1,
            fingerprint: FingerprintCell::default(),
        }
    }

    /// The state's 64-bit structural fingerprint, computed on first use and
    /// cached. Two equal states always have equal fingerprints; unequal states
    /// collide with probability ~2⁻⁶⁴, and [`state_set::StateSet`] resolves
    /// collisions with a structural comparison, so dedup stays exact.
    pub fn fingerprint(&self) -> u64 {
        if let Some(fp) = self.fingerprint.get() {
            return fp;
        }
        let mut hasher = state_set::FxHasher64::default();
        self.hash(&mut hasher);
        // 0 is the cache's "unset" sentinel; remap it.
        let fp = hasher.finish().max(1);
        self.fingerprint.set(fp);
        fp
    }

    /// The initial state used for checking a test trace: an empty file system
    /// and a single initial process whose credentials depend on whether the
    /// configuration runs tests as root.
    pub fn initial_with_process(cfg: &SpecConfig, pid: Pid) -> OsState {
        let mut st = OsState::initial();
        let (uid, gid) =
            if cfg.root_user { (Uid(0), Gid(0)) } else { (Uid(1000), Gid(1000)) };
        let root = st.heap.root();
        st.procs.insert(pid, Arc::new(PerProcessState::new(root, uid, gid)));
        st
    }

    /// Allocate a fresh OS-level file description id.
    pub fn fresh_fid(&mut self) -> Fid {
        self.fingerprint.invalidate();
        let id = self.next_fid;
        self.next_fid += 1;
        Fid(id)
    }

    /// The credentials the given process presents, or `None` when the
    /// permissions trait is disabled.
    pub fn creds_of(&self, cfg: &SpecConfig, pid: Pid) -> Option<Creds> {
        if !cfg.permissions {
            return None;
        }
        let proc = self.procs.get(&pid)?;
        let mut creds = Creds::user(proc.euid, proc.egid);
        creds.groups = self.groups.groups_of(proc.euid);
        Some(creds)
    }

    /// The per-process state of `pid`.
    pub fn proc(&self, pid: Pid) -> Option<&PerProcessState> {
        self.procs.get(&pid).map(Arc::as_ref)
    }

    /// The per-process state of `pid`, mutably. Unshares the entry first if it
    /// is still shared with other states (copy-on-write).
    ///
    /// Note: mutating through the `pub` fields directly (`heap`, `fids`,
    /// `procs`) does *not* invalidate a previously computed fingerprint —
    /// clone the state first (clones start with an empty cache), as every
    /// transition-engine path does.
    pub fn proc_mut(&mut self, pid: Pid) -> Option<&mut PerProcessState> {
        self.fingerprint.invalidate();
        self.procs.get_mut(&pid).map(Arc::make_mut)
    }

    /// Look up the open file description behind a process's descriptor.
    pub fn fd_entry(&self, pid: Pid, fd: Fd) -> Option<(&Fid, &FidState)> {
        let fid = self.proc(pid)?.fds.get(&fd)?;
        let st = self.fids.get(fid)?;
        Some((fid, st))
    }

    /// Notify every open directory handle on `dir` that `name` was removed.
    pub fn notify_entry_removed(&mut self, dir: DirRef, name: Name) {
        self.fingerprint.invalidate();
        for proc in self.procs.values_mut() {
            // Only unshare processes that actually hold a handle on `dir`.
            if proc.dir_handles.values().any(|dh| dh.dir == dir) {
                for dh in Arc::make_mut(proc).dir_handles.values_mut() {
                    if dh.dir == dir {
                        dh.note_removed(name);
                    }
                }
            }
        }
    }

    /// Notify every open directory handle on `dir` that `name` was added.
    pub fn notify_entry_added(&mut self, dir: DirRef, name: Name) {
        self.fingerprint.invalidate();
        for proc in self.procs.values_mut() {
            if proc.dir_handles.values().any(|dh| dh.dir == dir) {
                for dh in Arc::make_mut(proc).dir_handles.values_mut() {
                    if dh.dir == dir {
                        dh.note_added(name);
                    }
                }
            }
        }
    }

    /// The number of processes currently in a call or awaiting a return.
    pub fn busy_processes(&self) -> usize {
        self.procs
            .values()
            .filter(|p| !matches!(p.run_state, ProcRunState::Ready))
            .count()
    }
}

impl Default for OsState {
    fn default() -> Self {
        OsState::initial()
    }
}

/// Canonical *observational* fingerprint of a state.
///
/// Structural identity ([`OsState`]'s `Eq`/`Hash`) distinguishes states by
/// raw heap reference ids, fid ids, the allocator cursors, and per-object
/// logical timestamps — all artifacts of the *order* operations were
/// dispatched in, none of which ever appears in a matched return value
/// (`Stat` carries kind/size/nlink/mode/uid/gid only; fd and handle numbers
/// come from the observed trace, not the allocator). This fingerprint hashes
/// the state up to a canonical renumbering of references in deterministic
/// discovery order (root DFS by entry name, then processes in pid order) and
/// skips timestamps and allocator cursors, so two states related by a
/// commuting reordering of τ-steps hash equal. Objects reachable from
/// nothing (no entry, no descriptor, no handle, no cwd) are unobservable and
/// are skipped.
///
/// Used by the POR soundness proptest and the footprint layer
/// (`crate::footprint::obs_fingerprint`); the checker itself keeps using the
/// exact structural [`state_set::StateSet`] dedup.
pub fn canonical_fingerprint(st: &OsState) -> u64 {
    use std::collections::HashMap;

    struct Canon<'a> {
        st: &'a OsState,
        h: state_set::FxHasher64,
        dirs: HashMap<u64, u64>,
        files: HashMap<u64, u64>,
        fids: HashMap<u64, u64>,
    }

    impl Canon<'_> {
        /// Canonical id of a directory; hashes its observable content
        /// (meta sans times, parent link, entries, recursively) on first
        /// discovery.
        fn dir_id(&mut self, d: DirRef) -> u64 {
            if let Some(&id) = self.dirs.get(&d.0) {
                return id;
            }
            let id = self.dirs.len() as u64;
            self.dirs.insert(d.0, id);
            0xD1u8.hash(&mut self.h);
            id.hash(&mut self.h);
            let st = self.st;
            if let Some(dir) = st.heap.dir(d) {
                dir.meta.mode.hash(&mut self.h);
                dir.meta.uid.hash(&mut self.h);
                dir.meta.gid.hash(&mut self.h);
                match dir.parent {
                    Some(p) => {
                        1u8.hash(&mut self.h);
                        let pid = self.dir_id(p);
                        pid.hash(&mut self.h);
                    }
                    None => 0u8.hash(&mut self.h),
                }
                dir.entries.len().hash(&mut self.h);
                for (name, entry) in dir.entries.iter() {
                    name.hash(&mut self.h);
                    match *entry {
                        crate::state::Entry::Dir(c) => {
                            0u8.hash(&mut self.h);
                            let cid = self.dir_id(c);
                            cid.hash(&mut self.h);
                        }
                        crate::state::Entry::File(f) => {
                            1u8.hash(&mut self.h);
                            let fid = self.file_id(f);
                            fid.hash(&mut self.h);
                        }
                    }
                }
            }
            id
        }

        /// Canonical id of a file; hashes content/meta/nlink on first
        /// discovery (hard links to an already-seen file hash only the id).
        fn file_id(&mut self, f: FileRef) -> u64 {
            if let Some(&id) = self.files.get(&f.0) {
                return id;
            }
            let id = self.files.len() as u64;
            self.files.insert(f.0, id);
            0xF1u8.hash(&mut self.h);
            id.hash(&mut self.h);
            if let Some(file) = self.st.heap.file(f) {
                match &file.content {
                    crate::state::FileContent::Regular(data) => {
                        0u8.hash(&mut self.h);
                        data.hash(&mut self.h);
                    }
                    crate::state::FileContent::Symlink(target) => {
                        1u8.hash(&mut self.h);
                        target.as_str().hash(&mut self.h);
                    }
                }
                file.meta.mode.hash(&mut self.h);
                file.meta.uid.hash(&mut self.h);
                file.meta.gid.hash(&mut self.h);
                file.nlink.hash(&mut self.h);
            }
            id
        }

        /// Canonical id of an open file description; hashes target/offset/
        /// flags on first discovery.
        fn fid_id(&mut self, fid: Fid) -> u64 {
            if let Some(&id) = self.fids.get(&fid.0) {
                return id;
            }
            let id = self.fids.len() as u64;
            self.fids.insert(fid.0, id);
            0xFDu8.hash(&mut self.h);
            id.hash(&mut self.h);
            let st = self.st;
            if let Some(fs) = st.fids.get(&fid) {
                match fs.target {
                    FidTarget::File(f) => {
                        0u8.hash(&mut self.h);
                        let fi = self.file_id(f);
                        fi.hash(&mut self.h);
                    }
                    FidTarget::Dir(d) => {
                        1u8.hash(&mut self.h);
                        let di = self.dir_id(d);
                        di.hash(&mut self.h);
                    }
                }
                fs.offset.hash(&mut self.h);
                fs.flags.hash(&mut self.h);
            }
            id
        }

        fn pending(&mut self, p: &Pending) {
            match p {
                Pending::Errors(errs) => {
                    0u8.hash(&mut self.h);
                    errs.hash(&mut self.h);
                }
                Pending::Value(v) => {
                    1u8.hash(&mut self.h);
                    v.hash(&mut self.h);
                }
                Pending::StatValue { expected, check_mode, check_owner } => {
                    2u8.hash(&mut self.h);
                    expected.hash(&mut self.h);
                    check_mode.hash(&mut self.h);
                    check_owner.hash(&mut self.h);
                }
                Pending::NewFd { fid } => {
                    3u8.hash(&mut self.h);
                    let id = self.fid_id(*fid);
                    id.hash(&mut self.h);
                }
                Pending::NewDirHandle { handle } => {
                    4u8.hash(&mut self.h);
                    let d = self.dir_id(handle.dir);
                    d.hash(&mut self.h);
                    handle.must.hash(&mut self.h);
                    handle.may.hash(&mut self.h);
                    handle.returned.hash(&mut self.h);
                }
                Pending::ReadData { fd, data } => {
                    5u8.hash(&mut self.h);
                    fd.hash(&mut self.h);
                    data.hash(&mut self.h);
                }
                Pending::WriteData { fd, data, at } => {
                    6u8.hash(&mut self.h);
                    fd.hash(&mut self.h);
                    data.hash(&mut self.h);
                    at.hash(&mut self.h);
                }
                Pending::ReaddirEntry { dh } => {
                    7u8.hash(&mut self.h);
                    dh.hash(&mut self.h);
                }
                Pending::Special(k) => {
                    8u8.hash(&mut self.h);
                    k.hash(&mut self.h);
                }
            }
        }
    }

    let mut c = Canon {
        st,
        h: state_set::FxHasher64::default(),
        dirs: HashMap::new(),
        files: HashMap::new(),
        fids: HashMap::new(),
    };
    let root = c.dir_id(st.heap.root());
    root.hash(&mut c.h);
    st.groups.hash(&mut c.h);
    st.procs.len().hash(&mut c.h);
    for (pid, p) in &st.procs {
        pid.hash(&mut c.h);
        let cwd = c.dir_id(p.cwd);
        cwd.hash(&mut c.h);
        p.umask.hash(&mut c.h);
        p.euid.hash(&mut c.h);
        p.egid.hash(&mut c.h);
        p.fds.len().hash(&mut c.h);
        for (fd, fid) in &p.fds {
            fd.hash(&mut c.h);
            let id = c.fid_id(*fid);
            id.hash(&mut c.h);
        }
        p.dir_handles.len().hash(&mut c.h);
        for (dh, hs) in &p.dir_handles {
            dh.hash(&mut c.h);
            let d = c.dir_id(hs.dir);
            d.hash(&mut c.h);
            hs.must.hash(&mut c.h);
            hs.may.hash(&mut c.h);
            hs.returned.hash(&mut c.h);
        }
        match &p.run_state {
            ProcRunState::Ready => 0u8.hash(&mut c.h),
            ProcRunState::InCall(cmd) => {
                1u8.hash(&mut c.h);
                cmd.hash(&mut c.h);
            }
            ProcRunState::Pending(pe) => {
                2u8.hash(&mut c.h);
                c.pending(pe);
            }
        }
    }
    c.h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::Flavor;

    #[test]
    fn initial_state_with_process() {
        let cfg = SpecConfig::standard(Flavor::Posix);
        let st = OsState::initial_with_process(&cfg, Pid(1));
        assert_eq!(st.procs.len(), 1);
        let p = st.proc(Pid(1)).unwrap();
        assert_eq!(p.euid, Uid(0));
        assert_eq!(p.umask, FileMode::new(0o022));
        assert!(matches!(p.run_state, ProcRunState::Ready));

        let cfg = SpecConfig::unprivileged(Flavor::Posix);
        let st = OsState::initial_with_process(&cfg, Pid(1));
        assert_eq!(st.proc(Pid(1)).unwrap().euid, Uid(1000));
    }

    #[test]
    fn creds_respect_permissions_trait() {
        let cfg = SpecConfig::without_permissions(Flavor::Linux);
        let st = OsState::initial_with_process(&cfg, Pid(1));
        assert!(st.creds_of(&cfg, Pid(1)).is_none());

        let cfg = SpecConfig::standard(Flavor::Linux);
        let st = OsState::initial_with_process(&cfg, Pid(1));
        let creds = st.creds_of(&cfg, Pid(1)).unwrap();
        assert!(creds.is_root());
    }

    #[test]
    fn fresh_fids_are_distinct() {
        let mut st = OsState::initial();
        let a = st.fresh_fid();
        let b = st.fresh_fid();
        assert_ne!(a, b);
    }

    #[test]
    fn dir_handle_must_may_transitions() {
        let mut dh = DirHandleState::open(DirRef(1), [Name::intern("a"), Name::intern("b")]);
        assert!(!dh.may_finish());
        assert_eq!(dh.candidates().len(), 2);

        // Deleting an unreturned entry moves it to `may`.
        let (a, b, c) = (Name::intern("a"), Name::intern("b"), Name::intern("c"));
        dh.note_removed(a);
        assert!(dh.may.contains(&a));
        assert!(!dh.must.contains(&a));
        // It can still be returned — or the directory can finish once `must`
        // is drained.
        dh.note_returned(b);
        assert!(dh.may_finish());
        assert!(dh.candidates().contains(&a));

        // Once returned, an entry is not offered again.
        dh.note_returned(a);
        assert!(dh.candidates().is_empty());

        // A new entry added while open becomes a `may` entry.
        dh.note_added(c);
        assert!(dh.candidates().contains(&c));
        assert!(dh.may_finish());
    }

    #[test]
    fn notify_updates_all_matching_handles() {
        let cfg = SpecConfig::standard(Flavor::Posix);
        let mut st = OsState::initial_with_process(&cfg, Pid(1));
        let root = st.heap.root();
        let (x, y) = (Name::intern("x"), Name::intern("y"));
        let dh_state = DirHandleState::open(root, [x]);
        st.proc_mut(Pid(1)).unwrap().dir_handles.insert(DirHandleId(1), dh_state);
        st.notify_entry_added(root, y);
        st.notify_entry_removed(root, x);
        let dh = &st.proc(Pid(1)).unwrap().dir_handles[&DirHandleId(1)];
        assert!(dh.may.contains(&x));
        assert!(dh.may.contains(&y));
        assert!(dh.must.is_empty());
    }

    #[test]
    fn busy_process_count() {
        let cfg = SpecConfig::standard(Flavor::Posix);
        let mut st = OsState::initial_with_process(&cfg, Pid(1));
        assert_eq!(st.busy_processes(), 0);
        st.proc_mut(Pid(1)).unwrap().run_state =
            ProcRunState::InCall(OsCommand::Stat("/".into()));
        assert_eq!(st.busy_processes(), 1);
    }
}
