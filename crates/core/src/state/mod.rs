//! The *state* module of the model (Fig. 5): directory structure and file
//! contents, expressed over abstract references rather than blocks or inodes.

mod dir_heap;
mod meta;

pub use dir_heap::{DirHeap, DirRef, Entry, FileContent, FileRef};
pub use meta::{Meta, Timestamps};
