//! Per-object metadata: ownership, permission bits and timestamps.

use serde::{Deserialize, Serialize};

use crate::flags::FileMode;
use crate::types::{Gid, Uid};

/// Logical timestamps.
///
/// The model does not track wall-clock time; instead each file-system state
/// carries a logical clock that is advanced on every mutating operation, and
/// timestamps record the clock value at which the corresponding update
/// happened. The timestamps *trait* decides whether these values are ever
/// compared against observations (they are not by default, §1.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamps {
    /// Last access time.
    pub atime: u64,
    /// Last data modification time.
    pub mtime: u64,
    /// Last status change time.
    pub ctime: u64,
}

impl Timestamps {
    /// Timestamps for a freshly created object at logical time `now`.
    pub fn at(now: u64) -> Timestamps {
        Timestamps { atime: now, mtime: now, ctime: now }
    }

    /// Record an access at logical time `now`.
    pub fn touch_atime(&mut self, now: u64) {
        self.atime = now;
    }

    /// Record a data modification at logical time `now` (also changes ctime).
    pub fn touch_mtime(&mut self, now: u64) {
        self.mtime = now;
        self.ctime = now;
    }

    /// Record a status change at logical time `now`.
    pub fn touch_ctime(&mut self, now: u64) {
        self.ctime = now;
    }
}

/// Metadata attached to every file and directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Meta {
    /// Permission bits.
    pub mode: FileMode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Logical timestamps.
    pub times: Timestamps,
}

impl Meta {
    /// Metadata for a new object owned by `uid:gid` with the given mode.
    pub fn new(mode: FileMode, uid: Uid, gid: Gid, now: u64) -> Meta {
        Meta { mode, uid, gid, times: Timestamps::at(now) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_updates_expected_fields() {
        let mut t = Timestamps::at(1);
        t.touch_atime(5);
        assert_eq!(t, Timestamps { atime: 5, mtime: 1, ctime: 1 });
        t.touch_mtime(7);
        assert_eq!(t, Timestamps { atime: 5, mtime: 7, ctime: 7 });
        t.touch_ctime(9);
        assert_eq!(t.ctime, 9);
    }

    #[test]
    fn meta_new_records_now() {
        let m = Meta::new(FileMode::new(0o644), Uid(10), Gid(20), 42);
        assert_eq!(m.times.atime, 42);
        assert_eq!(m.uid, Uid(10));
        assert_eq!(m.mode, FileMode::new(0o644));
    }
}
