//! The directory-heap state: an abstract store of directories and files.
//!
//! This is the model's equivalent of the paper's `dir_heap_state_fs` record: a
//! finite map from directory references to directories and a finite map from
//! file references to files. The interface is expressed purely in terms of
//! references; arbitrary linking and unlinking is permitted, so disconnected
//! files and directories (objects not reachable from the root) can be
//! represented, which is required to model files that remain readable through
//! open descriptors after being unlinked, and the OpenZFS "disconnected
//! directory" defect scenario of Fig. 8.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::flags::FileMode;
use crate::fxhash::FxHasher64;
use crate::intern::Name;
use crate::path::ParsedPath;
use crate::state::meta::Meta;
use crate::types::{FileKind, Gid, Uid};

/// An abstract reference to a directory (the `'dir_ref` of the Lem model).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DirRef(pub u64);

/// An abstract reference to a non-directory file (regular file or symlink).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FileRef(pub u64);

/// A directory entry: either a subdirectory or a (regular or symlink) file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Entry {
    /// A subdirectory.
    Dir(DirRef),
    /// A non-directory file.
    File(FileRef),
}

impl Entry {
    /// Whether the entry is a directory.
    pub fn is_dir(self) -> bool {
        matches!(self, Entry::Dir(_))
    }
}

/// The content of a non-directory file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FileContent {
    /// A regular file with byte contents.
    Regular(Vec<u8>),
    /// A symbolic link with its target path stored pre-parsed: the raw text
    /// interned whole (for `readlink` and `stat` sizes) plus interned
    /// components, so following the link splices symbols without re-parsing.
    Symlink(ParsedPath),
}

impl FileContent {
    /// The object kind corresponding to this content.
    pub fn kind(&self) -> FileKind {
        match self {
            FileContent::Regular(_) => FileKind::Regular,
            FileContent::Symlink(_) => FileKind::Symlink,
        }
    }

    /// The size in bytes as reported by `stat` (for symlinks, the target length).
    pub fn size(&self) -> u64 {
        match self {
            FileContent::Regular(data) => data.len() as u64,
            FileContent::Symlink(target) => target.raw_len() as u64,
        }
    }
}

/// Cached structural hash of a heap object (`0` = not yet computed; real
/// hashes are remapped away from zero). Heap objects are immutable once
/// shared behind an [`Arc`]: every mutation path goes through
/// [`DirHeap::dir_mut`]/[`DirHeap::file_mut`], which invalidate the cache
/// before handing out `&mut`, and `Clone` (what `Arc::make_mut` calls on a
/// shared object) resets it — so a cached value can never go stale. The cache
/// is excluded from `Eq`/`Ord`/`Hash`: it is derived data.
#[derive(Default)]
struct HashCell(AtomicU64);

impl HashCell {
    fn get(&self) -> Option<u64> {
        match self.0.load(Ordering::Relaxed) {
            0 => None,
            h => Some(h),
        }
    }

    fn set(&self, h: u64) {
        self.0.store(h, Ordering::Relaxed);
    }

    fn invalidate(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for HashCell {
    fn clone(&self) -> HashCell {
        HashCell::default()
    }
}

impl std::fmt::Debug for HashCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.get() {
            Some(h) => write!(f, "{h:#018x}"),
            None => f.write_str("<uncomputed>"),
        }
    }
}

/// A directory object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dir {
    /// Named entries (excluding the implicit `.` and `..`), keyed by interned
    /// name symbol. The `BTreeMap` ordering is the symbols' `u32` order —
    /// arbitrary but fixed, so lookups on the resolve hot path compare
    /// integers; anything needing lexicographic order goes through
    /// [`DirHeap::entry_names`], which sorts at the boundary.
    pub entries: BTreeMap<Name, Entry>,
    /// The parent directory, or `None` for the root and for disconnected
    /// directories.
    pub parent: Option<DirRef>,
    /// Ownership, permissions, timestamps.
    pub meta: Meta,
    /// Cached structural hash (see [`HashCell`]); not part of the object's
    /// identity.
    cache: HashCell,
}

impl Dir {
    fn new(entries: BTreeMap<Name, Entry>, parent: Option<DirRef>, meta: Meta) -> Dir {
        Dir { entries, parent, meta, cache: HashCell::default() }
    }

    /// The object's structural hash, computed on first use and cached.
    ///
    /// [`DirHeap`]'s `Hash` combines these per-object values instead of
    /// re-walking every entry map on each state fingerprint: a τ-closure
    /// successor changes one or two directories, so the other ~`N` keep
    /// their cached hashes and the per-state cost drops from "walk the whole
    /// tree" to "hash `N` integers".
    fn content_hash(&self) -> u64 {
        if let Some(h) = self.cache.get() {
            return h;
        }
        let mut hasher = FxHasher64::default();
        self.entries.hash(&mut hasher);
        self.parent.hash(&mut hasher);
        self.meta.hash(&mut hasher);
        let h = hasher.finish().max(1);
        self.cache.set(h);
        h
    }
}

impl PartialEq for Dir {
    fn eq(&self, other: &Dir) -> bool {
        self.entries == other.entries && self.parent == other.parent && self.meta == other.meta
    }
}

impl Eq for Dir {}

impl PartialOrd for Dir {
    fn partial_cmp(&self, other: &Dir) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dir {
    fn cmp(&self, other: &Dir) -> std::cmp::Ordering {
        (&self.entries, &self.parent, &self.meta).cmp(&(
            &other.entries,
            &other.parent,
            &other.meta,
        ))
    }
}

impl Hash for Dir {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.entries.hash(state);
        self.parent.hash(state);
        self.meta.hash(state);
    }
}

/// A non-directory file object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct File {
    /// Regular data or symlink target.
    pub content: FileContent,
    /// Ownership, permissions, timestamps.
    pub meta: Meta,
    /// The hard-link count (number of directory entries referring to this
    /// file). A value of zero means the file is disconnected but may still be
    /// readable through open file descriptions.
    pub nlink: u32,
    /// Cached structural hash (see [`HashCell`]); not part of the object's
    /// identity.
    cache: HashCell,
}

impl File {
    fn new(content: FileContent, meta: Meta, nlink: u32) -> File {
        File { content, meta, nlink, cache: HashCell::default() }
    }

    /// The object's structural hash, computed on first use and cached (the
    /// file analogue of [`Dir::content_hash`] — this is what keeps large
    /// regular-file contents out of the per-state fingerprint walk).
    fn content_hash(&self) -> u64 {
        if let Some(h) = self.cache.get() {
            return h;
        }
        let mut hasher = FxHasher64::default();
        self.content.hash(&mut hasher);
        self.meta.hash(&mut hasher);
        self.nlink.hash(&mut hasher);
        let h = hasher.finish().max(1);
        self.cache.set(h);
        h
    }
}

impl PartialEq for File {
    fn eq(&self, other: &File) -> bool {
        self.content == other.content && self.meta == other.meta && self.nlink == other.nlink
    }
}

impl Eq for File {}

impl PartialOrd for File {
    fn partial_cmp(&self, other: &File) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for File {
    fn cmp(&self, other: &File) -> std::cmp::Ordering {
        (&self.content, &self.meta, &self.nlink).cmp(&(
            &other.content,
            &other.meta,
            &other.nlink,
        ))
    }
}

impl Hash for File {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.content.hash(state);
        self.meta.hash(state);
        self.nlink.hash(state);
    }
}

/// The directory-heap file-system state.
///
/// Both object maps and every object within them are behind [`Arc`]s: cloning
/// a heap is two reference-count bumps, and mutation goes through
/// `Arc::make_mut` so a branch that modifies one directory copies only the
/// map spine and that directory — every other object (in particular full
/// regular-file contents) stays shared with the sibling branches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirHeap {
    dirs: Arc<BTreeMap<u64, Arc<Dir>>>,
    files: Arc<BTreeMap<u64, Arc<File>>>,
    root: DirRef,
    next_id: u64,
    /// The logical clock used for timestamps.
    now: u64,
}

impl Hash for DirHeap {
    /// Hashes each object's cached [`Dir::content_hash`]/[`File::content_hash`]
    /// rather than re-walking entry maps and file contents: after a COW step
    /// only the objects that were actually mutated recompute. Consistent with
    /// the derived `PartialEq` because equal objects have equal content
    /// hashes.
    fn hash<H: Hasher>(&self, state: &mut H) {
        for (id, dir) in self.dirs.iter() {
            state.write_u64(*id);
            state.write_u64(dir.content_hash());
        }
        for (id, file) in self.files.iter() {
            state.write_u64(*id);
            state.write_u64(file.content_hash());
        }
        self.root.hash(state);
        self.next_id.hash(state);
        self.now.hash(state);
    }
}

impl DirHeap {
    /// Create an empty file system whose root directory is owned by
    /// `uid:gid` with the given mode.
    pub fn new(root_mode: FileMode, uid: Uid, gid: Gid) -> DirHeap {
        let mut dirs = BTreeMap::new();
        let root = DirRef(0);
        dirs.insert(
            0,
            Arc::new(Dir::new(BTreeMap::new(), None, Meta::new(root_mode, uid, gid, 0))),
        );
        DirHeap {
            dirs: Arc::new(dirs),
            files: Arc::new(BTreeMap::new()),
            root,
            next_id: 1,
            now: 1,
        }
    }

    /// An empty file system with conventional root ownership (`root:root`,
    /// mode 0755), the initial state of every test script.
    pub fn empty() -> DirHeap {
        DirHeap::new(FileMode::new(0o755), Uid(0), Gid(0))
    }

    /// The root directory reference.
    pub fn root(&self) -> DirRef {
        self.root
    }

    /// Advance and return the logical clock.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Look up a directory object.
    pub fn dir(&self, d: DirRef) -> Option<&Dir> {
        self.dirs.get(&d.0).map(Arc::as_ref)
    }

    /// Look up a directory object mutably, unsharing the map spine and the
    /// object itself if they are shared with other states (copy-on-write).
    pub fn dir_mut(&mut self, d: DirRef) -> Option<&mut Dir> {
        Arc::make_mut(&mut self.dirs).get_mut(&d.0).map(|dir| {
            let dir = Arc::make_mut(dir);
            // `make_mut` only resets the hash cache when it actually clones;
            // a uniquely-owned object is handed out in place, so drop the
            // cache here before the caller mutates.
            dir.cache.invalidate();
            dir
        })
    }

    /// Look up a file object.
    pub fn file(&self, f: FileRef) -> Option<&File> {
        self.files.get(&f.0).map(Arc::as_ref)
    }

    /// Look up a file object mutably, unsharing the map spine and the object
    /// itself if they are shared with other states (copy-on-write).
    pub fn file_mut(&mut self, f: FileRef) -> Option<&mut File> {
        Arc::make_mut(&mut self.files).get_mut(&f.0).map(|file| {
            let file = Arc::make_mut(file);
            // See `dir_mut`: invalidate explicitly for the uniquely-owned,
            // no-clone `make_mut` path.
            file.cache.invalidate();
            file
        })
    }

    /// Look up a named entry in a directory. The hot-path callers pass a
    /// [`Name`] (a no-op conversion); string arguments (tests, boundaries)
    /// intern on the way in.
    pub fn lookup(&self, d: DirRef, name: impl Into<Name>) -> Option<Entry> {
        let name = name.into();
        self.dir(d).and_then(|dir| dir.entries.get(&name).copied())
    }

    /// The interned names of the entries in a directory.
    ///
    /// **Ordering guarantee**: lexicographic by name bytes — the model's
    /// deterministic dirent order, relied on by the simulated kernels'
    /// `readdir` profiles and by rendered listings. The entry map itself is
    /// keyed by symbol id (for integer-compare lookups), so this accessor
    /// sorts at the boundary; no per-name `String` is allocated — resolving
    /// symbols back to text is left to the render layer.
    pub fn entry_names(&self, d: DirRef) -> Vec<Name> {
        // Resolve each symbol once, then sort — one interner read per element
        // rather than per comparison.
        let mut pairs: Vec<(&'static str, Name)> = self
            .dir(d)
            .map(|dir| dir.entries.keys().map(|n| (n.as_str(), *n)).collect())
            .unwrap_or_default();
        pairs.sort_unstable_by_key(|(s, _)| *s);
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        pairs.into_iter().map(|(_, n)| n).collect()
    }

    /// Whether a directory has no entries.
    pub fn dir_is_empty(&self, d: DirRef) -> bool {
        self.dir(d).map(|dir| dir.entries.is_empty()).unwrap_or(true)
    }

    /// The parent of a directory (`None` for the root or disconnected dirs).
    pub fn parent_of(&self, d: DirRef) -> Option<DirRef> {
        self.dir(d).and_then(|dir| dir.parent)
    }

    /// Whether `ancestor` is `d` itself or a proper ancestor of `d`.
    ///
    /// Used by `rename` to reject renaming a directory into a subdirectory of
    /// itself (`EINVAL`).
    pub fn is_same_or_ancestor(&self, ancestor: DirRef, d: DirRef) -> bool {
        let mut cur = Some(d);
        let mut fuel = self.dirs.len() + 1;
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            if fuel == 0 {
                return false;
            }
            fuel -= 1;
            cur = self.parent_of(c);
        }
        false
    }

    /// The link count of a directory, as reported by `stat`.
    ///
    /// A connected directory has `2 + (number of subdirectories)` links
    /// (its entry in the parent, its own `.`, and each child's `..`); a
    /// disconnected directory has lost the entry in its parent.
    pub fn dir_nlink(&self, d: DirRef) -> u32 {
        let Some(dir) = self.dir(d) else { return 0 };
        let base: u32 = if dir.parent.is_some() || d == self.root { 2 } else { 1 };
        let subdirs = dir.entries.values().filter(|e| e.is_dir()).count() as u32;
        base + subdirs
    }

    /// Create a new empty directory as `name` within `parent`.
    ///
    /// Returns `None` if `parent` does not exist or `name` is already taken.
    pub fn create_dir(
        &mut self,
        parent: DirRef,
        name: impl Into<Name>,
        meta: Meta,
    ) -> Option<DirRef> {
        let name = name.into();
        if self.dir(parent)?.entries.contains_key(&name) {
            return None;
        }
        let id = self.fresh_id();
        Arc::make_mut(&mut self.dirs)
            .insert(id, Arc::new(Dir::new(BTreeMap::new(), Some(parent), meta)));
        let now = self.tick();
        let pdir = self.dir_mut(parent)?;
        pdir.entries.insert(name, Entry::Dir(DirRef(id)));
        pdir.meta.times.touch_mtime(now);
        Some(DirRef(id))
    }

    /// Create a new regular file as `name` within `parent`.
    pub fn create_file(
        &mut self,
        parent: DirRef,
        name: impl Into<Name>,
        meta: Meta,
    ) -> Option<FileRef> {
        self.create_file_with(parent, name.into(), meta, FileContent::Regular(Vec::new()))
    }

    /// Create a new symlink as `name` within `parent` pointing at `target`.
    pub fn create_symlink(
        &mut self,
        parent: DirRef,
        name: impl Into<Name>,
        target: impl Into<ParsedPath>,
        meta: Meta,
    ) -> Option<FileRef> {
        self.create_file_with(parent, name.into(), meta, FileContent::Symlink(target.into()))
    }

    fn create_file_with(
        &mut self,
        parent: DirRef,
        name: Name,
        meta: Meta,
        content: FileContent,
    ) -> Option<FileRef> {
        if self.dir(parent)?.entries.contains_key(&name) {
            return None;
        }
        let id = self.fresh_id();
        Arc::make_mut(&mut self.files).insert(id, Arc::new(File::new(content, meta, 1)));
        let now = self.tick();
        let pdir = self.dir_mut(parent)?;
        pdir.entries.insert(name, Entry::File(FileRef(id)));
        pdir.meta.times.touch_mtime(now);
        Some(FileRef(id))
    }

    /// Add a hard link: insert `name -> file` into `parent` and bump the link
    /// count. Returns `false` if the name is taken or anything is missing.
    pub fn add_link(&mut self, parent: DirRef, name: impl Into<Name>, file: FileRef) -> bool {
        let name = name.into();
        if self.file(file).is_none() {
            return false;
        }
        match self.dir(parent) {
            Some(d) if !d.entries.contains_key(&name) => {}
            _ => return false,
        }
        let now = self.tick();
        if let Some(d) = self.dir_mut(parent) {
            d.entries.insert(name, Entry::File(file));
            d.meta.times.touch_mtime(now);
        }
        if let Some(f) = self.file_mut(file) {
            f.nlink += 1;
            f.meta.times.touch_ctime(now);
        }
        true
    }

    /// Insert an existing directory as `name` within `parent` (used by
    /// `rename`). The directory's parent pointer is updated.
    pub fn attach_dir(&mut self, parent: DirRef, name: impl Into<Name>, d: DirRef) -> bool {
        let name = name.into();
        match self.dir(parent) {
            Some(p) if !p.entries.contains_key(&name) => {}
            _ => return false,
        }
        if self.dir(d).is_none() {
            return false;
        }
        let now = self.tick();
        if let Some(p) = self.dir_mut(parent) {
            p.entries.insert(name, Entry::Dir(d));
            p.meta.times.touch_mtime(now);
        }
        if let Some(dd) = self.dir_mut(d) {
            dd.parent = Some(parent);
        }
        true
    }

    /// Remove the entry `name` from `parent`.
    ///
    /// For file entries the link count is decremented (the file object itself
    /// is retained even at zero links so that open file descriptions keep
    /// working). For directory entries the directory becomes disconnected
    /// (its parent pointer is cleared) but is likewise retained.
    pub fn remove_entry(&mut self, parent: DirRef, name: impl Into<Name>) -> Option<Entry> {
        let name = name.into();
        let entry = self.dir(parent)?.entries.get(&name).copied()?;
        let now = self.tick();
        if let Some(p) = self.dir_mut(parent) {
            p.entries.remove(&name);
            p.meta.times.touch_mtime(now);
        }
        match entry {
            Entry::File(f) => {
                if let Some(file) = self.file_mut(f) {
                    file.nlink = file.nlink.saturating_sub(1);
                    file.meta.times.touch_ctime(now);
                }
            }
            Entry::Dir(d) => {
                if let Some(dir) = self.dir_mut(d) {
                    dir.parent = None;
                }
            }
        }
        Some(entry)
    }

    /// The size of a regular file (or symlink target length) in bytes.
    pub fn file_size(&self, f: FileRef) -> u64 {
        self.file(f).map(|file| file.content.size()).unwrap_or(0)
    }

    /// The kind (regular/symlink) of a file object.
    pub fn file_kind(&self, f: FileRef) -> Option<FileKind> {
        self.file(f).map(|file| file.content.kind())
    }

    /// The target text of a symlink, if `f` is one (render boundary only).
    pub fn symlink_target(&self, f: FileRef) -> Option<&'static str> {
        self.symlink_target_parsed(f).map(|t| t.as_str())
    }

    /// The pre-parsed target of a symlink, if `f` is one: what the resolver
    /// splices, with no re-parse and no allocation.
    pub fn symlink_target_parsed(&self, f: FileRef) -> Option<&ParsedPath> {
        match self.file(f).map(|file| &file.content) {
            Some(FileContent::Symlink(t)) => Some(t),
            _ => None,
        }
    }

    /// Read up to `count` bytes from a regular file at `offset`.
    ///
    /// Returns the bytes actually available (possibly empty at or past EOF).
    pub fn read_bytes(&self, f: FileRef, offset: u64, count: usize) -> Vec<u8> {
        match self.file(f).map(|file| &file.content) {
            Some(FileContent::Regular(data)) => {
                let start = (offset as usize).min(data.len());
                let end = start.saturating_add(count).min(data.len());
                data[start..end].to_vec()
            }
            _ => Vec::new(),
        }
    }

    /// Write `data` into a regular file at `offset`, zero-filling any gap.
    ///
    /// Returns the number of bytes written (0 if `f` is not a regular file).
    pub fn write_bytes(&mut self, f: FileRef, offset: u64, data: &[u8]) -> usize {
        if data.is_empty() {
            // A zero-byte write has no effect — no gap-filling up to the
            // offset (POSIX: "returns 0 and has no other result"), which
            // also keeps an extreme offset from forcing a huge allocation.
            return 0;
        }
        let now = self.tick();
        match self.file_mut(f) {
            Some(file) => match &mut file.content {
                FileContent::Regular(existing) => {
                    let off = offset as usize;
                    if existing.len() < off {
                        existing.resize(off, 0);
                    }
                    let end = off + data.len();
                    if existing.len() < end {
                        existing.resize(end, 0);
                    }
                    existing[off..end].copy_from_slice(data);
                    file.meta.times.touch_mtime(now);
                    data.len()
                }
                FileContent::Symlink(_) => 0,
            },
            None => 0,
        }
    }

    /// Truncate (or extend with zeros) a regular file to `len` bytes.
    pub fn truncate(&mut self, f: FileRef, len: u64) -> bool {
        let now = self.tick();
        match self.file_mut(f) {
            Some(file) => match &mut file.content {
                FileContent::Regular(data) => {
                    data.resize(len as usize, 0);
                    file.meta.times.touch_mtime(now);
                    true
                }
                FileContent::Symlink(_) => false,
            },
            None => false,
        }
    }

    /// Number of directory objects currently allocated (reachable or not).
    pub fn dir_count(&self) -> usize {
        self.dirs.len()
    }

    /// Number of file objects currently allocated (reachable or not).
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Whether a directory is reachable from the root by following entries.
    pub fn is_connected(&self, d: DirRef) -> bool {
        self.is_same_or_ancestor(self.root, d)
            && (d == self.root || self.parent_of(d).is_some())
    }
}

impl Default for DirHeap {
    fn default() -> Self {
        DirHeap::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> Meta {
        Meta::new(FileMode::new(0o755), Uid(0), Gid(0), 1)
    }

    #[test]
    fn empty_heap_has_root_only() {
        let h = DirHeap::empty();
        assert!(h.dir_is_empty(h.root()));
        assert_eq!(h.dir_count(), 1);
        assert_eq!(h.file_count(), 0);
        assert_eq!(h.dir_nlink(h.root()), 2);
    }

    #[test]
    fn create_and_lookup() {
        let mut h = DirHeap::empty();
        let root = h.root();
        let d = h.create_dir(root, "d", meta()).unwrap();
        let f = h.create_file(d, "f", meta()).unwrap();
        assert_eq!(h.lookup(root, "d"), Some(Entry::Dir(d)));
        assert_eq!(h.lookup(d, "f"), Some(Entry::File(f)));
        assert_eq!(h.lookup(root, "missing"), None);
        assert_eq!(h.dir_nlink(root), 3);
        assert_eq!(h.dir_nlink(d), 2);
        assert_eq!(h.file(f).unwrap().nlink, 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut h = DirHeap::empty();
        let root = h.root();
        assert!(h.create_dir(root, "x", meta()).is_some());
        assert!(h.create_dir(root, "x", meta()).is_none());
        assert!(h.create_file(root, "x", meta()).is_none());
    }

    #[test]
    fn hard_links_bump_and_drop_nlink() {
        let mut h = DirHeap::empty();
        let root = h.root();
        let f = h.create_file(root, "a", meta()).unwrap();
        assert!(h.add_link(root, "b", f));
        assert_eq!(h.file(f).unwrap().nlink, 2);
        h.remove_entry(root, "a");
        assert_eq!(h.file(f).unwrap().nlink, 1);
        h.remove_entry(root, "b");
        assert_eq!(h.file(f).unwrap().nlink, 0);
        // The file object is retained while disconnected.
        assert_eq!(h.file_count(), 1);
    }

    #[test]
    fn removing_directory_disconnects_it() {
        let mut h = DirHeap::empty();
        let root = h.root();
        let d = h.create_dir(root, "d", meta()).unwrap();
        assert!(h.is_connected(d));
        h.remove_entry(root, "d");
        assert!(!h.is_connected(d));
        assert!(h.dir(d).is_some());
        assert_eq!(h.dir_nlink(d), 1);
    }

    #[test]
    fn read_write_truncate_round_trip() {
        let mut h = DirHeap::empty();
        let root = h.root();
        let f = h.create_file(root, "f", meta()).unwrap();
        assert_eq!(h.write_bytes(f, 0, b"hello world"), 11);
        assert_eq!(h.read_bytes(f, 0, 5), b"hello");
        assert_eq!(h.read_bytes(f, 6, 100), b"world");
        assert_eq!(h.read_bytes(f, 100, 5), b"");
        // Sparse write zero-fills the gap.
        assert_eq!(h.write_bytes(f, 14, b"!"), 1);
        assert_eq!(h.file_size(f), 15);
        assert_eq!(h.read_bytes(f, 11, 3), &[0, 0, 0]);
        assert!(h.truncate(f, 5));
        assert_eq!(h.file_size(f), 5);
        assert!(h.truncate(f, 8));
        assert_eq!(h.read_bytes(f, 5, 3), &[0, 0, 0]);
    }

    #[test]
    fn symlink_target_and_size() {
        let mut h = DirHeap::empty();
        let root = h.root();
        let s = h.create_symlink(root, "s", "/some/where", meta()).unwrap();
        assert_eq!(h.symlink_target(s), Some("/some/where"));
        assert_eq!(h.file_size(s), 11);
        assert_eq!(h.file_kind(s), Some(FileKind::Symlink));
        // Writing to a symlink through the data API is a no-op.
        assert_eq!(h.write_bytes(s, 0, b"x"), 0);
    }

    #[test]
    fn ancestor_detection() {
        let mut h = DirHeap::empty();
        let root = h.root();
        let a = h.create_dir(root, "a", meta()).unwrap();
        let b = h.create_dir(a, "b", meta()).unwrap();
        assert!(h.is_same_or_ancestor(root, b));
        assert!(h.is_same_or_ancestor(a, b));
        assert!(h.is_same_or_ancestor(b, b));
        assert!(!h.is_same_or_ancestor(b, a));
    }

    #[test]
    fn cached_object_hashes_track_mutation() {
        fn heap_hash(h: &DirHeap) -> u64 {
            let mut s = FxHasher64::default();
            h.hash(&mut s);
            s.finish()
        }
        let mut h = DirHeap::empty();
        let root = h.root();
        let d = h.create_dir(root, "d", meta()).unwrap();
        // Populate every cache, then check a structurally equal heap (fresh
        // caches) hashes identically.
        let before = heap_hash(&h);
        let twin = h.clone();
        assert_eq!(h, twin);
        assert_eq!(before, heap_hash(&twin));
        // Mutate through `dir_mut` while `h` holds the only reference to the
        // object — the in-place `make_mut` path, where only the explicit
        // invalidation stops the stale cached hash from being reused.
        drop(twin);
        h.dir_mut(d).unwrap().meta.mode = FileMode::new(0o700);
        let after = heap_hash(&h);
        assert_ne!(before, after, "mutation must change the heap hash");
        assert_eq!(after, heap_hash(&h.clone()), "recomputed hash must be structural");
        // Same in-place path for files, through `file_mut`.
        let f = h.create_file(d, "f", meta()).unwrap();
        let with_file = heap_hash(&h);
        h.file_mut(f).unwrap().nlink += 1;
        assert_ne!(with_file, heap_hash(&h));
        assert_eq!(heap_hash(&h), heap_hash(&h.clone()));
    }

    #[test]
    fn attach_dir_for_rename() {
        let mut h = DirHeap::empty();
        let root = h.root();
        let a = h.create_dir(root, "a", meta()).unwrap();
        let b = h.create_dir(root, "b", meta()).unwrap();
        h.remove_entry(root, "a");
        assert!(h.attach_dir(b, "a2", a));
        assert_eq!(h.lookup(b, "a2"), Some(Entry::Dir(a)));
        assert_eq!(h.parent_of(a), Some(b));
        assert!(h.is_connected(a));
    }
}
