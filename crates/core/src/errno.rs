//! POSIX error numbers used by the SibylFS model.
//!
//! The model never deals in raw integer `errno` values: every error case is a
//! member of [`Errno`]. Only the errors that can arise from the file-system
//! related calls within the model's scope (§1.1 of the paper) are included.
//! Errors that "could happen at any time" (`EIO`, `ENOMEM`, `EINTR`, …) are
//! deliberately excluded, mirroring the paper's §1.2.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A POSIX error code within the scope of the SibylFS model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Errno {
    /// Permission denied.
    EACCES,
    /// Resource temporarily unavailable.
    EAGAIN,
    /// Bad file descriptor.
    EBADF,
    /// Device or resource busy (e.g. attempting to remove the root directory).
    EBUSY,
    /// File exists.
    EEXIST,
    /// File too large.
    EFBIG,
    /// Invalid argument.
    EINVAL,
    /// Is a directory.
    EISDIR,
    /// Too many levels of symbolic links.
    ELOOP,
    /// Too many open files in the process.
    EMFILE,
    /// Too many links.
    EMLINK,
    /// Filename too long.
    ENAMETOOLONG,
    /// Too many open files in the system.
    ENFILE,
    /// No such file or directory.
    ENOENT,
    /// No space left on device.
    ENOSPC,
    /// Not a directory.
    ENOTDIR,
    /// Directory not empty.
    ENOTEMPTY,
    /// Function not supported (returned e.g. by old Linux HFS+ for `chmod`).
    EOPNOTSUPP,
    /// Value too large to be stored in data type.
    EOVERFLOW,
    /// Operation not permitted.
    EPERM,
    /// Read-only file system.
    EROFS,
    /// Illegal seek.
    ESPIPE,
    /// Text file busy.
    ETXTBSY,
    /// Cross-device link.
    EXDEV,
    /// No such device or address.
    ENXIO,
}

impl Errno {
    /// All error codes known to the model, in a fixed order.
    pub const ALL: &'static [Errno] = &[
        Errno::EACCES,
        Errno::EAGAIN,
        Errno::EBADF,
        Errno::EBUSY,
        Errno::EEXIST,
        Errno::EFBIG,
        Errno::EINVAL,
        Errno::EISDIR,
        Errno::ELOOP,
        Errno::EMFILE,
        Errno::EMLINK,
        Errno::ENAMETOOLONG,
        Errno::ENFILE,
        Errno::ENOENT,
        Errno::ENOSPC,
        Errno::ENOTDIR,
        Errno::ENOTEMPTY,
        Errno::EOPNOTSUPP,
        Errno::EOVERFLOW,
        Errno::EPERM,
        Errno::EROFS,
        Errno::ESPIPE,
        Errno::ETXTBSY,
        Errno::EXDEV,
        Errno::ENXIO,
    ];

    /// The canonical upper-case name of the error, e.g. `"ENOENT"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EACCES => "EACCES",
            Errno::EAGAIN => "EAGAIN",
            Errno::EBADF => "EBADF",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::EFBIG => "EFBIG",
            Errno::EINVAL => "EINVAL",
            Errno::EISDIR => "EISDIR",
            Errno::ELOOP => "ELOOP",
            Errno::EMFILE => "EMFILE",
            Errno::EMLINK => "EMLINK",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENFILE => "ENFILE",
            Errno::ENOENT => "ENOENT",
            Errno::ENOSPC => "ENOSPC",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
            Errno::EOVERFLOW => "EOVERFLOW",
            Errno::EPERM => "EPERM",
            Errno::EROFS => "EROFS",
            Errno::ESPIPE => "ESPIPE",
            Errno::ETXTBSY => "ETXTBSY",
            Errno::EXDEV => "EXDEV",
            Errno::ENXIO => "ENXIO",
        }
    }

    /// A short human-readable description of the error.
    pub fn description(self) -> &'static str {
        match self {
            Errno::EACCES => "permission denied",
            Errno::EAGAIN => "resource temporarily unavailable",
            Errno::EBADF => "bad file descriptor",
            Errno::EBUSY => "device or resource busy",
            Errno::EEXIST => "file exists",
            Errno::EFBIG => "file too large",
            Errno::EINVAL => "invalid argument",
            Errno::EISDIR => "is a directory",
            Errno::ELOOP => "too many levels of symbolic links",
            Errno::EMFILE => "too many open files",
            Errno::EMLINK => "too many links",
            Errno::ENAMETOOLONG => "filename too long",
            Errno::ENFILE => "too many open files in system",
            Errno::ENOENT => "no such file or directory",
            Errno::ENOSPC => "no space left on device",
            Errno::ENOTDIR => "not a directory",
            Errno::ENOTEMPTY => "directory not empty",
            Errno::EOPNOTSUPP => "operation not supported",
            Errno::EOVERFLOW => "value too large for data type",
            Errno::EPERM => "operation not permitted",
            Errno::EROFS => "read-only file system",
            Errno::ESPIPE => "illegal seek",
            Errno::ETXTBSY => "text file busy",
            Errno::EXDEV => "cross-device link",
            Errno::ENXIO => "no such device or address",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown errno name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseErrnoError(pub String);

impl fmt::Display for ParseErrnoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown errno name: {}", self.0)
    }
}

impl std::error::Error for ParseErrnoError {}

impl FromStr for Errno {
    type Err = ParseErrnoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Errno::ALL
            .iter()
            .copied()
            .find(|e| e.name() == s)
            .ok_or_else(|| ParseErrnoError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trips_through_from_str() {
        for e in Errno::ALL {
            let parsed: Errno = e.name().parse().unwrap();
            assert_eq!(parsed, *e);
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        assert!("EWHATEVER".parse::<Errno>().is_err());
        assert!("".parse::<Errno>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Errno::ENOENT.to_string(), "ENOENT");
        assert_eq!(Errno::ENOTEMPTY.to_string(), "ENOTEMPTY");
    }

    #[test]
    fn descriptions_are_nonempty_and_distinct_enough() {
        for e in Errno::ALL {
            assert!(!e.description().is_empty());
        }
    }

    #[test]
    fn all_list_has_no_duplicates() {
        let mut names: Vec<_> = Errno::ALL.iter().map(|e| e.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
