//! # SibylFS core model
//!
//! An executable specification of POSIX and real-world file-system behaviour,
//! reproducing the model of *SibylFS: formal specification and oracle-based
//! testing for POSIX and real-world file systems* (SOSP 2015).
//!
//! The model is a labelled transition system:
//!
//! * **states** are abstract operating-system states ([`os::OsState`]):
//!   a directory heap ([`state::DirHeap`]), OS-level open file descriptions,
//!   a group table, and per-process state (cwd, descriptor tables, directory
//!   handles, umask, credentials, run state);
//! * **labels** ([`commands::OsLabel`]) are libc calls, returns, process
//!   creation/destruction, and the internal τ step;
//! * the transition function [`os::trans::os_trans`] maps a state and a label
//!   to the finite set of allowed next states.
//!
//! The model is *loose* — it admits every behaviour the specification allows
//! (multiple error codes, short reads and writes, any `readdir` order,
//! concurrency) — yet checking a trace against it never requires search:
//! nondeterminism is resolved step by step as observed values arrive (§3 of
//! the paper).
//!
//! The model is parameterised by a [`flavor::SpecConfig`]: a platform flavour
//! (POSIX envelope, Linux, OS X, FreeBSD) plus the permissions and timestamps
//! traits.
//!
//! ## Quick example
//!
//! ```
//! use sibylfs_core::prelude::*;
//!
//! let cfg = SpecConfig::standard(Flavor::Linux);
//! let st = OsState::initial_with_process(&cfg, INITIAL_PID);
//!
//! // The process calls mkdir("/d", 0o777) …
//! let cmd = OsCommand::Mkdir("/d".into(), FileMode::new(0o777));
//! let after_call = os_trans(&cfg, &st, &OsLabel::Call(INITIAL_PID, cmd));
//! assert_eq!(after_call.len(), 1);
//!
//! // … and the real system reports success: allowed by the model.
//! let ret = OsLabel::Return(INITIAL_PID, ErrorOrValue::Value(RetValue::None));
//! let after_ret = os_trans(&cfg, &after_call[0], &ret);
//! assert_eq!(after_ret.len(), 1);
//! ```

// Panicking escape hatches are banned from the shipped library: a model or
// checker that aborts on unexpected input is useless as an oracle. Tests may
// still unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod commands;
pub mod coverage;
pub mod errno;
pub mod flags;
pub mod flavor;
pub mod footprint;
pub mod fs_ops;
pub mod fxhash;
pub mod intern;
pub mod monad;
pub mod obs;
pub mod os;
pub mod path;
pub mod perms;
pub mod spec_registry;
pub mod state;
pub mod types;

/// A convenient prelude re-exporting the types most users need.
pub mod prelude {
    pub use crate::commands::{ErrorOrValue, OsCommand, OsLabel, RetValue, Stat};
    pub use crate::errno::Errno;
    pub use crate::flags::{AccessMode, FileMode, OpenFlags, SeekWhence};
    pub use crate::flavor::{Flavor, PorMode, SpecConfig};
    pub use crate::footprint::{footprint_of, Footprint};
    pub use crate::fs_ops::{dispatch, CmdOutcome};
    pub use crate::intern::Name;
    pub use crate::os::state_set::StateSet;
    pub use crate::path::ParsedPath;
    pub use crate::os::trans::{os_trans, os_trans_into, tau_close, tau_closure};
    pub use crate::os::{OsState, Pending, ProcRunState};
    pub use crate::perms::{Access, Creds};
    pub use crate::state::{DirHeap, DirRef, Entry, FileRef};
    pub use crate::types::{DirHandleId, Fd, FileKind, Gid, Pid, Uid, INITIAL_PID};
}

#[cfg(test)]
mod lib_tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_usable_api() {
        let cfg = SpecConfig::standard(Flavor::Posix);
        let st = OsState::initial_with_process(&cfg, INITIAL_PID);
        let out = dispatch(&cfg, &st, INITIAL_PID, &OsCommand::Stat("/".into()));
        assert!(!out.is_empty());
    }
}
