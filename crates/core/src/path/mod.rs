//! The path-resolution module (Fig. 5).
//!
//! Path resolution is kept strictly separate from the per-command semantics:
//! a command such as `rename p1 p2` first resolves its paths to
//! [`ResName`] values, and the file-system module then works entirely over
//! resolved names. All the "tricky details" — trailing slashes, symlink
//! following, `ELOOP`, permission checks during traversal — are confined to
//! this module (§4 "Modules", §5 "Path resolution module").

use serde::{Deserialize, Serialize};

use crate::coverage::spec_point;
use crate::errno::Errno;
use crate::perms::{access_allowed, Access, Creds};
use crate::state::{DirHeap, DirRef, Entry, FileRef};
use crate::types::{NAME_MAX, PATH_MAX, SYMLOOP_MAX};

/// A parsed (but not yet resolved) path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedPath {
    /// The original string.
    pub raw: String,
    /// Whether the path begins with a slash.
    pub absolute: bool,
    /// Number of leading slashes (POSIX gives `//` implementation-defined
    /// meaning; the test generator uses this property for partitioning).
    pub leading_slashes: usize,
    /// Path components, with empty components removed but `.` and `..` kept.
    pub components: Vec<String>,
    /// Whether the path ends with a slash.
    pub trailing_slash: bool,
}

impl ParsedPath {
    /// Parse a raw path string into components.
    pub fn parse(raw: &str) -> ParsedPath {
        let leading_slashes = raw.chars().take_while(|c| *c == '/').count();
        let absolute = leading_slashes > 0;
        let trailing_slash = raw.len() > leading_slashes && raw.ends_with('/');
        let components: Vec<String> =
            raw.split('/').filter(|c| !c.is_empty()).map(|c| c.to_string()).collect();
        ParsedPath { raw: raw.to_string(), absolute, leading_slashes, components, trailing_slash }
    }

    /// Whether the path is the empty string.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Whether the final component is `.` or `..`.
    pub fn ends_in_dot(&self) -> bool {
        matches!(self.components.last().map(|s| s.as_str()), Some(".") | Some(".."))
    }
}

/// The result of path resolution (the `res_name` type of the Lem model).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResName {
    /// The path resolved to a directory.
    Dir {
        /// The directory.
        dref: DirRef,
        /// The directory's parent and the name under which it was found, when
        /// the path did not end in `.`, `..` or the root. Needed by commands
        /// such as `rmdir` and `rename` that must modify the parent.
        parent: Option<(DirRef, String)>,
        /// Whether the path carried a trailing slash.
        trailing_slash: bool,
    },
    /// The path resolved to a non-directory file (regular file or, when the
    /// final symlink was not followed, a symlink).
    File {
        /// The directory containing the entry.
        parent: DirRef,
        /// The entry name within the parent.
        name: String,
        /// The file object.
        fref: FileRef,
        /// Whether the final component is a symlink that was *not* followed.
        is_symlink: bool,
        /// Whether the path carried a trailing slash (which POSIX intends to
        /// be an error for non-directories, but which real systems treat
        /// inconsistently, §7.3.2).
        trailing_slash: bool,
    },
    /// The path resolved to a non-existent entry in an existing directory
    /// (e.g. the target of `mkdir` or `open(O_CREAT)`).
    None {
        /// The directory that would contain the entry.
        parent: DirRef,
        /// The name of the missing entry.
        name: String,
        /// Whether the path carried a trailing slash.
        trailing_slash: bool,
    },
    /// Resolution failed.
    Err(Errno),
}

impl ResName {
    /// The errno if resolution failed.
    pub fn errno(&self) -> Option<Errno> {
        match self {
            ResName::Err(e) => Some(*e),
            _ => None,
        }
    }

    /// Whether the path resolved to an existing directory.
    pub fn is_dir(&self) -> bool {
        matches!(self, ResName::Dir { .. })
    }

    /// Whether the path resolved to an existing non-directory file.
    pub fn is_file(&self) -> bool {
        matches!(self, ResName::File { .. })
    }

    /// Whether the path resolved to a missing entry.
    pub fn is_none(&self) -> bool {
        matches!(self, ResName::None { .. })
    }
}

/// Whether the final symlink in a path should be followed, which varies by
/// libc function (§5 "Path resolution module").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowLast {
    /// Follow a symlink in the final component (`stat`, `open` without
    /// `O_NOFOLLOW`, `chdir`, `truncate`, `chmod`, `chown`, `opendir`, …).
    Follow,
    /// Do not follow (`lstat`, `unlink`, `rename`, `readlink`, `symlink`,
    /// `mkdir`, `rmdir`, `link` on Linux, `open` with `O_NOFOLLOW`).
    NoFollow,
}

/// The context needed to resolve a path.
#[derive(Debug, Clone, Copy)]
pub struct ResolveCtx<'a> {
    /// The file-system state.
    pub heap: &'a DirHeap,
    /// The current working directory of the calling process.
    pub cwd: DirRef,
    /// The caller's credentials, or `None` when the permissions trait is off.
    pub creds: Option<&'a Creds>,
}

impl<'a> ResolveCtx<'a> {
    /// Construct a resolution context.
    pub fn new(heap: &'a DirHeap, cwd: DirRef, creds: Option<&'a Creds>) -> ResolveCtx<'a> {
        ResolveCtx { heap, cwd, creds }
    }

    fn search_allowed(&self, d: DirRef) -> bool {
        match self.heap.dir(d) {
            Some(dir) => access_allowed(self.creds, &dir.meta, Access::Exec),
            None => false,
        }
    }
}

/// Resolve `raw` relative to the context, following the final symlink
/// according to `follow_last`.
pub fn resolve(ctx: &ResolveCtx<'_>, raw: &str, follow_last: FollowLast) -> ResName {
    let parsed = ParsedPath::parse(raw);
    if parsed.is_empty() {
        spec_point("path/empty_path_enoent");
        return ResName::Err(Errno::ENOENT);
    }
    if parsed.raw.len() > PATH_MAX {
        spec_point("path/path_too_long");
        return ResName::Err(Errno::ENAMETOOLONG);
    }
    let start = if parsed.absolute { ctx.heap.root() } else { ctx.cwd };
    resolve_from(ctx, start, &parsed.components, parsed.trailing_slash, follow_last, 0)
}

/// Resolve a component list starting from `start`.
///
/// `depth` counts the number of symlinks expanded so far; exceeding
/// [`SYMLOOP_MAX`] yields `ELOOP`.
fn resolve_from(
    ctx: &ResolveCtx<'_>,
    start: DirRef,
    components: &[String],
    trailing_slash: bool,
    follow_last: FollowLast,
    depth: usize,
) -> ResName {
    if depth > SYMLOOP_MAX {
        spec_point("path/eloop");
        return ResName::Err(Errno::ELOOP);
    }
    let mut cur = start;
    let mut came_via: Option<(DirRef, String)> = None;

    let mut idx = 0usize;
    while idx < components.len() {
        let comp = &components[idx];
        let is_last = idx + 1 == components.len();

        if comp.len() > NAME_MAX {
            spec_point("path/name_too_long");
            return ResName::Err(Errno::ENAMETOOLONG);
        }
        // Search permission is required on every directory traversed.
        if !ctx.search_allowed(cur) {
            spec_point("path/search_permission_denied");
            return ResName::Err(Errno::EACCES);
        }
        if comp == "." {
            spec_point("path/dot_component");
            came_via = None;
            idx += 1;
            continue;
        }
        if comp == ".." {
            spec_point("path/dotdot_component");
            // `..` of the root is the root; `..` of a disconnected directory
            // has no parent and resolution fails with ENOENT.
            if cur == ctx.heap.root() {
                // Stay at the root.
            } else {
                match ctx.heap.parent_of(cur) {
                    Some(p) => cur = p,
                    None => {
                        spec_point("path/dotdot_of_disconnected_dir");
                        return ResName::Err(Errno::ENOENT);
                    }
                }
            }
            came_via = None;
            idx += 1;
            continue;
        }

        match ctx.heap.lookup(cur, comp) {
            None => {
                if is_last {
                    spec_point("path/last_component_missing");
                    return ResName::None {
                        parent: cur,
                        name: comp.clone(),
                        trailing_slash,
                    };
                }
                spec_point("path/intermediate_component_missing");
                return ResName::Err(Errno::ENOENT);
            }
            Some(Entry::Dir(d)) => {
                came_via = Some((cur, comp.clone()));
                cur = d;
                idx += 1;
                if is_last {
                    spec_point("path/resolved_to_dir");
                    return ResName::Dir { dref: d, parent: came_via, trailing_slash };
                }
            }
            Some(Entry::File(f)) => {
                let is_symlink = ctx.heap.symlink_target(f).is_some();
                if is_symlink {
                    let follow = !is_last
                        || matches!(follow_last, FollowLast::Follow)
                        || trailing_slash;
                    if follow {
                        spec_point("path/symlink_followed");
                        let target = ctx.heap.symlink_target(f).unwrap_or("").to_string();
                        if target.is_empty() {
                            spec_point("path/empty_symlink_target");
                            return ResName::Err(Errno::ENOENT);
                        }
                        let tparsed = ParsedPath::parse(&target);
                        let tstart = if tparsed.absolute { ctx.heap.root() } else { cur };
                        // Splice: resolve the target, then continue with the
                        // remaining components of the original path.
                        let rest = &components[idx + 1..];
                        let mut spliced: Vec<String> = tparsed.components.clone();
                        spliced.extend(rest.iter().cloned());
                        let new_trailing = if rest.is_empty() {
                            trailing_slash || tparsed.trailing_slash
                        } else {
                            trailing_slash
                        };
                        return resolve_from(
                            ctx,
                            tstart,
                            &spliced,
                            new_trailing,
                            follow_last,
                            depth + 1,
                        );
                    }
                    // Unfollowed final symlink.
                    spec_point("path/final_symlink_not_followed");
                    return ResName::File {
                        parent: cur,
                        name: comp.clone(),
                        fref: f,
                        is_symlink: true,
                        trailing_slash,
                    };
                }
                // Regular file.
                if !is_last {
                    spec_point("path/intermediate_component_not_a_dir");
                    return ResName::Err(Errno::ENOTDIR);
                }
                spec_point("path/resolved_to_file");
                return ResName::File {
                    parent: cur,
                    name: comp.clone(),
                    fref: f,
                    is_symlink: false,
                    trailing_slash,
                };
            }
        }
    }

    // No components (the path was "/", ".", "..", or collapsed to nothing).
    spec_point("path/resolved_to_start_dir");
    ResName::Dir { dref: cur, parent: came_via, trailing_slash }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::FileMode;
    use crate::state::Meta;
    use crate::types::{Gid, Uid};

    fn meta() -> Meta {
        Meta::new(FileMode::new(0o755), Uid(0), Gid(0), 1)
    }

    /// Build the standard fixture:
    /// `/d1` (dir), `/d1/f1` (file), `/s_d1 -> d1`, `/s_f1 -> d1/f1`,
    /// `/broken -> nowhere`, `/loop -> loop`.
    fn fixture() -> (DirHeap, DirRef) {
        let mut h = DirHeap::empty();
        let root = h.root();
        let d1 = h.create_dir(root, "d1", meta()).unwrap();
        h.create_file(d1, "f1", meta()).unwrap();
        h.create_symlink(root, "s_d1", "d1", meta()).unwrap();
        h.create_symlink(root, "s_f1", "d1/f1", meta()).unwrap();
        h.create_symlink(root, "broken", "nowhere", meta()).unwrap();
        h.create_symlink(root, "loop", "loop", meta()).unwrap();
        (h, root)
    }

    fn ctx<'a>(h: &'a DirHeap, cwd: DirRef) -> ResolveCtx<'a> {
        ResolveCtx::new(h, cwd, None)
    }

    #[test]
    fn parse_basic_paths() {
        let p = ParsedPath::parse("/a/b/c");
        assert!(p.absolute);
        assert_eq!(p.components, vec!["a", "b", "c"]);
        assert!(!p.trailing_slash);

        let p = ParsedPath::parse("a/b/");
        assert!(!p.absolute);
        assert!(p.trailing_slash);

        let p = ParsedPath::parse("///x");
        assert_eq!(p.leading_slashes, 3);
        assert_eq!(p.components, vec!["x"]);

        let p = ParsedPath::parse("/");
        assert!(p.absolute);
        assert!(p.components.is_empty());
        assert!(!p.trailing_slash, "a bare slash is not counted as trailing");

        assert!(ParsedPath::parse("").is_empty());
        assert!(ParsedPath::parse("a/..").ends_in_dot());
    }

    #[test]
    fn empty_path_is_enoent() {
        let (h, root) = fixture();
        assert_eq!(resolve(&ctx(&h, root), "", FollowLast::Follow), ResName::Err(Errno::ENOENT));
    }

    #[test]
    fn resolve_root_and_dot() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        assert!(matches!(resolve(&c, "/", FollowLast::Follow), ResName::Dir { dref, .. } if dref == root));
        assert!(matches!(resolve(&c, ".", FollowLast::Follow), ResName::Dir { dref, .. } if dref == root));
        assert!(matches!(resolve(&c, "..", FollowLast::Follow), ResName::Dir { dref, .. } if dref == root));
    }

    #[test]
    fn resolve_file_and_missing() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        assert!(matches!(
            resolve(&c, "/d1/f1", FollowLast::Follow),
            ResName::File { is_symlink: false, .. }
        ));
        assert!(matches!(
            resolve(&c, "/d1/nope", FollowLast::Follow),
            ResName::None { name, .. } if name == "nope"
        ));
        assert_eq!(
            resolve(&c, "/nope/nope2", FollowLast::Follow),
            ResName::Err(Errno::ENOENT)
        );
        assert_eq!(
            resolve(&c, "/d1/f1/x", FollowLast::Follow),
            ResName::Err(Errno::ENOTDIR)
        );
    }

    #[test]
    fn relative_resolution_uses_cwd() {
        let (h, root) = fixture();
        let d1 = match h.lookup(root, "d1") {
            Some(Entry::Dir(d)) => d,
            _ => panic!(),
        };
        let c = ctx(&h, d1);
        assert!(matches!(resolve(&c, "f1", FollowLast::Follow), ResName::File { .. }));
        assert!(matches!(resolve(&c, "../d1/f1", FollowLast::Follow), ResName::File { .. }));
    }

    #[test]
    fn symlink_following_modes() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        // Followed: resolves to the directory / file target.
        assert!(resolve(&c, "/s_d1", FollowLast::Follow).is_dir());
        assert!(matches!(
            resolve(&c, "/s_f1", FollowLast::Follow),
            ResName::File { is_symlink: false, .. }
        ));
        // Not followed: resolves to the symlink object itself.
        assert!(matches!(
            resolve(&c, "/s_d1", FollowLast::NoFollow),
            ResName::File { is_symlink: true, .. }
        ));
        // Intermediate symlinks are always followed.
        assert!(matches!(
            resolve(&c, "/s_d1/f1", FollowLast::NoFollow),
            ResName::File { is_symlink: false, .. }
        ));
    }

    #[test]
    fn trailing_slash_forces_following() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        // A trailing slash on a symlink to a directory forces resolution to
        // the directory even under NoFollow.
        assert!(resolve(&c, "/s_d1/", FollowLast::NoFollow).is_dir());
        // Trailing slash on a regular file is reported with the flag set.
        assert!(matches!(
            resolve(&c, "/d1/f1/", FollowLast::Follow),
            ResName::File { trailing_slash: true, .. }
        ));
    }

    #[test]
    fn broken_and_looping_symlinks() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        assert!(matches!(
            resolve(&c, "/broken", FollowLast::Follow),
            ResName::None { name, .. } if name == "nowhere"
        ));
        assert!(matches!(
            resolve(&c, "/broken", FollowLast::NoFollow),
            ResName::File { is_symlink: true, .. }
        ));
        assert_eq!(resolve(&c, "/loop", FollowLast::Follow), ResName::Err(Errno::ELOOP));
        assert_eq!(resolve(&c, "/loop/x", FollowLast::NoFollow), ResName::Err(Errno::ELOOP));
    }

    #[test]
    fn permission_denied_during_traversal() {
        let (mut h, root) = fixture();
        // Lock down /d1 so a non-root user cannot search it.
        let d1 = match h.lookup(root, "d1") {
            Some(Entry::Dir(d)) => d,
            _ => panic!(),
        };
        h.dir_mut(d1).unwrap().meta.mode = FileMode::new(0o600);
        let creds = Creds::user(Uid(1000), Gid(1000));
        let c = ResolveCtx::new(&h, root, Some(&creds));
        assert_eq!(resolve(&c, "/d1/f1", FollowLast::Follow), ResName::Err(Errno::EACCES));
        // Root is unaffected.
        let root_creds = Creds::root();
        let c = ResolveCtx::new(&h, root, Some(&root_creds));
        assert!(resolve(&c, "/d1/f1", FollowLast::Follow).is_file());
    }

    #[test]
    fn name_and_path_length_limits() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        let long_name = "x".repeat(NAME_MAX + 1);
        assert_eq!(
            resolve(&c, &format!("/{long_name}"), FollowLast::Follow),
            ResName::Err(Errno::ENAMETOOLONG)
        );
        let long_path = format!("/{}", "a/".repeat(PATH_MAX));
        assert_eq!(
            resolve(&c, &long_path, FollowLast::Follow),
            ResName::Err(Errno::ENAMETOOLONG)
        );
    }

    #[test]
    fn dotdot_of_disconnected_dir_fails() {
        let (mut h, root) = fixture();
        let d = h.create_dir(root, "gone", meta()).unwrap();
        h.remove_entry(root, "gone");
        let c = ctx(&h, d);
        assert_eq!(resolve(&c, "../anything", FollowLast::Follow), ResName::Err(Errno::ENOENT));
    }
}
