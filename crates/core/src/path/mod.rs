//! The path-resolution module (Fig. 5).
//!
//! Path resolution is kept strictly separate from the per-command semantics:
//! a command such as `rename p1 p2` first resolves its paths to
//! [`ResName`] values, and the file-system module then works entirely over
//! resolved names. All the "tricky details" — trailing slashes, symlink
//! following, `ELOOP`, permission checks during traversal — are confined to
//! this module (§4 "Modules", §5 "Path resolution module").
//!
//! Paths are parsed (and their components interned) **once**, at the point
//! they enter the system — the script parser, the test generator, the FFI
//! boundary — and the resolution loop below works entirely over `u32`
//! [`Name`] symbols: component comparison, `.`/`..` detection, and
//! directory-entry lookup never touch string data. Symlink targets are stored
//! pre-parsed, so splicing a target into the remaining components is a small
//! `memcpy` of symbols, not a re-parse.
//!
//! Short paths avoid the heap entirely: up to [`INLINE_COMPONENTS`]
//! components are stored inline in [`ParsedPath`], and a symlink splice of up
//! to [`INLINE_SPLICE`] combined components lives on the resolver's stack
//! frame ([`SplicedPath`]). The suite is dominated by one- and two-component
//! paths, so the common parse and the common splice both cost zero
//! allocations.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::coverage::spec_point;
use crate::errno::Errno;
use crate::intern::Name;
use crate::perms::{access_allowed, Access, Creds};
use crate::state::{DirHeap, DirRef, Entry, FileRef};
use crate::types::{NAME_MAX, PATH_MAX, SYMLOOP_MAX};

/// Number of components a [`ParsedPath`] stores inline without touching the
/// heap. Three covers the overwhelming majority of paths the suite generates
/// (`/a`, `/d1/f1`, `/shared/r2_a`, …); longer paths spill to a shared slice.
pub const INLINE_COMPONENTS: usize = 3;

/// Component storage for [`ParsedPath`]: short lists live inline (clone is a
/// 16-byte copy), longer ones behind an `Arc` (clone is a refcount bump).
#[derive(Clone)]
enum NameList {
    /// `len` live components at the front of the buffer; the tail slots are
    /// padding (`Name::DOT`, never read — `as_slice` stops at `len`).
    Inline(u8, [Name; INLINE_COMPONENTS]),
    /// More than [`INLINE_COMPONENTS`] components, shared on the heap.
    Heap(Arc<[Name]>),
}

impl NameList {
    fn as_slice(&self) -> &[Name] {
        match self {
            NameList::Inline(len, buf) => &buf[..*len as usize],
            NameList::Heap(names) => names,
        }
    }
}

/// A parsed (but not yet resolved) path: the raw text interned as a single
/// symbol plus its interned components.
///
/// Parsing happens once per distinct path string; everything downstream —
/// equality, hashing, resolution, storage in commands and symlink objects —
/// is symbol arithmetic. Up to [`INLINE_COMPONENTS`] components are stored
/// inline; longer lists sit behind an `Arc`. Either way, cloning a command
/// that carries a path never allocates.
///
/// **Serde caveat**: the derives below are the workspace's no-op stub
/// markers. When real serde is wired in, this type MUST get a custom impl
/// serializing `as_str()` text and deserializing via `parse` — symbol ids
/// are interning-order-dependent and must never cross the process boundary
/// (DESIGN_INTERN.md, invariant 2).
#[derive(Clone, Serialize, Deserialize)]
pub struct ParsedPath {
    /// The original string, interned whole (for printing and `readlink`).
    raw: Name,
    /// Byte length of the raw string (cached so `stat` of a symlink never
    /// resolves the symbol).
    raw_len: u32,
    /// Whether the path begins with a slash.
    pub absolute: bool,
    /// Number of leading slashes (POSIX gives `//` implementation-defined
    /// meaning; the test generator uses this property for partitioning).
    pub leading_slashes: usize,
    /// Path components, with empty components removed but `.` and `..` kept.
    components: NameList,
    /// Whether the path ends with a slash.
    pub trailing_slash: bool,
    /// Index of the first component longer than [`NAME_MAX`], computed at
    /// intern time — the single enforcement point for `ENAMETOOLONG` shared
    /// by the model's resolver and the simulated kernel's.
    first_overlong: Option<u32>,
    /// Whether the raw string exceeds [`PATH_MAX`].
    raw_too_long: bool,
}

impl ParsedPath {
    /// Parse a raw path string into interned components.
    pub fn parse(raw: &str) -> ParsedPath {
        let leading_slashes = raw.chars().take_while(|c| *c == '/').count();
        let absolute = leading_slashes > 0;
        let trailing_slash = raw.len() > leading_slashes && raw.ends_with('/');
        // Build into the inline buffer first; only a fourth component forces
        // a heap spill (which then re-homes the inline prefix).
        let mut inline = [Name::DOT; INLINE_COMPONENTS];
        let mut len = 0usize;
        let mut spill: Vec<Name> = Vec::new();
        let mut first_overlong = None;
        for c in raw.split('/').filter(|c| !c.is_empty()) {
            if c.len() > NAME_MAX && first_overlong.is_none() {
                first_overlong = Some(len as u32);
            }
            let name = Name::intern(c);
            if len < INLINE_COMPONENTS {
                inline[len] = name;
            } else {
                if spill.is_empty() {
                    spill.extend_from_slice(&inline);
                }
                spill.push(name);
            }
            len += 1;
        }
        let components = if len <= INLINE_COMPONENTS {
            NameList::Inline(len as u8, inline)
        } else {
            NameList::Heap(spill.into())
        };
        ParsedPath {
            raw: Name::intern(raw),
            raw_len: raw.len() as u32,
            absolute,
            leading_slashes,
            components,
            trailing_slash,
            first_overlong,
            raw_too_long: raw.len() > PATH_MAX,
        }
    }

    /// The original path text.
    pub fn as_str(&self) -> &'static str {
        self.raw.as_str()
    }

    /// The interned symbol of the whole raw path.
    pub fn raw_name(&self) -> Name {
        self.raw
    }

    /// Byte length of the original text.
    pub fn raw_len(&self) -> usize {
        self.raw_len as usize
    }

    /// The interned path components (empty components removed, `.`/`..` kept).
    pub fn components(&self) -> &[Name] {
        self.components.as_slice()
    }

    /// Index of the first component longer than `NAME_MAX`, if any.
    pub fn first_overlong(&self) -> Option<usize> {
        self.first_overlong.map(|i| i as usize)
    }

    /// Whether the raw text exceeds `PATH_MAX`.
    pub fn exceeds_path_max(&self) -> bool {
        self.raw_too_long
    }

    /// Whether the path is the empty string.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The final component, if any.
    pub fn last_component(&self) -> Option<Name> {
        self.components.as_slice().last().copied()
    }

    /// Whether the final component is `.` or `..`.
    pub fn ends_in_dot(&self) -> bool {
        matches!(self.last_component(), Some(Name::DOT) | Some(Name::DOTDOT))
    }

    /// This path with any trailing slash dropped (components shared).
    pub fn without_trailing_slash(&self) -> ParsedPath {
        let mut p = self.clone();
        p.trailing_slash = false;
        p
    }

    /// Splice this path (a symlink target) into a partially-walked component
    /// list: the walker stood at `components[idx]` (the symlink) with
    /// `overlong_at`/`trailing` describing the original path, and resolution
    /// continues with the target's components followed by the remainder.
    ///
    /// Returns `(spliced components, re-based overlong index, new trailing
    /// flag)`. The spliced list is a [`SplicedPath`]: when target + remainder
    /// fit in [`INLINE_SPLICE`] components (the common case), it lives
    /// entirely in the caller's stack frame and the splice allocates nothing.
    ///
    /// This is the one place the subtle overlong-index re-base lives
    /// — the model's resolver and the simulated kernel's both call it, so
    /// their `ENAMETOOLONG` placement cannot drift apart. An overlong
    /// component at or before `idx` is impossible here (the walk would have
    /// failed there), which the `i > idx` filter makes explicit.
    pub fn splice_into(
        &self,
        components: &[Name],
        idx: usize,
        overlong_at: Option<usize>,
        trailing: bool,
    ) -> (SplicedPath, Option<usize>, bool) {
        let rest = &components[idx + 1..];
        let tcomps = self.components();
        let mut spliced = SplicedPath::new();
        spliced.extend_from_slice(tcomps);
        spliced.extend_from_slice(rest);
        let spliced_overlong = self.first_overlong().or_else(|| {
            overlong_at.filter(|&i| i > idx).map(|i| i - (idx + 1) + tcomps.len())
        });
        let new_trailing =
            if rest.is_empty() { trailing || self.trailing_slash } else { trailing };
        (spliced, spliced_overlong, new_trailing)
    }
}

/// Inline capacity of [`SplicedPath`]. Symlink target + path remainder stay
/// under this in every suite-generated script; deeper splices (symlink chains
/// into long tails) fall back to a single heap allocation.
pub const INLINE_SPLICE: usize = 8;

/// The component list produced by [`ParsedPath::splice_into`]: a fixed
/// inline buffer that spills to the heap only past [`INLINE_SPLICE`]
/// components. Lives on the resolver's recursion frame and derefs to
/// `&[Name]`, so the recursive `resolve_from` call borrows it directly.
pub struct SplicedPath {
    /// Total number of components; when `len <= INLINE_SPLICE` the live data
    /// is `inline[..len]`, otherwise it is all of `heap`.
    len: usize,
    /// Inline storage; tail slots past `len` are padding (`Name::DOT`).
    inline: [Name; INLINE_SPLICE],
    /// Spill storage, populated only once `len` exceeds the inline capacity.
    heap: Vec<Name>,
}

impl SplicedPath {
    fn new() -> SplicedPath {
        SplicedPath { len: 0, inline: [Name::DOT; INLINE_SPLICE], heap: Vec::new() }
    }

    fn extend_from_slice(&mut self, names: &[Name]) {
        let total = self.len + names.len();
        if total <= INLINE_SPLICE {
            self.inline[self.len..total].copy_from_slice(names);
        } else {
            if self.len <= INLINE_SPLICE {
                // First spill: re-home the inline prefix, sized once.
                self.heap.reserve(total);
                self.heap.extend_from_slice(&self.inline[..self.len]);
            }
            self.heap.extend_from_slice(names);
        }
        self.len = total;
    }

    /// The spliced components.
    pub fn as_slice(&self) -> &[Name] {
        if self.len <= INLINE_SPLICE {
            &self.inline[..self.len]
        } else {
            &self.heap
        }
    }
}

impl std::ops::Deref for SplicedPath {
    type Target = [Name];

    fn deref(&self) -> &[Name] {
        self.as_slice()
    }
}

impl PartialEq for ParsedPath {
    fn eq(&self, other: &ParsedPath) -> bool {
        // The raw symbol determines every derived field.
        self.raw == other.raw
    }
}

impl Eq for ParsedPath {}

impl std::hash::Hash for ParsedPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl PartialOrd for ParsedPath {
    fn partial_cmp(&self, other: &ParsedPath) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ParsedPath {
    fn cmp(&self, other: &ParsedPath) -> std::cmp::Ordering {
        // Lexicographic by raw text: stable across runs (symbol ids are not),
        // and only ever used on cold paths (ordered collections of commands).
        self.as_str().cmp(other.as_str())
    }
}

impl PartialEq<str> for ParsedPath {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for ParsedPath {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl AsRef<str> for ParsedPath {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for ParsedPath {
    fn from(s: &str) -> ParsedPath {
        ParsedPath::parse(s)
    }
}

impl From<String> for ParsedPath {
    fn from(s: String) -> ParsedPath {
        ParsedPath::parse(&s)
    }
}

impl From<&String> for ParsedPath {
    fn from(s: &String) -> ParsedPath {
        ParsedPath::parse(s)
    }
}

impl std::fmt::Display for ParsedPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Quoted/escaped exactly like the `String` the path was parsed from,
        // so rendered scripts and traces are byte-identical to before.
        write!(f, "{:?}", self.as_str())
    }
}

impl std::fmt::Debug for ParsedPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// The result of path resolution (the `res_name` type of the Lem model).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResName {
    /// The path resolved to a directory.
    Dir {
        /// The directory.
        dref: DirRef,
        /// The directory's parent and the name under which it was found, when
        /// the path did not end in `.`, `..` or the root. Needed by commands
        /// such as `rmdir` and `rename` that must modify the parent.
        parent: Option<(DirRef, Name)>,
        /// Whether the path carried a trailing slash.
        trailing_slash: bool,
    },
    /// The path resolved to a non-directory file (regular file or, when the
    /// final symlink was not followed, a symlink).
    File {
        /// The directory containing the entry.
        parent: DirRef,
        /// The entry name within the parent.
        name: Name,
        /// The file object.
        fref: FileRef,
        /// Whether the final component is a symlink that was *not* followed.
        is_symlink: bool,
        /// Whether the path carried a trailing slash (which POSIX intends to
        /// be an error for non-directories, but which real systems treat
        /// inconsistently, §7.3.2).
        trailing_slash: bool,
    },
    /// The path resolved to a non-existent entry in an existing directory
    /// (e.g. the target of `mkdir` or `open(O_CREAT)`).
    None {
        /// The directory that would contain the entry.
        parent: DirRef,
        /// The name of the missing entry.
        name: Name,
        /// Whether the path carried a trailing slash.
        trailing_slash: bool,
    },
    /// Resolution failed.
    Err(Errno),
}

impl ResName {
    /// The errno if resolution failed.
    pub fn errno(&self) -> Option<Errno> {
        match self {
            ResName::Err(e) => Some(*e),
            _ => None,
        }
    }

    /// Whether the path resolved to an existing directory.
    pub fn is_dir(&self) -> bool {
        matches!(self, ResName::Dir { .. })
    }

    /// Whether the path resolved to an existing non-directory file.
    pub fn is_file(&self) -> bool {
        matches!(self, ResName::File { .. })
    }

    /// Whether the path resolved to a missing entry.
    pub fn is_none(&self) -> bool {
        matches!(self, ResName::None { .. })
    }
}

/// Whether the final symlink in a path should be followed, which varies by
/// libc function (§5 "Path resolution module").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowLast {
    /// Follow a symlink in the final component (`stat`, `open` without
    /// `O_NOFOLLOW`, `chdir`, `truncate`, `chmod`, `chown`, `opendir`, …).
    Follow,
    /// Do not follow (`lstat`, `unlink`, `rename`, `readlink`, `symlink`,
    /// `mkdir`, `rmdir`, `link` on Linux, `open` with `O_NOFOLLOW`).
    NoFollow,
}

/// The context needed to resolve a path.
#[derive(Debug, Clone, Copy)]
pub struct ResolveCtx<'a> {
    /// The file-system state.
    pub heap: &'a DirHeap,
    /// The current working directory of the calling process.
    pub cwd: DirRef,
    /// The caller's credentials, or `None` when the permissions trait is off.
    pub creds: Option<&'a Creds>,
}

impl<'a> ResolveCtx<'a> {
    /// Construct a resolution context.
    pub fn new(heap: &'a DirHeap, cwd: DirRef, creds: Option<&'a Creds>) -> ResolveCtx<'a> {
        ResolveCtx { heap, cwd, creds }
    }

    fn search_allowed(&self, d: DirRef) -> bool {
        match self.heap.dir(d) {
            Some(dir) => access_allowed(self.creds, &dir.meta, Access::Exec),
            None => false,
        }
    }
}

/// A record of everything a path resolution *read* from the heap: the
/// directories it traversed (search-permission + parent-pointer reads) and
/// the directory entries it looked up, present or absent.
///
/// Used by the footprint layer (`crate::footprint`) to derive the read set
/// of a command's path arguments for partial-order reduction: a concurrent
/// write that touches none of these resources cannot change the outcome of
/// this resolution. Symlink expansion is covered by the edge read of the
/// symlink itself — symlink *content* is immutable in the model (only
/// `rename`, which is treated conservatively, can move one).
#[derive(Debug, Default, Clone)]
pub struct PathObs {
    /// Every directory whose metadata (search permission) or parent pointer
    /// was consulted, in traversal order, duplicates included.
    pub dirs: Vec<DirRef>,
    /// Every `(dir, name)` entry lookup performed — hits *and* misses (a miss
    /// is a read too: creating that entry would change the outcome).
    pub edges: Vec<(DirRef, Name)>,
}

impl PathObs {
    fn note_dir(&mut self, d: DirRef) {
        self.dirs.push(d);
    }

    fn note_edge(&mut self, d: DirRef, n: Name) {
        self.edges.push((d, n));
    }
}

/// Resolve a raw path string relative to the context. Thin wrapper over
/// [`resolve_path`] for callers (tests, examples) holding plain strings; the
/// transition engine resolves pre-parsed [`ParsedPath`]s and never re-parses.
pub fn resolve(ctx: &ResolveCtx<'_>, raw: &str, follow_last: FollowLast) -> ResName {
    resolve_path(ctx, &ParsedPath::parse(raw), follow_last)
}

/// Resolve a pre-parsed path relative to the context, following the final
/// symlink according to `follow_last`. The hot entry point: no string data is
/// touched anywhere below here.
pub fn resolve_path(
    ctx: &ResolveCtx<'_>,
    parsed: &ParsedPath,
    follow_last: FollowLast,
) -> ResName {
    resolve_path_inner(ctx, parsed, follow_last, None)
}

/// [`resolve_path`] variant that records every heap read into `obs`.
///
/// Only the footprint layer uses this; the hot resolve path goes through
/// [`resolve_path`], which passes `None` and pays nothing for the hooks.
pub fn resolve_path_observed(
    ctx: &ResolveCtx<'_>,
    parsed: &ParsedPath,
    follow_last: FollowLast,
    obs: &mut PathObs,
) -> ResName {
    resolve_path_inner(ctx, parsed, follow_last, Some(obs))
}

fn resolve_path_inner(
    ctx: &ResolveCtx<'_>,
    parsed: &ParsedPath,
    follow_last: FollowLast,
    mut obs: Option<&mut PathObs>,
) -> ResName {
    if parsed.is_empty() {
        spec_point("path/empty_path_enoent");
        return ResName::Err(Errno::ENOENT);
    }
    if parsed.exceeds_path_max() {
        spec_point("path/path_too_long");
        return ResName::Err(Errno::ENAMETOOLONG);
    }
    let start = if parsed.absolute { ctx.heap.root() } else { ctx.cwd };
    if let Some(o) = obs.as_deref_mut() {
        o.note_dir(start);
    }
    resolve_from(
        ctx,
        start,
        parsed.components(),
        parsed.first_overlong(),
        parsed.trailing_slash,
        follow_last,
        0,
        obs,
    )
}

/// Resolve a component list starting from `start`.
///
/// `overlong_at` is the index (within `components`) of the first component
/// longer than [`NAME_MAX`], carried from parse time; reaching it yields
/// `ENAMETOOLONG` exactly where a kernel walking the path would notice.
/// `depth` counts the number of symlinks expanded so far; exceeding
/// [`SYMLOOP_MAX`] yields `ELOOP`.
#[allow(clippy::too_many_arguments)]
fn resolve_from(
    ctx: &ResolveCtx<'_>,
    start: DirRef,
    components: &[Name],
    overlong_at: Option<usize>,
    trailing_slash: bool,
    follow_last: FollowLast,
    depth: usize,
    mut obs: Option<&mut PathObs>,
) -> ResName {
    if depth > SYMLOOP_MAX {
        spec_point("path/eloop");
        return ResName::Err(Errno::ELOOP);
    }
    let mut cur = start;
    let mut came_via: Option<(DirRef, Name)> = None;

    let mut idx = 0usize;
    while idx < components.len() {
        let comp = components[idx];
        let is_last = idx + 1 == components.len();

        if overlong_at == Some(idx) {
            spec_point("path/name_too_long");
            return ResName::Err(Errno::ENAMETOOLONG);
        }
        // Search permission is required on every directory traversed.
        if let Some(o) = obs.as_deref_mut() {
            o.note_dir(cur);
        }
        if !ctx.search_allowed(cur) {
            spec_point("path/search_permission_denied");
            return ResName::Err(Errno::EACCES);
        }
        if comp == Name::DOT {
            spec_point("path/dot_component");
            came_via = None;
            idx += 1;
            continue;
        }
        if comp == Name::DOTDOT {
            spec_point("path/dotdot_component");
            // `..` of the root is the root; `..` of a disconnected directory
            // has no parent and resolution fails with ENOENT.
            if cur == ctx.heap.root() {
                // Stay at the root.
            } else {
                match ctx.heap.parent_of(cur) {
                    Some(p) => cur = p,
                    None => {
                        spec_point("path/dotdot_of_disconnected_dir");
                        return ResName::Err(Errno::ENOENT);
                    }
                }
            }
            if let Some(o) = obs.as_deref_mut() {
                o.note_dir(cur);
            }
            came_via = None;
            idx += 1;
            continue;
        }

        if let Some(o) = obs.as_deref_mut() {
            o.note_edge(cur, comp);
        }
        match ctx.heap.lookup(cur, comp) {
            None => {
                if is_last {
                    spec_point("path/last_component_missing");
                    return ResName::None {
                        parent: cur,
                        name: comp,
                        trailing_slash,
                    };
                }
                spec_point("path/intermediate_component_missing");
                return ResName::Err(Errno::ENOENT);
            }
            Some(Entry::Dir(d)) => {
                came_via = Some((cur, comp));
                cur = d;
                idx += 1;
                if is_last {
                    spec_point("path/resolved_to_dir");
                    return ResName::Dir { dref: d, parent: came_via, trailing_slash };
                }
            }
            Some(Entry::File(f)) => {
                let target = ctx.heap.symlink_target_parsed(f);
                if let Some(target) = target {
                    let follow = !is_last
                        || matches!(follow_last, FollowLast::Follow)
                        || trailing_slash;
                    if follow {
                        spec_point("path/symlink_followed");
                        if target.is_empty() {
                            spec_point("path/empty_symlink_target");
                            return ResName::Err(Errno::ENOENT);
                        }
                        let tstart = if target.absolute { ctx.heap.root() } else { cur };
                        // Splice: resolve the (pre-parsed) target, then
                        // continue with the remaining components of the
                        // original path. A memcpy of u32 symbols.
                        let (spliced, spliced_overlong, new_trailing) =
                            target.splice_into(components, idx, overlong_at, trailing_slash);
                        return resolve_from(
                            ctx,
                            tstart,
                            &spliced,
                            spliced_overlong,
                            new_trailing,
                            follow_last,
                            depth + 1,
                            obs,
                        );
                    }
                    // Unfollowed final symlink.
                    spec_point("path/final_symlink_not_followed");
                    return ResName::File {
                        parent: cur,
                        name: comp,
                        fref: f,
                        is_symlink: true,
                        trailing_slash,
                    };
                }
                // Regular file.
                if !is_last {
                    spec_point("path/intermediate_component_not_a_dir");
                    return ResName::Err(Errno::ENOTDIR);
                }
                spec_point("path/resolved_to_file");
                return ResName::File {
                    parent: cur,
                    name: comp,
                    fref: f,
                    is_symlink: false,
                    trailing_slash,
                };
            }
        }
    }

    // No components (the path was "/", ".", "..", or collapsed to nothing).
    spec_point("path/resolved_to_start_dir");
    if let Some(o) = obs {
        o.note_dir(cur);
    }
    ResName::Dir { dref: cur, parent: came_via, trailing_slash }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::FileMode;
    use crate::state::Meta;
    use crate::types::{Gid, Uid};

    fn meta() -> Meta {
        Meta::new(FileMode::new(0o755), Uid(0), Gid(0), 1)
    }

    /// Build the standard fixture:
    /// `/d1` (dir), `/d1/f1` (file), `/s_d1 -> d1`, `/s_f1 -> d1/f1`,
    /// `/broken -> nowhere`, `/loop -> loop`.
    fn fixture() -> (DirHeap, DirRef) {
        let mut h = DirHeap::empty();
        let root = h.root();
        let d1 = h.create_dir(root, "d1", meta()).unwrap();
        h.create_file(d1, "f1", meta()).unwrap();
        h.create_symlink(root, "s_d1", "d1", meta()).unwrap();
        h.create_symlink(root, "s_f1", "d1/f1", meta()).unwrap();
        h.create_symlink(root, "broken", "nowhere", meta()).unwrap();
        h.create_symlink(root, "loop", "loop", meta()).unwrap();
        (h, root)
    }

    fn ctx<'a>(h: &'a DirHeap, cwd: DirRef) -> ResolveCtx<'a> {
        ResolveCtx::new(h, cwd, None)
    }

    fn comps(p: &ParsedPath) -> Vec<&'static str> {
        p.components().iter().map(|n| n.as_str()).collect()
    }

    #[test]
    fn parse_basic_paths() {
        let p = ParsedPath::parse("/a/b/c");
        assert!(p.absolute);
        assert_eq!(comps(&p), vec!["a", "b", "c"]);
        assert!(!p.trailing_slash);
        assert_eq!(p.as_str(), "/a/b/c");
        assert_eq!(p.raw_len(), 6);

        let p = ParsedPath::parse("a/b/");
        assert!(!p.absolute);
        assert!(p.trailing_slash);

        let p = ParsedPath::parse("///x");
        assert_eq!(p.leading_slashes, 3);
        assert_eq!(comps(&p), vec!["x"]);

        let p = ParsedPath::parse("/");
        assert!(p.absolute);
        assert!(p.components().is_empty());
        assert!(!p.trailing_slash, "a bare slash is not counted as trailing");

        assert!(ParsedPath::parse("").is_empty());
        assert!(ParsedPath::parse("a/..").ends_in_dot());
    }

    #[test]
    fn parse_interns_and_round_trips() {
        let p = ParsedPath::parse("/a/./../b\n/");
        // Parsing is idempotent: same raw string, same symbols.
        let q = ParsedPath::parse("/a/./../b\n/");
        assert_eq!(p, q);
        assert_eq!(p.raw_name(), q.raw_name());
        assert_eq!(p.components(), q.components());
        // `.`/`..` intern to the pre-seeded constants.
        assert_eq!(p.components()[1], Name::DOT);
        assert_eq!(p.components()[2], Name::DOTDOT);
        // The raw text survives exactly (escaping happens only in Display).
        assert_eq!(p.as_str(), "/a/./../b\n/");
        assert_eq!(format!("{p}"), "\"/a/./../b\\n/\"");
    }

    #[test]
    fn parse_marks_overlong_components() {
        let long = "x".repeat(NAME_MAX + 1);
        let p = ParsedPath::parse(&format!("/ok/{long}/tail"));
        assert_eq!(p.first_overlong(), Some(1));
        let p = ParsedPath::parse("/ok/fine");
        assert_eq!(p.first_overlong(), None);
        let edge = "y".repeat(NAME_MAX);
        assert_eq!(ParsedPath::parse(&edge).first_overlong(), None);
    }

    #[test]
    fn inline_and_spilled_components_agree() {
        // Cross the INLINE_COMPONENTS boundary: behavior must be identical on
        // both sides of the inline/heap split.
        for n in 0..(2 * INLINE_COMPONENTS + 1) {
            let joined =
                (0..n).map(|i| format!("c{i}")).collect::<Vec<_>>().join("/");
            let p = ParsedPath::parse(&format!("/{joined}"));
            let got: Vec<&str> = p.components().iter().map(|c| c.as_str()).collect();
            let want: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
            assert_eq!(got, want);
            if n > 0 {
                assert_eq!(
                    p.last_component().map(|c| c.as_str()),
                    Some(want[n - 1].as_str())
                );
            } else {
                assert_eq!(p.last_component(), None);
            }
        }
    }

    #[test]
    fn deep_symlink_splice_spills_and_resolves() {
        let (mut h, root) = fixture();
        // 8 `.` components + `d1` = 9 spliced components, past INLINE_SPLICE,
        // so this exercises the SplicedPath heap-spill path end to end.
        let dots = "./".repeat(INLINE_SPLICE);
        h.create_symlink(root, "deep", format!("{dots}d1").as_str(), meta()).unwrap();
        let c = ctx(&h, root);
        assert!(resolve(&c, "/deep", FollowLast::Follow).is_dir());
        // With a tail after the symlink the splice is even longer.
        assert!(matches!(
            resolve(&c, "/deep/f1", FollowLast::Follow),
            ResName::File { is_symlink: false, .. }
        ));
        assert!(matches!(
            resolve(&c, "/deep/nope", FollowLast::Follow),
            ResName::None { .. }
        ));
    }

    #[test]
    fn empty_path_is_enoent() {
        let (h, root) = fixture();
        assert_eq!(resolve(&ctx(&h, root), "", FollowLast::Follow), ResName::Err(Errno::ENOENT));
    }

    #[test]
    fn resolve_root_and_dot() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        assert!(matches!(resolve(&c, "/", FollowLast::Follow), ResName::Dir { dref, .. } if dref == root));
        assert!(matches!(resolve(&c, ".", FollowLast::Follow), ResName::Dir { dref, .. } if dref == root));
        assert!(matches!(resolve(&c, "..", FollowLast::Follow), ResName::Dir { dref, .. } if dref == root));
    }

    #[test]
    fn resolve_file_and_missing() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        assert!(matches!(
            resolve(&c, "/d1/f1", FollowLast::Follow),
            ResName::File { is_symlink: false, .. }
        ));
        assert!(matches!(
            resolve(&c, "/d1/nope", FollowLast::Follow),
            ResName::None { name, .. } if name == "nope"
        ));
        assert_eq!(
            resolve(&c, "/nope/nope2", FollowLast::Follow),
            ResName::Err(Errno::ENOENT)
        );
        assert_eq!(
            resolve(&c, "/d1/f1/x", FollowLast::Follow),
            ResName::Err(Errno::ENOTDIR)
        );
    }

    #[test]
    fn relative_resolution_uses_cwd() {
        let (h, root) = fixture();
        let d1 = match h.lookup(root, "d1") {
            Some(Entry::Dir(d)) => d,
            _ => panic!(),
        };
        let c = ctx(&h, d1);
        assert!(matches!(resolve(&c, "f1", FollowLast::Follow), ResName::File { .. }));
        assert!(matches!(resolve(&c, "../d1/f1", FollowLast::Follow), ResName::File { .. }));
    }

    #[test]
    fn symlink_following_modes() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        // Followed: resolves to the directory / file target.
        assert!(resolve(&c, "/s_d1", FollowLast::Follow).is_dir());
        assert!(matches!(
            resolve(&c, "/s_f1", FollowLast::Follow),
            ResName::File { is_symlink: false, .. }
        ));
        // Not followed: resolves to the symlink object itself.
        assert!(matches!(
            resolve(&c, "/s_d1", FollowLast::NoFollow),
            ResName::File { is_symlink: true, .. }
        ));
        // Intermediate symlinks are always followed.
        assert!(matches!(
            resolve(&c, "/s_d1/f1", FollowLast::NoFollow),
            ResName::File { is_symlink: false, .. }
        ));
    }

    #[test]
    fn trailing_slash_forces_following() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        // A trailing slash on a symlink to a directory forces resolution to
        // the directory even under NoFollow.
        assert!(resolve(&c, "/s_d1/", FollowLast::NoFollow).is_dir());
        // Trailing slash on a regular file is reported with the flag set.
        assert!(matches!(
            resolve(&c, "/d1/f1/", FollowLast::Follow),
            ResName::File { trailing_slash: true, .. }
        ));
    }

    #[test]
    fn broken_and_looping_symlinks() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        assert!(matches!(
            resolve(&c, "/broken", FollowLast::Follow),
            ResName::None { name, .. } if name == "nowhere"
        ));
        assert!(matches!(
            resolve(&c, "/broken", FollowLast::NoFollow),
            ResName::File { is_symlink: true, .. }
        ));
        assert_eq!(resolve(&c, "/loop", FollowLast::Follow), ResName::Err(Errno::ELOOP));
        assert_eq!(resolve(&c, "/loop/x", FollowLast::NoFollow), ResName::Err(Errno::ELOOP));
    }

    #[test]
    fn permission_denied_during_traversal() {
        let (mut h, root) = fixture();
        // Lock down /d1 so a non-root user cannot search it.
        let d1 = match h.lookup(root, "d1") {
            Some(Entry::Dir(d)) => d,
            _ => panic!(),
        };
        h.dir_mut(d1).unwrap().meta.mode = FileMode::new(0o600);
        let creds = Creds::user(Uid(1000), Gid(1000));
        let c = ResolveCtx::new(&h, root, Some(&creds));
        assert_eq!(resolve(&c, "/d1/f1", FollowLast::Follow), ResName::Err(Errno::EACCES));
        // Root is unaffected.
        let root_creds = Creds::root();
        let c = ResolveCtx::new(&h, root, Some(&root_creds));
        assert!(resolve(&c, "/d1/f1", FollowLast::Follow).is_file());
    }

    #[test]
    fn name_and_path_length_limits() {
        let (h, root) = fixture();
        let c = ctx(&h, root);
        let long_name = "x".repeat(NAME_MAX + 1);
        assert_eq!(
            resolve(&c, &format!("/{long_name}"), FollowLast::Follow),
            ResName::Err(Errno::ENAMETOOLONG)
        );
        let long_path = format!("/{}", "a/".repeat(PATH_MAX));
        assert_eq!(
            resolve(&c, &long_path, FollowLast::Follow),
            ResName::Err(Errno::ENAMETOOLONG)
        );
        // An overlong component *behind* a failing prefix is not reached: the
        // prefix error wins, exactly as on a real kernel walking the path.
        assert_eq!(
            resolve(&c, &format!("/nope/{long_name}"), FollowLast::Follow),
            ResName::Err(Errno::ENOENT)
        );
        // A component of exactly NAME_MAX bytes resolves (to a missing entry).
        let edge = "y".repeat(NAME_MAX);
        assert!(matches!(
            resolve(&c, &format!("/{edge}"), FollowLast::Follow),
            ResName::None { .. }
        ));
    }

    #[test]
    fn overlong_component_behind_symlink_splice_is_detected() {
        let (mut h, root) = fixture();
        let long_name = "z".repeat(NAME_MAX + 1);
        h.create_symlink(root, "s_long", format!("d1/{long_name}").as_str(), meta()).unwrap();
        let c = ctx(&h, root);
        // The overlong component lives inside the spliced target.
        assert_eq!(
            resolve(&c, "/s_long", FollowLast::Follow),
            ResName::Err(Errno::ENAMETOOLONG)
        );
        // The overlong component lives in the original tail after the splice.
        assert_eq!(
            resolve(&c, &format!("/s_d1/{long_name}"), FollowLast::Follow),
            ResName::Err(Errno::ENAMETOOLONG)
        );
    }

    #[test]
    fn dotdot_of_disconnected_dir_fails() {
        let (mut h, root) = fixture();
        let d = h.create_dir(root, "gone", meta()).unwrap();
        h.remove_entry(root, "gone");
        let c = ctx(&h, d);
        assert_eq!(resolve(&c, "../anything", FollowLast::Follow), ResName::Err(Errno::ENOENT));
    }
}
